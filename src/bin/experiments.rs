//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! One section per experiment of DESIGN.md §5 (E1–E8). Each section prints
//! a Markdown table with the model counters (byte-codes, kernel launches,
//! flops) and measured median wall-clock times, so the paper-vs-measured
//! comparison can be refreshed with `cargo run --release --bin experiments`.

use bh_ir::{parse_program, PrintStyle, Program};
use bh_opt::{chains, OptLevel, OptOptions, Optimizer};
use bh_tensor::{random_tensor, DType, Distribution, Scalar, Shape};
use bh_vm::{Engine, Vm};
use std::time::Instant;

fn main() {
    println!("# Experiment tables (regenerated)\n");
    println!("Host: single machine, naive VM = 1 kernel/byte-code (see DESIGN.md §2).\n");
    e1_listing_lowering();
    e2_constant_merge();
    e3_e4_power_schedules();
    e5_power_crossover();
    e6_solve();
    e7_fusion();
    e8_pipeline_summary();
    e9_transformation_cache();
}

/// Median wall-clock seconds of `runs` executions of `program` on `engine`.
fn time_program(program: &Program, engine: Engine, runs: usize) -> f64 {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let mut vm = Vm::with_engine(engine);
        let start = Instant::now();
        vm.run_unchecked(program)
            .expect("experiment programs are valid");
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn kernels_of(program: &Program) -> u64 {
    let mut vm = Vm::new();
    vm.run_unchecked(program)
        .expect("experiment programs are valid");
    vm.stats().kernels
}

fn optimized(program: &Program, level: OptLevel) -> Program {
    let mut p = program.clone();
    Optimizer::new(OptOptions::level(level)).run(&mut p);
    p
}

// --- E1: Listings 1–2, front-end lowering ------------------------------

fn e1_listing_lowering() {
    use bh_frontend::Context;
    println!("## E1 — Listing 1 lowers to Listing 2 byte-code\n");
    let ctx = Context::new();
    let mut a = ctx.zeros(DType::Float64, Shape::vector(10));
    a += 1.0;
    a += 1.0;
    a += 1.0;
    println!("recorded byte-code (paper Listing 2):\n```");
    print!("{}", ctx.recorded_text(PrintStyle::LISTING));
    println!("BH_SYNC a0 [0:10:1]   # appended by eval()");
    println!("```");
    let (t, outcome) = a.eval_outcome().expect("listing 1 executes");
    println!(
        "result: all elements == {}; kernels after optimisation: {}\n",
        t.to_f64_vec()[0],
        outcome.exec.kernels
    );
}

// --- E2: Listing 2 -> 3, constant merging -------------------------------

fn add_chain_program(n: usize, k: usize) -> Program {
    let mut text = format!("BH_IDENTITY a0 [0:{n}:1] 0\n");
    for _ in 0..k {
        text.push_str("BH_ADD a0 a0 1\n");
    }
    text.push_str("BH_SYNC a0\n");
    parse_program(&text).expect("generated listing parses")
}

fn e2_constant_merge() {
    println!("## E2 — constant merging (Listing 2 → Listing 3)\n");
    println!("| n | adds | byte-codes before→after | kernels before→after | t_unopt (ms) | t_opt (ms) | speed-up |");
    println!("|---|------|------------------------|----------------------|--------------|------------|----------|");
    for &n in &[100_000usize, 1_000_000, 4_000_000] {
        for &k in &[3usize, 8, 32] {
            let unopt = add_chain_program(n, k);
            let opt = optimized(&unopt, OptLevel::O1);
            let (tu, to) = (
                time_program(&unopt, Engine::Naive, 5),
                time_program(&opt, Engine::Naive, 5),
            );
            println!(
                "| {n} | {k} | {}→{} | {}→{} | {:.2} | {:.2} | {:.1}× |",
                unopt.live_len(),
                opt.live_len(),
                kernels_of(&unopt),
                kernels_of(&opt),
                tu * 1e3,
                to * 1e3,
                tu / to
            );
        }
    }
    println!();
}

// --- E3/E4: power schedules (Listings 4 & 5) ----------------------------

fn power_chain_program(n_elems: usize, chain: &chains::PowerChain) -> Program {
    use chains::ChainStep::*;
    let mut text = format!("BH_IDENTITY a0 [0:{n_elems}:1] 1.0001\n");
    for step in &chain.steps {
        text.push_str(match step {
            SquareOrigin => "BH_MULTIPLY a1 [0:{n}:1] a0 a0\n",
            SquareAcc => "BH_MULTIPLY a1 a1 a1\n",
            MulOrigin => "BH_MULTIPLY a1 a1 a0\n",
        });
    }
    let text = text.replace("{n}", &n_elems.to_string());
    let text = format!("{text}BH_SYNC a1\n");
    parse_program(&text).expect("generated chain parses")
}

fn power_intrinsic_program(n_elems: usize, exponent: u64) -> Program {
    parse_program(&format!(
        "BH_IDENTITY a0 [0:{n_elems}:1] 1.0001\n\
         BH_POWER a1 [0:{n_elems}:1] a0 {exponent}\n\
         BH_SYNC a1\n"
    ))
    .expect("generated program parses")
}

fn e3_e4_power_schedules() {
    println!("## E3/E4 — power schedules (Eq. 1, Listings 4 & 5)\n");
    println!("multiply counts per schedule (two-register constraint of §3.1):\n");
    println!("| exponent | naive (Listing 4) | paper Listing 5 | optimal (this work) | binary method (unconstrained) |");
    println!("|----------|-------------------|-----------------|---------------------|-------------------------------|");
    for &n in &[4u64, 8, 10, 15, 16, 31, 32, 63, 64, 100] {
        let naive = chains::naive_chain(n).expect("n >= 2").multiplies();
        let listing5 = if n == 10 {
            "5".to_owned()
        } else {
            "—".to_owned()
        };
        let opt = chains::optimal_multiplies(n).expect("n >= 2");
        let binary = chains::binary_method_multiplies(n).expect("n >= 1");
        println!("| {n} | {naive} | {listing5} | {opt} | {binary} |");
    }
    println!();
    let n_elems = 1_000_000;
    println!("wall-clock for x^10 over {n_elems} f64 elements (naive engine):\n");
    println!("| schedule | multiplies | t (ms) |");
    println!("|----------|-----------|--------|");
    let power = power_intrinsic_program(n_elems, 10);
    println!(
        "| BH_POWER intrinsic | — | {:.2} |",
        time_program(&power, Engine::Naive, 5) * 1e3
    );
    for (label, chain) in [
        (
            "Listing 4 (naive)",
            chains::naive_chain(10).expect("n >= 2"),
        ),
        ("Listing 5 (paper)", chains::listing5_chain()),
        (
            "optimal (this work)",
            chains::optimal_chain(10).expect("n >= 2"),
        ),
    ] {
        let p = power_chain_program(n_elems, &chain);
        println!(
            "| {label} | {} | {:.2} |",
            chain.multiplies(),
            time_program(&p, Engine::Naive, 5) * 1e3
        );
    }
    println!();
}

// --- E5: BH_POWER vs expansion crossover (§4 claim) ---------------------

fn e5_power_crossover() {
    println!("## E5 — §4 claim: expansion beats BH_POWER near powers of two\n");
    let n_elems = 1_000_000;
    println!("| exponent | multiplies | t_power (ms) | t_chain (ms) | winner |");
    println!("|----------|------------|--------------|--------------|--------|");
    for n in 2..=32u64 {
        let power = power_intrinsic_program(n_elems, n);
        let chain = chains::optimal_chain(n).expect("n >= 2");
        let chain_p = power_chain_program(n_elems, &chain);
        let tp = time_program(&power, Engine::Naive, 3) * 1e3;
        let tc = time_program(&chain_p, Engine::Naive, 3) * 1e3;
        let winner = if tc < tp { "chain" } else { "power" };
        println!(
            "| {n} | {} | {tp:.2} | {tc:.2} | {winner} |",
            chain.multiplies()
        );
    }
    println!();
}

// --- E6: Eq. 2, solve via inverse vs LU ---------------------------------

fn e6_solve() {
    use bh_linalg::{inverse_solve_flops, lu_solve_flops, solve_lu, solve_via_inverse};
    println!("## E6 — Eq. 2: solve Ax=B via inverse vs LU factorisation\n");
    println!(
        "| m | flops inverse | flops LU | flop ratio | t_inverse (ms) | t_lu (ms) | speed-up |"
    );
    println!(
        "|---|---------------|----------|------------|----------------|-----------|----------|"
    );
    for &m in &[16usize, 32, 64, 128, 256] {
        let mut a = random_tensor(
            DType::Float64,
            Shape::matrix(m, m),
            7,
            Distribution::Uniform,
        );
        for i in 0..m {
            let v = a.get(&[i, i]).expect("diag").as_f64();
            a.set(&[i, i], Scalar::F64(v + m as f64)).expect("diag");
        }
        let b = random_tensor(DType::Float64, Shape::vector(m), 8, Distribution::Uniform);
        let t_inv = {
            let mut samples: Vec<f64> = (0..5)
                .map(|_| {
                    let s = Instant::now();
                    let _ = solve_via_inverse(&a, &b).expect("well-conditioned");
                    s.elapsed().as_secs_f64()
                })
                .collect();
            samples.sort_by(f64::total_cmp);
            samples[2]
        };
        let t_lu = {
            let mut samples: Vec<f64> = (0..5)
                .map(|_| {
                    let s = Instant::now();
                    let _ = solve_lu(&a, &b).expect("well-conditioned");
                    s.elapsed().as_secs_f64()
                })
                .collect();
            samples.sort_by(f64::total_cmp);
            samples[2]
        };
        let fi = inverse_solve_flops(m, 1);
        let fl = lu_solve_flops(m, 1);
        println!(
            "| {m} | {fi} | {fl} | {:.2} | {:.3} | {:.3} | {:.1}× |",
            fi as f64 / fl as f64,
            t_inv * 1e3,
            t_lu * 1e3,
            t_inv / t_lu
        );
    }
    println!();
}

// --- E7: fusion contraction ----------------------------------------------

fn elementwise_chain_program(n: usize, k: usize) -> Program {
    // Expression-style chain through alternating temporaries: each unfused
    // step streams two full arrays; fused blocks stay cache-resident.
    let mut text = format!("BH_IDENTITY a0 [0:{n}:1] 1.5\n");
    let mut src = "a0".to_owned();
    for i in 0..k {
        let dst = format!("t{}", i % 2);
        if i % 2 == 0 {
            text.push_str(&format!("BH_MULTIPLY {dst} [0:{n}:1] {src} 1.000001\n"));
        } else {
            text.push_str(&format!("BH_ADD {dst} [0:{n}:1] {src} 0.5\n"));
        }
        src = dst;
    }
    text.push_str(&format!("BH_SYNC {src}\n"));
    parse_program(&text).expect("generated chain parses")
}

fn e7_fusion() {
    println!("## E7 — loop-fusion-like contraction (fusing engine)\n");
    let n = 4_000_000;
    println!("chain of k element-wise byte-codes over {n} f64 elements:\n");
    println!("| k | kernels naive | kernels fused | t_naive (ms) | t_fused (ms) | speed-up |");
    println!("|---|---------------|---------------|--------------|--------------|----------|");
    for &k in &[2usize, 4, 8, 16] {
        let p = elementwise_chain_program(n, k);
        let tn = time_program(&p, Engine::Naive, 3) * 1e3;
        let tf = time_program(&p, Engine::Fusing { block: 65536 }, 3) * 1e3;
        let mut vm = Vm::with_engine(Engine::Fusing { block: 65536 });
        vm.run_unchecked(&p).expect("valid");
        let fused_kernels = vm.stats().kernels;
        println!(
            "| {k} | {} | {fused_kernels} | {tn:.2} | {tf:.2} | {:.2}× |",
            k + 1,
            tn / tf
        );
    }
    println!();
}

// --- E8: full pipeline summary -------------------------------------------

fn e8_pipeline_summary() {
    println!("## E8 — full O2 pipeline on a combined workload\n");
    let src = "\
.base m f64[64,64] input
.base rhs f64[64] input
.base t f64[64,64]
.base x f64[64]
.base v f64[1000000]
.base w f64[1000000]
BH_IDENTITY v 0
BH_ADD v v 1
BH_ADD v v 1
BH_ADD v v 1
BH_POWER w v 10
BH_INVERSE t m
BH_MATMUL x t rhs
BH_SYNC w
BH_SYNC x
";
    let unopt = parse_program(src).expect("workload parses");
    let mut opt = unopt.clone();
    let report = Optimizer::default().run(&mut opt);
    println!("```\n{report}```\n");
    println!("| variant | byte-codes | model time | measured (ms) |");
    println!("|---------|------------|------------|----------------|");
    for (label, p) in [("unoptimised", &unopt), ("O2", &opt)] {
        let est = bh_opt::estimate(p, &bh_opt::CostParams::default());
        let t = time_with_inputs(p) * 1e3;
        println!("| {label} | {} | {} | {t:.2} |", est.bytecodes, est.time);
    }
    println!();
}

// --- E9: transformation-cache amortisation -------------------------------

fn e9_transformation_cache() {
    use bohrium_repro::runtime::Runtime;
    println!("## E9 — transformation cache: fixpoint cost amortised over repeated traffic\n");
    println!("k-add chains over 1000 f64 elements (small arrays: optimisation time");
    println!("is comparable to execution time, the serving regime the cache targets):\n");
    println!("| adds k | evals | t_uncached (ms) | t_cached (ms) | speed-up | hit rate |");
    println!("|--------|-------|-----------------|---------------|----------|----------|");
    let evals = 200;
    for &k in &[8usize, 32, 128] {
        let program = add_chain_program(1000, k);
        let reg = program.reg_by_name("a0").expect("declared");

        let uncached = Runtime::builder().cache_capacity(0).build();
        let t_un = {
            let start = Instant::now();
            for _ in 0..evals {
                uncached.eval(&program, &[], reg).expect("valid program");
            }
            start.elapsed().as_secs_f64()
        };

        let cached = Runtime::new();
        let t_ca = {
            let start = Instant::now();
            for _ in 0..evals {
                cached.eval(&program, &[], reg).expect("valid program");
            }
            start.elapsed().as_secs_f64()
        };

        let stats = cached.stats();
        println!(
            "| {k} | {evals} | {:.2} | {:.2} | {:.1}× | {:.1}% |",
            t_un * 1e3,
            t_ca * 1e3,
            t_un / t_ca,
            stats.hit_rate() * 100.0
        );
    }
    println!();
}

fn time_with_inputs(program: &Program) -> f64 {
    let mut samples = Vec::new();
    for _ in 0..5 {
        let mut vm = Vm::new();
        for (i, base) in program.bases().iter().enumerate() {
            if base.is_input {
                let mut t = random_tensor(
                    base.dtype,
                    base.shape.clone(),
                    i as u64,
                    Distribution::Uniform,
                );
                // Diagonal boost keeps matrices comfortably non-singular.
                if base.shape.rank() == 2 && base.shape.dim(0) == base.shape.dim(1) {
                    let m = base.shape.dim(0);
                    for d in 0..m {
                        let v = t.get(&[d, d]).expect("diag").as_f64();
                        t.set(&[d, d], Scalar::F64(v + m as f64)).expect("diag");
                    }
                }
                vm.bind_by_name(program, &base.name, &t)
                    .expect("binding inputs");
            }
        }
        let start = Instant::now();
        vm.run_unchecked(program).expect("workload runs");
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}
