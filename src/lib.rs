//! # bohrium-repro — reproduction of *Algebraic Transformation of
//! Descriptive Vector Byte-code Sequences* (Middleware DS '16)
//!
//! Umbrella crate re-exporting the whole stack:
//!
//! * [`tensor`] — strided tensor substrate (`bh-tensor`)
//! * [`ir`] — the descriptive vector byte-code (`bh-ir`)
//! * [`opt`] — the algebraic transformation engine, the paper's
//!   contribution (`bh-opt`)
//! * [`linalg`] — LU/solve/inverse substrate (`bh-linalg`)
//! * [`vm`] — the instrumented byte-code VM (`bh-vm`)
//! * [`runtime`] — the unified optimise → plan → execute entry point with
//!   the transformation cache (`bh-runtime`)
//! * [`serve`] — the multi-tenant batching scheduler for concurrent eval
//!   traffic (`bh-serve`)
//! * [`observe`] — per-digest profiling, request-lifecycle tracing and
//!   the Prometheus/JSON metrics exporter (`bh-observe`)
//! * [`frontend`] — the lazy NumPy-flavoured front-end (`bh-frontend`)
//!
//! plus [`testing`], the cross-crate semantic-equivalence harness used by
//! the integration test-suite, and the `experiments` binary that
//! regenerates every table in EXPERIMENTS.md.
//!
//! See README.md for a guided tour and DESIGN.md for the system inventory.

#![warn(missing_docs)]

pub use bh_frontend as frontend;
pub use bh_ir as ir;
pub use bh_linalg as linalg;
pub use bh_observe as observe;
pub use bh_opt as opt;
pub use bh_runtime as runtime;
pub use bh_serve as serve;
pub use bh_tensor as tensor;
pub use bh_vm as vm;

pub mod testing {
    //! Semantic-equivalence harness.
    //!
    //! The soundness property of every rewrite (DESIGN.md §6): executing a
    //! program before and after transformation must produce element-wise
    //! equal synced results. These helpers bind deterministic random data
    //! to `input` bases, execute on the naive VM, and compare.

    use bh_ir::{Opcode, Program};
    use bh_tensor::{random_tensor, Distribution, Tensor};
    use bh_vm::{Engine, Vm, VmError};
    use std::collections::BTreeMap;

    /// Deterministic random tensor for the `i`-th input base of a program.
    pub fn input_tensor(program: &Program, index: usize, seed: u64) -> Tensor {
        let base = &program.bases()[index];
        random_tensor(
            base.dtype,
            base.shape.clone(),
            seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            Distribution::NonZero,
        )
    }

    /// Execute `program` with seeded inputs and collect the value of every
    /// register read by a `BH_SYNC`, keyed by register name.
    ///
    /// # Errors
    ///
    /// Propagates VM validation/execution failures.
    pub fn run_synced(
        program: &Program,
        seed: u64,
        engine: Engine,
    ) -> Result<BTreeMap<String, Tensor>, VmError> {
        run_synced_threads(program, seed, engine, 1)
    }

    /// [`run_synced`] on a VM with `threads` workers and a parallel
    /// threshold of 1, so even tiny test fixtures exercise the sharded
    /// execution paths. `threads` comes from the `BH_VM_TEST_THREADS` env
    /// knob in the equivalence suite (CI runs the matrix {1, 4}).
    ///
    /// # Errors
    ///
    /// Propagates VM validation/execution failures.
    pub fn run_synced_threads(
        program: &Program,
        seed: u64,
        engine: Engine,
        threads: usize,
    ) -> Result<BTreeMap<String, Tensor>, VmError> {
        let mut vm = Vm::with_engine(engine);
        if threads > 1 {
            vm.set_threads(threads).set_par_threshold(1);
        }
        for (i, base) in program.bases().iter().enumerate() {
            if base.is_input {
                let t = input_tensor(program, i, seed);
                vm.bind_by_name(program, &base.name, &t)?;
            }
        }
        vm.run(program)?;
        let mut out = BTreeMap::new();
        for instr in program.instrs() {
            if instr.op == Opcode::Sync {
                if let Some(v) = instr.operands.first().and_then(|o| o.as_view()) {
                    let name = program.base(v.reg).name.clone();
                    out.entry(name).or_insert(vm.read(program, v.reg)?);
                }
            }
        }
        Ok(out)
    }

    /// Maximum absolute difference between the *float-valued* synced
    /// outputs of two programs under the same seeded inputs.
    /// `f64::INFINITY` when the synced register sets disagree, or when an
    /// integer/bool output differs at all — discrete dtypes have no
    /// rounding to forgive, so any mismatch is a divergence regardless of
    /// the caller's tolerance.
    ///
    /// # Panics
    ///
    /// Panics if either program fails to execute (the tests' job is
    /// exactly to catch that).
    pub fn max_divergence(a: &Program, b: &Program, seed: u64) -> f64 {
        let ra = run_synced(a, seed, Engine::Naive).expect("reference program must run");
        let rb = run_synced(b, seed, Engine::Naive).expect("transformed program must run");
        if ra.len() != rb.len() {
            return f64::INFINITY;
        }
        let mut worst: f64 = 0.0;
        for (name, ta) in &ra {
            match rb.get(name) {
                None => return f64::INFINITY,
                Some(tb) if ta.dtype().is_float() && tb.dtype().is_float() => {
                    worst = worst.max(ta.max_abs_diff(tb));
                }
                // Integer/bool outputs (or a float/non-float dtype skew)
                // must match bit-exactly.
                Some(tb) if ta != tb => return f64::INFINITY,
                Some(_) => {}
            }
        }
        worst
    }

    /// Assert two programs are semantically equivalent on seeded inputs.
    /// `tol` forgives rounding on **float** outputs only (use a small
    /// epsilon for programs transformed under fast-math); integer and
    /// bool outputs are always compared bit-exactly, whatever `tol` says.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic when outputs diverge beyond `tol`.
    pub fn assert_equivalent(before: &Program, after: &Program, seed: u64, tol: f64) {
        let d = max_divergence(before, after, seed);
        assert!(
            d <= tol,
            "programs diverge by {d} (tol {tol})\n--- before ---\n{before}\n--- after ---\n{after}"
        );
    }

    /// VM worker-thread count under test: the `BH_VM_TEST_THREADS` env
    /// knob (CI runs the {1, 4} matrix), defaulting to 1.
    pub fn test_threads() -> usize {
        std::env::var("BH_VM_TEST_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::testing::*;
    use bh_ir::parse_program;
    use bh_vm::Engine;

    #[test]
    fn run_synced_collects_only_synced_regs() {
        let p =
            parse_program("BH_IDENTITY a [0:4:1] 1\nBH_IDENTITY b [0:4:1] 2\nBH_SYNC a\n").unwrap();
        let out = run_synced(&p, 1, Engine::Naive).unwrap();
        assert!(out.contains_key("a"));
        assert!(!out.contains_key("b"));
    }

    #[test]
    fn equivalent_listings_pass() {
        let unopt = parse_program(
            "BH_IDENTITY a0 [0:10:1] 0\n\
             BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_SYNC a0\n",
        )
        .unwrap();
        let opt = parse_program("BH_IDENTITY a0 [0:10:1] 0\nBH_ADD a0 a0 3\nBH_SYNC a0\n").unwrap();
        assert_equivalent(&unopt, &opt, 7, 0.0);
    }

    #[test]
    fn divergent_programs_detected() {
        let a = parse_program("BH_IDENTITY a0 [0:4:1] 1\nBH_SYNC a0\n").unwrap();
        let b = parse_program("BH_IDENTITY a0 [0:4:1] 2\nBH_SYNC a0\n").unwrap();
        assert_eq!(max_divergence(&a, &b, 0), 1.0);
    }

    #[test]
    fn integer_outputs_ignore_the_float_tolerance() {
        // A 1-off integer result is a real divergence; no float epsilon
        // may forgive it.
        let a = parse_program(".base n i32[4]\nBH_IDENTITY n 1\nBH_SYNC n\n").unwrap();
        let b = parse_program(".base n i32[4]\nBH_IDENTITY n 2\nBH_SYNC n\n").unwrap();
        assert_eq!(max_divergence(&a, &b, 0), f64::INFINITY);
        // Equal integer outputs still pass at tol 0.
        assert_equivalent(&a, &a, 0, 0.0);
    }

    #[test]
    fn inputs_are_deterministic_per_seed() {
        let p = parse_program(".base x f64[8] input\nBH_SYNC x\n").unwrap();
        let a = run_synced(&p, 3, Engine::Naive).unwrap();
        let b = run_synced(&p, 3, Engine::Naive).unwrap();
        assert_eq!(a["x"], b["x"]);
        let c = run_synced(&p, 4, Engine::Naive).unwrap();
        assert_ne!(a["x"], c["x"]);
    }
}
