//! E3/E4 (DESIGN.md §5): power schedules for x¹⁰ — the `BH_POWER`
//! intrinsic vs Listing 4 (nine multiplies) vs the paper's Listing 5
//! (five) vs the optimal constrained chain (four).

use bh_bench::{power_chain, power_intrinsic};
use bh_opt::chains;
use bh_vm::Vm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_power_schedules(c: &mut Criterion) {
    let n = 1_000_000;
    let mut group = c.benchmark_group("e3_e4_power_x10");
    group.throughput(Throughput::Elements(n as u64));

    let programs = [
        ("bh_power_intrinsic", power_intrinsic(n, 10)),
        (
            "listing4_naive_9mul",
            power_chain(n, &chains::naive_chain(10).expect("n >= 2")),
        ),
        (
            "listing5_paper_5mul",
            power_chain(n, &chains::listing5_chain()),
        ),
        (
            "optimal_4mul",
            power_chain(n, &chains::optimal_chain(10).expect("n >= 2")),
        ),
    ];
    for (label, program) in &programs {
        group.bench_with_input(BenchmarkId::from_parameter(label), program, |b, p| {
            b.iter(|| {
                let mut vm = Vm::new();
                vm.run_unchecked(p).expect("valid program");
                vm.stats().flops
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_power_schedules);
criterion_main!(benches);
