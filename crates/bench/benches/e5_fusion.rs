//! E7 (DESIGN.md §5): loop-fusion-like contraction of element-wise
//! byte-code runs.
//!
//! Naive engine (one full-array pass per byte-code) vs fusing engine
//! (one blocked pass per run). Expected shape: fusion's advantage grows
//! with chain length k, because intermediates stay cache-resident.

use bh_bench::elementwise_chain;
use bh_vm::{Engine, Vm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_fusion(c: &mut Criterion) {
    let n = 4_000_000;
    let mut group = c.benchmark_group("e7_fusion");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(15);
    for k in [2usize, 4, 8, 16] {
        let program = elementwise_chain(n, k);
        group.bench_with_input(BenchmarkId::new("naive", k), &program, |b, p| {
            b.iter(|| {
                let mut vm = Vm::with_engine(Engine::Naive);
                vm.run_unchecked(p).expect("valid program");
            })
        });
        group.bench_with_input(BenchmarkId::new("fused", k), &program, |b, p| {
            b.iter(|| {
                let mut vm = Vm::with_engine(Engine::Fusing { block: 65536 });
                vm.run_unchecked(p).expect("valid program");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
