//! E6 (DESIGN.md §5): Eq. 2 — solving Ax=B via explicit inverse vs LU.
//!
//! Two layers: the raw substrate comparison (`bh-linalg`) and the
//! byte-code pattern before/after the context-aware rewrite. Expected
//! shape: LU wins at every size, approaching the ~3× flop ratio for a
//! single right-hand side.

use bh_bench::{inverse_matmul, well_conditioned};
use bh_linalg::{solve_lu, solve_via_inverse};
use bh_opt::optimize;
use bh_tensor::{random_tensor, DType, Distribution, Shape};
use bh_vm::Vm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_solve_substrate");
    group.sample_size(20);
    for m in [32usize, 64, 128] {
        let a = well_conditioned(m, 7);
        let b = random_tensor(DType::Float64, Shape::vector(m), 8, Distribution::Uniform);
        group.bench_with_input(BenchmarkId::new("via_inverse", m), &m, |bench, _| {
            bench.iter(|| solve_via_inverse(&a, &b).expect("well-conditioned"))
        });
        group.bench_with_input(BenchmarkId::new("via_lu", m), &m, |bench, _| {
            bench.iter(|| solve_lu(&a, &b).expect("well-conditioned"))
        });
    }
    group.finish();
}

fn bench_bytecode_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_solve_bytecode");
    group.sample_size(20);
    for m in [32usize, 64, 128] {
        let unopt = inverse_matmul(m);
        let mut opt = unopt.clone();
        optimize(&mut opt);
        let a = well_conditioned(m, 7);
        let b = random_tensor(DType::Float64, Shape::vector(m), 8, Distribution::Uniform);
        for (label, program) in [("inverse_matmul", &unopt), ("rewritten_solve", &opt)] {
            group.bench_with_input(BenchmarkId::new(label, m), program, |bench, p| {
                bench.iter(|| {
                    let mut vm = Vm::new();
                    vm.bind_by_name(p, "a", &a).expect("binds");
                    vm.bind_by_name(p, "b", &b).expect("binds");
                    vm.run_unchecked(p).expect("valid program");
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_substrate, bench_bytecode_rewrite);
criterion_main!(benches);
