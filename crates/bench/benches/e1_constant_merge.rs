//! E2 (DESIGN.md §5): constant merging, Listing 2 → Listing 3.
//!
//! Measures unoptimised vs O1-optimised execution of k-add chains. The
//! expected shape: optimised time is roughly independent of k (one add
//! survives), unoptimised grows linearly with k.

use bh_bench::add_chain;
use bh_opt::{optimize_at, OptLevel};
use bh_vm::Vm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_constant_merge(c: &mut Criterion) {
    let n = 1_000_000;
    let mut group = c.benchmark_group("e2_constant_merge");
    group.throughput(Throughput::Elements(n as u64));
    for k in [3usize, 8, 32] {
        let unopt = add_chain(n, k);
        let mut opt = unopt.clone();
        optimize_at(&mut opt, OptLevel::O1);
        group.bench_with_input(BenchmarkId::new("unoptimised", k), &unopt, |b, p| {
            b.iter(|| {
                let mut vm = Vm::new();
                vm.run_unchecked(p).expect("valid program");
                vm.stats().kernels
            })
        });
        group.bench_with_input(BenchmarkId::new("optimised-O1", k), &opt, |b, p| {
            b.iter(|| {
                let mut vm = Vm::new();
                vm.run_unchecked(p).expect("valid program");
                vm.stats().kernels
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_constant_merge);
criterion_main!(benches);
