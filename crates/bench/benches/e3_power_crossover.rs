//! E5 (DESIGN.md §5): the §4 claim — "for values close to a power of 2,
//! multiplying multiple times is faster than doing an actual BH_POWER".
//!
//! Sweeps the exponent and measures intrinsic vs optimal expanded chain.
//! Expected shape: the chain wins everywhere at these exponent sizes, with
//! the largest margins at exact powers of two (pure squaring schedules).

use bh_bench::{power_chain, power_intrinsic};
use bh_opt::chains;
use bh_vm::Vm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_crossover(c: &mut Criterion) {
    let n = 1_000_000;
    let mut group = c.benchmark_group("e5_power_crossover");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    for exponent in [2u64, 3, 4, 7, 8, 9, 15, 16, 17, 31, 32] {
        let intrinsic = power_intrinsic(n, exponent);
        let chain = power_chain(n, &chains::optimal_chain(exponent).expect("n >= 2"));
        group.bench_with_input(
            BenchmarkId::new("bh_power", exponent),
            &intrinsic,
            |b, p| {
                b.iter(|| {
                    let mut vm = Vm::new();
                    vm.run_unchecked(p).expect("valid program");
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("chain", exponent), &chain, |b, p| {
            b.iter(|| {
                let mut vm = Vm::new();
                vm.run_unchecked(p).expect("valid program");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
