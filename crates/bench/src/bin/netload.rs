//! `bh-netload` — closed-loop load generator for the TCP front door.
//!
//! Spins a full in-process stack (runtime → batching server → TCP
//! listener on loopback), then drives it with concurrent protocol
//! clients the way a fleet of remote callers would: each connection
//! binds its tenant, pipelines a burst of container-framed submissions,
//! and reads its responses back, asserting exactly-once delivery and
//! correct values end to end. Writes `BENCH_net.json` with the
//! client-observed throughput and latency percentiles.
//!
//! Run directly (`cargo run -p bh-bench --bin bh-netload`) or as the CI
//! netload smoke step.

use bh_net::{NetClient, NetEvent, NetServer};
use bh_runtime::Runtime;
use bh_serve::Server;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CONNECTIONS: usize = 8;
const REQUESTS_PER_CONN: usize = 100;
const PIPELINE_DEPTH: usize = 8;
const WORKERS: usize = 2;
const CHAIN: usize = 24;

/// One program per tenant (distinct digests, comparable work), same
/// shape as the serve_load churn generator.
fn tenant_program(tenant: usize) -> bh_ir::Program {
    let n = 48 + tenant;
    let mut text = format!("BH_IDENTITY a [0:{n}:1] 0\n");
    for _ in 0..CHAIN {
        text.push_str("BH_ADD a a 1\n");
    }
    text.push_str("BH_SYNC a\n");
    bh_ir::parse_program(&text).expect("generated program parses")
}

struct ClientRun {
    latencies: Vec<Duration>,
    results: usize,
}

/// One connection's closed-loop run: keep `PIPELINE_DEPTH` submissions
/// in flight, reading an event per submission slot freed.
fn run_client(addr: std::net::SocketAddr, tenant: usize) -> ClientRun {
    let program = tenant_program(tenant);
    let reg = program.reg_by_name("a").expect("result register");
    let expect = CHAIN as f64;
    let mut client =
        NetClient::connect(addr, &format!("tenant-{tenant}")).expect("connect loopback");
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("socket option");

    let mut in_flight: Vec<(u64, Instant)> = Vec::with_capacity(PIPELINE_DEPTH);
    let mut latencies = Vec::with_capacity(REQUESTS_PER_CONN);
    let mut results = 0usize;
    let mut submitted = 0usize;
    while submitted < REQUESTS_PER_CONN || !in_flight.is_empty() {
        while submitted < REQUESTS_PER_CONN && in_flight.len() < PIPELINE_DEPTH {
            let id = client
                .submit(&program, Some(reg), None)
                .expect("submit over loopback");
            in_flight.push((id, Instant::now()));
            submitted += 1;
        }
        let event = client.read_event().expect("response frame");
        let idx = in_flight
            .iter()
            .position(|(id, _)| *id == event.request_id())
            .expect("every event answers exactly one in-flight submission");
        let (_, begun) = in_flight.swap_remove(idx);
        match event {
            NetEvent::Result(r) => {
                assert_eq!(
                    r.value.as_ref().and_then(|v| v.first()).copied(),
                    Some(expect),
                    "remote eval must match the local semantics"
                );
                latencies.push(begun.elapsed());
                results += 1;
            }
            NetEvent::Rejected(r) => {
                panic!("unexpected rejection {} ({})", r.code, r.detail)
            }
        }
    }
    ClientRun { latencies, results }
}

fn main() {
    let server = Arc::new(
        Server::builder(Runtime::builder().build_shared())
            .workers(WORKERS)
            .queue_capacity(CONNECTIONS * PIPELINE_DEPTH * 2)
            .build(),
    );
    let door = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind loopback");
    let addr = door.local_addr();
    eprintln!(
        "bh-netload: {CONNECTIONS} connections x {REQUESTS_PER_CONN} requests \
         (pipeline {PIPELINE_DEPTH}) against {addr}"
    );

    let start = Instant::now();
    let clients: Vec<_> = (0..CONNECTIONS)
        .map(|tenant| std::thread::spawn(move || run_client(addr, tenant)))
        .collect();
    let runs: Vec<ClientRun> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    let elapsed = start.elapsed();

    door.close();
    server.shutdown();

    let total: usize = runs.iter().map(|r| r.results).sum();
    assert_eq!(
        total,
        CONNECTIONS * REQUESTS_PER_CONN,
        "every submission must resolve exactly once with a result"
    );
    let net = door.stats();
    assert_eq!(net.connections, CONNECTIONS as u64);
    assert_eq!(net.results_sent, total as u64);
    assert_eq!(net.errors_sent, 0, "clean run sends no error frames");
    let stats = server.stats();
    assert_eq!(stats.completed, total as u64);

    let mut latencies: Vec<Duration> = runs.into_iter().flat_map(|r| r.latencies).collect();
    latencies.sort();
    let pick =
        |q: f64| latencies[((q * (latencies.len() - 1) as f64) as usize).min(latencies.len() - 1)];
    let rps = total as f64 / elapsed.as_secs_f64();
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    eprintln!(
        "bh-netload: {total} requests in {:.2}s — {rps:.0} req/s over TCP, \
         p50 {:.0}us p95 {:.0}us p99 {:.0}us, mean batch {:.2}",
        elapsed.as_secs_f64(),
        us(pick(0.50)),
        us(pick(0.95)),
        us(pick(0.99)),
        stats.mean_batch_size(),
    );

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"config\": {{\n    \"connections\": {CONNECTIONS},\n    \
         \"requests_per_connection\": {REQUESTS_PER_CONN},\n    \
         \"pipeline_depth\": {PIPELINE_DEPTH},\n    \"workers\": {WORKERS}\n  }},\n  \
         \"requests\": {total},\n  \"rps\": {rps:.1},\n  \
         \"p50_us\": {:.1},\n  \"p95_us\": {:.1},\n  \"p99_us\": {:.1},\n  \
         \"mean_batch\": {:.2},\n  \"frames\": {{ \"received\": {}, \"results\": {}, \
         \"errors\": {} }}\n}}\n",
        us(pick(0.50)),
        us(pick(0.95)),
        us(pick(0.99)),
        stats.mean_batch_size(),
        net.frames_received,
        net.results_sent,
        net.errors_sent,
    );
    std::fs::write("BENCH_net.json", &out).expect("write BENCH_net.json");
    eprintln!("wrote BENCH_net.json");
}
