//! Closed-loop multi-tenant load generator for `bh-serve`.
//!
//! Drives the same request trace through two configurations and writes
//! `BENCH_serve.json` (throughput + latency percentiles) so the repo has
//! a perf trajectory for the serving layer:
//!
//! * **naive** — the one-eval-per-request loop: every request pays its
//!   own digest computation, plan-cache lookup and VM checkout via
//!   `Runtime::eval`, in the round-robin tenant order an unbatched
//!   server would process them.
//! * **serve** — the batching [`Server`]: per-tenant closed-loop clients
//!   submit bursts; same-digest requests group into micro-batches that
//!   share one plan lookup and one pinned VM.
//!
//! Two workloads are measured. `churn` is the serving regime the
//! scheduler exists for: the tenant-program population (one program per
//! tenant) exceeds the plan-cache capacity, so the naive loop re-runs
//! the optimiser per request while the batcher amortises it per batch.
//! `hot` is the all-cache-hit regime (a single shared program), where
//! batching only amortises per-eval bookkeeping.

use bh_runtime::Runtime;
use bh_serve::{ProgramHandle, Request, Server};
use bh_tensor::Tensor;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANTS: usize = 16;
const ROUNDS: usize = 48; // requests per tenant
const BURST: usize = 16; // in-flight requests per closed-loop client
const CACHE_CAPACITY: usize = 8; // < TENANTS: the churn regime
const MAX_BATCH: usize = 16;
const WORKERS: usize = 2;

/// One tenant's program: `k` adds over its own vector length, so every
/// tenant has a distinct structural digest but comparable work.
fn tenant_program(tenant: usize) -> ProgramHandle {
    let n = 48 + tenant;
    let mut text = format!(".base x f64[{n}] input\n.base a f64[{n}]\nBH_IDENTITY a 0\n");
    for _ in 0..24 {
        text.push_str("BH_ADD a a 1\n");
    }
    text.push_str("BH_ADD a a x\nBH_SYNC a\n");
    ProgramHandle::new(bh_ir::parse_program(&text).expect("generated program parses"))
}

fn runtime() -> Arc<Runtime> {
    Runtime::builder()
        .cache_capacity(CACHE_CAPACITY)
        .build_shared()
}

struct Measured {
    requests: usize,
    elapsed: Duration,
    mean_batch: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
}

impl Measured {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

/// The one-eval-per-request loop over the interleaved tenant trace.
fn run_naive(handles: &[ProgramHandle], rounds: usize) -> Measured {
    let rt = runtime();
    let inputs: Vec<Tensor> = handles
        .iter()
        .map(|h| {
            let x = h.program().reg_by_name("x").expect("input register");
            Tensor::from_vec(vec![1.0f64; h.program().base(x).shape.nelem()])
        })
        .collect();
    let mut latencies = Vec::with_capacity(rounds * handles.len());
    let start = Instant::now();
    for _ in 0..rounds {
        for (t, h) in handles.iter().enumerate() {
            let x = h.program().reg_by_name("x").expect("input register");
            let a = h.program().reg_by_name("a").expect("result register");
            let begun = Instant::now();
            let (value, _) = rt
                .eval(h.program(), &[(x, inputs[t].clone())], a)
                .expect("bench program evaluates");
            assert_eq!(value.to_f64_vec()[0], 25.0);
            latencies.push(begun.elapsed());
        }
    }
    let elapsed = start.elapsed();
    latencies.sort();
    let pick =
        |q: f64| latencies[((q * (latencies.len() - 1) as f64) as usize).min(latencies.len() - 1)];
    Measured {
        requests: latencies.len(),
        elapsed,
        mean_batch: 1.0,
        p50: pick(0.50),
        p95: pick(0.95),
        p99: pick(0.99),
    }
}

/// The same trace through the batching server: one closed-loop client
/// thread per tenant, submitting `BURST` tickets then waiting for them.
fn run_serve(handles: &[ProgramHandle], rounds: usize) -> Measured {
    let server = Arc::new(
        Server::builder(runtime())
            .workers(WORKERS)
            .queue_capacity(TENANTS * BURST * 2)
            .max_batch(MAX_BATCH)
            .build(),
    );
    let start = Instant::now();
    let clients: Vec<_> = handles
        .iter()
        .enumerate()
        .map(|(t, h)| {
            let server = Arc::clone(&server);
            let h = h.clone();
            std::thread::spawn(move || {
                let x = h.program().reg_by_name("x").expect("input register");
                let a = h.program().reg_by_name("a").expect("result register");
                let n = h.program().base(x).shape.nelem();
                let input = Tensor::from_vec(vec![1.0f64; n]);
                let tenant = format!("tenant-{t}");
                let mut remaining = rounds;
                while remaining > 0 {
                    let burst = remaining.min(BURST);
                    let tickets: Vec<_> = (0..burst)
                        .map(|_| {
                            server
                                .submit(
                                    Request::with_handle(&*tenant, &h)
                                        .bind(x, input.clone())
                                        .read(a),
                                )
                                .expect("queue sized for every in-flight request")
                        })
                        .collect();
                    for ticket in tickets {
                        let r = ticket.wait().expect("bench program evaluates");
                        assert_eq!(r.value.expect("read requested").to_f64_vec()[0], 25.0);
                    }
                    remaining -= burst;
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    let stats = server.stats();
    server.shutdown();
    Measured {
        requests: (rounds * handles.len()),
        elapsed,
        mean_batch: stats.mean_batch_size(),
        p50: stats.latency.p50(),
        p95: stats.latency.p95(),
        p99: stats.latency.p99(),
    }
}

fn json_section(out: &mut String, name: &str, naive: &Measured, serve: &Measured) {
    let speedup = serve.rps() / naive.rps();
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let _ = write!(
        out,
        "  \"{name}\": {{\n    \"requests\": {},\n    \"naive_rps\": {:.1},\n    \
         \"serve_rps\": {:.1},\n    \"speedup\": {:.2},\n    \"mean_batch\": {:.2},\n    \
         \"naive_p50_us\": {:.1},\n    \"serve_p50_us\": {:.1},\n    \
         \"serve_p95_us\": {:.1},\n    \"serve_p99_us\": {:.1}\n  }}",
        serve.requests,
        naive.rps(),
        serve.rps(),
        speedup,
        serve.mean_batch,
        us(naive.p50),
        us(serve.p50),
        us(serve.p95),
        us(serve.p99),
    );
}

fn main() {
    // Distinct program per tenant (churn: population > cache capacity).
    let churn_handles: Vec<ProgramHandle> = (0..TENANTS).map(tenant_program).collect();
    // One shared program for every tenant (hot: pure cache hits).
    let hot_handles: Vec<ProgramHandle> = (0..TENANTS).map(|_| tenant_program(0)).collect();

    eprintln!(
        "serve_load: {TENANTS} tenants x {ROUNDS} requests, burst {BURST}, \
         max_batch {MAX_BATCH}, plan cache {CACHE_CAPACITY}"
    );

    // Warm-up pass so one-time costs (thread spawn paths, allocator)
    // don't skew whichever side runs first.
    run_naive(&churn_handles[..2], 4);
    run_serve(&churn_handles[..2], 4);

    let churn_naive = run_naive(&churn_handles, ROUNDS);
    let churn_serve = run_serve(&churn_handles, ROUNDS);
    let hot_naive = run_naive(&hot_handles, ROUNDS);
    let hot_serve = run_serve(&hot_handles, ROUNDS);

    let churn_speedup = churn_serve.rps() / churn_naive.rps();
    let hot_speedup = hot_serve.rps() / hot_naive.rps();
    eprintln!(
        "churn: naive {:.0} req/s vs serve {:.0} req/s ({:.2}x, mean batch {:.1})",
        churn_naive.rps(),
        churn_serve.rps(),
        churn_speedup,
        churn_serve.mean_batch,
    );
    eprintln!(
        "hot:   naive {:.0} req/s vs serve {:.0} req/s ({:.2}x, mean batch {:.1})",
        hot_naive.rps(),
        hot_serve.rps(),
        hot_speedup,
        hot_serve.mean_batch,
    );

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"config\": {{\n    \"tenants\": {TENANTS},\n    \"rounds\": {ROUNDS},\n    \
         \"burst\": {BURST},\n    \"max_batch\": {MAX_BATCH},\n    \
         \"workers\": {WORKERS},\n    \"plan_cache_capacity\": {CACHE_CAPACITY}\n  }},\n"
    );
    json_section(&mut out, "churn", &churn_naive, &churn_serve);
    out.push_str(",\n");
    json_section(&mut out, "hot", &hot_naive, &hot_serve);
    out.push_str("\n}\n");
    std::fs::write("BENCH_serve.json", &out).expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");

    assert!(
        churn_speedup >= 2.0,
        "digest batching must be >= 2x the naive loop on the repeated-program \
         (churn) workload, measured {churn_speedup:.2}x"
    );
}
