//! Closed-loop multi-tenant load generator for `bh-serve`.
//!
//! Drives the same request trace through several configurations and
//! writes `BENCH_serve.json` (throughput + latency percentiles) so the
//! repo has a perf trajectory for the serving layer:
//!
//! * **naive** — the one-eval-per-request loop: every request pays its
//!   own digest computation, plan-cache lookup and VM checkout via
//!   `Runtime::eval`, in the round-robin tenant order an unbatched
//!   server would process them.
//! * **serve** — the batching [`Server`] with the default fixed batch
//!   limit: per-tenant closed-loop clients submit bursts; same-digest
//!   requests group into micro-batches that share one plan lookup and
//!   one pinned VM.
//! * **fixed sweep vs adaptive** — the churn workload re-run at several
//!   hand-tuned fixed `max_batch` values and once under the adaptive
//!   policy (`adaptive_batch`), which must discover a batch limit that
//!   matches the best hand-tuned value without being told it.
//! * **warm_start** — restart cost with and without a persisted plan
//!   snapshot (`RuntimeBuilder::persist_path`): a warm restart must
//!   serve compile-dominated hot traffic with zero re-optimisation and
//!   beat the cold restart by >= 2x.
//!
//! Two workloads are measured. `churn` is the serving regime the
//! scheduler exists for: the tenant-program population (one program per
//! tenant) exceeds the plan-cache capacity, so the naive loop re-runs
//! the optimiser per request while the batcher amortises it per batch.
//! `hot` is the all-cache-hit regime (a single shared program), where
//! batching only amortises per-eval bookkeeping.

use bh_opt::{OptLevel, OptOptions};
use bh_runtime::Runtime;
use bh_serve::{ProgramHandle, Request, Server};
use bh_tensor::Tensor;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANTS: usize = 16;
const ROUNDS: usize = 48; // requests per tenant
const BURST: usize = 16; // in-flight requests per closed-loop client
const CACHE_CAPACITY: usize = 8; // < TENANTS: the churn regime
const MAX_BATCH: usize = 16;
const WORKERS: usize = 2;

/// Fixed batch limits hand-swept on the churn workload; the adaptive
/// policy competes against the best of these.
const FIXED_SWEEP: [usize; 4] = [4, 16, 64, 256];

/// Requests per tenant in the sweep/adaptive comparison: long enough
/// that the adaptive controller's ramp-up (slow start from `min_batch`,
/// ~8 decision windows per worker to reach the ceiling) amortises into
/// steady state, the regime batch policies are judged in — every
/// contender runs the same trace length.
const SWEEP_ROUNDS: usize = 8 * ROUNDS;

/// Adaptive configuration: the ceiling matches the top of the sweep, and
/// the SLO is set to the loose tail budget a latency-tolerant batch
/// service would run with — the controller is free to grow as long as
/// p95 turnaround stays under it.
const ADAPTIVE_CEILING: usize = 256;
const ADAPTIVE_SLO: Duration = Duration::from_millis(25);

/// One tenant's program: `k` adds over its own vector length, so every
/// tenant has a distinct structural digest but comparable work.
fn tenant_program(tenant: usize) -> ProgramHandle {
    let n = 48 + tenant;
    let mut text = format!(".base x f64[{n}] input\n.base a f64[{n}]\nBH_IDENTITY a 0\n");
    for _ in 0..24 {
        text.push_str("BH_ADD a a 1\n");
    }
    text.push_str("BH_ADD a a x\nBH_SYNC a\n");
    ProgramHandle::new(bh_ir::parse_program(&text).expect("generated program parses"))
}

fn runtime() -> Arc<Runtime> {
    Runtime::builder()
        .cache_capacity(CACHE_CAPACITY)
        .build_shared()
}

/// Which batch policy a serve run uses.
#[derive(Clone, Copy)]
enum BatchMode {
    Fixed(usize),
    Adaptive,
}

#[derive(Default)]
struct AdaptSummary {
    grows: u64,
    shrinks: u64,
    last_limit: Option<usize>,
}

struct Measured {
    requests: usize,
    elapsed: Duration,
    mean_batch: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    adapt: Option<AdaptSummary>,
}

impl Measured {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

/// The one-eval-per-request loop over the interleaved tenant trace.
fn run_naive(handles: &[ProgramHandle], rounds: usize) -> Measured {
    let rt = runtime();
    let inputs: Vec<Tensor> = handles
        .iter()
        .map(|h| {
            let x = h.program().reg_by_name("x").expect("input register");
            Tensor::from_vec(vec![1.0f64; h.program().base(x).shape.nelem()])
        })
        .collect();
    let mut latencies = Vec::with_capacity(rounds * handles.len());
    let start = Instant::now();
    for _ in 0..rounds {
        for (t, h) in handles.iter().enumerate() {
            let x = h.program().reg_by_name("x").expect("input register");
            let a = h.program().reg_by_name("a").expect("result register");
            let begun = Instant::now();
            let (value, _) = rt
                .eval(h.program(), &[(x, inputs[t].clone())], a)
                .expect("bench program evaluates");
            assert_eq!(value.to_f64_vec()[0], 25.0);
            latencies.push(begun.elapsed());
        }
    }
    let elapsed = start.elapsed();
    latencies.sort();
    let pick =
        |q: f64| latencies[((q * (latencies.len() - 1) as f64) as usize).min(latencies.len() - 1)];
    Measured {
        requests: latencies.len(),
        elapsed,
        mean_batch: 1.0,
        p50: pick(0.50),
        p95: pick(0.95),
        p99: pick(0.99),
        adapt: None,
    }
}

/// The same trace through the batching server: one closed-loop client
/// thread per tenant, submitting `BURST` tickets then waiting for them.
fn run_serve(handles: &[ProgramHandle], rounds: usize, mode: BatchMode) -> Measured {
    let builder = Server::builder(runtime())
        .workers(WORKERS)
        .queue_capacity(TENANTS * BURST * 2);
    let builder = match mode {
        BatchMode::Fixed(max_batch) => builder.max_batch(max_batch),
        BatchMode::Adaptive => builder
            .max_batch(ADAPTIVE_CEILING)
            .adaptive_batch(ADAPTIVE_SLO),
    };
    let server = Arc::new(builder.build());
    let start = Instant::now();
    let clients: Vec<_> = handles
        .iter()
        .enumerate()
        .map(|(t, h)| {
            let server = Arc::clone(&server);
            let h = h.clone();
            std::thread::spawn(move || {
                let x = h.program().reg_by_name("x").expect("input register");
                let a = h.program().reg_by_name("a").expect("result register");
                let n = h.program().base(x).shape.nelem();
                let input = Tensor::from_vec(vec![1.0f64; n]);
                let tenant = format!("tenant-{t}");
                let mut remaining = rounds;
                while remaining > 0 {
                    let burst = remaining.min(BURST);
                    let tickets = server.submit_many((0..burst).map(|_| {
                        Request::with_handle(&*tenant, &h)
                            .bind(x, input.clone())
                            .read(a)
                    }));
                    for ticket in tickets {
                        let r = ticket
                            .expect("queue sized for every in-flight request")
                            .wait()
                            .expect("bench program evaluates");
                        assert_eq!(r.value.expect("read requested").to_f64_vec()[0], 25.0);
                    }
                    remaining -= burst;
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    // Snapshot after shutdown: the drain has joined the workers, so the
    // final batch's stats (and the last limit decisions) are all in.
    server.shutdown();
    let stats = server.stats();
    let adapt = match mode {
        BatchMode::Fixed(_) => None,
        BatchMode::Adaptive => Some(AdaptSummary {
            grows: stats.batch_limits.grows(),
            shrinks: stats.batch_limits.shrinks(),
            last_limit: stats.batch_limits.last_limit(),
        }),
    };
    Measured {
        requests: (rounds * handles.len()),
        elapsed,
        mean_batch: stats.mean_batch_size(),
        p50: stats.latency.p50(),
        p95: stats.latency.p95(),
        p99: stats.latency.p99(),
        adapt,
    }
}

/// What the admission-time verifier costs and what it buys (DESIGN.md
/// §12). One side measures the full abstract-interpretation pass
/// (`bh_ir::verify`) per call — the price a verify-per-eval design would
/// pay on every request. The other drives the checked-once hot path:
/// after one cache miss the plan cache holds a `Verified` witness, so
/// repeated evals of the same digest run zero verification passes
/// ([`bh_runtime::RuntimeStats::verifications`] stays at 1 while `evals`
/// climbs — asserted here, not just claimed).
struct VerifyAmortisation {
    verify_each: Duration,
    eval_each: Duration,
    evals: usize,
    verifications: u64,
}

impl VerifyAmortisation {
    /// Verify cost as a fraction of a cache-hit eval: the per-request
    /// overhead a verify-per-eval design would add to the hot path.
    fn unamortised_overhead(&self) -> f64 {
        self.verify_each.as_secs_f64() / self.eval_each.as_secs_f64()
    }
}

fn run_verify_amortisation() -> VerifyAmortisation {
    const EVALS: usize = 2048;
    let handle = tenant_program(0);
    let program = handle.program();

    // Per-call cost of the full verification pass on the bench program.
    let start = Instant::now();
    for _ in 0..EVALS {
        std::hint::black_box(bh_ir::verify(std::hint::black_box(program)))
            .expect("bench program verifies");
    }
    let verify_each = start.elapsed() / EVALS as u32;

    // The checked-once hot path: warm the plan cache (the one and only
    // verification), then time cache-hit evals that never re-verify.
    let rt = runtime();
    let x = program.reg_by_name("x").expect("input register");
    let a = program.reg_by_name("a").expect("result register");
    let input = Tensor::from_vec(vec![1.0f64; program.base(x).shape.nelem()]);
    rt.eval(program, &[(x, input.clone())], a)
        .expect("warm-up eval");
    let start = Instant::now();
    for _ in 0..EVALS {
        let (value, _) = rt
            .eval(program, &[(x, input.clone())], a)
            .expect("bench program evaluates");
        std::hint::black_box(value);
    }
    let eval_each = start.elapsed() / EVALS as u32;

    let stats = rt.stats();
    assert_eq!(
        stats.verifications, 1,
        "the hot path must verify once per digest, not per eval"
    );
    assert_eq!(stats.evals, EVALS as u64 + 1);
    VerifyAmortisation {
        verify_each,
        eval_each,
        evals: EVALS,
        verifications: stats.verifications,
    }
}

/// What the whole-plan translation-validation audit costs
/// ([`bh_runtime::RuntimeBuilder::audit`], DESIGN.md §15). One side
/// times the cache-miss `prepare` compile with the audit off, the other
/// with it on — the audit runs exactly once per compile, so the miss
/// path is the *only* place it can cost anything. The cached-eval hot
/// path is asserted free by counter, not by stopwatch:
/// `RuntimeStats::audits` stays at the miss count while `evals` climbs.
struct AuditOverhead {
    prepare_off_us: f64,
    prepare_on_us: f64,
    hot_evals: usize,
    hot_audits: u64,
}

impl AuditOverhead {
    /// Fractional compile-time slowdown the audit adds per cache miss.
    fn overhead(&self) -> f64 {
        self.prepare_on_us / self.prepare_off_us - 1.0
    }
}

fn run_audit_overhead() -> AuditOverhead {
    const PROGRAMS: usize = 64;
    const REPS: usize = 5;
    const CHAIN: usize = 96;
    // Long chains over small vectors (disjoint lengths from every other
    // workload here): the O2 fixpoint dominates `prepare`, the regime
    // where a whole-plan audit pass has the most to add.
    let programs: Vec<ProgramHandle> = (0..PROGRAMS)
        .map(|i| mix_program(4096 + i, CHAIN))
        .collect();
    let measure = |audit: bool| -> f64 {
        let mut best: Option<f64> = None;
        for _ in 0..REPS {
            let rt = Runtime::builder().threads(1).audit(audit).build();
            let start = Instant::now();
            for h in &programs {
                std::hint::black_box(rt.prepare(h.program()).expect("bench program prepares"));
            }
            let each = start.elapsed().as_secs_f64() * 1e6 / PROGRAMS as f64;
            if best.is_none_or(|b| each < b) {
                best = Some(each);
            }
        }
        best.expect("reps measured")
    };
    let prepare_off_us = measure(false);
    let prepare_on_us = measure(true);

    // The hot path: one miss (one audit), then cached evals that must
    // never re-prove the plan.
    const EVALS: usize = 2048;
    let handle = tenant_program(0);
    let program = handle.program();
    let x = program.reg_by_name("x").expect("input register");
    let a = program.reg_by_name("a").expect("result register");
    let input = Tensor::from_vec(vec![1.0f64; program.base(x).shape.nelem()]);
    let rt = Runtime::builder().audit(true).build();
    rt.eval(program, &[(x, input.clone())], a)
        .expect("warm-up eval");
    for _ in 0..EVALS {
        let (value, _) = rt
            .eval(program, &[(x, input.clone())], a)
            .expect("bench program evaluates");
        std::hint::black_box(value);
    }
    let stats = rt.stats();
    assert_eq!(
        stats.audits.total(),
        1,
        "the audit must run once per compile, never per cached eval"
    );
    assert_eq!(stats.audits.failed, 0, "the optimiser's plans must prove");
    assert_eq!(stats.evals, EVALS as u64 + 1);
    AuditOverhead {
        prepare_off_us,
        prepare_on_us,
        hot_evals: EVALS,
        hot_audits: stats.audits.total(),
    }
}

/// What per-digest profiling costs on the hot cached-eval path — the
/// price of leaving it on in production (it defaults to on). Each side
/// is the *best* of several timed repetitions, so allocator or scheduler
/// hiccups on one rep cannot manufacture phantom overhead; the profiled
/// side pays two extra clock reads plus one striped-mutex `record_eval`
/// per eval (DESIGN.md §13).
struct ObserveOverhead {
    off_each: Duration,
    on_each: Duration,
}

impl ObserveOverhead {
    /// Fractional slowdown of the profiled path (negative = in the noise).
    fn overhead(&self) -> f64 {
        self.on_each.as_secs_f64() / self.off_each.as_secs_f64() - 1.0
    }
}

fn run_observe_overhead() -> ObserveOverhead {
    const EVALS: usize = 4096;
    const REPS: usize = 5;
    let handle = tenant_program(0);
    let program = handle.program();
    let x = program.reg_by_name("x").expect("input register");
    let a = program.reg_by_name("a").expect("result register");
    let input = Tensor::from_vec(vec![1.0f64; program.base(x).shape.nelem()]);

    let measure = |profiling: bool| -> Duration {
        let mut best: Option<Duration> = None;
        for _ in 0..REPS {
            let rt = Runtime::builder().profiling(profiling).build();
            rt.eval(program, &[(x, input.clone())], a)
                .expect("warm-up eval");
            let start = Instant::now();
            for _ in 0..EVALS {
                let (value, _) = rt
                    .eval(program, &[(x, input.clone())], a)
                    .expect("bench program evaluates");
                std::hint::black_box(value);
            }
            let each = start.elapsed() / EVALS as u32;
            if best.is_none_or(|b| each < b) {
                best = Some(each);
            }
        }
        best.expect("reps measured")
    };

    ObserveOverhead {
        off_each: measure(false),
        on_each: measure(true),
    }
}

/// The tiered-optimisation regime (DESIGN.md §14): the same mixed
/// hot/churn trace driven through three compilation policies.
const MIX_HOT_PROGRAMS: usize = 4;
const MIX_CHURN_PROGRAMS: usize = 48;
const MIX_STEADY_EVALS: usize = 2000;
const MIX_CHURN_EVERY: usize = 8; // 1-in-8 steady evals hits a fresh digest
const TIERED_PROMOTE_AFTER: u64 = 16;

/// A mix program: `adds`-long constant chain over an `n`-vector.
/// Distinct `n` ⇒ distinct structural digest. Long chain over a *small*
/// vector is the regime tiering targets: the O2 fixpoint over ~100
/// instructions costs hundreds of microseconds while one eval costs a
/// few, so compile policy — not execution — dominates a digest's
/// first-eval latency.
fn mix_program(n: usize, adds: usize) -> ProgramHandle {
    let mut text = format!("BH_IDENTITY a [0:{n}:1] 0\n");
    for _ in 0..adds {
        text.push_str("BH_ADD a a 1\n");
    }
    text.push_str("BH_SYNC a\n");
    ProgramHandle::new(bh_ir::parse_program(&text).expect("generated program parses"))
}

/// Which compilation policy a tiered-mix run measures.
#[derive(Clone, Copy)]
enum MixPolicy {
    /// Every miss pays the full O2 fixpoint up front (the non-tiered
    /// default — today's baseline).
    AlwaysMax,
    /// Every miss compiles tier-0-style (O0, one sweep) and *stays*
    /// there: minimal cold latency, maximal steady-state regret.
    AlwaysCheap,
    /// Tier-0 on miss, full-strength promotion once a digest proves hot.
    Tiered,
}

impl MixPolicy {
    fn name(self) -> &'static str {
        match self {
            MixPolicy::AlwaysMax => "always_max",
            MixPolicy::AlwaysCheap => "always_cheap",
            MixPolicy::Tiered => "tiered",
        }
    }

    fn runtime(self) -> Arc<Runtime> {
        let builder = Runtime::builder().threads(1);
        match self {
            MixPolicy::AlwaysMax => builder.build_shared(),
            MixPolicy::AlwaysCheap => {
                let options = OptOptions {
                    level: OptLevel::O0,
                    max_iterations: 1,
                    ..OptOptions::default()
                };
                builder.options(options).build_shared()
            }
            MixPolicy::Tiered => builder
                .tiered(true)
                .promote_after(TIERED_PROMOTE_AFTER)
                .build_shared(),
        }
    }
}

struct MixMeasured {
    cold_first_eval_us: f64,
    hot_rps: f64,
    steady_rps: f64,
    tier0_builds: u64,
    promotions: u64,
}

/// One policy through the mixed trace: cold first-evals over churn
/// digests, a warm-up that takes the hot set past the promotion
/// threshold, then timed hot-only and mixed steady-state phases.
fn run_tiered_mix(policy: MixPolicy) -> MixMeasured {
    const CHAIN: usize = 96;
    let rt = policy.runtime();
    let eval = |h: &ProgramHandle| {
        let a = h.program().reg_by_name("a").expect("result register");
        let (value, _) = rt.eval(h.program(), &[], a).expect("mix program evaluates");
        assert_eq!(value.to_f64_vec()[0], CHAIN as f64);
    };

    // Phase 1 — cold first-eval latency: every digest is new, so each
    // eval pays this policy's full compile (fixpoint + verify) inline.
    // Vector-length ranges are disjoint across phases (64–111 churn,
    // 512–515 hot, 1024+ steady churn) so no digest is ever shared.
    let churn: Vec<ProgramHandle> = (0..MIX_CHURN_PROGRAMS)
        .map(|i| mix_program(64 + i, CHAIN))
        .collect();
    let start = Instant::now();
    for h in &churn {
        eval(h);
    }
    let cold_first_eval_us = start.elapsed().as_secs_f64() * 1e6 / MIX_CHURN_PROGRAMS as f64;

    // Phase 2 — warm-up: the hot set earns its hits; on the tiered
    // policy every hot digest crosses `promote_after` and promotes.
    let hot: Vec<ProgramHandle> = (0..MIX_HOT_PROGRAMS)
        .map(|i| mix_program(512 + i, CHAIN))
        .collect();
    for _ in 0..(TIERED_PROMOTE_AFTER as usize + 2) {
        for h in &hot {
            eval(h);
        }
    }

    // Phase 3 — hot-only throughput: pure cache hits on the hot set.
    let start = Instant::now();
    for i in 0..MIX_STEADY_EVALS {
        eval(&hot[i % MIX_HOT_PROGRAMS]);
    }
    let hot_rps = MIX_STEADY_EVALS as f64 / start.elapsed().as_secs_f64();

    // Phase 4 — steady-state mix: mostly hot traffic with a trickle of
    // never-seen digests, the regime a long-lived service actually runs.
    let mut fresh = 0usize;
    let start = Instant::now();
    for i in 0..MIX_STEADY_EVALS {
        if i % MIX_CHURN_EVERY == 0 {
            fresh += 1;
            eval(&mix_program(1024 + fresh, CHAIN));
        } else {
            eval(&hot[i % MIX_HOT_PROGRAMS]);
        }
    }
    let steady_rps = MIX_STEADY_EVALS as f64 / start.elapsed().as_secs_f64();

    let stats = rt.stats();
    MixMeasured {
        cold_first_eval_us,
        hot_rps,
        steady_rps,
        tier0_builds: stats.tiers.tier0_builds,
        promotions: stats.tiers.promotions,
    }
}

/// The plan-persistence regime (DESIGN.md §16): restart cost with and
/// without a warmed transformation cache. A "process" populates its
/// cache over a compile-dominated program population and snapshots it on
/// shutdown ([`bh_runtime::RuntimeBuilder::persist_path`]); the measured
/// sides then replay the same hot traffic through a cold restart (every
/// digest pays the O2 fixpoint again) and a warm restart (plans
/// re-validated from the snapshot at build time, zero re-optimisation).
/// Warm start is only worth shipping if it is *real* — asserted by
/// counters, not vibes: every plan loads ([`warm_loads`] == population,
/// no rejects) and the serving pass never misses the cache.
///
/// [`warm_loads`]: bh_runtime::RuntimeStats::warm_loads
struct WarmStart {
    population: usize,
    cold: Duration,
    warm: Duration,
    warm_loads: u64,
    warm_rejects: u64,
}

impl WarmStart {
    /// Cold-restart time over warm-restart time: how much faster the
    /// snapshot makes a restart under hot traffic.
    fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.warm.as_secs_f64()
    }
}

fn run_warm_start() -> WarmStart {
    const POPULATION: usize = 24;
    const CHAIN: usize = 256;
    const REPS: usize = 3;
    // Compile-dominated population (long chains, small vectors — the
    // same regime as the tiered mix, disjoint length range 2048–2079).
    let programs: Vec<ProgramHandle> = (0..POPULATION)
        .map(|i| mix_program(2048 + i, CHAIN))
        .collect();
    let serve_all = |rt: &Runtime| {
        for h in &programs {
            let a = h.program().reg_by_name("a").expect("result register");
            let (value, _) = rt.eval(h.program(), &[], a).expect("program evaluates");
            assert_eq!(value.to_f64_vec()[0], CHAIN as f64);
        }
    };
    let builder = || Runtime::builder().threads(1).cache_capacity(POPULATION);
    let path = std::env::temp_dir().join(format!("bh-serve-load-warm-{}.bhss", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // The "previous process": earn the plans once, snapshot on shutdown.
    {
        let rt = builder().persist_path(&path).build();
        serve_all(&rt);
        // Drop writes the snapshot.
    }

    // Cold restart: no snapshot, every digest re-optimised (best of REPS).
    let mut cold: Option<Duration> = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let rt = builder().build();
        serve_all(&rt);
        let t = start.elapsed();
        assert_eq!(rt.stats().cache_misses, POPULATION as u64);
        if cold.is_none_or(|b| t < b) {
            cold = Some(t);
        }
    }

    // Warm restart: build loads + re-validates the snapshot, then the
    // same traffic is pure cache hits.
    let mut warm: Option<Duration> = None;
    let mut warm_loads = 0;
    let mut warm_rejects = 0;
    for _ in 0..REPS {
        let start = Instant::now();
        let rt = builder().persist_path(&path).build();
        serve_all(&rt);
        let t = start.elapsed();
        let stats = rt.stats();
        assert_eq!(
            stats.warm_loads, POPULATION as u64,
            "every snapshotted plan must survive re-validation: {stats}"
        );
        assert_eq!(stats.warm_rejects, 0, "{stats}");
        assert_eq!(
            stats.cache_misses, 0,
            "a warm restart must serve hot traffic with zero re-optimisation: {stats}"
        );
        warm_loads = stats.warm_loads;
        warm_rejects = stats.warm_rejects;
        if warm.is_none_or(|b| t < b) {
            warm = Some(t);
        }
    }
    let _ = std::fs::remove_file(&path);

    WarmStart {
        population: POPULATION,
        cold: cold.expect("cold reps measured"),
        warm: warm.expect("warm reps measured"),
        warm_loads,
        warm_rejects,
    }
}

/// A small served workload whose exporter snapshot is embedded verbatim
/// in `BENCH_serve.json`, so the perf artifact carries the same
/// machine-readable counters a live scrape endpoint would serve.
fn run_metrics_snapshot() -> String {
    let server = Server::builder(runtime()).workers(0).build();
    let handles: Vec<ProgramHandle> = (0..4).map(tenant_program).collect();
    for (t, h) in handles.iter().enumerate() {
        let x = h.program().reg_by_name("x").expect("input register");
        let a = h.program().reg_by_name("a").expect("result register");
        let input = Tensor::from_vec(vec![1.0f64; h.program().base(x).shape.nelem()]);
        let tickets = server.submit_many((0..8).map(|_| {
            Request::with_handle(format!("tenant-{t}"), h)
                .bind(x, input.clone())
                .read(a)
        }));
        while server.service_once() {}
        for ticket in tickets {
            ticket
                .expect("queue sized for the snapshot workload")
                .wait()
                .expect("snapshot program evaluates");
        }
    }
    server.metrics().to_json()
}

fn json_section(out: &mut String, name: &str, naive: &Measured, serve: &Measured) {
    let speedup = serve.rps() / naive.rps();
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let _ = write!(
        out,
        "  \"{name}\": {{\n    \"requests\": {},\n    \"naive_rps\": {:.1},\n    \
         \"serve_rps\": {:.1},\n    \"speedup\": {:.2},\n    \"mean_batch\": {:.2},\n    \
         \"naive_p50_us\": {:.1},\n    \"serve_p50_us\": {:.1},\n    \
         \"serve_p95_us\": {:.1},\n    \"serve_p99_us\": {:.1}\n  }}",
        serve.requests,
        naive.rps(),
        serve.rps(),
        speedup,
        serve.mean_batch,
        us(naive.p50),
        us(serve.p50),
        us(serve.p95),
        us(serve.p99),
    );
}

fn main() {
    // Distinct program per tenant (churn: population > cache capacity).
    let churn_handles: Vec<ProgramHandle> = (0..TENANTS).map(tenant_program).collect();
    // One shared program for every tenant (hot: pure cache hits).
    let hot_handles: Vec<ProgramHandle> = (0..TENANTS).map(|_| tenant_program(0)).collect();

    eprintln!(
        "serve_load: {TENANTS} tenants x {ROUNDS} requests, burst {BURST}, \
         max_batch {MAX_BATCH}, plan cache {CACHE_CAPACITY}"
    );

    // Warm-up pass so one-time costs (thread spawn paths, allocator)
    // don't skew whichever side runs first.
    run_naive(&churn_handles[..2], 4);
    run_serve(&churn_handles[..2], 4, BatchMode::Fixed(MAX_BATCH));

    let churn_naive = run_naive(&churn_handles, ROUNDS);
    let churn_serve = run_serve(&churn_handles, ROUNDS, BatchMode::Fixed(MAX_BATCH));
    let hot_naive = run_naive(&hot_handles, ROUNDS);
    let hot_serve = run_serve(&hot_handles, ROUNDS, BatchMode::Fixed(MAX_BATCH));

    let churn_speedup = churn_serve.rps() / churn_naive.rps();
    let hot_speedup = hot_serve.rps() / hot_naive.rps();
    eprintln!(
        "churn: naive {:.0} req/s vs serve {:.0} req/s ({:.2}x, mean batch {:.1})",
        churn_naive.rps(),
        churn_serve.rps(),
        churn_speedup,
        churn_serve.mean_batch,
    );
    eprintln!(
        "hot:   naive {:.0} req/s vs serve {:.0} req/s ({:.2}x, mean batch {:.1})",
        hot_naive.rps(),
        hot_serve.rps(),
        hot_speedup,
        hot_serve.mean_batch,
    );

    // The adaptive-vs-fixed regime: hand-sweep fixed limits on churn,
    // then let the controller find its own. Best-of-3 per configuration
    // so one scheduler hiccup doesn't crown the wrong winner.
    let best_of = |mode: BatchMode| -> Measured {
        let mut best: Option<Measured> = None;
        for _ in 0..3 {
            let m = run_serve(&churn_handles, SWEEP_ROUNDS, mode);
            if best.as_ref().is_none_or(|b| m.rps() > b.rps()) {
                best = Some(m);
            }
        }
        best.expect("three runs measured")
    };
    let sweep: Vec<(usize, Measured)> = FIXED_SWEEP
        .iter()
        .map(|&max_batch| {
            let m = best_of(BatchMode::Fixed(max_batch));
            eprintln!(
                "churn fixed max_batch {max_batch:>3}: {:.0} req/s (mean batch {:.1})",
                m.rps(),
                m.mean_batch
            );
            (max_batch, m)
        })
        .collect();
    let adaptive = best_of(BatchMode::Adaptive);
    let (best_fixed_batch, best_fixed) = sweep
        .iter()
        .max_by(|a, b| a.1.rps().total_cmp(&b.1.rps()))
        .expect("sweep is non-empty");
    let vs_best_fixed = adaptive.rps() / best_fixed.rps();
    let adapt = adaptive.adapt.as_ref().expect("adaptive run records");
    eprintln!(
        "churn adaptive (ceiling {ADAPTIVE_CEILING}, slo {ADAPTIVE_SLO:?}): {:.0} req/s \
         (mean batch {:.1}, limit {:?} after +{}/-{} decisions) — {:.2}x the best fixed \
         (max_batch {best_fixed_batch})",
        adaptive.rps(),
        adaptive.mean_batch,
        adapt.last_limit,
        adapt.grows,
        adapt.shrinks,
        vs_best_fixed,
    );

    // The tiered-optimisation regime: the same mixed hot/churn trace
    // under three compilation policies (DESIGN.md §14).
    let mix_max = run_tiered_mix(MixPolicy::AlwaysMax);
    let mix_cheap = run_tiered_mix(MixPolicy::AlwaysCheap);
    let mix_tiered = run_tiered_mix(MixPolicy::Tiered);
    for (policy, m) in [
        (MixPolicy::AlwaysMax, &mix_max),
        (MixPolicy::AlwaysCheap, &mix_cheap),
        (MixPolicy::Tiered, &mix_tiered),
    ] {
        eprintln!(
            "tiered_mix {:>12}: cold first-eval {:.1}us, hot {:.0} eval/s, \
             steady {:.0} eval/s (t0 builds {}, promotions {})",
            policy.name(),
            m.cold_first_eval_us,
            m.hot_rps,
            m.steady_rps,
            m.tier0_builds,
            m.promotions,
        );
    }
    let tiered_vs_max_steady = mix_tiered.steady_rps / mix_max.steady_rps;
    let tiered_vs_cheap_hot = mix_tiered.hot_rps / mix_cheap.hot_rps;
    let tiered_vs_max_cold = mix_max.cold_first_eval_us / mix_tiered.cold_first_eval_us;
    eprintln!(
        "tiered_mix: {tiered_vs_max_steady:.2}x always-max steady-state, \
         {tiered_vs_cheap_hot:.2}x always-cheap hot throughput, \
         {tiered_vs_max_cold:.2}x faster cold first-eval than always-max"
    );

    let warm = run_warm_start();
    eprintln!(
        "warm_start: cold restart {:.1}ms vs warm restart {:.1}ms over {} \
         compile-dominated digests — {:.2}x ({} loaded, {} rejected)",
        warm.cold.as_secs_f64() * 1e3,
        warm.warm.as_secs_f64() * 1e3,
        warm.population,
        warm.speedup(),
        warm.warm_loads,
        warm.warm_rejects,
    );

    let overhead = run_observe_overhead();
    eprintln!(
        "observe: {:.2}us per cached eval profiled vs {:.2}us unprofiled — {:+.1}% overhead",
        overhead.on_each.as_secs_f64() * 1e6,
        overhead.off_each.as_secs_f64() * 1e6,
        overhead.overhead() * 100.0,
    );

    let verify = run_verify_amortisation();
    eprintln!(
        "verify: {:.1}us per pass vs {:.1}us per cached eval — {:.1}% overhead \
         if paid per eval; paid {} time(s) across {} evals instead",
        verify.verify_each.as_secs_f64() * 1e6,
        verify.eval_each.as_secs_f64() * 1e6,
        verify.unamortised_overhead() * 100.0,
        verify.verifications,
        verify.evals,
    );

    let audit = run_audit_overhead();
    eprintln!(
        "audit: {:.1}us per audited prepare vs {:.1}us unaudited — {:+.1}% per cache miss; \
         {} audit(s) across {} cached evals",
        audit.prepare_on_us,
        audit.prepare_off_us,
        audit.overhead() * 100.0,
        audit.hot_audits,
        audit.hot_evals,
    );

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"config\": {{\n    \"tenants\": {TENANTS},\n    \"rounds\": {ROUNDS},\n    \
         \"burst\": {BURST},\n    \"max_batch\": {MAX_BATCH},\n    \
         \"workers\": {WORKERS},\n    \"plan_cache_capacity\": {CACHE_CAPACITY},\n    \
         \"adaptive_ceiling\": {ADAPTIVE_CEILING},\n    \"adaptive_slo_ms\": {}\n  }},\n",
        ADAPTIVE_SLO.as_millis()
    );
    json_section(&mut out, "churn", &churn_naive, &churn_serve);
    out.push_str(",\n");
    json_section(&mut out, "hot", &hot_naive, &hot_serve);
    out.push_str(",\n  \"churn_fixed_sweep\": {\n");
    for (i, (max_batch, m)) in sweep.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{max_batch}\": {{ \"rps\": {:.1}, \"mean_batch\": {:.2} }}{}",
            m.rps(),
            m.mean_batch,
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    out.push_str("  },\n");
    let _ = write!(
        out,
        "  \"churn_adaptive\": {{\n    \"rps\": {:.1},\n    \"mean_batch\": {:.2},\n    \
         \"speedup_vs_naive\": {:.2},\n    \"vs_best_fixed\": {:.2},\n    \
         \"best_fixed_max_batch\": {best_fixed_batch},\n    \"grows\": {},\n    \
         \"shrinks\": {},\n    \"final_limit\": {},\n    \
         \"p95_us\": {:.1}\n  }},\n",
        adaptive.rps(),
        adaptive.mean_batch,
        adaptive.rps() / churn_naive.rps(),
        vs_best_fixed,
        adapt.grows,
        adapt.shrinks,
        adapt.last_limit.unwrap_or(0),
        adaptive.p95.as_secs_f64() * 1e6,
    );
    let _ = write!(
        out,
        "  \"verify_amortisation\": {{\n    \"verify_pass_us\": {:.2},\n    \
         \"cached_eval_us\": {:.2},\n    \
         \"unamortised_overhead_pct\": {:.1},\n    \"evals\": {},\n    \
         \"verifications\": {}\n  }},\n",
        verify.verify_each.as_secs_f64() * 1e6,
        verify.eval_each.as_secs_f64() * 1e6,
        verify.unamortised_overhead() * 100.0,
        verify.evals,
        verify.verifications,
    );
    let _ = write!(
        out,
        "  \"audit_overhead\": {{\n    \"unaudited_prepare_us\": {:.2},\n    \
         \"audited_prepare_us\": {:.2},\n    \"overhead_pct\": {:.1},\n    \
         \"hot_evals\": {},\n    \"hot_audits\": {}\n  }},\n",
        audit.prepare_off_us,
        audit.prepare_on_us,
        audit.overhead() * 100.0,
        audit.hot_evals,
        audit.hot_audits,
    );
    let _ = write!(
        out,
        "  \"observe_overhead\": {{\n    \"unprofiled_eval_us\": {:.3},\n    \
         \"profiled_eval_us\": {:.3},\n    \"overhead_pct\": {:.2}\n  }},\n",
        overhead.off_each.as_secs_f64() * 1e6,
        overhead.on_each.as_secs_f64() * 1e6,
        overhead.overhead() * 100.0,
    );
    let _ = write!(
        out,
        "  \"warm_start\": {{\n    \"population\": {},\n    \
         \"cold_restart_ms\": {:.2},\n    \"warm_restart_ms\": {:.2},\n    \
         \"speedup\": {:.2},\n    \"warm_loads\": {},\n    \
         \"warm_rejects\": {}\n  }},\n",
        warm.population,
        warm.cold.as_secs_f64() * 1e3,
        warm.warm.as_secs_f64() * 1e3,
        warm.speedup(),
        warm.warm_loads,
        warm.warm_rejects,
    );
    out.push_str("  \"tiered_mix\": {\n");
    let _ = writeln!(
        out,
        "    \"config\": {{ \"hot_programs\": {MIX_HOT_PROGRAMS}, \
         \"churn_programs\": {MIX_CHURN_PROGRAMS}, \
         \"steady_evals\": {MIX_STEADY_EVALS}, \
         \"churn_every\": {MIX_CHURN_EVERY}, \
         \"promote_after\": {TIERED_PROMOTE_AFTER} }},"
    );
    for (policy, m) in [
        (MixPolicy::AlwaysMax, &mix_max),
        (MixPolicy::AlwaysCheap, &mix_cheap),
        (MixPolicy::Tiered, &mix_tiered),
    ] {
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"cold_first_eval_us\": {:.2}, \"hot_rps\": {:.1}, \
             \"steady_rps\": {:.1}, \"tier0_builds\": {}, \"promotions\": {} }},",
            policy.name(),
            m.cold_first_eval_us,
            m.hot_rps,
            m.steady_rps,
            m.tier0_builds,
            m.promotions,
        );
    }
    let _ = write!(
        out,
        "    \"tiered_vs_max_steady\": {tiered_vs_max_steady:.3},\n    \
         \"tiered_vs_cheap_hot\": {tiered_vs_cheap_hot:.3},\n    \
         \"tiered_cold_speedup_vs_max\": {tiered_vs_max_cold:.3}\n  }},\n"
    );
    // The exporter's own JSON rendering, embedded verbatim: the perf
    // artifact carries the same counters a live scrape would.
    let _ = write!(
        out,
        "  \"metrics_snapshot\": {}\n}}\n",
        run_metrics_snapshot()
    );
    std::fs::write("BENCH_serve.json", &out).expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");

    assert!(
        churn_speedup >= 2.0,
        "digest batching must be >= 2x the naive loop on the repeated-program \
         (churn) workload, measured {churn_speedup:.2}x"
    );
    assert!(
        audit.overhead() <= 0.15,
        "the whole-plan audit must add <= 15% to cache-miss prepare latency, \
         measured {:+.1}%",
        audit.overhead() * 100.0
    );
    assert!(
        overhead.overhead() <= 0.05,
        "per-digest profiling must cost <= 5% on the hot cached-eval path, \
         measured {:+.1}%",
        overhead.overhead() * 100.0
    );
    assert!(
        warm.speedup() >= 2.0,
        "a warm restart (snapshot load + re-validation) must beat a cold \
         restart (full re-optimisation) by >= 2x on compile-dominated hot \
         traffic, measured {:.2}x",
        warm.speedup()
    );
    // The tiered lifecycle itself is deterministic — assert it anywhere.
    assert_eq!(
        mix_tiered.promotions, MIX_HOT_PROGRAMS as u64,
        "every hot digest (and nothing else) must promote"
    );
    assert_eq!(mix_max.promotions, 0);
    assert_eq!(mix_cheap.promotions, 0);
    // The throughput/latency comparisons are only stable with real
    // parallel headroom: on tiny CI boxes a scheduler hiccup can swamp
    // the margins, so gate the ratio asserts on >= 4 cpus (the numbers
    // still land in BENCH_serve.json either way).
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    if cpus >= 4 {
        assert!(
            vs_best_fixed >= 0.9,
            "the adaptive policy must match the best hand-tuned fixed max_batch \
             on the churn workload (>= 0.9x), measured {vs_best_fixed:.2}x \
             vs fixed max_batch {best_fixed_batch}"
        );
        assert!(
            tiered_vs_max_steady >= 0.95,
            "tiered must match always-max steady-state throughput \
             (>= 0.95x), measured {tiered_vs_max_steady:.2}x"
        );
        assert!(
            tiered_vs_cheap_hot > 1.0,
            "tiered must beat always-cheap on hot-digest throughput, \
             measured {tiered_vs_cheap_hot:.2}x"
        );
        assert!(
            tiered_vs_max_cold > 1.0,
            "tiered must beat always-max on cold first-eval latency, \
             measured {tiered_vs_max_cold:.2}x"
        );
    }
}
