//! Serial-vs-threads scaling sweep for the parallel fused-kernel engine.
//!
//! Measures two workloads across a worker-thread sweep and writes
//! `BENCH_parallel.json`:
//!
//! * **churn_fused** — the Listing-2-style element-wise churn chain
//!   (`bh_bench::elementwise_chain`, 2²⁰ f64 elements × 16 ops). The
//!   fusing engine contracts the whole chain into one fused group, so
//!   this times exactly the tentpole path: one kernel, every worker
//!   streaming its contiguous shard in cache-sized blocks.
//! * **heat_slices** — one Jacobi sweep of the 3-point stencil on a
//!   2²¹-element rod. The shifted interior slices (`grid[0:n-2]`,
//!   `grid[2:n]` …) are contiguous but never fuse (partial views), so
//!   this times the parallel slice×slice kernels (`par_map1`,
//!   `par_map2_left_inplace` & friends) on the naive engine instead.
//!   (A 2-D plate's interior rows are *strided*, which the parallel
//!   kernels decline by design — the 1-D rod is the shape that shards.)
//!
//! Each configuration runs on a persistent [`bh_vm::Vm`] whose worker
//! pool survives across repetitions — the quantity under test is shard
//! execution, not thread start-up. Wall-clock is the best of
//! `RUNS` repetitions after a warm-up.
//!
//! The acceptance gate (≥ 2.5× at 4 threads over 1 thread on the fused
//! churn workload) is asserted only when the host actually offers ≥ 4
//! CPUs; on smaller hosts the sweep still runs and the JSON records the
//! honest (flat) numbers plus the CPU count so readers can tell why.

use bh_ir::{parse_program, Program};
use bh_vm::{Engine, Vm};
use std::fmt::Write as _;
use std::time::Instant;

/// Elements in the churn chain (≥ 2²⁰ per the acceptance criterion).
const CHURN_NELEM: usize = 1 << 20;
/// Element-wise ops in the churn chain.
const CHURN_OPS: usize = 16;
/// Fused-engine cache block (doubles): 4096 × 8 B = 32 KiB, L1-resident.
const BLOCK: usize = 4096;
/// Stencil rod length (elements).
const HEAT_N: usize = 1 << 21;
/// Timed repetitions per configuration (after one warm-up).
const RUNS: usize = 7;
/// Worker-thread sweep.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One Jacobi sweep as byte-code: shifted-slice add and a scale over the
/// interior of an `n`-element rod (contiguous slice×slice, never fused).
fn heat_program(n: usize) -> Program {
    let i = n - 1;
    let text = format!(
        ".base grid f64[{n}]\n\
         .base next f64[{n}]\n\
         BH_IDENTITY grid 1\n\
         BH_IDENTITY next grid\n\
         BH_IDENTITY next[1:{i}:1] grid[0:{lim}:1]\n\
         BH_ADD next[1:{i}:1] next[1:{i}:1] grid[2:{n}:1]\n\
         BH_MULTIPLY next[1:{i}:1] next[1:{i}:1] 0.5\n\
         BH_SYNC next\n",
        lim = n - 2,
    );
    parse_program(&text).expect("stencil program parses")
}

/// Best-of-`RUNS` wall-clock for `program` on `engine` × `threads`,
/// reusing one VM (and therefore one worker pool) across repetitions.
///
/// The VM is deliberately **not** recycled between runs: both workloads
/// rewrite every buffer from scratch each run, so re-running on warm
/// buffers is sound (the same invariant `Runtime::eval_prepared` relies
/// on), and it keeps allocator/page-fault noise — which an earlier
/// version of this bench mistook for 2× "scaling" — out of the measured
/// region. What remains is exactly shard execution.
fn measure(program: &Program, engine: Engine, threads: usize) -> f64 {
    let mut vm = Vm::with_engine(engine);
    vm.set_threads(threads);
    // Warm-up: allocations, pool spawn, page faults.
    vm.run(program).expect("workload runs");
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        vm.run(program).expect("workload runs");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Sweep {
    label: &'static str,
    engine: Engine,
    program: Program,
    /// (threads, best_ms, speedup over 1 thread)
    runs: Vec<(usize, f64, f64)>,
}

impl Sweep {
    fn run(label: &'static str, engine: Engine, program: Program) -> Sweep {
        let mut runs = Vec::new();
        let mut serial_ms = f64::NAN;
        for &t in &THREADS {
            let ms = measure(&program, engine, t);
            if t == 1 {
                serial_ms = ms;
            }
            let speedup = serial_ms / ms;
            eprintln!("{label}: threads={t} best={ms:.2} ms speedup={speedup:.2}x");
            runs.push((t, ms, speedup));
        }
        Sweep {
            label,
            engine,
            program,
            runs,
        }
    }

    fn speedup_at(&self, threads: usize) -> f64 {
        self.runs
            .iter()
            .find(|(t, _, _)| *t == threads)
            .map(|(_, _, s)| *s)
            .unwrap_or(f64::NAN)
    }

    fn json(&self, out: &mut String, extra: &str) {
        let _ = write!(out, "  \"{}\": {{\n{extra}    \"runs\": [", self.label);
        for (i, (t, ms, s)) in self.runs.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n      {{ \"threads\": {t}, \"best_ms\": {ms:.3}, \"speedup_vs_1\": {s:.3} }}",
                if i == 0 { "" } else { "," },
            );
        }
        let _ = write!(out, "\n    ]\n  }}");
    }
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!("host CPUs: {cpus}");

    let churn = Sweep::run(
        "churn_fused",
        Engine::Fusing { block: BLOCK },
        bh_bench::elementwise_chain(CHURN_NELEM, CHURN_OPS),
    );
    // Sanity: the chain really executes as fused groups.
    {
        let mut vm = Vm::with_engine(churn.engine);
        vm.run(&churn.program).expect("runs");
        assert!(
            vm.stats().fused_groups >= 1,
            "churn workload must exercise the fused engine"
        );
    }
    let heat = Sweep::run("heat_slices", Engine::Naive, heat_program(HEAT_N));
    // Sanity: the sliced stencil really reaches the parallel kernels.
    {
        let mut vm = Vm::with_engine(Engine::Naive);
        vm.set_threads(2);
        vm.run(&heat.program).expect("runs");
        assert!(
            vm.stats().par_shards > 0,
            "heat workload must shard across the pool"
        );
    }

    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"host\": {{ \"cpus\": {cpus} }},\n  \"threads_swept\": {THREADS:?},\n"
    );
    churn.json(
        &mut out,
        &format!(
            "    \"nelem\": {CHURN_NELEM},\n    \"ops\": {CHURN_OPS},\n    \"block\": {BLOCK},\n"
        ),
    );
    let _ = writeln!(out, ",");
    heat.json(&mut out, &format!("    \"rod\": {HEAT_N},\n"));
    let _ = write!(
        out,
        ",\n  \"note\": \"best of {RUNS} runs per point after warm-up; speedups are \
         wall-clock vs the 1-thread run of the same engine. Scaling is only \
         observable when the host grants multiple CPUs (see host.cpus).\"\n}}\n"
    );
    std::fs::write("BENCH_parallel.json", &out).expect("write BENCH_parallel.json");
    eprintln!("wrote BENCH_parallel.json");

    // Acceptance gate: ≥ 2.5× at 4 threads on the fused churn workload —
    // meaningful only where 4 workers can actually run in parallel.
    if cpus >= 4 {
        let s = churn.speedup_at(4);
        assert!(
            s >= 2.5,
            "churn_fused speedup at 4 threads is {s:.2}x, below the 2.5x gate"
        );
        eprintln!("scaling gate passed: {s:.2}x at 4 threads");
    } else {
        eprintln!("scaling gate skipped: host has {cpus} CPU(s), gate needs >= 4");
    }
}
