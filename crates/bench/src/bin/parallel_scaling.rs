//! Serial-vs-threads scaling sweep for the parallel fused-kernel engine.
//!
//! Measures two workloads across a worker-thread sweep and writes
//! `BENCH_parallel.json`:
//!
//! * **churn_fused** — the Listing-2-style element-wise churn chain
//!   (`bh_bench::elementwise_chain`, 2²⁰ f64 elements × 16 ops). The
//!   fusing engine contracts the whole chain into one fused group, so
//!   this times exactly the tentpole path: one kernel, every worker
//!   streaming its contiguous shard in cache-sized blocks.
//! * **heat_slices** — one Jacobi sweep of the 3-point stencil on a
//!   2²¹-element rod. The shifted interior slices (`grid[0:n-2]`,
//!   `grid[2:n]` …) are contiguous but never fuse (partial views), so
//!   this times the parallel slice×slice kernels (`par_map1`,
//!   `par_map2_left_inplace` & friends) on the naive engine instead.
//!   (A 2-D plate's interior rows are *strided*, which the parallel
//!   kernels decline by design — the 1-D rod is the shape that shards.)
//! * **reduce_scaling** — the parallel reduction/scan engine:
//!   `sum_reduce` (full 2²⁰-element f64 sum, the deterministic blocked
//!   combine of DESIGN.md §11), `fused_chain_reduce` (the same churn
//!   chain terminated by a sum-reduction, contracted with the fold into
//!   one sharded kernel) and `cumsum` (the three-phase parallel prefix
//!   scan). Input-bound bases are bound once outside the timed region,
//!   so the timed quantity is the fold itself, not data generation.
//!
//! Each configuration runs on a persistent [`bh_vm::Vm`] whose worker
//! pool survives across repetitions — the quantity under test is shard
//! execution, not thread start-up. Wall-clock is the best of
//! `RUNS` repetitions after a warm-up.
//!
//! The acceptance gate (≥ 2.5× at 4 threads over 1 thread on the fused
//! churn workload) is asserted only when the host actually offers ≥ 4
//! CPUs; on smaller hosts the sweep still runs and the JSON records the
//! honest (flat) numbers plus the CPU count so readers can tell why.

use bh_ir::{parse_program, Program};
use bh_vm::{Engine, Vm};
use std::fmt::Write as _;
use std::time::Instant;

/// Elements in the churn chain (≥ 2²⁰ per the acceptance criterion).
const CHURN_NELEM: usize = 1 << 20;
/// Element-wise ops in the churn chain.
const CHURN_OPS: usize = 16;
/// Fused-engine cache block (doubles): 4096 × 8 B = 32 KiB, L1-resident.
const BLOCK: usize = 4096;
/// Stencil rod length (elements).
const HEAT_N: usize = 1 << 21;
/// Timed repetitions per configuration (after one warm-up).
const RUNS: usize = 7;
/// Worker-thread sweep.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One Jacobi sweep as byte-code: shifted-slice add and a scale over the
/// interior of an `n`-element rod (contiguous slice×slice, never fused).
fn heat_program(n: usize) -> Program {
    let i = n - 1;
    let text = format!(
        ".base grid f64[{n}]\n\
         .base next f64[{n}]\n\
         BH_IDENTITY grid 1\n\
         BH_IDENTITY next grid\n\
         BH_IDENTITY next[1:{i}:1] grid[0:{lim}:1]\n\
         BH_ADD next[1:{i}:1] next[1:{i}:1] grid[2:{n}:1]\n\
         BH_MULTIPLY next[1:{i}:1] next[1:{i}:1] 0.5\n\
         BH_SYNC next\n",
        lim = n - 2,
    );
    parse_program(&text).expect("stencil program parses")
}

/// Best-of-`RUNS` wall-clock for `program` on `engine` × `threads`,
/// reusing one VM (and therefore one worker pool) across repetitions.
///
/// The VM is deliberately **not** recycled between runs: both workloads
/// rewrite every buffer from scratch each run, so re-running on warm
/// buffers is sound (the same invariant `Runtime::eval_prepared` relies
/// on), and it keeps allocator/page-fault noise — which an earlier
/// version of this bench mistook for 2× "scaling" — out of the measured
/// region. What remains is exactly shard execution.
fn measure(program: &Program, engine: Engine, threads: usize) -> f64 {
    let mut vm = Vm::with_engine(engine);
    vm.set_threads(threads);
    bind_inputs(&mut vm, program);
    // Warm-up: allocations, pool spawn, page faults.
    vm.run(program).expect("workload runs");
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        vm.run(program).expect("workload runs");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Bind deterministic random data to every `input` base, outside the
/// timed region (binding is an O(1) copy-on-write handle clone).
fn bind_inputs(vm: &mut Vm, program: &Program) {
    for (i, base) in program.bases().iter().enumerate() {
        if base.is_input {
            let t = bh_tensor::random_tensor(
                base.dtype,
                base.shape.clone(),
                0xC0FFEE ^ i as u64,
                bh_tensor::Distribution::Uniform,
            );
            vm.bind_by_name(program, &base.name, &t)
                .expect("input binds");
        }
    }
}

struct Sweep {
    label: &'static str,
    engine: Engine,
    program: Program,
    /// (threads, best_ms, speedup over 1 thread)
    runs: Vec<(usize, f64, f64)>,
}

impl Sweep {
    fn run(label: &'static str, engine: Engine, program: Program) -> Sweep {
        let mut runs = Vec::new();
        let mut serial_ms = f64::NAN;
        for &t in &THREADS {
            let ms = measure(&program, engine, t);
            if t == 1 {
                serial_ms = ms;
            }
            let speedup = serial_ms / ms;
            eprintln!("{label}: threads={t} best={ms:.2} ms speedup={speedup:.2}x");
            runs.push((t, ms, speedup));
        }
        Sweep {
            label,
            engine,
            program,
            runs,
        }
    }

    fn speedup_at(&self, threads: usize) -> f64 {
        self.runs
            .iter()
            .find(|(t, _, _)| *t == threads)
            .map(|(_, _, s)| *s)
            .unwrap_or(f64::NAN)
    }

    fn json(&self, out: &mut String, extra: &str) {
        self.json_at(out, extra, "  ");
    }

    /// Like [`Sweep::json`] but emitted at `indent` (for nested sections).
    fn json_at(&self, out: &mut String, extra: &str, indent: &str) {
        let _ = write!(
            out,
            "{indent}\"{}\": {{\n{extra}{indent}  \"runs\": [",
            self.label
        );
        for (i, (t, ms, s)) in self.runs.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n{indent}    {{ \"threads\": {t}, \"best_ms\": {ms:.3}, \"speedup_vs_1\": {s:.3} }}",
                if i == 0 { "" } else { "," },
            );
        }
        let _ = write!(out, "\n{indent}  ]\n{indent}}}");
    }
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!("host CPUs: {cpus}");

    let churn = Sweep::run(
        "churn_fused",
        Engine::Fusing { block: BLOCK },
        bh_bench::elementwise_chain(CHURN_NELEM, CHURN_OPS),
    );
    // Sanity: the chain really executes as fused groups.
    {
        let mut vm = Vm::with_engine(churn.engine);
        vm.run(&churn.program).expect("runs");
        assert!(
            vm.stats().fused_groups >= 1,
            "churn workload must exercise the fused engine"
        );
    }
    let heat = Sweep::run("heat_slices", Engine::Naive, heat_program(HEAT_N));
    // Sanity: the sliced stencil really reaches the parallel kernels.
    {
        let mut vm = Vm::with_engine(Engine::Naive);
        vm.set_threads(2);
        vm.run(&heat.program).expect("runs");
        assert!(
            vm.stats().par_shards > 0,
            "heat workload must shard across the pool"
        );
    }

    let sum = Sweep::run(
        "sum_reduce",
        Engine::Naive,
        bh_bench::sum_reduce(CHURN_NELEM),
    );
    // Sanity: the parallel fold really shards (and is observable).
    {
        let mut vm = Vm::with_engine(Engine::Naive);
        vm.set_threads(2);
        bind_inputs(&mut vm, &sum.program);
        vm.run(&sum.program).expect("runs");
        assert!(
            vm.stats().reduce_shards > 0,
            "sum workload must shard the fold across the pool"
        );
    }
    let chain_reduce = Sweep::run(
        "fused_chain_reduce",
        Engine::Fusing { block: BLOCK },
        bh_bench::elementwise_chain_reduce(CHURN_NELEM, CHURN_OPS),
    );
    // Sanity: chain + fold really contract into one fused reduction.
    {
        let mut vm = Vm::with_engine(Engine::Fusing { block: BLOCK });
        vm.run(&chain_reduce.program).expect("runs");
        assert!(
            vm.stats().fused_reductions >= 1,
            "chain+reduce workload must execute as a fused reduction"
        );
    }
    let scan = Sweep::run("cumsum", Engine::Naive, bh_bench::cumsum(CHURN_NELEM));

    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"host\": {{ \"cpus\": {cpus} }},\n  \"threads_swept\": {THREADS:?},\n"
    );
    churn.json(
        &mut out,
        &format!(
            "    \"nelem\": {CHURN_NELEM},\n    \"ops\": {CHURN_OPS},\n    \"block\": {BLOCK},\n"
        ),
    );
    let _ = writeln!(out, ",");
    heat.json(&mut out, &format!("    \"rod\": {HEAT_N},\n"));
    let _ = writeln!(
        out,
        ",\n  \"reduce_scaling\": {{\n    \"nelem\": {CHURN_NELEM},\n    \"ops\": {CHURN_OPS},"
    );
    sum.json_at(&mut out, "", "    ");
    let _ = writeln!(out, ",");
    chain_reduce.json_at(&mut out, "", "    ");
    let _ = writeln!(out, ",");
    scan.json_at(&mut out, "", "    ");
    let _ = write!(out, "\n  }}");
    let _ = write!(
        out,
        ",\n  \"note\": \"best of {RUNS} runs per point after warm-up; speedups are \
         wall-clock vs the 1-thread run of the same engine. Scaling is only \
         observable when the host grants multiple CPUs (see host.cpus). \
         Refresh procedure: run `cargo run --release -p bh-bench --bin \
         parallel_scaling` and commit the rewritten file; prefer the CI \
         perf-gate artifact (4-core runner, where the >= 2.5x/2x gates \
         actually fire) over a 1-vCPU build container, and never hand-edit \
         the numbers.\"\n}}\n"
    );
    std::fs::write("BENCH_parallel.json", &out).expect("write BENCH_parallel.json");
    eprintln!("wrote BENCH_parallel.json");

    // Acceptance gates, meaningful only where 4 workers can actually run
    // in parallel: ≥ 2.5× at 4 threads on the fused churn workload and
    // ≥ 2× at 4 threads on the 2²⁰-element sum-reduction.
    if cpus >= 4 {
        let s = churn.speedup_at(4);
        assert!(
            s >= 2.5,
            "churn_fused speedup at 4 threads is {s:.2}x, below the 2.5x gate"
        );
        let r = sum.speedup_at(4);
        assert!(
            r >= 2.0,
            "sum_reduce speedup at 4 threads is {r:.2}x, below the 2x reduction gate"
        );
        eprintln!("scaling gates passed: churn {s:.2}x, reduce {r:.2}x at 4 threads");
    } else {
        eprintln!("scaling gates skipped: host has {cpus} CPU(s), gates need >= 4");
    }
}
