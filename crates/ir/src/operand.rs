//! Instruction operands: registers, views and constants.
//!
//! In the paper's notation `BH_ADD a0 [0:10:1] a0 [0:10:1] 1`, the operands
//! are two *views* (`a0 [0:10:1]`) and one *constant* (`1`). A view names a
//! base register plus optional per-axis slices; when the slices are omitted
//! (as in Listings 3–5) the full base is meant.

use bh_tensor::{Scalar, Slice};
use std::fmt;

/// A base-array register (`a0`, `a1`, …). Indexes a [`crate::BaseDecl`] in
/// the owning [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// Zero-based register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A view operand: a register plus optional slicing.
///
/// `slices: None` means the full base view, matching the listings that
/// elide `[0:10:1]` "since the view is the same for all registers".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewRef {
    /// Base register.
    pub reg: Reg,
    /// Per-axis slices; `None` = full view of the base.
    pub slices: Option<Vec<Slice>>,
}

impl ViewRef {
    /// The full view of `reg`.
    pub fn full(reg: Reg) -> ViewRef {
        ViewRef { reg, slices: None }
    }

    /// A sliced view of `reg`.
    pub fn sliced(reg: Reg, slices: Vec<Slice>) -> ViewRef {
        ViewRef {
            reg,
            slices: Some(slices),
        }
    }

    /// True when this view covers the entire base (explicitly or by
    /// omission). A conservatively syntactic check: explicit slices count
    /// as full only if every axis is `::1`.
    pub fn is_syntactically_full(&self) -> bool {
        match &self.slices {
            None => true,
            Some(slices) => slices.iter().all(|s| *s == Slice::full()),
        }
    }
}

impl fmt::Display for ViewRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reg)?;
        if let Some(slices) = &self.slices {
            write!(f, "[")?;
            for (i, s) in slices.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// One instruction operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A (possibly sliced) view of a base register.
    View(ViewRef),
    /// An immediate scalar constant.
    Const(Scalar),
}

impl Operand {
    /// Full view of a register.
    pub fn full(reg: Reg) -> Operand {
        Operand::View(ViewRef::full(reg))
    }

    /// Sliced view of a register.
    pub fn sliced(reg: Reg, slices: Vec<Slice>) -> Operand {
        Operand::View(ViewRef::sliced(reg, slices))
    }

    /// The view, if this operand is one.
    pub fn as_view(&self) -> Option<&ViewRef> {
        match self {
            Operand::View(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// The constant, if this operand is one.
    pub fn as_const(&self) -> Option<Scalar> {
        match self {
            Operand::Const(s) => Some(*s),
            Operand::View(_) => None,
        }
    }

    /// The register this operand reads, if any.
    pub fn reg(&self) -> Option<Reg> {
        self.as_view().map(|v| v.reg)
    }

    /// True for [`Operand::Const`].
    pub fn is_const(&self) -> bool {
        matches!(self, Operand::Const(_))
    }
}

impl From<Scalar> for Operand {
    fn from(s: Scalar) -> Operand {
        Operand::Const(s)
    }
}

impl From<ViewRef> for Operand {
    fn from(v: ViewRef) -> Operand {
        Operand::View(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::View(v) => write!(f, "{v}"),
            Operand::Const(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(Reg(3).index(), 3);
    }

    #[test]
    fn full_view_display_elides_slices() {
        let v = ViewRef::full(Reg(0));
        assert_eq!(v.to_string(), "r0");
        assert!(v.is_syntactically_full());
    }

    #[test]
    fn sliced_view_display() {
        let v = ViewRef::sliced(Reg(1), vec![Slice::new(Some(0), Some(10), 1)]);
        assert_eq!(v.to_string(), "r1[0:10:1]");
        assert!(!v.is_syntactically_full());
        let full = ViewRef::sliced(Reg(1), vec![Slice::full()]);
        assert!(full.is_syntactically_full());
    }

    #[test]
    fn multi_axis_display() {
        let v = ViewRef::sliced(Reg(2), vec![Slice::range(1, 3), Slice::new(None, None, 2)]);
        assert_eq!(v.to_string(), "r2[1:3:1,::2]");
    }

    #[test]
    fn operand_accessors() {
        let c = Operand::from(Scalar::I64(5));
        assert!(c.is_const());
        assert_eq!(c.as_const(), Some(Scalar::I64(5)));
        assert_eq!(c.reg(), None);
        let v = Operand::full(Reg(0));
        assert_eq!(v.reg(), Some(Reg(0)));
        assert!(v.as_const().is_none());
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::from(Scalar::F64(3.0)).to_string(), "3.0");
        assert_eq!(Operand::full(Reg(7)).to_string(), "r7");
    }
}
