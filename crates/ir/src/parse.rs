//! Parser for the textual byte-code format used in the paper's listings.
//!
//! Accepts exactly what the paper prints, e.g. Listing 2:
//!
//! ```text
//! BH_IDENTITY a0 [0:10:1] 0
//! BH_ADD a0 [0:10:1] a0 [0:10:1] 1
//! BH_ADD a0 [0:10:1] a0 [0:10:1] 1
//! BH_ADD a0 [0:10:1] a0 [0:10:1] 1
//! BH_SYNC a0 [0:10:1]
//! ```
//!
//! plus optional `.base <name> <dtype>[<shape>] [input]` declaration
//! headers and `#` comments. Undeclared registers have their shape inferred
//! from the slices they appear with (`[0:10:1]` ⇒ a 10-element base), or
//! fall back to [`ParseOptions::default_shape`] when the listing elides
//! views (Listing 3 style).

use crate::instr::Instruction;
use crate::opcode::Opcode;
use crate::operand::{Operand, Reg, ViewRef};
use crate::program::Program;
use bh_tensor::{DType, Scalar, Shape, Slice};
use std::collections::HashMap;
use std::fmt;

/// Options steering shape/dtype inference for undeclared registers.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseOptions {
    /// Dtype assigned to inferred registers (the paper's listings are
    /// implicitly f64: `np.zeros(10)`).
    pub default_dtype: DType,
    /// Shape assigned to inferred registers that never appear with an
    /// explicit view. `None` makes such programs a parse error.
    pub default_shape: Option<Shape>,
}

impl Default for ParseOptions {
    fn default() -> ParseOptions {
        ParseOptions {
            default_dtype: DType::Float64,
            default_shape: None,
        }
    }
}

/// Parse a byte-code listing with default options.
///
/// # Errors
///
/// Returns [`ParseError`] with a line number and reason on malformed input.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    parse_program_with(text, &ParseOptions::default())
}

/// Parse a byte-code listing.
///
/// # Errors
///
/// Returns [`ParseError`] with a line number and reason on malformed input.
pub fn parse_program_with(text: &str, opts: &ParseOptions) -> Result<Program, ParseError> {
    let mut program = Program::new();
    let mut pending: Vec<(usize, Vec<Token>)> = Vec::new();

    // Pass 1: declarations + tokenisation.
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".base") {
            parse_base_decl(rest.trim(), &mut program, lineno + 1)?;
            continue;
        }
        let tokens = tokenize(line, lineno + 1)?;
        pending.push((lineno + 1, tokens));
    }

    // Pass 2: shape inference for undeclared registers.
    let mut inferred: Vec<(String, Option<Vec<i64>>)> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (_, tokens) in &pending {
        let mut i = 1; // skip mnemonic
        while i < tokens.len() {
            if let Token::Ident(name) = &tokens[i] {
                if program.reg_by_name(name).is_none() {
                    let entry = match seen.get(name) {
                        Some(&idx) => idx,
                        None => {
                            seen.insert(name.clone(), inferred.len());
                            inferred.push((name.clone(), None));
                            inferred.len() - 1
                        }
                    };
                    if let Some(Token::View(slices)) = tokens.get(i + 1) {
                        let extents = slices
                            .iter()
                            .map(|s| s.stop.unwrap_or(0).max(s.start.unwrap_or(0)))
                            .collect::<Vec<i64>>();
                        let slot = &mut inferred[entry].1;
                        match slot {
                            None => *slot = Some(extents),
                            Some(prev) => {
                                for (p, e) in prev.iter_mut().zip(&extents) {
                                    *p = (*p).max(*e);
                                }
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }
    for (name, extents) in inferred {
        let shape = match extents {
            Some(e) if e.iter().all(|&x| x > 0) => {
                Shape::from(e.iter().map(|&x| x as usize).collect::<Vec<_>>())
            }
            _ => match &opts.default_shape {
                Some(s) => s.clone(),
                None => {
                    return Err(ParseError {
                        line: 0,
                        message: format!(
                            "cannot infer shape of register `{name}`: no explicit view \
                             and no default shape configured"
                        ),
                    })
                }
            },
        };
        program
            .try_declare(&name, opts.default_dtype, shape, false)
            .expect("inference list is deduplicated");
    }

    // Pass 3: instructions.
    for (line, tokens) in pending {
        let instr = build_instruction(&tokens, &program, line)?;
        program.push(instr);
    }
    Ok(program)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_base_decl(rest: &str, program: &mut Program, line: usize) -> Result<(), ParseError> {
    let err = |m: String| ParseError { line, message: m };
    let mut parts = rest.split_whitespace();
    let name = parts
        .next()
        .ok_or_else(|| err("missing register name in .base".into()))?;
    let ty = parts
        .next()
        .ok_or_else(|| err("missing dtype[shape] in .base".into()))?;
    let is_input = match parts.next() {
        None => false,
        Some("input") => true,
        Some(other) => return Err(err(format!("unexpected token `{other}` in .base"))),
    };
    let open = ty
        .find('[')
        .ok_or_else(|| err(format!("expected dtype[shape], got `{ty}`")))?;
    if !ty.ends_with(']') {
        return Err(err(format!("expected dtype[shape], got `{ty}`")));
    }
    let dtype: DType = ty[..open]
        .parse()
        .map_err(|e| err(format!("bad dtype in .base: {e}")))?;
    let dims: Vec<usize> = ty[open + 1..ty.len() - 1]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| err(format!("bad shape in .base: {e}")))?;
    program
        .try_declare(name, dtype, Shape::from(dims), is_input)
        .ok_or_else(|| err(format!("register `{name}` declared twice")))?;
    Ok(())
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Mnemonic(Opcode),
    Ident(String),
    View(Vec<Slice>),
    Const(Scalar),
}

fn tokenize(line: &str, lineno: usize) -> Result<Vec<Token>, ParseError> {
    let err = |m: String| ParseError {
        line: lineno,
        message: m,
    };
    let mut tokens = Vec::new();
    let mut rest = line.trim();
    let mut first = true;
    while !rest.is_empty() {
        if let Some(stripped) = rest.strip_prefix('[') {
            let close = stripped
                .find(']')
                .ok_or_else(|| err("unterminated `[` in view".into()))?;
            let inner = &stripped[..close];
            let slices = parse_slices(inner, lineno)?;
            tokens.push(Token::View(slices));
            rest = stripped[close + 1..].trim_start();
            first = false;
            continue;
        }
        let end = rest
            .find(|c: char| c.is_whitespace() || c == '[')
            .unwrap_or(rest.len());
        let (word, tail) = rest.split_at(end);
        rest = tail.trim_start_matches(' ').trim_start_matches('\t');
        if word.is_empty() {
            rest = &rest[1..];
            continue;
        }
        if first {
            let op: Opcode = word.parse().map_err(|e| err(format!("{e}")))?;
            tokens.push(Token::Mnemonic(op));
            first = false;
        } else if word
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.')
            || word == "true"
            || word == "false"
        {
            let c: Scalar = word.parse().map_err(|e| err(format!("{e}")))?;
            tokens.push(Token::Const(c));
        } else {
            if !word.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(err(format!("invalid register name `{word}`")));
            }
            tokens.push(Token::Ident(word.to_owned()));
        }
    }
    if tokens.is_empty() {
        return Err(err("empty instruction".into()));
    }
    if !matches!(tokens[0], Token::Mnemonic(_)) {
        return Err(err("instruction must start with an op-code".into()));
    }
    Ok(tokens)
}

fn parse_slices(inner: &str, lineno: usize) -> Result<Vec<Slice>, ParseError> {
    let err = |m: String| ParseError {
        line: lineno,
        message: m,
    };
    inner
        .split(',')
        .map(|axis| {
            let axis = axis.trim();
            let parts: Vec<&str> = axis.split(':').collect();
            let parse_part = |p: &str| -> Result<Option<i64>, ParseError> {
                let p = p.trim();
                if p.is_empty() {
                    Ok(None)
                } else {
                    p.parse::<i64>()
                        .map(Some)
                        .map_err(|_| err(format!("bad slice bound `{p}`")))
                }
            };
            match parts.len() {
                1 => {
                    let idx = parse_part(parts[0])?.ok_or_else(|| err("empty slice".into()))?;
                    Ok(Slice::index(idx))
                }
                2 => Ok(Slice::new(parse_part(parts[0])?, parse_part(parts[1])?, 1)),
                3 => {
                    let step = parse_part(parts[2])?.unwrap_or(1);
                    Ok(Slice::new(
                        parse_part(parts[0])?,
                        parse_part(parts[1])?,
                        step,
                    ))
                }
                _ => Err(err(format!("malformed slice `{axis}`"))),
            }
        })
        .collect()
}

fn build_instruction(
    tokens: &[Token],
    program: &Program,
    line: usize,
) -> Result<Instruction, ParseError> {
    let err = |m: String| ParseError { line, message: m };
    let op = match tokens[0] {
        Token::Mnemonic(op) => op,
        _ => unreachable!("tokenize guarantees mnemonic first"),
    };
    let mut operands = Vec::new();
    let mut i = 1;
    while i < tokens.len() {
        match &tokens[i] {
            Token::Ident(name) => {
                let reg: Reg = program
                    .reg_by_name(name)
                    .ok_or_else(|| err(format!("unknown register `{name}`")))?;
                let slices = match tokens.get(i + 1) {
                    Some(Token::View(s)) => {
                        i += 1;
                        Some(s.clone())
                    }
                    _ => None,
                };
                operands.push(Operand::View(ViewRef { reg, slices }));
            }
            Token::Const(c) => operands.push(Operand::Const(*c)),
            Token::View(_) => {
                return Err(err("view without a register".into()));
            }
            Token::Mnemonic(_) => {
                return Err(err("unexpected op-code mid-instruction".into()));
            }
        }
        i += 1;
    }
    let expected = op.operand_count();
    if operands.len() != expected {
        return Err(err(format!(
            "{op} expects {expected} operands, found {}",
            operands.len()
        )));
    }
    if op.has_output() && !matches!(operands[0], Operand::View(_)) {
        return Err(err(format!("{op} result operand must be a view")));
    }
    Ok(Instruction::new(op, operands))
}

/// Parse failure with a 1-based line number (0 when the error is global,
/// e.g. failed shape inference).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line; 0 for whole-program errors.
    pub line: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::PrintStyle;

    const LISTING2: &str = "\
BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_ADD a0 [0:10:1] a0 [0:10:1] 1
BH_SYNC a0 [0:10:1]
";

    #[test]
    fn parses_listing2_verbatim() {
        let p = parse_program(LISTING2).unwrap();
        assert_eq!(p.instrs().len(), 5);
        assert_eq!(p.count_op(Opcode::Add), 3);
        let a0 = p.reg_by_name("a0").unwrap();
        assert_eq!(p.base(a0).shape, Shape::vector(10));
        assert_eq!(p.base(a0).dtype, DType::Float64);
    }

    #[test]
    fn round_trips_through_printer() {
        let p = parse_program(LISTING2).unwrap();
        let printed = p.to_text(PrintStyle::LISTING);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p2.instrs(), p.instrs());
    }

    #[test]
    fn parses_listing3_with_default_shape() {
        let text = "\
BH_IDENTITY a0 0
BH_ADD a0 a0 3
BH_SYNC a0
";
        let opts = ParseOptions {
            default_dtype: DType::Float64,
            default_shape: Some(Shape::vector(10)),
        };
        let p = parse_program_with(text, &opts).unwrap();
        assert_eq!(p.instrs().len(), 3);
        assert_eq!(
            p.base(p.reg_by_name("a0").unwrap()).shape,
            Shape::vector(10)
        );
    }

    #[test]
    fn elided_views_without_default_shape_error() {
        let e = parse_program("BH_SYNC a0\n").unwrap_err();
        assert!(e.to_string().contains("cannot infer shape"));
    }

    #[test]
    fn parses_listing5_power_chain() {
        let text = "\
BH_IDENTITY a0 [0:100:1] 2
BH_MULTIPLY a1 [0:100:1] a0 [0:100:1] a0 [0:100:1]
BH_MULTIPLY a1 [0:100:1] a1 [0:100:1] a1 [0:100:1]
BH_MULTIPLY a1 [0:100:1] a1 [0:100:1] a1 [0:100:1]
BH_MULTIPLY a1 [0:100:1] a1 [0:100:1] a0 [0:100:1]
BH_MULTIPLY a1 [0:100:1] a1 [0:100:1] a0 [0:100:1]
BH_SYNC a1 [0:100:1]
";
        let p = parse_program(text).unwrap();
        assert_eq!(p.count_op(Opcode::Multiply), 5);
        assert_eq!(p.bases().len(), 2);
    }

    #[test]
    fn base_decls_and_inputs() {
        let text = "\
.base x f32[4,4] input
.base y f32[4,4]
BH_MULTIPLY y x x
BH_SYNC y
";
        let p = parse_program(text).unwrap();
        let x = p.reg_by_name("x").unwrap();
        assert!(p.base(x).is_input);
        assert_eq!(p.base(x).dtype, DType::Float32);
        assert_eq!(p.base(x).shape, Shape::from([4, 4]));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "
# Listing 3, optimised
BH_IDENTITY a0 [0:10:1] 0   # init
BH_ADD a0 a0 3              # merged constant
BH_SYNC a0
";
        let p = parse_program(text).unwrap();
        assert_eq!(p.instrs().len(), 3);
    }

    #[test]
    fn attached_view_syntax() {
        let p = parse_program("BH_IDENTITY a0[0:4:1] 1\n").unwrap();
        assert_eq!(p.instrs().len(), 1);
        assert_eq!(p.base(p.reg_by_name("a0").unwrap()).shape, Shape::vector(4));
    }

    #[test]
    fn multi_axis_views() {
        let text = "\
.base m f64[4,6]
BH_IDENTITY m [1:3:1,0:6:2] 7
BH_SYNC m
";
        let p = parse_program(text).unwrap();
        let v = p.instrs()[0].out_view().unwrap();
        let geom = p.resolve_view(v).unwrap();
        assert_eq!(geom.shape(), Shape::from([2, 3]));
    }

    #[test]
    fn arity_mismatch_reports_line() {
        let e = parse_program("BH_ADD a0 [0:4:1] 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("expects 3 operands"));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let e = parse_program("BH_FROBNICATE a0 [0:4:1]\n").unwrap_err();
        assert!(e.to_string().contains("unknown op-code"));
    }

    #[test]
    fn const_result_rejected() {
        let e = parse_program("BH_ADD 1 2 3\n").unwrap_err();
        assert!(e.to_string().contains("must be a view"));
    }

    #[test]
    fn duplicate_decl_rejected() {
        let text = ".base a f64[1]\n.base a f64[1]\n";
        let e = parse_program(text).unwrap_err();
        assert!(e.to_string().contains("declared twice"));
    }

    #[test]
    fn negative_and_typed_constants() {
        let text = "\
.base a i32[4]
BH_IDENTITY a -5
BH_ADD a a 3i32
";
        let p = parse_program(text).unwrap();
        assert_eq!(p.instrs()[0].inputs()[0].as_const(), Some(Scalar::I64(-5)));
        assert_eq!(p.instrs()[1].inputs()[1].as_const(), Some(Scalar::I32(3)));
    }

    #[test]
    fn inference_takes_max_extent() {
        let text = "\
BH_IDENTITY a0 [0:4:1] 0
BH_IDENTITY a0 [4:8:1] 1
BH_SYNC a0 [0:8:1]
";
        let p = parse_program(text).unwrap();
        assert_eq!(p.base(p.reg_by_name("a0").unwrap()).shape, Shape::vector(8));
    }
}
