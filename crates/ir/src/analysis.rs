//! Data-flow analyses over byte-code sequences.
//!
//! The transformation engine needs to answer questions like *"is `a0`
//! touched between these two `BH_ADD`s?"* (constant merging) and *"is the
//! inverse used for anything else?"* (the Eq. 2 context-aware rewrite).
//! This module provides the def-use and liveness machinery behind those
//! answers.

use crate::instr::Instruction;
use crate::operand::Reg;
use crate::program::Program;

/// Def-use index: for every register, the instruction indices that write or
/// read it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefUse {
    defs: Vec<Vec<usize>>,
    uses: Vec<Vec<usize>>,
}

impl DefUse {
    /// Build the index for `program`.
    pub fn compute(program: &Program) -> DefUse {
        let n = program.bases().len();
        let mut defs = vec![Vec::new(); n];
        let mut uses = vec![Vec::new(); n];
        for (i, instr) in program.instrs().iter().enumerate() {
            if let Some(r) = instr.out_reg() {
                defs[r.index()].push(i);
            }
            for r in instr.input_regs() {
                if uses[r.index()].last().is_none_or(|&last| last != i) {
                    uses[r.index()].push(i);
                }
            }
        }
        DefUse { defs, uses }
    }

    /// Instructions that write `reg`, ascending.
    pub fn defs(&self, reg: Reg) -> &[usize] {
        &self.defs[reg.index()]
    }

    /// Instructions that read `reg`, ascending (deduplicated per
    /// instruction).
    pub fn uses(&self, reg: Reg) -> &[usize] {
        &self.uses[reg.index()]
    }

    /// True when some instruction with index in `(after, before)`
    /// (exclusive both ends) reads `reg`.
    pub fn read_between(&self, reg: Reg, after: usize, before: usize) -> bool {
        self.uses(reg).iter().any(|&i| i > after && i < before)
    }

    /// True when some instruction with index in `(after, before)` writes
    /// `reg`.
    pub fn written_between(&self, reg: Reg, after: usize, before: usize) -> bool {
        self.defs(reg).iter().any(|&i| i > after && i < before)
    }

    /// True when `reg` is read anywhere after instruction `idx`
    /// (exclusive). This is the paper's Eq. 2 side condition: the rewrite
    /// of `inverse ∘ matmul` into `solve` is only sound "if we do not use
    /// the A⁻¹ tensor for anything else in our computations".
    pub fn read_after(&self, reg: Reg, idx: usize) -> bool {
        self.uses(reg).iter().any(|&i| i > idx)
    }
}

/// Backward liveness: which registers may still be read at each program
/// point.
///
/// A full-view write kills liveness (the old value is gone); a sliced write
/// does not, because untouched elements survive.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live[i][r]` = is register `r` live *before* instruction `i`?
    /// `live[n]` is the live-at-exit row.
    live: Vec<Vec<bool>>,
}

impl Liveness {
    /// Compute liveness with an empty live-at-exit set: the only observable
    /// results are those a `BH_SYNC` reads before the program ends
    /// (matching Bohrium, where the bridge syncs before touching data).
    pub fn compute(program: &Program) -> Liveness {
        Self::compute_with_exit(program, &[])
    }

    /// Compute liveness with the given registers live at exit (used when a
    /// host embedding will read bases directly without sync instructions).
    pub fn compute_with_exit(program: &Program, live_at_exit: &[Reg]) -> Liveness {
        let n_regs = program.bases().len();
        let n = program.instrs().len();
        let mut live = vec![vec![false; n_regs]; n + 1];
        for r in live_at_exit {
            live[n][r.index()] = true;
        }
        for i in (0..n).rev() {
            let instr = &program.instrs()[i];
            let mut row = live[i + 1].clone();
            // Kill: a full write makes the previous value dead.
            if let Some(out) = instr.out_view() {
                if is_full_write(program, instr) {
                    row[out.reg.index()] = false;
                }
            }
            // Gen: inputs become live. BH_FREE names its target but does
            // not read the *value*, so it generates no liveness — otherwise
            // dead computations kept alive only by their eventual free
            // could never be eliminated.
            if instr.op != crate::opcode::Opcode::Free {
                for r in instr.input_regs() {
                    row[r.index()] = true;
                }
            }
            live[i] = row;
        }
        Liveness { live }
    }

    /// Is `reg` live immediately *before* instruction `idx`?
    pub fn live_before(&self, idx: usize, reg: Reg) -> bool {
        self.live[idx][reg.index()]
    }

    /// Is `reg` live immediately *after* instruction `idx`?
    pub fn live_after(&self, idx: usize, reg: Reg) -> bool {
        self.live[idx + 1][reg.index()]
    }

    /// Is the value written by instruction `idx` ever observed? (Dead-store
    /// test used by DCE.)
    pub fn write_is_live(&self, program: &Program, idx: usize) -> bool {
        match program.instrs()[idx].out_reg() {
            Some(r) => self.live_after(idx, r),
            None => true, // system ops are effects, never "dead stores"
        }
    }
}

/// True when re-executing `program` on a VM that still holds base
/// buffers from a previous run of the *same* program is observationally
/// identical to executing it on a fresh VM — **provided every base
/// declared `input` is re-bound wholesale before the run**.
///
/// A re-run only observes leftover state through a read of a non-input
/// register position the current run has not yet defined. So the program
/// is re-run safe when every read of a non-input register is preceded by
/// a *full* write ([`is_full_write`]) or a `BH_FREE` (a freed base
/// re-allocates zero-filled, exactly the state a first run sees).
/// Partial-view writes define nothing for this purpose: validation
/// accepts `write a[0:2] ; read a[0:4]`, whose untouched tail would leak
/// the previous run's values.
///
/// Batched serving uses this to decide whether a pinned VM may run a
/// plan back-to-back without recycling between requests; a `false`
/// answer costs a recycle, never correctness.
pub fn rerun_safe(program: &Program) -> bool {
    use crate::opcode::Opcode;
    use crate::operand::Operand;
    // `fresh[r]`: the current content of `r` is independent of pre-run
    // VM state (input rebound, fully rewritten, or discarded).
    let mut fresh: Vec<bool> = program.bases().iter().map(|b| b.is_input).collect();
    for instr in program.instrs() {
        if instr.op == Opcode::Free {
            if let Some(v) = instr.operands.first().and_then(|o| o.as_view()) {
                fresh[v.reg.index()] = true;
            }
            continue;
        }
        for o in instr.inputs() {
            if let Operand::View(v) = o {
                if !fresh[v.reg.index()] {
                    return false;
                }
            }
        }
        if let Some(v) = instr.out_view() {
            if is_full_write(program, instr) {
                fresh[v.reg.index()] = true;
            }
        }
    }
    true
}

/// True when the instruction's output view covers its whole base, so the
/// write fully replaces the register's previous value.
pub fn is_full_write(program: &Program, instr: &Instruction) -> bool {
    match instr.out_view() {
        None => false,
        Some(v) => match program.resolve_view(v) {
            Ok(geom) => {
                geom.nelem() == program.base(v.reg).shape.nelem() && {
                    // Same element count and contiguity from offset 0 ⇒ covers
                    // the base exactly.
                    geom.offset() == 0 && geom.is_contiguous()
                }
            }
            Err(_) => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;
    use crate::operand::ViewRef;
    use crate::program::ProgramBuilder;
    use bh_tensor::{DType, Scalar, Shape, Slice};

    /// Listing 2: identity, three adds, sync.
    fn listing2() -> Program {
        let mut b = ProgramBuilder::new(DType::Float64, Shape::vector(10));
        let a0 = b.reg("a0");
        b.identity_const(a0, Scalar::F64(0.0));
        for _ in 0..3 {
            b.binary(Opcode::Add, a0, ViewRef::full(a0), Scalar::F64(1.0));
        }
        b.sync(a0);
        b.build()
    }

    #[test]
    fn def_use_listing2() {
        let p = listing2();
        let du = DefUse::compute(&p);
        let a0 = p.reg_by_name("a0").unwrap();
        assert_eq!(du.defs(a0), &[0, 1, 2, 3]);
        assert_eq!(du.uses(a0), &[1, 2, 3, 4]);
    }

    #[test]
    fn read_between_and_after() {
        let p = listing2();
        let du = DefUse::compute(&p);
        let a0 = p.reg_by_name("a0").unwrap();
        assert!(du.read_between(a0, 0, 2)); // the add at 1 reads a0
        assert!(!du.read_between(a0, 3, 4)); // nothing strictly between
        assert!(du.read_after(a0, 3)); // sync reads it
        assert!(!du.read_after(a0, 4));
    }

    #[test]
    fn liveness_sync_keeps_value_alive() {
        let p = listing2();
        let lv = Liveness::compute(&p);
        let a0 = p.reg_by_name("a0").unwrap();
        // Live between the adds and before the sync.
        assert!(lv.live_after(1, a0));
        assert!(lv.live_after(3, a0));
        // Dead after the sync (nothing reads it later).
        assert!(!lv.live_after(4, a0));
        // Dead before the identity (the full write kills upward liveness).
        assert!(!lv.live_before(0, a0));
    }

    #[test]
    fn dead_store_detected_without_sync() {
        let mut b = ProgramBuilder::new(DType::Float64, Shape::vector(4));
        let a0 = b.reg("a0");
        b.identity_const(a0, Scalar::F64(1.0)); // dead: overwritten below
        b.identity_const(a0, Scalar::F64(2.0));
        b.sync(a0);
        let p = b.build();
        let lv = Liveness::compute(&p);
        assert!(!lv.write_is_live(&p, 0));
        assert!(lv.write_is_live(&p, 1));
    }

    #[test]
    fn sliced_write_does_not_kill() {
        let mut p = Program::new();
        let a0 = p.declare("a0", DType::Float64, Shape::vector(10));
        p.push(Instruction::unary(
            Opcode::Identity,
            ViewRef::full(a0),
            Scalar::F64(1.0),
        ));
        // Partial write: only half the elements.
        p.push(Instruction::unary(
            Opcode::Identity,
            ViewRef::sliced(a0, vec![Slice::range(0, 5)]),
            Scalar::F64(2.0),
        ));
        p.push(Instruction::sync(ViewRef::full(a0)));
        let lv = Liveness::compute(&p);
        // The first write is still (partially) observable.
        assert!(lv.write_is_live(&p, 0));
        assert!(!is_full_write(&p, &p.instrs()[1]));
        assert!(is_full_write(&p, &p.instrs()[0]));
    }

    #[test]
    fn live_at_exit_override() {
        let mut b = ProgramBuilder::new(DType::Float64, Shape::vector(4));
        let a0 = b.reg("a0");
        b.identity_const(a0, Scalar::F64(1.0));
        let p = b.build();
        let lv = Liveness::compute(&p);
        assert!(!lv.write_is_live(&p, 0));
        let lv = Liveness::compute_with_exit(&p, &[a0]);
        assert!(lv.write_is_live(&p, 0));
    }

    #[test]
    fn uses_deduplicated_per_instruction() {
        // BH_MULTIPLY a1 a1 a1 reads a1 twice but should index it once.
        let mut b = ProgramBuilder::new(DType::Float64, Shape::vector(4));
        let a1 = b.reg("a1");
        b.identity_const(a1, Scalar::F64(2.0));
        b.binary(Opcode::Multiply, a1, ViewRef::full(a1), ViewRef::full(a1));
        let p = b.build();
        let du = DefUse::compute(&p);
        assert_eq!(du.uses(a1), &[1]);
    }

    #[test]
    fn rerun_safe_full_write_chains() {
        // Listing 2 fully initialises before every read.
        assert!(rerun_safe(&listing2()));
    }

    #[test]
    fn rerun_safe_rejects_partial_write_then_full_read() {
        // `y[0:2] = 5; y[0:4] += 1; sync y` validates (the partial write
        // marks y written) but the untouched tail of y would carry a
        // previous run's residue.
        let p = crate::parse_program(
            ".base y f64[4]\n\
             BH_IDENTITY y [0:2:1] 5\n\
             BH_ADD y y 1\n\
             BH_SYNC y\n",
        )
        .unwrap();
        assert!(crate::validate(&p).is_ok());
        assert!(!rerun_safe(&p));
    }

    #[test]
    fn rerun_safe_trusts_rebound_inputs() {
        let p =
            crate::parse_program(".base x f64[4] input\n.base y f64[4]\nBH_ADD y x 1\nBH_SYNC y\n")
                .unwrap();
        assert!(rerun_safe(&p));
    }

    #[test]
    fn rerun_safe_rejects_sync_of_partially_written_register() {
        let p =
            crate::parse_program(".base y f64[4]\nBH_IDENTITY y [0:2:1] 5\nBH_SYNC y\n").unwrap();
        assert!(!rerun_safe(&p));
    }

    #[test]
    fn rerun_safe_treats_free_as_reset() {
        // Freed then re-read: both a fresh and a reused VM re-allocate
        // zero-filled, so the re-run observes nothing stale.
        let p = crate::parse_program(
            "BH_IDENTITY a [0:4:1] 1\n\
             BH_FREE a\n\
             BH_ADD b [0:4:1] a [0:4:1] 1\n\
             BH_SYNC b\n",
        )
        .unwrap();
        assert!(rerun_safe(&p));
    }
}
