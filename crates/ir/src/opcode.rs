//! The byte-code op-code table.
//!
//! Mirrors Bohrium's `bh_opcode` set (IPDPSW'14, §3): element-wise
//! arithmetic, comparisons, logicals, transcendentals, reductions, scans,
//! generators and system codes, plus the linear-algebra *extension methods*
//! (`BH_MATMUL` et al.) that context-aware transformations such as Eq. 2 of
//! the paper operate on.
//!
//! Each op-code carries the algebraic metadata the transformation engine
//! keys off: arity, commutativity, associativity, identity and annihilator
//! elements, and the dtype rule.

use bh_tensor::{DType, Scalar};
use std::fmt;
use std::str::FromStr;

/// Classification of an op-code, driving validation, scheduling and fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// One output view, one input (view or constant), applied per element.
    ElementwiseUnary,
    /// One output view, two inputs (views or constants), applied per element.
    ElementwiseBinary,
    /// Reduce one axis: `out`, input view, axis constant.
    Reduction,
    /// Prefix-scan one axis: `out`, input view, axis constant.
    Scan,
    /// Fills the output view from nothing (`BH_RANGE`) or a seed constant
    /// (`BH_RANDOM`).
    Generator,
    /// Runtime directives with no data result: `BH_SYNC`, `BH_FREE`,
    /// `BH_NONE`.
    System,
    /// Whole-tensor linear-algebra extension method.
    LinAlg,
}

/// Dtype rule of an op-code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeRule {
    /// Output dtype equals the (common) input dtype.
    Same,
    /// Inputs any common dtype; output is `Bool` (comparisons, `BH_ISNAN`).
    CompareLike,
    /// Inputs and output `Bool` only.
    BoolOnly,
    /// Inputs and output integer (or bool for the bitwise family).
    IntLike,
    /// Inputs and output floating point only.
    FloatOnly,
    /// `BH_IDENTITY`: output dtype free; value is cast.
    Cast,
    /// No data typing (system ops).
    None,
}

macro_rules! opcodes {
    ($( $variant:ident, $name:literal, $kind:expr, $rule:expr; )*) => {
        /// A byte-code op-code (`BH_ADD`, `BH_MULTIPLY`, …).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum Opcode {
            $(
                #[doc = concat!("`", $name, "`")]
                $variant,
            )*
        }

        /// Every op-code, for exhaustive iteration in tests and tables.
        pub const ALL_OPCODES: &[Opcode] = &[ $( Opcode::$variant, )* ];

        impl Opcode {
            /// The canonical byte-code mnemonic (`"BH_ADD"`).
            pub const fn name(self) -> &'static str {
                match self { $( Opcode::$variant => $name, )* }
            }

            /// The op-code's classification.
            pub const fn kind(self) -> OpKind {
                match self { $( Opcode::$variant => $kind, )* }
            }

            /// The op-code's dtype rule.
            pub const fn type_rule(self) -> TypeRule {
                match self { $( Opcode::$variant => $rule, )* }
            }
        }

        impl FromStr for Opcode {
            type Err = ParseOpcodeError;
            fn from_str(s: &str) -> Result<Self, Self::Err> {
                match s { $( $name => Ok(Opcode::$variant), )*
                    _ => Err(ParseOpcodeError { text: s.to_owned() }),
                }
            }
        }
    };
}

use OpKind::*;
use TypeRule::{BoolOnly, Cast, CompareLike, FloatOnly, IntLike, Same};

opcodes! {
    // --- element-wise binary arithmetic ---
    Add,           "BH_ADD",            ElementwiseBinary, Same;
    Subtract,      "BH_SUBTRACT",       ElementwiseBinary, Same;
    Multiply,      "BH_MULTIPLY",       ElementwiseBinary, Same;
    Divide,        "BH_DIVIDE",         ElementwiseBinary, Same;
    Power,         "BH_POWER",          ElementwiseBinary, Same;
    Mod,           "BH_MOD",            ElementwiseBinary, Same;
    Maximum,       "BH_MAXIMUM",        ElementwiseBinary, Same;
    Minimum,       "BH_MINIMUM",        ElementwiseBinary, Same;
    Arctan2,       "BH_ARCTAN2",        ElementwiseBinary, FloatOnly;
    // --- bitwise / shifts (integer & bool family) ---
    BitwiseAnd,    "BH_BITWISE_AND",    ElementwiseBinary, IntLike;
    BitwiseOr,     "BH_BITWISE_OR",     ElementwiseBinary, IntLike;
    BitwiseXor,    "BH_BITWISE_XOR",    ElementwiseBinary, IntLike;
    LeftShift,     "BH_LEFT_SHIFT",     ElementwiseBinary, IntLike;
    RightShift,    "BH_RIGHT_SHIFT",    ElementwiseBinary, IntLike;
    // --- comparisons (bool out) ---
    Greater,       "BH_GREATER",        ElementwiseBinary, CompareLike;
    GreaterEqual,  "BH_GREATER_EQUAL",  ElementwiseBinary, CompareLike;
    Less,          "BH_LESS",           ElementwiseBinary, CompareLike;
    LessEqual,     "BH_LESS_EQUAL",     ElementwiseBinary, CompareLike;
    Equal,         "BH_EQUAL",          ElementwiseBinary, CompareLike;
    NotEqual,      "BH_NOT_EQUAL",      ElementwiseBinary, CompareLike;
    // --- logicals (bool in & out) ---
    LogicalAnd,    "BH_LOGICAL_AND",    ElementwiseBinary, BoolOnly;
    LogicalOr,     "BH_LOGICAL_OR",     ElementwiseBinary, BoolOnly;
    LogicalXor,    "BH_LOGICAL_XOR",    ElementwiseBinary, BoolOnly;
    LogicalNot,    "BH_LOGICAL_NOT",    ElementwiseUnary,  BoolOnly;
    // --- element-wise unary ---
    Identity,      "BH_IDENTITY",       ElementwiseUnary,  Cast;
    Invert,        "BH_INVERT",         ElementwiseUnary,  IntLike;
    Absolute,      "BH_ABSOLUTE",       ElementwiseUnary,  Same;
    Sign,          "BH_SIGN",           ElementwiseUnary,  Same;
    Sqrt,          "BH_SQRT",           ElementwiseUnary,  FloatOnly;
    Exp,           "BH_EXP",            ElementwiseUnary,  FloatOnly;
    Exp2,          "BH_EXP2",           ElementwiseUnary,  FloatOnly;
    Expm1,         "BH_EXPM1",          ElementwiseUnary,  FloatOnly;
    Log,           "BH_LOG",            ElementwiseUnary,  FloatOnly;
    Log2,          "BH_LOG2",           ElementwiseUnary,  FloatOnly;
    Log10,         "BH_LOG10",          ElementwiseUnary,  FloatOnly;
    Log1p,         "BH_LOG1P",          ElementwiseUnary,  FloatOnly;
    Sin,           "BH_SIN",            ElementwiseUnary,  FloatOnly;
    Cos,           "BH_COS",            ElementwiseUnary,  FloatOnly;
    Tan,           "BH_TAN",            ElementwiseUnary,  FloatOnly;
    Sinh,          "BH_SINH",           ElementwiseUnary,  FloatOnly;
    Cosh,          "BH_COSH",           ElementwiseUnary,  FloatOnly;
    Tanh,          "BH_TANH",           ElementwiseUnary,  FloatOnly;
    Arcsin,        "BH_ARCSIN",         ElementwiseUnary,  FloatOnly;
    Arccos,        "BH_ARCCOS",         ElementwiseUnary,  FloatOnly;
    Arctan,        "BH_ARCTAN",         ElementwiseUnary,  FloatOnly;
    Arcsinh,       "BH_ARCSINH",        ElementwiseUnary,  FloatOnly;
    Arccosh,       "BH_ARCCOSH",        ElementwiseUnary,  FloatOnly;
    Arctanh,       "BH_ARCTANH",        ElementwiseUnary,  FloatOnly;
    Ceil,          "BH_CEIL",           ElementwiseUnary,  FloatOnly;
    Floor,         "BH_FLOOR",          ElementwiseUnary,  FloatOnly;
    Trunc,         "BH_TRUNC",          ElementwiseUnary,  FloatOnly;
    Rint,          "BH_RINT",           ElementwiseUnary,  FloatOnly;
    IsNan,         "BH_ISNAN",          ElementwiseUnary,  CompareLike;
    IsInf,         "BH_ISINF",          ElementwiseUnary,  CompareLike;
    // --- reductions (axis constant as second input) ---
    AddReduce,     "BH_ADD_REDUCE",     Reduction, Same;
    MultiplyReduce,"BH_MULTIPLY_REDUCE",Reduction, Same;
    MinimumReduce, "BH_MINIMUM_REDUCE", Reduction, Same;
    MaximumReduce, "BH_MAXIMUM_REDUCE", Reduction, Same;
    // --- scans ---
    AddAccumulate, "BH_ADD_ACCUMULATE", Scan, Same;
    MultiplyAccumulate, "BH_MULTIPLY_ACCUMULATE", Scan, Same;
    // --- generators ---
    Range,         "BH_RANGE",          Generator, Same;
    Random,        "BH_RANDOM",         Generator, Same;
    // --- system ---
    Sync,          "BH_SYNC",           System, TypeRule::None;
    Free,          "BH_FREE",           System, TypeRule::None;
    NoOp,          "BH_NONE",           System, TypeRule::None;
    // --- linear-algebra extension methods ---
    MatMul,        "BH_MATMUL",         LinAlg, FloatOnly;
    Transpose,     "BH_TRANSPOSE",      LinAlg, Same;
    Inverse,       "BH_INVERSE",        LinAlg, FloatOnly;
    Solve,         "BH_SOLVE",          LinAlg, FloatOnly;
}

impl Opcode {
    /// Number of *input* operands (excluding the output view).
    pub const fn arity(self) -> usize {
        match self.kind() {
            ElementwiseUnary | Generator => match self {
                Opcode::Range => 0,
                _ => 1,
            },
            ElementwiseBinary => 2,
            Reduction | Scan => 2, // input view + axis constant
            System => 0,           // the single operand is the target view
            LinAlg => match self {
                Opcode::Transpose | Opcode::Inverse => 1,
                _ => 2,
            },
        }
    }

    /// Total operand count as written in the byte-code text
    /// (output + inputs; 1 for `BH_SYNC`/`BH_FREE`, 0 for `BH_NONE`).
    pub const fn operand_count(self) -> usize {
        match self.kind() {
            System => match self {
                Opcode::NoOp => 0,
                _ => 1,
            },
            _ => 1 + self.arity(),
        }
    }

    /// True for element-wise op-codes (unary or binary): the fusion
    /// candidates.
    pub const fn is_elementwise(self) -> bool {
        matches!(self.kind(), ElementwiseUnary | ElementwiseBinary)
    }

    /// True if the op has a data-producing output view.
    pub const fn has_output(self) -> bool {
        !matches!(self.kind(), System)
    }

    /// `a ⊕ b == b ⊕ a` element-wise.
    pub const fn is_commutative(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Multiply
                | Opcode::Maximum
                | Opcode::Minimum
                | Opcode::BitwiseAnd
                | Opcode::BitwiseOr
                | Opcode::BitwiseXor
                | Opcode::LogicalAnd
                | Opcode::LogicalOr
                | Opcode::LogicalXor
                | Opcode::Equal
                | Opcode::NotEqual
        )
    }

    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` element-wise.
    ///
    /// Float `Add`/`Multiply` are only associative up to rounding; rules
    /// that exploit this on float data are gated behind the optimizer's
    /// `fast_math` flag (see `bh-opt`).
    pub const fn is_associative(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Multiply
                | Opcode::Maximum
                | Opcode::Minimum
                | Opcode::BitwiseAnd
                | Opcode::BitwiseOr
                | Opcode::BitwiseXor
                | Opcode::LogicalAnd
                | Opcode::LogicalOr
                | Opcode::LogicalXor
        )
    }

    /// The constant `e` with `x ⊕ e == x`, if the op has a right identity.
    pub fn identity_scalar(self, dtype: DType) -> Option<Scalar> {
        match self {
            Opcode::Add
            | Opcode::Subtract
            | Opcode::BitwiseOr
            | Opcode::BitwiseXor
            | Opcode::LeftShift
            | Opcode::RightShift => Some(Scalar::zero(dtype)),
            Opcode::Multiply | Opcode::Divide | Opcode::Power => Some(Scalar::one(dtype)),
            // All-ones mask: `x & !0 == x`. `-1` wraps to the full mask for
            // every integer width and to `true` for bool; floats have no
            // bitwise identity.
            Opcode::BitwiseAnd if !dtype.is_float() => Some(Scalar::from_i64(-1, dtype)),
            Opcode::LogicalOr | Opcode::LogicalXor => Some(Scalar::Bool(false)),
            Opcode::LogicalAnd => Some(Scalar::Bool(true)),
            _ => None,
        }
    }

    /// The constant `z` with `x ⊕ z == z` for all `x`, if the op has a
    /// right annihilator (exact only for integer dtypes in the `Multiply`
    /// case: `0 * NaN != 0` for floats).
    pub fn annihilator_scalar(self, dtype: DType) -> Option<Scalar> {
        match self {
            Opcode::Multiply | Opcode::BitwiseAnd => Some(Scalar::zero(dtype)),
            Opcode::LogicalAnd => Some(Scalar::Bool(false)),
            Opcode::LogicalOr => Some(Scalar::Bool(true)),
            _ => None,
        }
    }

    /// For a reduction/scan, the element-wise op it folds with.
    pub const fn fold_op(self) -> Option<Opcode> {
        match self {
            Opcode::AddReduce | Opcode::AddAccumulate => Some(Opcode::Add),
            Opcode::MultiplyReduce | Opcode::MultiplyAccumulate => Some(Opcode::Multiply),
            Opcode::MinimumReduce => Some(Opcode::Minimum),
            Opcode::MaximumReduce => Some(Opcode::Maximum),
            _ => None,
        }
    }

    /// Check one input dtype against the rule; returns the *output* dtype on
    /// success (for binary ops both inputs must already agree — enforced by
    /// `bh-ir`'s validator).
    pub fn result_dtype(self, input: DType) -> Result<DType, OpcodeTypeError> {
        let ok = |d| Ok(d);
        let fail = || {
            Err(OpcodeTypeError {
                opcode: self,
                dtype: input,
            })
        };
        match self.type_rule() {
            Same => ok(input),
            CompareLike => ok(DType::Bool),
            BoolOnly => {
                if input == DType::Bool {
                    ok(DType::Bool)
                } else {
                    fail()
                }
            }
            IntLike => {
                if input.is_integer() || input == DType::Bool {
                    ok(input)
                } else {
                    fail()
                }
            }
            FloatOnly => {
                if input.is_float() {
                    ok(input)
                } else {
                    fail()
                }
            }
            Cast => ok(input), // output dtype is the *output view's*; checked upstream
            TypeRule::None => ok(input),
        }
    }

    /// Abstract per-element cost in "flop units", used by the optimizer's
    /// cost model; calibrated to the conventional wisdom the paper leans on
    /// (`BH_POWER` ≫ `BH_MULTIPLY`).
    pub const fn unit_cost(self) -> u64 {
        match self {
            Opcode::Identity | Opcode::NoOp | Opcode::Sync | Opcode::Free => 1,
            Opcode::Add
            | Opcode::Subtract
            | Opcode::Maximum
            | Opcode::Minimum
            | Opcode::BitwiseAnd
            | Opcode::BitwiseOr
            | Opcode::BitwiseXor
            | Opcode::LeftShift
            | Opcode::RightShift
            | Opcode::LogicalAnd
            | Opcode::LogicalOr
            | Opcode::LogicalXor
            | Opcode::LogicalNot
            | Opcode::Invert
            | Opcode::Absolute
            | Opcode::Sign
            | Opcode::Greater
            | Opcode::GreaterEqual
            | Opcode::Less
            | Opcode::LessEqual
            | Opcode::Equal
            | Opcode::NotEqual
            | Opcode::IsNan
            | Opcode::IsInf
            | Opcode::Ceil
            | Opcode::Floor
            | Opcode::Trunc
            | Opcode::Rint => 1,
            Opcode::Multiply => 1,
            Opcode::Divide | Opcode::Mod => 4,
            Opcode::Sqrt => 6,
            Opcode::Exp
            | Opcode::Exp2
            | Opcode::Expm1
            | Opcode::Log
            | Opcode::Log2
            | Opcode::Log10
            | Opcode::Log1p
            | Opcode::Sin
            | Opcode::Cos
            | Opcode::Tan
            | Opcode::Sinh
            | Opcode::Cosh
            | Opcode::Tanh
            | Opcode::Arcsin
            | Opcode::Arccos
            | Opcode::Arctan
            | Opcode::Arcsinh
            | Opcode::Arccosh
            | Opcode::Arctanh
            | Opcode::Arctan2 => 20,
            // pow(x, y) via exp/log on the slow path — the cost the paper's
            // §4 benchmark claim hinges on.
            Opcode::Power => 40,
            Opcode::AddReduce
            | Opcode::MultiplyReduce
            | Opcode::MinimumReduce
            | Opcode::MaximumReduce
            | Opcode::AddAccumulate
            | Opcode::MultiplyAccumulate => 1,
            Opcode::Range | Opcode::Random => 2,
            // LinAlg ops are super-linear; cost handled separately by the
            // cost model, this is the per-output-element floor.
            Opcode::MatMul | Opcode::Transpose | Opcode::Inverse | Opcode::Solve => 1,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing an op-code mnemonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpcodeError {
    text: String,
}

impl fmt::Display for ParseOpcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown op-code `{}`", self.text)
    }
}

impl std::error::Error for ParseOpcodeError {}

/// Error from [`Opcode::result_dtype`]: dtype not supported by the op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpcodeTypeError {
    /// The op-code that rejected the dtype.
    pub opcode: Opcode,
    /// The offending dtype.
    pub dtype: DType,
}

impl fmt::Display for OpcodeTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} does not support dtype {}", self.opcode, self.dtype)
    }
}

impl std::error::Error for OpcodeTypeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_tensor::ALL_DTYPES;

    #[test]
    fn names_round_trip() {
        for &op in ALL_OPCODES {
            assert_eq!(op.name().parse::<Opcode>().unwrap(), op);
        }
        assert!("BH_BOGUS".parse::<Opcode>().is_err());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ALL_OPCODES.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_OPCODES.len());
    }

    #[test]
    fn paper_opcodes_present() {
        // Every op-code appearing in the paper's listings or prose.
        for name in [
            "BH_IDENTITY",
            "BH_ADD",
            "BH_SYNC",
            "BH_MULTIPLY",
            "BH_POWER",
        ] {
            assert!(name.parse::<Opcode>().is_ok(), "{name}");
        }
    }

    #[test]
    fn arity_table() {
        assert_eq!(Opcode::Add.arity(), 2);
        assert_eq!(Opcode::Identity.arity(), 1);
        assert_eq!(Opcode::Sync.arity(), 0);
        assert_eq!(Opcode::Sync.operand_count(), 1);
        assert_eq!(Opcode::Add.operand_count(), 3);
        assert_eq!(Opcode::Range.operand_count(), 1);
        assert_eq!(Opcode::Random.operand_count(), 2);
        assert_eq!(Opcode::AddReduce.operand_count(), 3);
        assert_eq!(Opcode::MatMul.operand_count(), 3);
        assert_eq!(Opcode::Inverse.operand_count(), 2);
    }

    #[test]
    fn commutative_implies_binary() {
        for &op in ALL_OPCODES {
            if op.is_commutative() {
                assert_eq!(op.arity(), 2, "{op}");
            }
        }
    }

    #[test]
    fn associative_ops_are_commutative_here() {
        // In this op set every associative op is also commutative; the
        // optimizer relies on checking both flags independently, but the
        // table should stay consistent with itself.
        for &op in ALL_OPCODES {
            if op.is_associative() {
                assert!(op.is_commutative(), "{op}");
            }
        }
    }

    #[test]
    fn identities_are_identities() {
        // x + 0 == x, x * 1 == x, x ^ 1 == x over f64 samples.
        let x = 3.7f64;
        assert_eq!(
            x + Opcode::Add
                .identity_scalar(DType::Float64)
                .unwrap()
                .as_f64(),
            x
        );
        assert_eq!(
            x * Opcode::Multiply
                .identity_scalar(DType::Float64)
                .unwrap()
                .as_f64(),
            x
        );
        assert_eq!(
            x.powf(
                Opcode::Power
                    .identity_scalar(DType::Float64)
                    .unwrap()
                    .as_f64()
            ),
            x
        );
        assert_eq!(Opcode::Greater.identity_scalar(DType::Float64), None);
    }

    #[test]
    fn annihilators_annihilate() {
        let z = Opcode::Multiply.annihilator_scalar(DType::Int64).unwrap();
        assert_eq!(7i64 * z.as_f64() as i64, 0);
        assert_eq!(Opcode::Add.annihilator_scalar(DType::Int64), None);
    }

    #[test]
    fn type_rules() {
        assert_eq!(
            Opcode::Add.result_dtype(DType::Float64).unwrap(),
            DType::Float64
        );
        assert_eq!(
            Opcode::Greater.result_dtype(DType::Int32).unwrap(),
            DType::Bool
        );
        assert!(Opcode::Sqrt.result_dtype(DType::Int32).is_err());
        assert!(Opcode::LogicalAnd.result_dtype(DType::Float64).is_err());
        assert!(Opcode::BitwiseAnd.result_dtype(DType::Float32).is_err());
        assert_eq!(
            Opcode::BitwiseAnd.result_dtype(DType::Bool).unwrap(),
            DType::Bool
        );
        for &d in &ALL_DTYPES {
            assert!(Opcode::Identity.result_dtype(d).is_ok());
        }
    }

    #[test]
    fn power_costs_more_than_multiply_chain_of_five() {
        // The economics behind Listing 5: five multiplies must be cheaper
        // than one BH_POWER for the rewrite to pay off.
        assert!(5 * Opcode::Multiply.unit_cost() < Opcode::Power.unit_cost());
    }

    #[test]
    fn fold_ops_match() {
        assert_eq!(Opcode::AddReduce.fold_op(), Some(Opcode::Add));
        assert_eq!(Opcode::MaximumReduce.fold_op(), Some(Opcode::Maximum));
        assert_eq!(Opcode::Add.fold_op(), None);
    }

    #[test]
    fn elementwise_classification() {
        assert!(Opcode::Add.is_elementwise());
        assert!(Opcode::Sqrt.is_elementwise());
        assert!(!Opcode::AddReduce.is_elementwise());
        assert!(!Opcode::Sync.is_elementwise());
        assert!(!Opcode::MatMul.is_elementwise());
    }

    #[test]
    fn has_output() {
        assert!(Opcode::Add.has_output());
        assert!(Opcode::Range.has_output());
        assert!(!Opcode::Sync.has_output());
        assert!(!Opcode::Free.has_output());
    }

    #[test]
    fn display_is_mnemonic() {
        assert_eq!(Opcode::Multiply.to_string(), "BH_MULTIPLY");
    }
}
