//! Compile-time scalar evaluation for constant folding.
//!
//! The constant-merging rule of Listing 3 needs `1 + 1 + 1 = 3` evaluated
//! at transformation time, in the *target dtype's* arithmetic (wrapping
//! u8 addition must wrap here exactly as it would in the VM).

use crate::Opcode;
use bh_tensor::{DType, Scalar};

/// Evaluate `a ⊕ b` in `dtype` arithmetic, for the foldable op-codes.
///
/// Returns `None` for op-codes the folder does not handle (the caller must
/// then leave the byte-code untouched).
pub fn const_eval(op: Opcode, a: Scalar, b: Scalar, dtype: DType) -> Option<Scalar> {
    if dtype.is_float() {
        let (x, y) = (a.as_f64(), b.as_f64());
        let v = match op {
            Opcode::Add => x + y,
            Opcode::Subtract => x - y,
            Opcode::Multiply => x * y,
            Opcode::Divide => x / y,
            Opcode::Maximum => x.max(y),
            Opcode::Minimum => x.min(y),
            Opcode::Power => x.powf(y),
            _ => return None,
        };
        return Some(Scalar::from_f64(v, dtype));
    }
    if dtype == DType::Bool {
        let (x, y) = (a.as_f64() != 0.0, b.as_f64() != 0.0);
        let v = match op {
            Opcode::Add | Opcode::LogicalOr | Opcode::BitwiseOr | Opcode::Maximum => x | y,
            Opcode::Multiply | Opcode::LogicalAnd | Opcode::BitwiseAnd | Opcode::Minimum => x & y,
            Opcode::Subtract | Opcode::LogicalXor | Opcode::BitwiseXor => x ^ y,
            _ => return None,
        };
        return Some(Scalar::Bool(v));
    }
    // Integer dtypes: canonicalise both operands into the dtype's domain
    // (wrap to width, then sign- or zero-extend back into i64) and fold
    // there, so value-dependent ops see exactly what the VM's in-dtype
    // element ops see. Folding raw i64s diverged for unsigned dtypes:
    // u8 `255 / 2` is 127 in-domain, but an i64 carrying -1 gave 0.
    let (x, y) = (
        to_domain(a.as_integral()?, dtype),
        to_domain(b.as_integral()?, dtype),
    );
    let signed = dtype.is_signed_integer();
    let bits = dtype.size_of() as u32 * 8;
    let v = match op {
        // Wrapping ring ops commute with truncation (arithmetic mod 2^64
        // truncated to 2^w equals arithmetic mod 2^w), so they may run in
        // i64 regardless of signedness.
        Opcode::Add => x.wrapping_add(y),
        Opcode::Subtract => x.wrapping_sub(y),
        Opcode::Multiply => x.wrapping_mul(y),
        // Value-dependent ops run in the dtype's own domain.
        Opcode::Divide => {
            if y == 0 {
                0
            } else if signed {
                x.wrapping_div(y)
            } else {
                ((x as u64) / (y as u64)) as i64
            }
        }
        Opcode::Mod => {
            // Floored modulo, matching `VmElement::vm_mod`: a non-zero
            // result takes the divisor's sign; mod 0 is 0.
            if y == 0 {
                0
            } else if signed {
                let r = x.wrapping_rem(y);
                if r != 0 && (r < 0) != (y < 0) {
                    r.wrapping_add(y)
                } else {
                    r
                }
            } else {
                ((x as u64) % (y as u64)) as i64
            }
        }
        Opcode::Power => {
            // Matching `VmElement::vm_pow`: negative exponents truncate
            // (1^-n = 1, else 0); exponents beyond u32::MAX saturate.
            if signed && y < 0 {
                i64::from(x == 1)
            } else {
                let e = u64::min(y as u64, u32::MAX as u64) as u32;
                (x as u64).wrapping_pow(e) as i64
            }
        }
        Opcode::Maximum if signed => x.max(y),
        Opcode::Maximum => ((x as u64).max(y as u64)) as i64,
        Opcode::Minimum if signed => x.min(y),
        Opcode::Minimum => ((x as u64).min(y as u64)) as i64,
        Opcode::BitwiseAnd => x & y,
        Opcode::BitwiseOr => x | y,
        Opcode::BitwiseXor => x ^ y,
        Opcode::LeftShift => x.wrapping_shl((y as u32) % bits),
        Opcode::RightShift if signed => x.wrapping_shr((y as u32) % bits),
        Opcode::RightShift => ((x as u64) >> ((y as u32) % bits)) as i64,
        _ => return None,
    };
    Some(Scalar::from_i64(v, dtype))
}

/// Wrap `v` to `dtype`'s width and extend it back into an `i64` carrying
/// the dtype's *value*: sign-extended for signed dtypes, zero-extended
/// for unsigned ones (u64 keeps its bit pattern, so `x as u64` always
/// recovers the domain value).
fn to_domain(v: i64, dtype: DType) -> i64 {
    let bits = dtype.size_of() as u32 * 8;
    if bits == 64 {
        return v;
    }
    let shift = 64 - bits;
    if dtype.is_signed_integer() {
        (v << shift) >> shift
    } else {
        v & ((1i64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_the_paper_constants() {
        // 1 + 1 + 1 -> 3, the Listing 2 -> Listing 3 fold.
        let one = Scalar::F64(1.0);
        let two = const_eval(Opcode::Add, one, one, DType::Float64).unwrap();
        let three = const_eval(Opcode::Add, two, one, DType::Float64).unwrap();
        assert_eq!(three, Scalar::F64(3.0));
    }

    #[test]
    fn integer_folding_wraps_like_the_vm() {
        let a = Scalar::I64(200);
        let b = Scalar::I64(100);
        assert_eq!(
            const_eval(Opcode::Add, a, b, DType::UInt8).unwrap(),
            Scalar::U8(44) // (200 + 100) mod 256
        );
    }

    #[test]
    fn division_by_zero_folds_to_zero_for_ints() {
        assert_eq!(
            const_eval(Opcode::Divide, Scalar::I32(7), Scalar::I32(0), DType::Int32).unwrap(),
            Scalar::I32(0)
        );
    }

    #[test]
    fn unsigned_folds_run_in_domain() {
        // Regression: u8 255 / 2 must be 127 (in-domain), not 0 (the i64
        // -1 / 2 the old raw fold computed when 255 arrived as I8(-1)).
        assert_eq!(
            const_eval(Opcode::Divide, Scalar::I8(-1), Scalar::I8(2), DType::UInt8).unwrap(),
            Scalar::U8(127)
        );
        assert_eq!(
            const_eval(
                Opcode::Divide,
                Scalar::I64(255),
                Scalar::I64(2),
                DType::UInt8
            )
            .unwrap(),
            Scalar::U8(127)
        );
        // Maximum/Minimum compare unsigned values, not sign-extended ones.
        assert_eq!(
            const_eval(Opcode::Maximum, Scalar::I8(-1), Scalar::I8(1), DType::UInt8).unwrap(),
            Scalar::U8(255)
        );
        assert_eq!(
            const_eval(Opcode::Minimum, Scalar::I8(-1), Scalar::I8(1), DType::UInt8).unwrap(),
            Scalar::U8(1)
        );
        // Unsigned right shift is logical, not arithmetic.
        assert_eq!(
            const_eval(
                Opcode::RightShift,
                Scalar::I64(254),
                Scalar::I64(1),
                DType::UInt8
            )
            .unwrap(),
            Scalar::U8(127)
        );
        // Signed dtypes still see sign-extended domain values.
        assert_eq!(
            const_eval(
                Opcode::RightShift,
                Scalar::I64(254),
                Scalar::I64(1),
                DType::Int8
            )
            .unwrap(),
            Scalar::I8(-1)
        );
    }

    #[test]
    fn integer_mod_folds_floored() {
        let cases = [
            (-7, 3, 2i64),
            (7, -3, -2),
            (-7, -3, -1),
            (7, 3, 1),
            (7, 0, 0),
        ];
        for (a, b, want) in cases {
            assert_eq!(
                const_eval(Opcode::Mod, Scalar::I64(a), Scalar::I64(b), DType::Int32).unwrap(),
                Scalar::I32(want as i32),
                "{a} mod {b}"
            );
        }
    }

    #[test]
    fn integer_power_folds_like_the_vm() {
        assert_eq!(
            const_eval(Opcode::Power, Scalar::I64(2), Scalar::I64(10), DType::Int64).unwrap(),
            Scalar::I64(1024)
        );
        // Negative exponents truncate; oversized exponents saturate.
        assert_eq!(
            const_eval(Opcode::Power, Scalar::I32(2), Scalar::I32(-1), DType::Int32).unwrap(),
            Scalar::I32(0)
        );
        assert_eq!(
            const_eval(Opcode::Power, Scalar::I32(1), Scalar::I32(-5), DType::Int32).unwrap(),
            Scalar::I32(1)
        );
        let huge = Scalar::I64((u32::MAX as i64) + 1);
        assert_eq!(
            const_eval(Opcode::Power, Scalar::I64(2), huge, DType::UInt64).unwrap(),
            const_eval(
                Opcode::Power,
                Scalar::I64(2),
                Scalar::I64(u32::MAX as i64),
                DType::UInt64
            )
            .unwrap()
        );
    }

    #[test]
    fn bool_lattice() {
        let t = Scalar::Bool(true);
        let f = Scalar::Bool(false);
        assert_eq!(const_eval(Opcode::Add, t, f, DType::Bool).unwrap(), t);
        assert_eq!(const_eval(Opcode::Multiply, t, f, DType::Bool).unwrap(), f);
        assert_eq!(const_eval(Opcode::Subtract, t, t, DType::Bool).unwrap(), f);
    }

    #[test]
    fn float_min_max_power() {
        assert_eq!(
            const_eval(
                Opcode::Maximum,
                Scalar::F64(1.0),
                Scalar::F64(2.0),
                DType::Float64
            ),
            Some(Scalar::F64(2.0))
        );
        assert_eq!(
            const_eval(
                Opcode::Power,
                Scalar::F64(2.0),
                Scalar::F64(10.0),
                DType::Float64
            ),
            Some(Scalar::F64(1024.0))
        );
    }

    #[test]
    fn shifts_mask_to_width() {
        assert_eq!(
            const_eval(
                Opcode::LeftShift,
                Scalar::I64(1),
                Scalar::I64(9),
                DType::UInt8
            )
            .unwrap(),
            Scalar::U8(2)
        );
    }

    #[test]
    fn unhandled_ops_return_none() {
        assert_eq!(
            const_eval(
                Opcode::Arctan2,
                Scalar::I32(1),
                Scalar::I32(1),
                DType::Int32
            ),
            None
        );
        assert_eq!(
            const_eval(
                Opcode::Mod,
                Scalar::Bool(true),
                Scalar::Bool(true),
                DType::Bool
            ),
            None
        );
    }

    #[test]
    fn non_integral_into_int_dtype_returns_none() {
        assert_eq!(
            const_eval(Opcode::Add, Scalar::F64(0.5), Scalar::I64(1), DType::Int32),
            None
        );
    }
}
