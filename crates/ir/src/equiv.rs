//! Translation validation: a static plan auditor.
//!
//! [`check_equiv`] proves — symbolically, without running anything — that
//! a transformed program computes the same observable results as its
//! source. Each instruction is abstractly interpreted into a *symbolic
//! value number* drawn from a hash-consed expression table shared by both
//! programs; algebraic normal forms mirror exactly the rewrite catalogue
//! of `bh-opt` (commutative-operand canonicalisation, identity /
//! annihilator / strength / power / constant-fold closure), so any plan a
//! sound rule application produced value-numbers identically to its
//! source.
//!
//! The pass is **dtype- and `strict_math`-aware**: float reassociation is
//! only accepted when [`EquivOptions::fast_math`] says the rules were
//! allowed to assume it, mirroring `reassoc_allowed` in the rewrite
//! engine. Exact IEEE identities (`x·1`, `x/1`, `x−c ≡ x+(−c)`,
//! `x·2 ≡ x+x`, float `x/2ᵏ ≡ x·2⁻ᵏ`) are accepted unconditionally.
//!
//! The auditor is deliberately one-sided: it may *reject* a correct plan
//! (the caller rolls the rewrite back — graceful degradation), but it
//! never accepts a plan it cannot prove. Constructs outside the symbolic
//! domain report [`EquivCode::Unsupported`] rather than passing.
//!
//! # Observation model
//!
//! Mirrors the dead-code contract of [`crate::analysis::Liveness`]:
//!
//! * **Synced-only** (default): the observables are the values each
//!   `BH_SYNC` sees *at the sync point*, in order. A write after a
//!   register's last sync is unobservable (DCE may delete it).
//! * **All registers** ([`EquivOptions::observe_all`]): additionally,
//!   every register declared by the source program must hold the same
//!   final value at exit.
//!
//! `BH_FREE` effects are compared as a multiset per register name
//! ([`EquivCode::FreeDivergence`]); a freed register reads back as
//! zero-fill afterwards, exactly like the VM's allocation contract.
//!
//! # Example
//!
//! ```
//! use bh_ir::{check_equiv, parse_program, EquivOptions};
//!
//! let before = parse_program(
//!     ".base x f64[8] input\n\
//!      BH_ADD x x 1\n\
//!      BH_ADD x x 2\n\
//!      BH_SYNC x\n")?;
//! let after = parse_program(
//!     ".base x f64[8] input\n\
//!      BH_ADD x x 3\n\
//!      BH_SYNC x\n")?;
//! // Merging (x+1)+2 into x+3 reassociates f64 adds: it is only
//! // accepted when the rules were allowed to assume fast-math.
//! assert!(check_equiv(&before, &after, &EquivOptions::default()).is_ok());
//! assert!(check_equiv(&before, &after, &EquivOptions::default().strict_math()).is_err());
//! # Ok::<(), bh_ir::ParseError>(())
//! ```

use crate::fold::const_eval;
use crate::opcode::{OpKind, Opcode};
use crate::operand::{Operand, ViewRef};
use crate::program::Program;
use bh_tensor::{DType, Scalar, ViewGeom};
use std::collections::HashMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Error catalogue
// ---------------------------------------------------------------------------

/// Stable audit error codes (`A1xx` observables, `A2xx` layout, `A3xx`
/// effects and domain limits).
///
/// The numeric code of a variant never changes; new checks get new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EquivCode {
    /// A100 — an observable register's symbolic value differs (at a sync
    /// point, or at exit under [`EquivOptions::observe_all`]).
    ValueMismatch,
    /// A101 — a register observable in the source program is never
    /// observable in the transformed program (sync dropped, or the
    /// register's declaration is gone).
    MissingObservable,
    /// A102 — the transformed program observes (syncs) a register the
    /// source program never did.
    ExtraObservable,
    /// A200 — an observable register's declared shape differs between the
    /// two programs.
    ShapeDivergence,
    /// A201 — an observable register's declared dtype differs between the
    /// two programs.
    DTypeDivergence,
    /// A300 — sync effects were reordered or re-counted: the interleaving
    /// of `BH_SYNC`s changed, or a register is synced a different number
    /// of times (a write moved across an aliasing sync).
    EffectReorder,
    /// A301 — the multiset of `BH_FREE`d registers differs (a release
    /// effect was added or dropped).
    FreeDivergence,
    /// A302 — a construct falls outside the symbolic domain (unresolvable
    /// view, malformed operand pattern); the auditor refuses rather than
    /// guessing.
    Unsupported,
}

impl EquivCode {
    /// Every code, for exhaustive catalogue tests and documentation.
    pub const ALL: [EquivCode; 8] = [
        EquivCode::ValueMismatch,
        EquivCode::MissingObservable,
        EquivCode::ExtraObservable,
        EquivCode::ShapeDivergence,
        EquivCode::DTypeDivergence,
        EquivCode::EffectReorder,
        EquivCode::FreeDivergence,
        EquivCode::Unsupported,
    ];

    /// The stable code string (`"A100"`).
    pub fn as_str(self) -> &'static str {
        match self {
            EquivCode::ValueMismatch => "A100",
            EquivCode::MissingObservable => "A101",
            EquivCode::ExtraObservable => "A102",
            EquivCode::ShapeDivergence => "A200",
            EquivCode::DTypeDivergence => "A201",
            EquivCode::EffectReorder => "A300",
            EquivCode::FreeDivergence => "A301",
            EquivCode::Unsupported => "A302",
        }
    }
}

impl fmt::Display for EquivCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One audit failure: a stable code, the register it concerns (when one
/// can be named) and a human-readable detail.
///
/// `#[non_exhaustive]` so fields can grow without breaking downstream
/// constructors — build one with [`EquivError::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct EquivError {
    /// The stable code.
    pub code: EquivCode,
    /// The register name the failure concerns, when attributable.
    pub register: Option<String>,
    /// Human-readable specifics.
    pub detail: String,
}

impl EquivError {
    /// A failure for `code`, optionally attributed to a register.
    pub fn new(code: EquivCode, register: Option<String>, detail: impl Into<String>) -> EquivError {
        EquivError {
            code,
            register,
            detail: detail.into(),
        }
    }

    /// The stable machine code (`"A100"`…), for wire protocols and logs
    /// that must not match on `Display` text.
    pub fn code(&self) -> &'static str {
        self.code.as_str()
    }
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.register {
            Some(r) => write!(f, "{} at `{}`: {}", self.code, r, self.detail),
            None => write!(f, "{}: {}", self.code, self.detail),
        }
    }
}

impl std::error::Error for EquivError {}

/// Options for [`check_equiv`], mirroring the rewrite context the plan
/// was optimised under. The audit must run with the *same* policy the
/// optimiser used, or sound rewrites will be rejected (fast-math plans
/// audited strictly) — never the reverse: a mismatch can only make the
/// audit more conservative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EquivOptions {
    /// Accept float reassociation (mirror of `RewriteCtx::fast_math`).
    /// Exact IEEE identities are accepted regardless.
    pub fast_math: bool,
    /// Require every source-program register to hold an equal value at
    /// exit (mirror of `LiveAtExit::AllRegisters`).
    pub observe_all: bool,
}

impl Default for EquivOptions {
    fn default() -> EquivOptions {
        EquivOptions {
            fast_math: true,
            observe_all: false,
        }
    }
}

impl EquivOptions {
    /// Strict IEEE float semantics: reject float reassociation.
    pub fn strict_math(mut self) -> EquivOptions {
        self.fast_math = false;
        self
    }

    /// Treat every source register as observable at exit.
    pub fn observe_all(mut self) -> EquivOptions {
        self.observe_all = true;
        self
    }
}

/// Proof record returned by a successful audit. Constructible only by
/// [`check_equiv`] (the struct is `#[non_exhaustive]`).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EquivWitness {
    /// Register names proved observationally equal.
    pub observables: usize,
    /// Individual sync-point observations compared.
    pub sync_points: usize,
    /// Distinct symbolic expressions the proof value-numbered.
    pub exprs: usize,
}

// ---------------------------------------------------------------------------
// Symbolic domain
// ---------------------------------------------------------------------------

type Vn = u32;

/// A symbolic value. Constants are stored as `(dtype, canonical bits)` so
/// the table can be hash-consed (f64 `NaN`s with different payloads stay
/// distinct — conservative, never unsound).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Expr {
    /// Caller-provided contents of an input base, keyed by name.
    Input(String),
    /// Every element equal to one scalar (explicit fill, or the VM's
    /// zero-fill of a fresh / freed allocation).
    Fill(DType, u64),
    /// `BH_RANGE` / `BH_RANDOM` output over a geometry.
    Gen {
        op: Opcode,
        dtype: DType,
        geom: ViewGeom,
        seed: Option<(DType, u64)>,
    },
    /// Reading `src` through a non-full view.
    View { src: Vn, geom: ViewGeom },
    /// `base` with the region `geom` overwritten by `value`.
    Blend { base: Vn, geom: ViewGeom, value: Vn },
    /// `BH_IDENTITY` across dtypes.
    Cast { dtype: DType, src: Vn },
    /// An opaque (or strict-float binary) operation node. Commutative
    /// operands are sorted; under reassociation same-op chains are
    /// flattened into one n-ary node.
    Node { op: Opcode, args: Vec<Vn> },
    /// Reassociated product: sorted factors with exponents and an
    /// optional folded constant. The shared normal form of
    /// `BH_POWER`-expansion, squaring chains and multiply re-rolls.
    Product {
        factors: Vec<(Vn, u64)>,
        k: Option<(DType, u64)>,
    },
    /// Reduction or scan of one axis.
    Fold { op: Opcode, src: Vn, axis: usize },
    /// Linear-algebra extension method. `MatMul(Inverse(a), b)` is
    /// normalised to `Solve(a, b)` (the Eq. 2 equivalence, blessed at the
    /// algebra level like the rewrite itself).
    Lin { op: Opcode, args: Vec<Vn> },
}

fn scalar_bits(s: Scalar) -> (DType, u64) {
    let bits = match s {
        Scalar::Bool(v) => v as u64,
        Scalar::U8(v) => v as u64,
        Scalar::U16(v) => v as u64,
        Scalar::U32(v) => v as u64,
        Scalar::U64(v) => v,
        Scalar::I8(v) => v as i64 as u64,
        Scalar::I16(v) => v as i64 as u64,
        Scalar::I32(v) => v as i64 as u64,
        Scalar::I64(v) => v as u64,
        Scalar::F32(v) => v.to_bits() as u64,
        Scalar::F64(v) => v.to_bits(),
    };
    (s.dtype(), bits)
}

fn bits_scalar(dtype: DType, bits: u64) -> Scalar {
    match dtype {
        DType::Bool => Scalar::Bool(bits != 0),
        DType::UInt8 => Scalar::U8(bits as u8),
        DType::UInt16 => Scalar::U16(bits as u16),
        DType::UInt32 => Scalar::U32(bits as u32),
        DType::UInt64 => Scalar::U64(bits),
        DType::Int8 => Scalar::I8(bits as i8),
        DType::Int16 => Scalar::I16(bits as i16),
        DType::Int32 => Scalar::I32(bits as i32),
        DType::Int64 => Scalar::I64(bits as i64),
        DType::Float32 => Scalar::F32(f32::from_bits(bits as u32)),
        DType::Float64 => Scalar::F64(f64::from_bits(bits)),
    }
}

/// Multiply-mix hasher (the rustc/FxHash recipe) for the cons table:
/// `Expr` keys hash on every `mk`, and the default SipHash is the
/// dominant cost of the whole audit on real plans. Collision quality is
/// ample for interned-expression keys; nothing here is attacker-facing.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FxBuild = std::hash::BuildHasherDefault<FxHasher>;

/// The hash-consed expression table. Shared by both programs so value
/// numbers compare directly.
struct Sym {
    exprs: Vec<Expr>,
    memo: HashMap<Expr, Vn, FxBuild>,
    fast_math: bool,
}

impl Sym {
    fn new(fast_math: bool) -> Sym {
        Sym {
            exprs: Vec::new(),
            memo: HashMap::default(),
            fast_math,
        }
    }

    fn mk(&mut self, e: Expr) -> Vn {
        if let Some(&v) = self.memo.get(&e) {
            return v;
        }
        let v = self.exprs.len() as Vn;
        self.exprs.push(e.clone());
        self.memo.insert(e, v);
        v
    }

    fn expr(&self, v: Vn) -> &Expr {
        &self.exprs[v as usize]
    }

    fn fill(&mut self, s: Scalar) -> Vn {
        let (d, b) = scalar_bits(s);
        self.mk(Expr::Fill(d, b))
    }

    fn as_fill(&self, v: Vn) -> Option<Scalar> {
        match self.expr(v) {
            Expr::Fill(d, b) => Some(bits_scalar(*d, *b)),
            _ => None,
        }
    }

    /// Mirror of `bh_opt::reassoc_allowed`: float reassociation needs
    /// fast-math; integer/bool algebra is exact.
    fn reassoc(&self, dtype: DType) -> bool {
        self.fast_math || !dtype.is_float()
    }

    // -- normal-form constructors -------------------------------------------

    /// Construct `a ⊕ b` in normal form. Every branch mirrors one rewrite
    /// rule's exactness conditions; see the module docs.
    fn binary(&mut self, op: Opcode, dtype: DType, a: Vn, b: Vn) -> Vn {
        // On bool the VM's arithmetic collapses onto the Boolean lattice
        // (see `fold`): add/or/max are OR, multiply/and/min are AND,
        // subtract/xor are XOR. Canonicalising the op-code makes those
        // identities definitional.
        let op = if dtype == DType::Bool {
            match op {
                Opcode::Add | Opcode::LogicalOr | Opcode::Maximum => Opcode::BitwiseOr,
                Opcode::Multiply | Opcode::LogicalAnd | Opcode::Minimum => Opcode::BitwiseAnd,
                Opcode::Subtract | Opcode::LogicalXor => Opcode::BitwiseXor,
                other => other,
            }
        } else {
            op
        };
        // Constant folding in the dtype's domain (constant-merge closure).
        if let (Some(ca), Some(cb)) = (self.as_fill(a), self.as_fill(b)) {
            if let Some(v) = const_eval(op, ca, cb, dtype) {
                return self.fill(v);
            }
        }
        let reassoc = self.reassoc(dtype);

        // x ⊖ x strength forms (mirror `StrengthReduction`).
        if a == b {
            match op {
                Opcode::Subtract if reassoc => return self.fill(Scalar::zero(dtype)),
                Opcode::BitwiseXor if !dtype.is_float() => {
                    return self.fill(Scalar::zero(dtype));
                }
                Opcode::Add => {
                    // x + x ≡ x · 2, exact for every dtype (IEEE included).
                    let two = self.fill(Scalar::from_i64(2, dtype));
                    return self.binary(Opcode::Multiply, dtype, a, two);
                }
                _ => {}
            }
        }

        // Canonicalise subtract / divide-by-constant toward add /
        // multiply / shift so constant-merge chains share a normal form.
        if let Some(c) = self.as_fill(b) {
            match op {
                // x − c ≡ x + (−c): IEEE negation is exact; integers wrap.
                // Bool "subtract" is XOR, where the identity fails.
                Opcode::Subtract if dtype != DType::Bool => {
                    if let Some(neg) = const_eval(Opcode::Subtract, Scalar::zero(dtype), c, dtype) {
                        let nc = self.fill(neg);
                        return self.binary(Opcode::Add, dtype, a, nc);
                    }
                }
                Opcode::Divide => {
                    if dtype.is_float() {
                        // Float x / ±2ᵏ ≡ x · (1/c), exact (the reciprocal
                        // of a power of two is representable).
                        let v = c.as_f64();
                        if v != 0.0 && v.abs().log2().fract() == 0.0 {
                            let r = self.fill(Scalar::from_f64(1.0 / v, dtype));
                            return self.binary(Opcode::Multiply, dtype, a, r);
                        }
                    } else if dtype.is_unsigned_integer() {
                        // Unsigned x / 2ᵏ ≡ x ≫ k.
                        if let Some(v) = c.as_integral() {
                            if v > 0 && (v as u64).is_power_of_two() {
                                let k = (v as u64).trailing_zeros() as i64;
                                let kc = self.fill(Scalar::from_i64(k, dtype));
                                return self.binary(Opcode::RightShift, dtype, a, kc);
                            }
                        }
                    }
                    // (x / c₁) / c₂ ≡ x / (c₁·c₂) — the constant-merge
                    // divide chain, gated like the rule.
                    if reassoc {
                        if let Expr::Node {
                            op: Opcode::Divide,
                            args,
                        } = self.expr(a).clone()
                        {
                            if args.len() == 2 {
                                if let Some(c1) = self.as_fill(args[1]) {
                                    if let Some(m) = const_eval(Opcode::Multiply, c1, c, dtype) {
                                        let mc = self.fill(m);
                                        return self.binary(Opcode::Divide, dtype, args[0], mc);
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        // Identity element / annihilator (mirror `AlgebraicSimplify`,
        // including its exactness gating).
        for (pos, cv) in [(1usize, self.as_fill(b)), (0usize, self.as_fill(a))] {
            let Some(c) = cv else { continue };
            if let Some(e) = op.identity_scalar(dtype) {
                let identity_exact = !matches!(op, Opcode::Add | Opcode::Subtract) || reassoc;
                if identity_exact && e == c && (op.is_commutative() || pos == 1) {
                    return if pos == 1 { a } else { b };
                }
            }
            if let Some(z) = op.annihilator_scalar(dtype) {
                if reassoc && z == c && (op.is_commutative() || pos == 1) {
                    return self.fill(z);
                }
            }
        }

        // Power normal form (mirror `PowerExpansion` / the chain re-roll):
        // the exponent is read as the VM reads it — cast into the dtype.
        if op == Opcode::Power && reassoc {
            if let Some(c) = self.as_fill(b) {
                if let Some(n) = c.as_integral() {
                    if n == 0 {
                        return self.fill(Scalar::one(dtype));
                    }
                    if n > 0 {
                        // n == 1 was already consumed by the identity arm.
                        return self.product_merge(vec![(a, n as u64)], None, dtype);
                    }
                }
            }
        }

        // Reassociated products: multiply chains, squarings, expansions.
        if op == Opcode::Multiply && reassoc {
            let (mut factors, ka) = self.to_factors(a);
            let (fb, kb) = self.to_factors(b);
            factors.extend(fb);
            let k = match (ka, kb) {
                (Some(x), Some(y)) => const_eval(Opcode::Multiply, x, y, dtype),
                (x, y) => x.or(y),
            };
            return self.product_merge(factors, k, dtype);
        }

        // Flatten other associative-commutative chains (constant-merge
        // closure for add / min / max / bitwise / logical).
        if op.is_associative() && op.is_commutative() && reassoc && op != Opcode::Multiply {
            return self.flatten_ac(op, dtype, vec![a, b]);
        }

        // Plain node; commutativity is exact for every dtype.
        let mut args = vec![a, b];
        if op.is_commutative() {
            args.sort_unstable();
        }
        self.mk(Expr::Node { op, args })
    }

    /// Decompose a value into product factors plus an optional constant.
    fn to_factors(&self, v: Vn) -> (Vec<(Vn, u64)>, Option<Scalar>) {
        match self.expr(v) {
            Expr::Product { factors, k } => (factors.clone(), k.map(|(d, b)| bits_scalar(d, b))),
            Expr::Fill(d, b) => (Vec::new(), Some(bits_scalar(*d, *b))),
            _ => (vec![(v, 1)], None),
        }
    }

    /// Normalise a product: merge duplicate factors, fold the constant,
    /// apply identity/annihilator, collapse trivial shapes.
    fn product_merge(
        &mut self,
        mut factors: Vec<(Vn, u64)>,
        k: Option<Scalar>,
        dtype: DType,
    ) -> Vn {
        factors.sort_unstable_by_key(|&(v, _)| v);
        let mut merged: Vec<(Vn, u64)> = Vec::with_capacity(factors.len());
        for (v, e) in factors {
            match merged.last_mut() {
                Some((pv, pe)) if *pv == v => *pe = pe.saturating_add(e),
                _ => merged.push((v, e)),
            }
        }
        let k = k.filter(|c| !c.is_one());
        if let Some(c) = k {
            if c.is_zero() && !dtype.is_float() || c.is_zero() && self.fast_math {
                // Multiply annihilator, same gating as the rule (reassoc
                // already holds here).
                return self.fill(Scalar::zero(dtype).cast(dtype));
            }
        }
        match (merged.len(), k) {
            (0, None) => self.fill(Scalar::one(dtype)),
            (0, Some(c)) => self.fill(c),
            (1, None) if merged[0].1 == 1 => merged[0].0,
            _ => self.mk(Expr::Product {
                factors: merged,
                k: k.map(scalar_bits),
            }),
        }
    }

    /// Flatten an associative-commutative chain into one sorted n-ary
    /// node with its constants folded (only called under reassociation).
    fn flatten_ac(&mut self, op: Opcode, dtype: DType, seeds: Vec<Vn>) -> Vn {
        let mut work = seeds;
        let mut items: Vec<Vn> = Vec::new();
        let mut konst: Option<Scalar> = None;
        while let Some(v) = work.pop() {
            if let Some(c) = self.as_fill(v) {
                konst = match konst {
                    None => Some(c),
                    Some(acc) => match const_eval(op, acc, c, dtype) {
                        Some(f) => Some(f),
                        None => {
                            items.push(v);
                            Some(acc)
                        }
                    },
                };
                continue;
            }
            match self.expr(v) {
                Expr::Node { op: o, args } if *o == op => work.extend(args.iter().copied()),
                _ => items.push(v),
            }
        }
        if let Some(c) = konst {
            if op.annihilator_scalar(dtype) == Some(c) {
                return self.fill(c);
            }
            if op.identity_scalar(dtype) == Some(c) {
                konst = None;
            }
        }
        // Exact multiset algebra: XOR self-cancellation, idempotent
        // deduplication (min/max/and/or). Addition keeps multiplicity.
        items.sort_unstable();
        match op {
            Opcode::BitwiseXor | Opcode::LogicalXor => {
                let mut out = Vec::with_capacity(items.len());
                for v in items {
                    if out.last() == Some(&v) {
                        out.pop();
                    } else {
                        out.push(v);
                    }
                }
                items = out;
            }
            Opcode::Maximum
            | Opcode::Minimum
            | Opcode::BitwiseAnd
            | Opcode::BitwiseOr
            | Opcode::LogicalAnd
            | Opcode::LogicalOr => items.dedup(),
            _ => {}
        }
        if let Some(c) = konst {
            items.push(self.fill(c));
        }
        match items.len() {
            0 => {
                // Everything cancelled; the chain is its identity element.
                let e = op
                    .identity_scalar(dtype)
                    .unwrap_or_else(|| Scalar::zero(dtype));
                self.fill(e)
            }
            1 => items[0],
            _ => self.mk(Expr::Node { op, args: items }),
        }
    }
}

// ---------------------------------------------------------------------------
// Symbolic execution of one program
// ---------------------------------------------------------------------------

/// Everything observable about one program run.
struct Summary {
    /// Global order of sync effects (register names, one per `BH_SYNC`).
    sync_order: Vec<String>,
    /// Per-register sync-time values, in sync order.
    syncs: HashMap<String, Vec<Vn>>,
    /// Final value of every register, by name.
    finals: HashMap<String, Vn>,
    /// Names of freed registers (multiset, sorted).
    frees: Vec<String>,
}

fn unsupported(program: &Program, index: usize, what: &str) -> EquivError {
    EquivError {
        code: EquivCode::Unsupported,
        register: None,
        detail: format!(
            "instruction {index} ({}): {what}",
            program.instrs()[index].op
        ),
    }
}

fn run_program(sym: &mut Sym, program: &Program) -> Result<Summary, EquivError> {
    let n = program.bases().len();
    let mut regs: Vec<Vn> = Vec::with_capacity(n);
    for base in program.bases() {
        let v = if base.is_input {
            sym.mk(Expr::Input(base.name.clone()))
        } else {
            sym.fill(Scalar::zero(base.dtype))
        };
        regs.push(v);
    }
    let mut out = Summary {
        sync_order: Vec::new(),
        syncs: HashMap::new(),
        finals: HashMap::new(),
        frees: Vec::new(),
    };

    // Read a view operand: full views pass the register's value through,
    // partial views wrap it in geometry.
    let read =
        |sym: &mut Sym, regs: &[Vn], view: &ViewRef, index: usize| -> Result<Vn, EquivError> {
            let cur = regs[view.reg.index()];
            // Full views (no slice list) dominate real traffic; skip the
            // geometry materialisation entirely.
            if view.slices.is_none() {
                return Ok(cur);
            }
            let geom = program
                .resolve_view(view)
                .map_err(|e| unsupported(program, index, &format!("unresolvable view: {e}")))?;
            let base = program.base(view.reg);
            if geom == ViewGeom::contiguous(&base.shape) {
                return Ok(cur);
            }
            // A view of a uniform fill is the fill.
            if matches!(sym.expr(cur), Expr::Fill(..)) {
                return Ok(cur);
            }
            // Reading back exactly the region a blend wrote yields the
            // blended value (slice geometries are injective).
            if let Expr::Blend {
                geom: bg, value, ..
            } = sym.expr(cur)
            {
                if *bg == geom {
                    return Ok(*value);
                }
            }
            Ok(sym.mk(Expr::View { src: cur, geom }))
        };

    // Write a value through a view: full writes replace, partial writes
    // blend (with same-region collapse and write-back elision).
    let write = |sym: &mut Sym,
                 regs: &mut [Vn],
                 view: &ViewRef,
                 val: Vn,
                 index: usize|
     -> Result<(), EquivError> {
        let slot = &mut regs[view.reg.index()];
        if view.slices.is_none() {
            *slot = val;
            return Ok(());
        }
        let geom = program
            .resolve_view(view)
            .map_err(|e| unsupported(program, index, &format!("unresolvable view: {e}")))?;
        let base = program.base(view.reg);
        if geom == ViewGeom::contiguous(&base.shape) {
            *slot = val;
            return Ok(());
        }
        let mut cur = *slot;
        // Writing back what the region already holds changes nothing
        // (the trivial-copy-elision case on partial views).
        if let Expr::View { src, geom: vg } = sym.expr(val) {
            if *src == cur && *vg == geom {
                return Ok(());
            }
        }
        // A blend of the same region is fully overwritten.
        if let Expr::Blend {
            base: inner,
            geom: bg,
            ..
        } = sym.expr(cur)
        {
            if *bg == geom {
                cur = *inner;
            }
        }
        *slot = sym.mk(Expr::Blend {
            base: cur,
            geom,
            value: val,
        });
        Ok(())
    };

    for (index, instr) in program.instrs().iter().enumerate() {
        let op = instr.op;
        match op.kind() {
            OpKind::System => match op {
                Opcode::NoOp => {}
                Opcode::Sync | Opcode::Free => {
                    let Some(target) = instr.inputs().first().and_then(Operand::as_view) else {
                        return Err(unsupported(program, index, "system op without a target"));
                    };
                    let name = program.base(target.reg).name.clone();
                    if op == Opcode::Sync {
                        // run_synced reads the full register after the
                        // run; the observable is the whole-register value
                        // at this point in the effect order.
                        out.syncs
                            .entry(name.clone())
                            .or_default()
                            .push(regs[target.reg.index()]);
                        out.sync_order.push(name);
                    } else {
                        // Freed storage reads back zero-filled.
                        out.frees.push(name);
                        regs[target.reg.index()] =
                            sym.fill(Scalar::zero(program.base(target.reg).dtype));
                    }
                }
                _ => return Err(unsupported(program, index, "unknown system op")),
            },
            OpKind::ElementwiseUnary | OpKind::ElementwiseBinary => {
                let Some(out_view) = instr.out_view().cloned() else {
                    return Err(unsupported(program, index, "elementwise op without output"));
                };
                let out_dtype = program.base(out_view.reg).dtype;
                if op == Opcode::Identity {
                    let val = match instr.inputs().first() {
                        Some(Operand::Const(c)) => sym.fill(c.cast(out_dtype)),
                        Some(Operand::View(v)) => {
                            let raw = read(sym, &regs, v, index)?;
                            if program.base(v.reg).dtype == out_dtype {
                                raw
                            } else {
                                sym.mk(Expr::Cast {
                                    dtype: out_dtype,
                                    src: raw,
                                })
                            }
                        }
                        None => return Err(unsupported(program, index, "identity without input")),
                    };
                    write(sym, &mut regs, &out_view, val, index)?;
                    continue;
                }
                // Constants are cast into the element dtype exactly as
                // the VM binds them.
                let operand_dtype = instr
                    .inputs()
                    .iter()
                    .filter_map(Operand::as_view)
                    .map(|v| program.base(v.reg).dtype)
                    .next()
                    .unwrap_or(out_dtype);
                let mut args = Vec::with_capacity(2);
                for input in instr.inputs() {
                    let v = match input {
                        Operand::Const(c) => sym.fill(c.cast(operand_dtype)),
                        Operand::View(v) => read(sym, &regs, v, index)?,
                    };
                    args.push(v);
                }
                let val = match args.len() {
                    1 => sym.mk(Expr::Node { op, args }),
                    2 => sym.binary(op, operand_dtype, args[0], args[1]),
                    _ => return Err(unsupported(program, index, "unexpected arity")),
                };
                write(sym, &mut regs, &out_view, val, index)?;
            }
            OpKind::Reduction | OpKind::Scan => {
                let Some(out_view) = instr.out_view().cloned() else {
                    return Err(unsupported(program, index, "fold op without output"));
                };
                let Some(src) = instr.inputs().first().and_then(Operand::as_view) else {
                    return Err(unsupported(program, index, "fold input must be a view"));
                };
                let axis = instr
                    .inputs()
                    .get(1)
                    .and_then(Operand::as_const)
                    .and_then(Scalar::as_integral)
                    .and_then(|v| usize::try_from(v).ok());
                let Some(axis) = axis else {
                    return Err(unsupported(program, index, "fold axis must be a constant"));
                };
                let src = read(sym, &regs, src, index)?;
                let val = sym.mk(Expr::Fold { op, src, axis });
                write(sym, &mut regs, &out_view, val, index)?;
            }
            OpKind::Generator => {
                let Some(out_view) = instr.out_view().cloned() else {
                    return Err(unsupported(program, index, "generator without output"));
                };
                let geom = program
                    .resolve_view(&out_view)
                    .map_err(|e| unsupported(program, index, &format!("unresolvable view: {e}")))?;
                let seed = match op {
                    Opcode::Random => {
                        let Some(c) = instr.inputs().first().and_then(Operand::as_const) else {
                            return Err(unsupported(program, index, "random without seed"));
                        };
                        Some(scalar_bits(c))
                    }
                    _ => None,
                };
                let val = sym.mk(Expr::Gen {
                    op,
                    dtype: program.base(out_view.reg).dtype,
                    geom,
                    seed,
                });
                write(sym, &mut regs, &out_view, val, index)?;
            }
            OpKind::LinAlg => {
                let Some(out_view) = instr.out_view().cloned() else {
                    return Err(unsupported(program, index, "linalg op without output"));
                };
                let mut args = Vec::with_capacity(2);
                for input in instr.inputs() {
                    let Some(v) = input.as_view() else {
                        return Err(unsupported(program, index, "linalg inputs must be views"));
                    };
                    args.push(read(sym, &regs, v, index)?);
                }
                // Eq. 2 normal form: A⁻¹·b solves Ax = b. Blessed at the
                // algebra level, exactly like the rewrite.
                let val = if op == Opcode::MatMul && args.len() == 2 {
                    if let Expr::Lin {
                        op: Opcode::Inverse,
                        args: inv_args,
                    } = sym.expr(args[0]).clone()
                    {
                        sym.mk(Expr::Lin {
                            op: Opcode::Solve,
                            args: vec![inv_args[0], args[1]],
                        })
                    } else {
                        sym.mk(Expr::Lin { op, args })
                    }
                } else {
                    sym.mk(Expr::Lin { op, args })
                };
                write(sym, &mut regs, &out_view, val, index)?;
            }
        }
    }

    for (base, &v) in program.bases().iter().zip(&regs) {
        out.finals.insert(base.name.clone(), v);
    }
    out.frees.sort_unstable();
    Ok(out)
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

fn check_decl(before: &Program, after: &Program, name: &str, errors: &mut Vec<EquivError>) -> bool {
    let Some(br) = before.reg_by_name(name) else {
        return true; // synced register always exists in its own program
    };
    let Some(ar) = after.reg_by_name(name) else {
        errors.push(EquivError {
            code: EquivCode::MissingObservable,
            register: Some(name.to_owned()),
            detail: "register is not declared in the transformed program".into(),
        });
        return false;
    };
    let (b, a) = (before.base(br), after.base(ar));
    let mut ok = true;
    if b.shape != a.shape {
        errors.push(EquivError {
            code: EquivCode::ShapeDivergence,
            register: Some(name.to_owned()),
            detail: format!("declared shape changed: {:?} → {:?}", b.shape, a.shape),
        });
        ok = false;
    }
    if b.dtype != a.dtype {
        errors.push(EquivError {
            code: EquivCode::DTypeDivergence,
            register: Some(name.to_owned()),
            detail: format!("declared dtype changed: {} → {}", b.dtype, a.dtype),
        });
        ok = false;
    }
    ok
}

/// Statically prove that `after` is observationally equivalent to
/// `before` (see the module docs for the observation model).
///
/// Returns a proof record, or every divergence found. The check is
/// conservative: a sound transformation pipeline always passes, but a
/// pass does not *certify* arbitrary pairs — it proves equal symbolic
/// normal forms under the blessed algebra.
///
/// # Errors
///
/// A non-empty, deterministic (code-then-register sorted) list of
/// [`EquivError`]s when equivalence could not be proved.
pub fn check_equiv(
    before: &Program,
    after: &Program,
    opts: &EquivOptions,
) -> Result<EquivWitness, Vec<EquivError>> {
    let mut sym = Sym::new(opts.fast_math);
    let sb = run_program(&mut sym, before).map_err(|e| vec![e])?;
    let sa = run_program(&mut sym, after).map_err(|e| vec![e])?;
    let mut errors = Vec::new();
    let mut observables = 0usize;
    let mut sync_points = 0usize;

    // Sync observables: per-register value streams.
    let mut names: Vec<&String> = sb.syncs.keys().collect();
    names.sort_unstable();
    for name in &names {
        let bv = &sb.syncs[*name];
        let Some(av) = sa.syncs.get(*name) else {
            errors.push(EquivError {
                code: EquivCode::MissingObservable,
                register: Some((*name).clone()),
                detail: format!(
                    "synced {} time(s) in the source but never in the transformed program",
                    bv.len()
                ),
            });
            continue;
        };
        if !check_decl(before, after, name, &mut errors) {
            continue;
        }
        if bv.len() != av.len() {
            errors.push(EquivError {
                code: EquivCode::EffectReorder,
                register: Some((*name).clone()),
                detail: format!("synced {} time(s) in source, {} after", bv.len(), av.len()),
            });
            continue;
        }
        observables += 1;
        for (k, (x, y)) in bv.iter().zip(av).enumerate() {
            sync_points += 1;
            if x != y {
                errors.push(EquivError {
                    code: EquivCode::ValueMismatch,
                    register: Some((*name).clone()),
                    detail: format!("value at sync #{k} diverges from the source program"),
                });
                break;
            }
        }
    }
    let mut extra: Vec<&String> = sa
        .syncs
        .keys()
        .filter(|n| !sb.syncs.contains_key(*n))
        .collect();
    extra.sort_unstable();
    for name in extra {
        errors.push(EquivError {
            code: EquivCode::ExtraObservable,
            register: Some(name.clone()),
            detail: "transformed program syncs a register the source never observed".into(),
        });
    }
    // Effect interleaving: only meaningful once per-register streams
    // already line up.
    if errors.is_empty() && sb.sync_order != sa.sync_order {
        errors.push(EquivError {
            code: EquivCode::EffectReorder,
            register: None,
            detail: format!(
                "sync interleaving changed: {:?} → {:?}",
                sb.sync_order, sa.sync_order
            ),
        });
    }

    // Exit observables under observe-all: every source register's final
    // value (matching `Liveness::compute_with_exit` over all registers).
    if opts.observe_all {
        for base in before.bases() {
            if !check_decl(before, after, &base.name, &mut errors) {
                continue;
            }
            let bfin = sb.finals[&base.name];
            match sa.finals.get(&base.name) {
                Some(&afin) if afin == bfin => observables += 1,
                Some(_) => errors.push(EquivError {
                    code: EquivCode::ValueMismatch,
                    register: Some(base.name.clone()),
                    detail: "final value at exit diverges from the source program".into(),
                }),
                None => errors.push(EquivError {
                    code: EquivCode::MissingObservable,
                    register: Some(base.name.clone()),
                    detail: "register is not declared in the transformed program".into(),
                }),
            }
        }
    }

    // Release effects: the freed multiset must match.
    if sb.frees != sa.frees {
        errors.push(EquivError {
            code: EquivCode::FreeDivergence,
            register: None,
            detail: format!("freed registers changed: {:?} → {:?}", sb.frees, sa.frees),
        });
    }

    if errors.is_empty() {
        Ok(EquivWitness {
            observables,
            sync_points,
            exprs: sym.exprs.len(),
        })
    } else {
        errors.sort_by(|a, b| (a.code, &a.register).cmp(&(b.code, &b.register)));
        errors.dedup();
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn p(text: &str) -> Program {
        parse_program(text).unwrap()
    }

    fn ok(before: &str, after: &str, opts: EquivOptions) {
        let (b, a) = (p(before), p(after));
        if let Err(e) = check_equiv(&b, &a, &opts) {
            panic!("expected equivalent, got {e:?}");
        }
    }

    fn fails_with(before: &str, after: &str, opts: EquivOptions, code: EquivCode) {
        let (b, a) = (p(before), p(after));
        let errs = check_equiv(&b, &a, &opts).expect_err("expected divergence");
        assert!(
            errs.iter().any(|e| e.code == code),
            "expected {code}, got {errs:?}"
        );
    }

    #[test]
    fn identical_programs_are_equivalent() {
        let text = "BH_ADD a0 [0:8:1] a0 [0:8:1] 1\nBH_SYNC a0\n";
        ok(text, text, EquivOptions::default().strict_math());
    }

    #[test]
    fn listing2_to_listing3_constant_merge() {
        let before = "\
BH_IDENTITY a0 [0:10:1] 0
BH_ADD a0 a0 1
BH_ADD a0 a0 1
BH_ADD a0 a0 1
BH_SYNC a0
";
        let after = "BH_IDENTITY a0 [0:10:1] 0\nBH_ADD a0 a0 3\nBH_SYNC a0\n";
        ok(before, after, EquivOptions::default());
        // The chain is rooted in a constant, so each program folds to the
        // very f64 the VM would compute — exact even under strict math.
        ok(before, after, EquivOptions::default().strict_math());
    }

    #[test]
    fn float_constant_merge_over_an_input_needs_fast_math() {
        let before = "\
.base x f64[8] input
BH_ADD x x 1
BH_ADD x x 2
BH_SYNC x
";
        let after = ".base x f64[8] input\nBH_ADD x x 3\nBH_SYNC x\n";
        ok(before, after, EquivOptions::default());
        // (x+1)+2 ≡ x+3 is a reassociation: rejected under strict IEEE.
        fails_with(
            before,
            after,
            EquivOptions::default().strict_math(),
            EquivCode::ValueMismatch,
        );
    }

    #[test]
    fn integer_constant_merge_is_exact_under_strict_math() {
        let before = ".base v i32[8]\nBH_IDENTITY v 5\nBH_ADD v v 1\nBH_ADD v v 2\nBH_SYNC v\n";
        let after = ".base v i32[8]\nBH_IDENTITY v 5\nBH_ADD v v 3\nBH_SYNC v\n";
        ok(before, after, EquivOptions::default().strict_math());
    }

    #[test]
    fn power_expansion_matches() {
        let before = "\
.base x f64[16] input
.base y f64[16]
BH_POWER y x 10
BH_SYNC y
";
        let after = "\
.base x f64[16] input
.base y f64[16]
BH_MULTIPLY y x x
BH_MULTIPLY y y y
BH_MULTIPLY y y x
BH_MULTIPLY y y y
BH_SYNC y
";
        ok(before, after, EquivOptions::default());
        fails_with(
            before,
            after,
            EquivOptions::default().strict_math(),
            EquivCode::ValueMismatch,
        );
    }

    #[test]
    fn inverse_solve_is_blessed_even_under_strict_math() {
        let before = "\
.base a f64[8,8] input
.base b f64[8] input
.base t f64[8,8]
.base x f64[8]
BH_INVERSE t a
BH_MATMUL x t b
BH_SYNC x
";
        let after = "\
.base a f64[8,8] input
.base b f64[8] input
.base t f64[8,8]
.base x f64[8]
BH_SOLVE x a b
BH_SYNC x
";
        ok(before, after, EquivOptions::default().strict_math());
        // … but not when every register is observable: t loses its value.
        fails_with(
            before,
            after,
            EquivOptions::default().strict_math().observe_all(),
            EquivCode::ValueMismatch,
        );
    }

    #[test]
    fn swapped_noncommutative_operands_mismatch() {
        let before = ".base a f64[4] input\n.base b f64[4] input\n.base c f64[4]\nBH_SUBTRACT c a b\nBH_SYNC c\n";
        let after = ".base a f64[4] input\n.base b f64[4] input\n.base c f64[4]\nBH_SUBTRACT c b a\nBH_SYNC c\n";
        fails_with(
            before,
            after,
            EquivOptions::default(),
            EquivCode::ValueMismatch,
        );
    }

    #[test]
    fn commutative_swap_is_fine() {
        let before =
            ".base a f64[4] input\n.base b f64[4] input\n.base c f64[4]\nBH_ADD c a b\nBH_SYNC c\n";
        let after =
            ".base a f64[4] input\n.base b f64[4] input\n.base c f64[4]\nBH_ADD c b a\nBH_SYNC c\n";
        ok(before, after, EquivOptions::default().strict_math());
    }

    #[test]
    fn dropped_sync_is_a_missing_observable() {
        let before = "BH_ADD a0 [0:4:1] a0 [0:4:1] 1\nBH_SYNC a0\n";
        let after = "BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n";
        fails_with(
            before,
            after,
            EquivOptions::default(),
            EquivCode::MissingObservable,
        );
    }

    #[test]
    fn extra_sync_is_an_extra_observable() {
        let before = "BH_ADD a0 [0:4:1] a0 [0:4:1] 1\nBH_SYNC a0\n";
        let after = "BH_ADD a0 [0:4:1] a0 [0:4:1] 1\nBH_SYNC a0\nBH_SYNC a1 [0:4:1]\n";
        fails_with(
            before,
            after,
            EquivOptions::default(),
            EquivCode::ExtraObservable,
        );
    }

    #[test]
    fn write_moved_across_sync_is_caught() {
        let before = "BH_IDENTITY a0 [0:4:1] 1\nBH_SYNC a0\nBH_ADD a0 a0 1\nBH_SYNC a0\n";
        let after = "BH_IDENTITY a0 [0:4:1] 1\nBH_ADD a0 a0 1\nBH_SYNC a0\nBH_SYNC a0\n";
        fails_with(
            before,
            after,
            EquivOptions::default(),
            EquivCode::ValueMismatch,
        );
    }

    #[test]
    fn dropped_free_is_a_free_divergence() {
        let before = "BH_ADD a0 [0:4:1] a0 [0:4:1] 1\nBH_SYNC a0\nBH_FREE a0\n";
        let after = "BH_ADD a0 [0:4:1] a0 [0:4:1] 1\nBH_SYNC a0\n";
        fails_with(
            before,
            after,
            EquivOptions::default(),
            EquivCode::FreeDivergence,
        );
    }

    #[test]
    fn decl_divergences_have_their_own_codes() {
        let before = ".base v i32[8]\nBH_IDENTITY v 1\nBH_SYNC v\n";
        fails_with(
            before,
            ".base v i32[4]\nBH_IDENTITY v 1\nBH_SYNC v\n",
            EquivOptions::default(),
            EquivCode::ShapeDivergence,
        );
        fails_with(
            before,
            ".base v i64[8]\nBH_IDENTITY v 1\nBH_SYNC v\n",
            EquivOptions::default(),
            EquivCode::DTypeDivergence,
        );
    }

    #[test]
    fn partial_view_updates_track_geometry() {
        let before = "\
.base v f64[8]
BH_IDENTITY v [0:4:1] 1
BH_IDENTITY v [4:8:1] 2
BH_SYNC v
";
        let reordered = "\
.base v f64[8]
BH_IDENTITY v [4:8:1] 2
BH_IDENTITY v [0:4:1] 1
BH_SYNC v
";
        // Disjoint-region reorder is semantically fine but outside the
        // blessed normal forms: the auditor must conservatively REJECT,
        // never wrongly accept.
        let (b, a) = (p(before), p(reordered));
        assert!(check_equiv(&b, &a, &EquivOptions::default()).is_err());
        // And the same program round-trips.
        ok(before, before, EquivOptions::default().strict_math());
    }

    #[test]
    fn strength_reduction_forms_are_exact() {
        // x·2 ≡ x+x, float x/4 ≡ x·0.25 — both accepted under strict.
        ok(
            ".base x f64[8] input\n.base y f64[8]\nBH_MULTIPLY y x 2\nBH_SYNC y\n",
            ".base x f64[8] input\n.base y f64[8]\nBH_ADD y x x\nBH_SYNC y\n",
            EquivOptions::default().strict_math(),
        );
        ok(
            ".base x f64[8] input\n.base y f64[8]\nBH_DIVIDE y x 4\nBH_SYNC y\n",
            ".base x f64[8] input\n.base y f64[8]\nBH_MULTIPLY y x 0.25\nBH_SYNC y\n",
            EquivOptions::default().strict_math(),
        );
        ok(
            ".base x u32[8] input\n.base y u32[8]\nBH_DIVIDE y x 8\nBH_SYNC y\n",
            ".base x u32[8] input\n.base y u32[8]\nBH_RIGHT_SHIFT y x 3\nBH_SYNC y\n",
            EquivOptions::default().strict_math(),
        );
    }

    #[test]
    fn changed_constant_mismatches() {
        fails_with(
            "BH_ADD a0 [0:4:1] a0 [0:4:1] 1\nBH_SYNC a0\n",
            "BH_ADD a0 [0:4:1] a0 [0:4:1] 2\nBH_SYNC a0\n",
            EquivOptions::default(),
            EquivCode::ValueMismatch,
        );
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for code in EquivCode::ALL {
            assert!(seen.insert(code.as_str()), "duplicate {code}");
            assert!(code.as_str().starts_with('A'));
        }
        assert_eq!(EquivCode::ALL.len(), seen.len());
    }

    #[test]
    fn witness_reports_proof_size() {
        let text = "BH_ADD a0 [0:8:1] a0 [0:8:1] 1\nBH_SYNC a0\n";
        let w = check_equiv(&p(text), &p(text), &EquivOptions::default()).unwrap();
        assert_eq!(w.observables, 1);
        assert_eq!(w.sync_points, 1);
        assert!(w.exprs >= 2);
    }
}
