//! Static validation of byte-code programs.
//!
//! Catches, before execution or transformation:
//! shape disagreements between operands, dtype-rule violations, malformed
//! reductions, linalg dimension mismatches, and reads of registers that
//! were never written (and are not declared `input`).

use crate::instr::Instruction;
use crate::opcode::{OpKind, Opcode};
use crate::operand::Operand;
use crate::program::Program;
use bh_tensor::{DType, Shape};
use std::fmt;

/// A single validation failure, tagged with the instruction index.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// Index of the offending instruction (or `usize::MAX` for
    /// program-level problems).
    pub instr: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.instr == usize::MAX {
            write!(f, "invalid program: {}", self.message)
        } else {
            write!(f, "invalid instruction #{}: {}", self.instr, self.message)
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a whole program, collecting every problem found.
///
/// # Errors
///
/// The list of problems; empty result means the program is well-formed.
pub fn validate(program: &Program) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    let mut written = vec![false; program.bases().len()];
    for (i, b) in program.bases().iter().enumerate() {
        written[i] = b.is_input;
    }
    for (i, instr) in program.instrs().iter().enumerate() {
        if let Err(msg) = validate_instr(program, instr) {
            errors.push(ValidationError {
                instr: i,
                message: msg,
            });
        }
        // Read-before-write (skip FREE: freeing an unwritten base is legal).
        if instr.op != Opcode::Free {
            for r in instr.input_regs() {
                if !written[r.index()] {
                    errors.push(ValidationError {
                        instr: i,
                        message: format!(
                            "register `{}` read before any write (declare it `input` \
                             or initialise it with BH_IDENTITY)",
                            program.base(r).name
                        ),
                    });
                    written[r.index()] = true; // report once
                }
            }
        }
        if let Some(r) = instr.out_reg() {
            written[r.index()] = true;
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validate one instruction against its program context.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn validate_instr(program: &Program, instr: &Instruction) -> Result<(), String> {
    let op = instr.op;
    if op == Opcode::NoOp {
        return Ok(());
    }
    if instr.operands.len() != op.operand_count() {
        return Err(format!(
            "{op} expects {} operands, found {}",
            op.operand_count(),
            instr.operands.len()
        ));
    }
    if op.has_output() {
        if instr.operands[0].as_view().is_none() {
            return Err(format!("{op} result operand must be a view"));
        }
    } else if let Some(Operand::Const(_)) = instr.operands.first() {
        return Err(format!("{op} target must be a view"));
    }

    // Resolve all view operands once.
    let mut shapes: Vec<Option<Shape>> = Vec::new();
    let mut dtypes: Vec<Option<DType>> = Vec::new();
    for o in &instr.operands {
        match o {
            Operand::View(v) => {
                let geom = program
                    .resolve_view(v)
                    .map_err(|e| format!("bad view of `{}`: {e}", program.base(v.reg).name))?;
                shapes.push(Some(geom.shape()));
                dtypes.push(Some(program.base(v.reg).dtype));
            }
            Operand::Const(c) => {
                shapes.push(None);
                dtypes.push(Some(c.dtype()));
            }
        }
    }

    match op.kind() {
        OpKind::ElementwiseUnary | OpKind::ElementwiseBinary => {
            validate_elementwise(op, instr, &shapes, &dtypes)
        }
        OpKind::Reduction => validate_reduction(program, op, instr, &shapes),
        OpKind::Scan => validate_scan(op, instr, &shapes),
        OpKind::Generator => validate_generator(op, instr, &dtypes),
        OpKind::System => Ok(()),
        OpKind::LinAlg => validate_linalg(op, instr, &shapes, &dtypes),
    }
}

fn validate_elementwise(
    op: Opcode,
    instr: &Instruction,
    shapes: &[Option<Shape>],
    dtypes: &[Option<DType>],
) -> Result<(), String> {
    let out_shape = shapes[0].as_ref().expect("output checked to be a view");
    // Input views must broadcast to the output shape.
    for (k, s) in shapes.iter().enumerate().skip(1) {
        if let Some(s) = s {
            let ok = s
                .broadcast(out_shape)
                .map(|b| &b == out_shape)
                .unwrap_or(false);
            if !ok {
                return Err(format!(
                    "operand {k} shape {s} does not broadcast to output shape {out_shape}"
                ));
            }
        }
    }
    // Dtype rule: all *view* inputs must share the output-relevant dtype.
    let out_dtype = dtypes[0].expect("output is a view");
    let mut in_view_dtype: Option<DType> = None;
    for (k, o) in instr.operands.iter().enumerate().skip(1) {
        if o.as_view().is_some() {
            let d = dtypes[k].expect("views carry dtypes");
            match in_view_dtype {
                None => in_view_dtype = Some(d),
                Some(prev) if prev != d => {
                    return Err(format!(
                        "input dtypes disagree: {prev} vs {d} (Bohrium inserts \
                         BH_IDENTITY casts; do the same)"
                    ));
                }
                _ => {}
            }
        }
    }
    // With only constants, the output dtype governs.
    let in_dtype = in_view_dtype.unwrap_or(out_dtype);
    let result = op.result_dtype(in_dtype).map_err(|e| e.to_string())?;
    let expected_out = if op.type_rule() == crate::opcode::TypeRule::Cast {
        out_dtype // BH_IDENTITY casts to whatever the output is
    } else {
        result
    };
    if out_dtype != expected_out {
        return Err(format!(
            "output dtype {out_dtype} does not match {op} result dtype {expected_out}"
        ));
    }
    Ok(())
}

fn validate_reduction(
    program: &Program,
    op: Opcode,
    instr: &Instruction,
    shapes: &[Option<Shape>],
) -> Result<(), String> {
    let axis = reduce_axis_const(instr)?;
    let in_shape = shapes[1]
        .as_ref()
        .ok_or_else(|| format!("{op} input must be a view"))?;
    if in_shape.rank() == 0 {
        return Err(format!("{op} cannot reduce a rank-0 view"));
    }
    if axis >= in_shape.rank() {
        return Err(format!(
            "reduction axis {axis} out of range for rank-{} input",
            in_shape.rank()
        ));
    }
    let expected = in_shape.without_axis(axis);
    let out_shape = shapes[0].as_ref().expect("output is a view");
    if *out_shape != expected {
        return Err(format!(
            "reduction output shape {out_shape} should be {expected}"
        ));
    }
    let out_dtype = program.operand_dtype(&instr.operands[0]);
    let in_dtype = program.operand_dtype(&instr.operands[1]);
    if out_dtype != in_dtype.reduce_dtype() {
        return Err(format!(
            "reduction output dtype {out_dtype} should be {}",
            in_dtype.reduce_dtype()
        ));
    }
    Ok(())
}

fn validate_scan(op: Opcode, instr: &Instruction, shapes: &[Option<Shape>]) -> Result<(), String> {
    let axis = reduce_axis_const(instr)?;
    let in_shape = shapes[1]
        .as_ref()
        .ok_or_else(|| format!("{op} input must be a view"))?;
    if axis >= in_shape.rank() {
        return Err(format!(
            "scan axis {axis} out of range for rank-{} input",
            in_shape.rank()
        ));
    }
    let out_shape = shapes[0].as_ref().expect("output is a view");
    if out_shape != in_shape {
        return Err(format!(
            "scan preserves shape: output {out_shape} vs input {in_shape}"
        ));
    }
    Ok(())
}

fn validate_generator(
    op: Opcode,
    instr: &Instruction,
    _dtypes: &[Option<DType>],
) -> Result<(), String> {
    if op == Opcode::Random {
        let seed = instr.operands[1]
            .as_const()
            .ok_or("BH_RANDOM seed must be a constant")?;
        if seed.as_integral().is_none() {
            return Err("BH_RANDOM seed must be integral".into());
        }
    }
    Ok(())
}

fn validate_linalg(
    op: Opcode,
    instr: &Instruction,
    shapes: &[Option<Shape>],
    dtypes: &[Option<DType>],
) -> Result<(), String> {
    for (k, o) in instr.operands.iter().enumerate() {
        if o.as_const().is_some() {
            return Err(format!("{op} operand {k} must be a view, not a constant"));
        }
        let d = dtypes[k].expect("views carry dtypes");
        if op != Opcode::Transpose && !d.is_float() {
            return Err(format!("{op} requires float operands, found {d}"));
        }
    }
    let shape = |k: usize| shapes[k].clone().expect("all linalg operands are views");
    match op {
        Opcode::MatMul => {
            let (out, a, b) = (shape(0), shape(1), shape(2));
            // Positional orientation, as in NumPy dot: rank-1 lhs is a row
            // vector, rank-1 rhs a column vector.
            let (ar, ac) = match a.rank() {
                1 => (1, a.dim(0)),
                2 => (a.dim(0), a.dim(1)),
                _ => return Err("BH_MATMUL lhs must be rank 1 or 2".into()),
            };
            let (br, bc) = match b.rank() {
                1 => (b.dim(0), 1),
                2 => (b.dim(0), b.dim(1)),
                _ => return Err("BH_MATMUL rhs must be rank 1 or 2".into()),
            };
            if ac != br {
                return Err(format!("BH_MATMUL inner dimensions disagree: {a} @ {b}"));
            }
            let expected = match (a.rank(), b.rank()) {
                (2, 2) => Shape::matrix(ar, bc),
                (2, 1) => Shape::vector(ar),
                (1, 2) => Shape::vector(bc),
                _ => Shape::vector(1),
            };
            if out != expected {
                return Err(format!("BH_MATMUL output shape {out} should be {expected}"));
            }
            Ok(())
        }
        Opcode::Transpose => {
            let (out, a) = (shape(0), shape(1));
            if a.rank() != 2 || out.rank() != 2 {
                return Err("BH_TRANSPOSE operates on matrices".into());
            }
            if out.dim(0) != a.dim(1) || out.dim(1) != a.dim(0) {
                return Err(format!(
                    "BH_TRANSPOSE output shape {out} should be ({},{})",
                    a.dim(1),
                    a.dim(0)
                ));
            }
            Ok(())
        }
        Opcode::Inverse => {
            let (out, a) = (shape(0), shape(1));
            if !is_square(&a) {
                return Err(format!("BH_INVERSE requires a square matrix, found {a}"));
            }
            if out != a {
                return Err(format!("BH_INVERSE output shape {out} should be {a}"));
            }
            Ok(())
        }
        Opcode::Solve => {
            let (out, a, b) = (shape(0), shape(1), shape(2));
            if !is_square(&a) {
                return Err(format!(
                    "BH_SOLVE coefficient matrix must be square, found {a}"
                ));
            }
            let n = a.dim(0);
            let b_rows = match b.rank() {
                1 => b.dim(0),
                2 => b.dim(0),
                _ => return Err("BH_SOLVE rhs must be rank 1 or 2".into()),
            };
            if b_rows != n {
                return Err(format!("BH_SOLVE rhs rows {b_rows} should be {n}"));
            }
            if out != b {
                return Err(format!("BH_SOLVE output shape {out} should match rhs {b}"));
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn reduce_axis_const(instr: &Instruction) -> Result<usize, String> {
    let c = instr.operands[2]
        .as_const()
        .ok_or("axis operand must be a constant")?;
    let v = c.as_integral().ok_or("axis operand must be integral")?;
    usize::try_from(v).map_err(|_| "axis operand must be non-negative".into())
}

fn is_square(s: &Shape) -> bool {
    s.rank() == 2 && s.dim(0) == s.dim(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::ViewRef;
    use crate::parse::parse_program;
    use crate::program::ProgramBuilder;
    use bh_tensor::Scalar;

    fn assert_valid(text: &str) {
        let p = parse_program(text).unwrap();
        if let Err(es) = validate(&p) {
            panic!("expected valid, got: {:?}", es);
        }
    }

    fn first_error(text: &str) -> String {
        let p = parse_program(text).unwrap();
        validate(&p).unwrap_err()[0].to_string()
    }

    #[test]
    fn listing2_is_valid() {
        assert_valid(
            "BH_IDENTITY a0 [0:10:1] 0\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_SYNC a0 [0:10:1]\n",
        );
    }

    #[test]
    fn read_before_write_flagged() {
        let msg = first_error("BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n");
        assert!(msg.contains("read before any write"), "{msg}");
    }

    #[test]
    fn input_bases_may_be_read_first() {
        assert_valid(
            ".base x f64[4] input\n\
             .base y f64[4]\n\
             BH_MULTIPLY y x x\n\
             BH_SYNC y\n",
        );
    }

    #[test]
    fn shape_mismatch_flagged() {
        let msg = first_error(
            ".base x f64[4] input\n\
             .base y f64[5]\n\
             BH_IDENTITY y x\n",
        );
        assert!(msg.contains("does not broadcast"), "{msg}");
    }

    #[test]
    fn broadcastable_inputs_accepted() {
        assert_valid(
            ".base x f64[1] input\n\
             .base y f64[5]\n\
             BH_IDENTITY y 0\n\
             BH_ADD y y x\n\
             BH_SYNC y\n",
        );
    }

    #[test]
    fn dtype_rule_violations() {
        let msg = first_error(
            ".base x i32[4] input\n\
             .base y i32[4]\n\
             BH_SQRT y x\n",
        );
        assert!(msg.contains("does not support dtype"), "{msg}");
        let msg = first_error(
            ".base x f64[4] input\n\
             .base y i32[4] input\n\
             .base z f64[4]\n\
             BH_ADD z x y\n",
        );
        assert!(msg.contains("dtypes disagree"), "{msg}");
    }

    #[test]
    fn comparison_output_must_be_bool() {
        let msg = first_error(
            ".base x f64[4] input\n\
             .base y f64[4]\n\
             BH_GREATER y x x\n",
        );
        assert!(msg.contains("result dtype"), "{msg}");
        assert_valid(
            ".base x f64[4] input\n\
             .base m bool[4]\n\
             BH_GREATER m x x\n\
             BH_SYNC m\n",
        );
    }

    #[test]
    fn identity_casts_freely() {
        assert_valid(
            ".base x i32[4] input\n\
             .base y f64[4]\n\
             BH_IDENTITY y x\n\
             BH_SYNC y\n",
        );
    }

    #[test]
    fn reduction_shapes_and_axis() {
        assert_valid(
            ".base m f64[3,4] input\n\
             .base s f64[3]\n\
             BH_ADD_REDUCE s m 1\n\
             BH_SYNC s\n",
        );
        let msg = first_error(
            ".base m f64[3,4] input\n\
             .base s f64[3]\n\
             BH_ADD_REDUCE s m 7\n",
        );
        assert!(msg.contains("axis 7 out of range"), "{msg}");
        let msg = first_error(
            ".base m f64[3,4] input\n\
             .base s f64[4]\n\
             BH_ADD_REDUCE s m 1\n",
        );
        assert!(msg.contains("should be (3)"), "{msg}");
    }

    #[test]
    fn scan_preserves_shape() {
        assert_valid(
            ".base m f64[6] input\n\
             .base c f64[6]\n\
             BH_ADD_ACCUMULATE c m 0\n\
             BH_SYNC c\n",
        );
        let msg = first_error(
            ".base m f64[6] input\n\
             .base c f64[5]\n\
             BH_ADD_ACCUMULATE c m 0\n",
        );
        assert!(msg.contains("scan preserves shape"), "{msg}");
    }

    #[test]
    fn matmul_dims() {
        assert_valid(
            ".base a f64[2,3] input\n\
             .base b f64[3,4] input\n\
             .base c f64[2,4]\n\
             BH_MATMUL c a b\n\
             BH_SYNC c\n",
        );
        let msg = first_error(
            ".base a f64[2,3] input\n\
             .base b f64[2,4] input\n\
             .base c f64[2,4]\n\
             BH_MATMUL c a b\n",
        );
        assert!(msg.contains("inner dimensions disagree"), "{msg}");
    }

    #[test]
    fn solve_and_inverse_shapes() {
        assert_valid(
            ".base a f64[3,3] input\n\
             .base b f64[3] input\n\
             .base x f64[3]\n\
             BH_SOLVE x a b\n\
             BH_SYNC x\n",
        );
        let msg = first_error(
            ".base a f64[3,4] input\n\
             .base i f64[3,4]\n\
             BH_INVERSE i a\n",
        );
        assert!(msg.contains("square"), "{msg}");
    }

    #[test]
    fn random_seed_validated() {
        assert_valid(".base r f64[8]\nBH_RANDOM r 42\nBH_SYNC r\n");
        let msg = first_error(".base r f64[8]\nBH_RANDOM r 1.5\n");
        assert!(msg.contains("integral"), "{msg}");
    }

    #[test]
    fn free_of_unwritten_base_is_legal() {
        assert_valid(".base x f64[4]\nBH_FREE x\n");
    }

    #[test]
    fn programmatic_arity_error_caught() {
        let mut b = ProgramBuilder::new(bh_tensor::DType::Float64, bh_tensor::Shape::vector(2));
        let a = b.reg("a");
        b.identity_const(a, Scalar::F64(0.0));
        let mut p = b.build();
        // Hand-build a malformed BH_ADD with a single input.
        p.push(crate::instr::Instruction::unary(
            Opcode::Add,
            ViewRef::full(a),
            Scalar::F64(1.0),
        ));
        let errs = validate(&p).unwrap_err();
        assert!(errs[0].to_string().contains("expects 3 operands"));
    }
}
