//! Static validation of byte-code programs — compatibility wrappers over
//! the [`crate::verify()`] rule catalogue.
//!
//! [`validate`] predates the verifier and reported stringly-typed
//! findings; it now delegates to [`crate::verify::verify`] and flattens
//! the structured [`crate::VerifyError`]s into [`ValidationError`]s, so
//! the two APIs can never disagree about what a well-formed program is.
//! New code should call [`crate::verify::verify`] directly and keep the
//! stable [`crate::VerifyCode`]s (and the execution witness).

use crate::instr::Instruction;
use crate::program::Program;
use crate::verify::{verify_instr, VerifyError};
use std::fmt;

/// A single validation failure, tagged with the instruction index.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// Index of the offending instruction (or `usize::MAX` for
    /// program-level problems).
    pub instr: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.instr == usize::MAX {
            write!(f, "invalid program: {}", self.message)
        } else {
            write!(f, "invalid instruction #{}: {}", self.instr, self.message)
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<VerifyError> for ValidationError {
    /// Flatten a structured finding: the detail becomes the message
    /// verbatim (existing callers match on message substrings), the
    /// instruction index carries over, the code is dropped.
    fn from(e: VerifyError) -> ValidationError {
        ValidationError {
            instr: e.instr,
            message: e.detail,
        }
    }
}

/// Validate a whole program, collecting every problem found.
///
/// Thin wrapper over [`crate::verify::verify`] (which additionally mints
/// an execution witness and reports stable error codes).
///
/// # Errors
///
/// The list of problems; empty result means the program is well-formed.
pub fn validate(program: &Program) -> Result<(), Vec<ValidationError>> {
    match crate::verify::verify(program) {
        Ok(_) => Ok(()),
        Err(errors) => Err(errors.into_iter().map(ValidationError::from).collect()),
    }
}

/// Validate one instruction against its program context, reporting
/// **all** of its problems (data-flow rules, which need whole-program
/// state, are only checked by [`validate`] / [`crate::verify::verify`]).
///
/// # Errors
///
/// Every instruction-local finding, as structured [`VerifyError`]s.
pub fn validate_instr(program: &Program, instr: &Instruction) -> Result<(), Vec<VerifyError>> {
    let errors = verify_instr(program, instr);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;
    use crate::operand::ViewRef;
    use crate::parse::parse_program;
    use crate::program::ProgramBuilder;
    use bh_tensor::Scalar;

    fn assert_valid(text: &str) {
        let p = parse_program(text).unwrap();
        if let Err(es) = validate(&p) {
            panic!("expected valid, got: {:?}", es);
        }
    }

    fn first_error(text: &str) -> String {
        let p = parse_program(text).unwrap();
        validate(&p).unwrap_err()[0].to_string()
    }

    #[test]
    fn listing2_is_valid() {
        assert_valid(
            "BH_IDENTITY a0 [0:10:1] 0\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_SYNC a0 [0:10:1]\n",
        );
    }

    #[test]
    fn read_before_write_flagged() {
        let msg = first_error("BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n");
        assert!(msg.contains("read before any write"), "{msg}");
    }

    #[test]
    fn input_bases_may_be_read_first() {
        assert_valid(
            ".base x f64[4] input\n\
             .base y f64[4]\n\
             BH_MULTIPLY y x x\n\
             BH_SYNC y\n",
        );
    }

    #[test]
    fn shape_mismatch_flagged() {
        let msg = first_error(
            ".base x f64[4] input\n\
             .base y f64[5]\n\
             BH_IDENTITY y x\n",
        );
        assert!(msg.contains("does not broadcast"), "{msg}");
    }

    #[test]
    fn broadcastable_inputs_accepted() {
        assert_valid(
            ".base x f64[1] input\n\
             .base y f64[5]\n\
             BH_IDENTITY y 0\n\
             BH_ADD y y x\n\
             BH_SYNC y\n",
        );
    }

    #[test]
    fn dtype_rule_violations() {
        let msg = first_error(
            ".base x i32[4] input\n\
             .base y i32[4]\n\
             BH_SQRT y x\n",
        );
        assert!(msg.contains("does not support dtype"), "{msg}");
        let msg = first_error(
            ".base x f64[4] input\n\
             .base y i32[4] input\n\
             .base z f64[4]\n\
             BH_ADD z x y\n",
        );
        assert!(msg.contains("dtypes disagree"), "{msg}");
    }

    #[test]
    fn comparison_output_must_be_bool() {
        let msg = first_error(
            ".base x f64[4] input\n\
             .base y f64[4]\n\
             BH_GREATER y x x\n",
        );
        assert!(msg.contains("result dtype"), "{msg}");
        assert_valid(
            ".base x f64[4] input\n\
             .base m bool[4]\n\
             BH_GREATER m x x\n\
             BH_SYNC m\n",
        );
    }

    #[test]
    fn identity_casts_freely() {
        assert_valid(
            ".base x i32[4] input\n\
             .base y f64[4]\n\
             BH_IDENTITY y x\n\
             BH_SYNC y\n",
        );
    }

    #[test]
    fn reduction_shapes_and_axis() {
        assert_valid(
            ".base m f64[3,4] input\n\
             .base s f64[3]\n\
             BH_ADD_REDUCE s m 1\n\
             BH_SYNC s\n",
        );
        let msg = first_error(
            ".base m f64[3,4] input\n\
             .base s f64[3]\n\
             BH_ADD_REDUCE s m 7\n",
        );
        assert!(msg.contains("axis 7 out of range"), "{msg}");
        let msg = first_error(
            ".base m f64[3,4] input\n\
             .base s f64[4]\n\
             BH_ADD_REDUCE s m 1\n",
        );
        assert!(msg.contains("should be (3)"), "{msg}");
    }

    #[test]
    fn scan_preserves_shape() {
        assert_valid(
            ".base m f64[6] input\n\
             .base c f64[6]\n\
             BH_ADD_ACCUMULATE c m 0\n\
             BH_SYNC c\n",
        );
        let msg = first_error(
            ".base m f64[6] input\n\
             .base c f64[5]\n\
             BH_ADD_ACCUMULATE c m 0\n",
        );
        assert!(msg.contains("scan preserves shape"), "{msg}");
    }

    #[test]
    fn matmul_dims() {
        assert_valid(
            ".base a f64[2,3] input\n\
             .base b f64[3,4] input\n\
             .base c f64[2,4]\n\
             BH_MATMUL c a b\n\
             BH_SYNC c\n",
        );
        let msg = first_error(
            ".base a f64[2,3] input\n\
             .base b f64[2,4] input\n\
             .base c f64[2,4]\n\
             BH_MATMUL c a b\n",
        );
        assert!(msg.contains("inner dimensions disagree"), "{msg}");
    }

    #[test]
    fn solve_and_inverse_shapes() {
        assert_valid(
            ".base a f64[3,3] input\n\
             .base b f64[3] input\n\
             .base x f64[3]\n\
             BH_SOLVE x a b\n\
             BH_SYNC x\n",
        );
        let msg = first_error(
            ".base a f64[3,4] input\n\
             .base i f64[3,4]\n\
             BH_INVERSE i a\n",
        );
        assert!(msg.contains("square"), "{msg}");
    }

    #[test]
    fn random_seed_validated() {
        assert_valid(".base r f64[8]\nBH_RANDOM r 42\nBH_SYNC r\n");
        let msg = first_error(".base r f64[8]\nBH_RANDOM r 1.5\n");
        assert!(msg.contains("integral"), "{msg}");
    }

    #[test]
    fn free_of_unwritten_base_is_legal() {
        assert_valid(".base x f64[4]\nBH_FREE x\n");
    }

    #[test]
    fn programmatic_arity_error_caught() {
        let mut b = ProgramBuilder::new(bh_tensor::DType::Float64, bh_tensor::Shape::vector(2));
        let a = b.reg("a");
        b.identity_const(a, Scalar::F64(0.0));
        let mut p = b.build();
        // Hand-build a malformed BH_ADD with a single input.
        p.push(crate::instr::Instruction::unary(
            Opcode::Add,
            ViewRef::full(a),
            Scalar::F64(1.0),
        ));
        let errs = validate(&p).unwrap_err();
        assert!(errs[0].to_string().contains("expects 3 operands"));
    }

    #[test]
    fn validate_instr_reports_every_problem() {
        let p = parse_program(
            ".base x i32[4] input\n\
             .base y i32[5]\n\
             BH_SQRT y x\n",
        )
        .unwrap();
        let errs = validate_instr(&p, &p.instrs()[0]).unwrap_err();
        assert!(errs.len() >= 2, "want broadcast + dtype findings: {errs:?}");
        assert_valid(".base ok f64[2]\nBH_IDENTITY ok 1\nBH_SYNC ok\n");
        assert!(validate_instr(&p, &crate::instr::Instruction::noop()).is_ok());
    }
}
