//! Byte-code programs: base-array declarations plus an instruction sequence.

use crate::instr::Instruction;
use crate::opcode::Opcode;
use crate::operand::{Operand, Reg, ViewRef};
use bh_tensor::{DType, Scalar, Shape, Slice, TensorError, ViewGeom};
use std::collections::HashMap;
use std::fmt;

/// Declaration of one base array (a byte-code register).
#[derive(Debug, Clone, PartialEq)]
pub struct BaseDecl {
    /// Register name as written in the byte-code text (`a0`, `t3`, …).
    pub name: String,
    /// Element dtype of the base.
    pub dtype: DType,
    /// Logical shape of the base allocation.
    pub shape: Shape,
    /// True when the base holds caller-provided data (may be read before
    /// any instruction writes it).
    pub is_input: bool,
}

/// A descriptive vector byte-code sequence.
///
/// # Examples
///
/// Build Listing 2 of the paper programmatically:
///
/// ```
/// use bh_ir::{Program, Instruction, Opcode, ViewRef};
/// use bh_tensor::{DType, Scalar, Shape};
///
/// let mut p = Program::new();
/// let a0 = p.declare("a0", DType::Float64, Shape::vector(10));
/// p.push(Instruction::unary(Opcode::Identity, ViewRef::full(a0), Scalar::F64(0.0)));
/// for _ in 0..3 {
///     p.push(Instruction::binary(
///         Opcode::Add, ViewRef::full(a0), ViewRef::full(a0), Scalar::F64(1.0)));
/// }
/// p.push(Instruction::sync(ViewRef::full(a0)));
/// assert_eq!(p.instrs().len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    bases: Vec<BaseDecl>,
    names: HashMap<String, Reg>,
    instrs: Vec<Instruction>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Declare a base array, returning its register.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already declared (programmatic construction is
    /// expected to pick fresh names; the parser reports a proper error).
    pub fn declare(&mut self, name: &str, dtype: DType, shape: Shape) -> Reg {
        self.try_declare(name, dtype, shape, false)
            .expect("duplicate base declaration")
    }

    /// Declare a base array holding caller-provided input data.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names, like [`Program::declare`].
    pub fn declare_input(&mut self, name: &str, dtype: DType, shape: Shape) -> Reg {
        self.try_declare(name, dtype, shape, true)
            .expect("duplicate base declaration")
    }

    /// Fallible declaration, used by the parser.
    pub fn try_declare(
        &mut self,
        name: &str,
        dtype: DType,
        shape: Shape,
        is_input: bool,
    ) -> Option<Reg> {
        if self.names.contains_key(name) {
            return None;
        }
        let reg = Reg(self.bases.len() as u32);
        self.names.insert(name.to_owned(), reg);
        self.bases.push(BaseDecl {
            name: name.to_owned(),
            dtype,
            shape,
            is_input,
        });
        Some(reg)
    }

    /// Declare a fresh temporary with an auto-generated unique name
    /// (`t0`, `t1`, …). Used by rewrites that must introduce registers.
    pub fn declare_temp(&mut self, dtype: DType, shape: Shape) -> Reg {
        let mut i = self.bases.len();
        loop {
            let name = format!("t{i}");
            if !self.names.contains_key(&name) {
                return self.declare(&name, dtype, shape);
            }
            i += 1;
        }
    }

    /// Append an instruction.
    pub fn push(&mut self, instr: Instruction) {
        self.instrs.push(instr);
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Mutable access to the instruction sequence (the rewrite engine edits
    /// in place).
    pub fn instrs_mut(&mut self) -> &mut Vec<Instruction> {
        &mut self.instrs
    }

    /// All base declarations, indexed by `Reg::index`.
    pub fn bases(&self) -> &[BaseDecl] {
        &self.bases
    }

    /// The declaration behind a register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` does not belong to this program.
    pub fn base(&self, reg: Reg) -> &BaseDecl {
        &self.bases[reg.index()]
    }

    /// Look up a register by its declared name.
    pub fn reg_by_name(&self, name: &str) -> Option<Reg> {
        self.names.get(name).copied()
    }

    /// Number of instructions, excluding `BH_NONE` placeholders.
    pub fn live_len(&self) -> usize {
        self.instrs.iter().filter(|i| !i.is_noop()).count()
    }

    /// Count instructions with the given op-code.
    pub fn count_op(&self, op: Opcode) -> usize {
        self.instrs.iter().filter(|i| i.op == op).count()
    }

    /// Drop `BH_NONE` placeholders left behind by rewrites.
    pub fn compact(&mut self) {
        self.instrs.retain(|i| !i.is_noop());
    }

    /// Resolve a view operand to concrete geometry over its base.
    ///
    /// # Errors
    ///
    /// Propagates slice-resolution failures ([`TensorError`]).
    pub fn resolve_view(&self, view: &ViewRef) -> Result<ViewGeom, TensorError> {
        let base = self.base(view.reg);
        match &view.slices {
            None => Ok(ViewGeom::contiguous(&base.shape)),
            Some(slices) => ViewGeom::from_slices(&base.shape, slices),
        }
    }

    /// The dtype an operand contributes to instruction typing: the base
    /// dtype for views, the scalar's own dtype for constants.
    pub fn operand_dtype(&self, operand: &Operand) -> DType {
        match operand {
            Operand::View(v) => self.base(v.reg).dtype,
            Operand::Const(c) => c.dtype(),
        }
    }

    /// Render in the paper's textual format.
    ///
    /// `style` controls whether full views are written out (`[0:10:1]`,
    /// Listing 2 style) or elided (Listing 3–5 style), and whether the
    /// `.base` declaration header is included (required for round-tripping
    /// non-f64 or multi-dimensional programs).
    pub fn to_text(&self, style: PrintStyle) -> String {
        let mut out = String::new();
        if style.decls {
            for b in &self.bases {
                out.push_str(".base ");
                out.push_str(&b.name);
                out.push(' ');
                out.push_str(b.dtype.short_name());
                out.push('[');
                for (i, d) in b.shape.dims().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&d.to_string());
                }
                out.push(']');
                if b.is_input {
                    out.push_str(" input");
                }
                out.push('\n');
            }
        }
        for instr in &self.instrs {
            out.push_str(&self.instr_to_text(instr, style));
            out.push('\n');
        }
        out
    }

    /// Render one instruction with resolved register names.
    pub fn instr_to_text(&self, instr: &Instruction, style: PrintStyle) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "{}", instr.op);
        for o in &instr.operands {
            match o {
                Operand::Const(c) => {
                    let _ = write!(s, " {c}");
                }
                Operand::View(v) => {
                    let name = &self.base(v.reg).name;
                    let _ = write!(s, " {name}");
                    // A view that geometrically covers the whole base can be
                    // elided (Listing 3–5 style) or spelled out [0:n:1]
                    // (Listing 2 style); partial views always print.
                    let covers_base = match self.resolve_view(v) {
                        Ok(g) => {
                            g.offset() == 0
                                && g.is_contiguous()
                                && g.nelem() == self.base(v.reg).shape.nelem()
                        }
                        Err(_) => false,
                    };
                    let explicit = match (&v.slices, style.explicit_views) {
                        (Some(sl), _) if !covers_base => Some(sl.clone()),
                        (Some(sl), true) => Some(sl.clone()),
                        (None, true) => {
                            // Materialise the full view in [0:n:1] form.
                            Some(
                                self.base(v.reg)
                                    .shape
                                    .dims()
                                    .iter()
                                    .map(|&n| Slice::new(Some(0), Some(n as i64), 1))
                                    .collect(),
                            )
                        }
                        (None, false) => None,
                        (Some(_), false) => None,
                    };
                    if let Some(slices) = explicit {
                        let _ = write!(s, " [");
                        for (i, sl) in slices.iter().enumerate() {
                            if i > 0 {
                                let _ = write!(s, ",");
                            }
                            let resolved = normalize_slice(*sl, &self.base(v.reg).shape, i);
                            let _ = write!(s, "{resolved}");
                        }
                        let _ = write!(s, "]");
                    }
                }
            }
        }
        s
    }

    /// Total abstract element-work of the program under the per-op unit
    /// costs (see [`Opcode::unit_cost`]); a quick static proxy used in
    /// tests — the real cost model lives in `bh-opt`.
    pub fn static_cost(&self) -> u64 {
        self.instrs
            .iter()
            .map(|i| {
                let n = i
                    .out_view()
                    .or_else(|| i.operands.first().and_then(|o| o.as_view()))
                    .and_then(|v| self.resolve_view(v).ok())
                    .map(|g| g.nelem() as u64)
                    .unwrap_or(0);
                i.op.unit_cost() * n
            })
            .sum()
    }
}

/// Make implicit bounds explicit so `:` prints as `0:10:1` like the paper.
fn normalize_slice(s: Slice, shape: &Shape, axis: usize) -> Slice {
    let n = shape.dims().get(axis).copied().unwrap_or(0) as i64;
    if s.step == 1 {
        Slice::new(Some(s.start.unwrap_or(0)), Some(s.stop.unwrap_or(n)), 1)
    } else {
        s
    }
}

/// Formatting options for [`Program::to_text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrintStyle {
    /// Emit `.base` declaration headers.
    pub decls: bool,
    /// Write full views explicitly (`a0 [0:10:1]`, Listing 2 style) instead
    /// of eliding them (Listing 3 style).
    pub explicit_views: bool,
}

impl PrintStyle {
    /// Listing 2 style: explicit views, no declarations.
    pub const LISTING: PrintStyle = PrintStyle {
        decls: false,
        explicit_views: true,
    };
    /// Listing 3–5 style: views elided.
    pub const COMPACT: PrintStyle = PrintStyle {
        decls: false,
        explicit_views: false,
    };
    /// Round-trippable: declarations + explicit views.
    pub const FULL: PrintStyle = PrintStyle {
        decls: true,
        explicit_views: true,
    };
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text(PrintStyle::COMPACT))
    }
}

/// Convenience builder for tests and examples: emits instructions against a
/// single default-dtype working set.
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    dtype: DType,
    shape: Shape,
}

impl ProgramBuilder {
    /// Start a builder whose registers share one dtype and shape, matching
    /// the paper's "the view is the same for all registers" convention.
    pub fn new(dtype: DType, shape: Shape) -> ProgramBuilder {
        ProgramBuilder {
            program: Program::new(),
            dtype,
            shape,
        }
    }

    /// Declare (or fetch) a register by name.
    pub fn reg(&mut self, name: &str) -> Reg {
        if let Some(r) = self.program.reg_by_name(name) {
            return r;
        }
        self.program.declare(name, self.dtype, self.shape.clone())
    }

    /// Declare (or fetch) an input register by name.
    pub fn input(&mut self, name: &str) -> Reg {
        if let Some(r) = self.program.reg_by_name(name) {
            return r;
        }
        self.program
            .try_declare(name, self.dtype, self.shape.clone(), true)
            .expect("name checked above")
    }

    /// `BH_IDENTITY out <const>` — initialise a register.
    pub fn identity_const(&mut self, out: Reg, value: Scalar) -> &mut Self {
        self.program.push(Instruction::unary(
            Opcode::Identity,
            ViewRef::full(out),
            value,
        ));
        self
    }

    /// Binary op on full views / constants.
    pub fn binary(
        &mut self,
        op: Opcode,
        out: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.program
            .push(Instruction::binary(op, ViewRef::full(out), a, b));
        self
    }

    /// Unary op on full views / constants.
    pub fn unary(&mut self, op: Opcode, out: Reg, a: impl Into<Operand>) -> &mut Self {
        self.program
            .push(Instruction::unary(op, ViewRef::full(out), a));
        self
    }

    /// `BH_SYNC reg`.
    pub fn sync(&mut self, reg: Reg) -> &mut Self {
        self.program.push(Instruction::sync(ViewRef::full(reg)));
        self
    }

    /// `BH_FREE reg`.
    pub fn free(&mut self, reg: Reg) -> &mut Self {
        self.program.push(Instruction::free(ViewRef::full(reg)));
        self
    }

    /// Finish and return the program.
    pub fn build(&mut self) -> Program {
        std::mem::take(&mut self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing2() -> Program {
        let mut b = ProgramBuilder::new(DType::Float64, Shape::vector(10));
        let a0 = b.reg("a0");
        b.identity_const(a0, Scalar::F64(0.0));
        for _ in 0..3 {
            b.binary(Opcode::Add, a0, ViewRef::full(a0), Scalar::F64(1.0));
        }
        b.sync(a0);
        b.build()
    }

    #[test]
    fn declare_and_lookup() {
        let mut p = Program::new();
        let r = p.declare("a0", DType::Float64, Shape::vector(4));
        assert_eq!(p.reg_by_name("a0"), Some(r));
        assert_eq!(p.base(r).name, "a0");
        assert!(!p.base(r).is_input);
        assert!(p
            .try_declare("a0", DType::Float64, Shape::vector(4), false)
            .is_none());
    }

    #[test]
    fn declare_temp_is_fresh() {
        let mut p = Program::new();
        p.declare("t0", DType::Float64, Shape::vector(1));
        let t = p.declare_temp(DType::Float64, Shape::vector(1));
        assert_ne!(p.base(t).name, "t0");
    }

    #[test]
    fn listing2_text_matches_paper() {
        let p = listing2();
        let text = p.to_text(PrintStyle::LISTING);
        let expected = "\
BH_IDENTITY a0 [0:10:1] 0.0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0
BH_ADD a0 [0:10:1] a0 [0:10:1] 1.0
BH_SYNC a0 [0:10:1]
";
        assert_eq!(text, expected);
    }

    #[test]
    fn compact_style_elides_views() {
        let p = listing2();
        let text = p.to_text(PrintStyle::COMPACT);
        assert!(text.contains("BH_ADD a0 a0 1.0"));
        assert!(!text.contains("[0:10:1]"));
    }

    #[test]
    fn full_style_emits_decls() {
        let p = listing2();
        let text = p.to_text(PrintStyle::FULL);
        assert!(text.starts_with(".base a0 f64[10]"));
    }

    #[test]
    fn resolve_full_and_sliced_views() {
        let mut p = Program::new();
        let r = p.declare("a0", DType::Float64, Shape::vector(10));
        let full = p.resolve_view(&ViewRef::full(r)).unwrap();
        assert_eq!(full.nelem(), 10);
        let half = p
            .resolve_view(&ViewRef::sliced(r, vec![Slice::range(0, 5)]))
            .unwrap();
        assert_eq!(half.nelem(), 5);
    }

    #[test]
    fn counting_and_compaction() {
        let mut p = listing2();
        assert_eq!(p.count_op(Opcode::Add), 3);
        p.instrs_mut()[1] = Instruction::noop();
        assert_eq!(p.live_len(), 4);
        p.compact();
        assert_eq!(p.instrs().len(), 4);
        assert_eq!(p.count_op(Opcode::Add), 2);
    }

    #[test]
    fn static_cost_scales_with_length() {
        let p = listing2();
        // identity(1) + 3 adds(1) + sync(1) on 10 elements each
        assert_eq!(p.static_cost(), 5 * 10);
    }

    #[test]
    fn operand_dtype() {
        let mut p = Program::new();
        let r = p.declare("a0", DType::Int32, Shape::vector(2));
        assert_eq!(p.operand_dtype(&Operand::full(r)), DType::Int32);
        assert_eq!(
            p.operand_dtype(&Operand::from(Scalar::F64(1.0))),
            DType::Float64
        );
    }

    #[test]
    fn builder_input_flag() {
        let mut b = ProgramBuilder::new(DType::Float64, Shape::vector(3));
        let x = b.input("x");
        let p = b.build();
        assert!(p.base(x).is_input);
    }
}
