//! Byte-code instructions.
//!
//! "A single line encapsulates one byte-code. A byte-code consists of an
//! op-code, e.g. `BH_ADD`, a result register, and up to two parameter
//! registers or constants." (paper, §3)

use crate::opcode::Opcode;
use crate::operand::{Operand, Reg, ViewRef};
use std::fmt;

/// One byte-code: an op-code plus its operand list.
///
/// For ops with an output, `operands[0]` is the result view. System ops
/// (`BH_SYNC`, `BH_FREE`) carry their target as the single operand;
/// `BH_NONE` has none.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The op-code.
    pub op: Opcode,
    /// Result view first (when the op has an output), then inputs.
    pub operands: Vec<Operand>,
}

impl Instruction {
    /// Build an instruction from raw parts.
    pub fn new(op: Opcode, operands: Vec<Operand>) -> Instruction {
        Instruction { op, operands }
    }

    /// `op out, a` — unary element-wise / generator-with-arg.
    pub fn unary(op: Opcode, out: ViewRef, a: impl Into<Operand>) -> Instruction {
        Instruction {
            op,
            operands: vec![Operand::View(out), a.into()],
        }
    }

    /// `op out, a, b` — binary element-wise, reduction, scan or 2-input
    /// linalg.
    pub fn binary(
        op: Opcode,
        out: ViewRef,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Instruction {
        Instruction {
            op,
            operands: vec![Operand::View(out), a.into(), b.into()],
        }
    }

    /// `BH_SYNC target`.
    pub fn sync(target: ViewRef) -> Instruction {
        Instruction {
            op: Opcode::Sync,
            operands: vec![Operand::View(target)],
        }
    }

    /// `BH_FREE target`.
    pub fn free(target: ViewRef) -> Instruction {
        Instruction {
            op: Opcode::Free,
            operands: vec![Operand::View(target)],
        }
    }

    /// `BH_NONE` — the no-op left behind by rewrites before dead-code
    /// elimination sweeps it away.
    pub fn noop() -> Instruction {
        Instruction {
            op: Opcode::NoOp,
            operands: Vec::new(),
        }
    }

    /// `BH_RANGE out`.
    pub fn range(out: ViewRef) -> Instruction {
        Instruction {
            op: Opcode::Range,
            operands: vec![Operand::View(out)],
        }
    }

    /// The result view, for ops that produce data.
    pub fn out_view(&self) -> Option<&ViewRef> {
        if self.op.has_output() {
            self.operands.first().and_then(|o| o.as_view())
        } else {
            None
        }
    }

    /// The register written by this instruction, if any.
    pub fn out_reg(&self) -> Option<Reg> {
        self.out_view().map(|v| v.reg)
    }

    /// Input operands (everything after the output view; for system ops the
    /// target operand counts as an input — `BH_SYNC a0` *reads* `a0`).
    pub fn inputs(&self) -> &[Operand] {
        if self.op.has_output() && !self.operands.is_empty() {
            &self.operands[1..]
        } else {
            &self.operands
        }
    }

    /// Registers read by this instruction, in operand order (with
    /// duplicates when a register appears twice, as in
    /// `BH_MULTIPLY a1 a1 a1`).
    pub fn input_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.inputs().iter().filter_map(|o| o.reg())
    }

    /// True when any input reads `reg`.
    pub fn reads(&self, reg: Reg) -> bool {
        self.input_regs().any(|r| r == reg)
    }

    /// True when the output writes `reg`.
    pub fn writes(&self, reg: Reg) -> bool {
        self.out_reg() == Some(reg)
    }

    /// True for `BH_NONE`.
    pub fn is_noop(&self) -> bool {
        self.op == Opcode::NoOp
    }

    /// The single constant among the inputs, when there is exactly one
    /// (pattern hook for constant-merging rules).
    pub fn sole_const_input(&self) -> Option<(usize, bh_tensor::Scalar)> {
        let mut found = None;
        for (i, o) in self.inputs().iter().enumerate() {
            if let Some(c) = o.as_const() {
                if found.is_some() {
                    return None;
                }
                found = Some((i, c));
            }
        }
        found
    }
}

impl fmt::Display for Instruction {
    /// Default textual form with `r<N>` register names; use
    /// [`crate::Program::to_text`] for name-resolved, paper-style output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        for o in &self.operands {
            write!(f, " {o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_tensor::Scalar;

    fn add_const(out: u32, a: u32, c: i64) -> Instruction {
        Instruction::binary(
            Opcode::Add,
            ViewRef::full(Reg(out)),
            ViewRef::full(Reg(a)),
            Scalar::I64(c),
        )
    }

    #[test]
    fn out_and_inputs() {
        let i = add_const(0, 0, 1);
        assert_eq!(i.out_reg(), Some(Reg(0)));
        assert_eq!(i.inputs().len(), 2);
        assert!(i.reads(Reg(0)));
        assert!(i.writes(Reg(0)));
        assert!(!i.reads(Reg(1)));
    }

    #[test]
    fn sync_has_no_output_but_reads_target() {
        let s = Instruction::sync(ViewRef::full(Reg(0)));
        assert_eq!(s.out_reg(), None);
        assert!(s.reads(Reg(0)));
        assert_eq!(s.inputs().len(), 1);
    }

    #[test]
    fn noop() {
        let n = Instruction::noop();
        assert!(n.is_noop());
        assert_eq!(n.out_reg(), None);
        assert_eq!(n.inputs().len(), 0);
    }

    #[test]
    fn input_regs_keeps_duplicates() {
        // BH_MULTIPLY a1 a1 a1 (the squaring step of Listing 5)
        let i = Instruction::binary(
            Opcode::Multiply,
            ViewRef::full(Reg(1)),
            ViewRef::full(Reg(1)),
            ViewRef::full(Reg(1)),
        );
        assert_eq!(i.input_regs().collect::<Vec<_>>(), vec![Reg(1), Reg(1)]);
    }

    #[test]
    fn sole_const_input() {
        let i = add_const(0, 0, 3);
        let (pos, c) = i.sole_const_input().unwrap();
        assert_eq!(pos, 1);
        assert_eq!(c, Scalar::I64(3));
        // two constants -> None
        let two = Instruction::binary(
            Opcode::Add,
            ViewRef::full(Reg(0)),
            Scalar::I64(1),
            Scalar::I64(2),
        );
        assert!(two.sole_const_input().is_none());
        // no constants -> None
        let none = Instruction::binary(
            Opcode::Add,
            ViewRef::full(Reg(0)),
            ViewRef::full(Reg(1)),
            ViewRef::full(Reg(2)),
        );
        assert!(none.sole_const_input().is_none());
    }

    #[test]
    fn display() {
        let i = add_const(0, 0, 1);
        assert_eq!(i.to_string(), "BH_ADD r0 r0 1");
    }
}
