//! Structural program digests, the key of the runtime transformation cache.
//!
//! Two recordings of the same logical byte-code sequence — possibly made by
//! different front-end contexts, so with different register *names* — must
//! map to the same cache entry, while any semantic difference (op-codes,
//! operand wiring, constants, dtypes, shapes, slices, input-ness) must
//! produce a different key. [`Program::structural_digest`] therefore
//! serialises the program into a canonical byte string in which registers
//! are identified purely by declaration index and names never appear.
//!
//! The canonical encoding itself is the cache key: every field is tagged
//! and length-prefixed, so distinct programs encode to distinct byte
//! strings and equality of digests is equality of structure — no
//! hash-collision caveats. A 64-bit FNV-1a [`ProgramDigest::fingerprint`]
//! is derived for logging and `Display`.

use crate::operand::Operand;
use crate::program::Program;
use bh_tensor::{Scalar, Slice};

/// Canonical structural identity of a [`Program`].
///
/// Equality ignores register names and nothing else. Cheap to hash, clone
/// and compare; suitable as a `HashMap` key.
///
/// # Examples
///
/// ```
/// use bh_ir::parse_program;
///
/// // Same structure, different register names → same digest.
/// let a = parse_program("BH_IDENTITY a0 [0:4:1] 1\nBH_SYNC a0\n")?;
/// let b = parse_program("BH_IDENTITY zz [0:4:1] 1\nBH_SYNC zz\n")?;
/// assert_eq!(a.structural_digest(), b.structural_digest());
///
/// // Different constant → different digest.
/// let c = parse_program("BH_IDENTITY a0 [0:4:1] 2\nBH_SYNC a0\n")?;
/// assert_ne!(a.structural_digest(), c.structural_digest());
/// # Ok::<(), bh_ir::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgramDigest {
    bytes: Vec<u8>,
}

impl ProgramDigest {
    /// The canonical encoding (stable across processes and runs).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// 64-bit FNV-1a fingerprint of the canonical encoding, for logging.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl std::fmt::Display for ProgramDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.fingerprint())
    }
}

/// Encoding version; bump when the canonical format changes so persisted
/// digests can never alias across versions.
const VERSION: u8 = 1;

impl Program {
    /// The canonical structural digest of this program (see module docs).
    pub fn structural_digest(&self) -> ProgramDigest {
        let mut e = Encoder {
            out: Vec::with_capacity(64 + self.instrs().len() * 24),
        };
        e.out.push(VERSION);
        e.usize_(self.bases().len());
        for base in self.bases() {
            // Names are deliberately omitted: a register is its index.
            e.str_(base.dtype.short_name());
            e.usize_(base.shape.dims().len());
            for &d in base.shape.dims() {
                e.u64_(d as u64);
            }
            e.out.push(base.is_input as u8);
        }
        e.usize_(self.instrs().len());
        for instr in self.instrs() {
            e.str_(instr.op.name());
            e.usize_(instr.operands.len());
            for operand in &instr.operands {
                match operand {
                    Operand::View(v) => {
                        e.out.push(0);
                        e.u64_(v.reg.index() as u64);
                        // Encode the *resolved* geometry, so syntactically
                        // different spellings of the same elements (`a0`,
                        // `a0[:]`, `a0[0:10:1]`) digest identically. An
                        // unresolvable view (invalid slice) falls back to
                        // the raw slice list under a distinct tag.
                        match self.resolve_view(v) {
                            Ok(geom) => {
                                e.out.push(0);
                                e.u64_(geom.offset() as u64);
                                e.usize_(geom.dims().len());
                                for d in geom.dims() {
                                    e.u64_(d.len as u64);
                                    e.u64_(d.stride as u64);
                                }
                            }
                            Err(_) => {
                                e.out.push(1);
                                let slices = v.slices.as_deref().unwrap_or(&[]);
                                e.usize_(slices.len());
                                for s in slices {
                                    e.slice(s);
                                }
                            }
                        }
                    }
                    Operand::Const(c) => {
                        e.out.push(1);
                        e.scalar(c);
                    }
                }
            }
        }
        ProgramDigest { bytes: e.out }
    }
}

struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    fn u64_(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn usize_(&mut self, v: usize) {
        self.u64_(v as u64);
    }

    fn str_(&mut self, s: &str) {
        self.usize_(s.len());
        self.out.extend_from_slice(s.as_bytes());
    }

    fn opt_i64(&mut self, v: Option<i64>) {
        match v {
            None => self.out.push(0),
            Some(v) => {
                self.out.push(1);
                self.u64_(v as u64);
            }
        }
    }

    fn slice(&mut self, s: &Slice) {
        self.opt_i64(s.start);
        self.opt_i64(s.stop);
        self.u64_(s.step as u64);
    }

    fn scalar(&mut self, c: &Scalar) {
        // Tag by dtype, then the value's bit pattern widened to 64 bits —
        // floats via to_bits so every NaN payload and signed zero is
        // distinguished (a rewrite may behave differently on them).
        self.str_(c.dtype().short_name());
        let bits = match *c {
            Scalar::Bool(b) => b as u64,
            Scalar::U8(v) => v as u64,
            Scalar::U16(v) => v as u64,
            Scalar::U32(v) => v as u64,
            Scalar::U64(v) => v,
            Scalar::I8(v) => v as i64 as u64,
            Scalar::I16(v) => v as i64 as u64,
            Scalar::I32(v) => v as i64 as u64,
            Scalar::I64(v) => v as u64,
            Scalar::F32(v) => v.to_bits() as u64,
            Scalar::F64(v) => v.to_bits(),
        };
        self.u64_(bits);
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_program;

    fn digest_of(text: &str) -> super::ProgramDigest {
        parse_program(text)
            .expect("test program parses")
            .structural_digest()
    }

    #[test]
    fn names_are_canonicalised_away() {
        let a = digest_of("BH_IDENTITY a0 [0:10:1] 0\nBH_ADD a0 a0 1\nBH_SYNC a0\n");
        let b = digest_of("BH_IDENTITY x9 [0:10:1] 0\nBH_ADD x9 x9 1\nBH_SYNC x9\n");
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn constants_shapes_dtypes_all_distinguish() {
        let base = digest_of("BH_IDENTITY a [0:10:1] 1\nBH_SYNC a\n");
        for other in [
            "BH_IDENTITY a [0:10:1] 2\nBH_SYNC a\n",   // constant value
            "BH_IDENTITY a [0:10:1] 1.0\nBH_SYNC a\n", // constant dtype
            "BH_IDENTITY a [0:11:1] 1\nBH_SYNC a\n",   // shape
            ".base a i32[10]\nBH_IDENTITY a 1\nBH_SYNC a\n", // base dtype
            ".base a f64[10] input\nBH_IDENTITY a 1\nBH_SYNC a\n", // input flag
            "BH_IDENTITY a [0:10:1] 1\n",              // instruction count
            "BH_IDENTITY a [0:10:2] 1\nBH_SYNC a\n",   // slice geometry
        ] {
            assert_ne!(base, digest_of(other), "{other}");
        }
    }

    #[test]
    fn opcode_and_wiring_distinguish() {
        let add = digest_of(".base a f64[4] input\n.base b f64[4]\nBH_ADD b a a\nBH_SYNC b\n");
        let mul = digest_of(".base a f64[4] input\n.base b f64[4]\nBH_MULTIPLY b a a\nBH_SYNC b\n");
        let wiring = digest_of(".base a f64[4] input\n.base b f64[4]\nBH_ADD b b a\nBH_SYNC b\n");
        assert_ne!(add, mul);
        assert_ne!(add, wiring);
    }

    #[test]
    fn digest_is_stable_across_clones_and_reparses() {
        let text = ".base m f64[3,3] input\nBH_INVERSE m m\nBH_SYNC m\n";
        let p = parse_program(text).unwrap();
        assert_eq!(p.structural_digest(), p.clone().structural_digest());
        // Round-trip through the printer yields the same structure.
        let q = parse_program(&p.to_text(crate::PrintStyle::FULL)).unwrap();
        assert_eq!(p.structural_digest(), q.structural_digest());
    }

    #[test]
    fn display_is_hex_fingerprint() {
        let d = digest_of("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n");
        assert_eq!(d.to_string(), format!("{:016x}", d.fingerprint()));
        assert_eq!(d.as_bytes()[0], super::VERSION);
    }
}
