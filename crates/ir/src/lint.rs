//! Advisory byte-code lints (`W1xx`).
//!
//! [`Program::lint`] surfaces plan-quality findings the optimiser and
//! verifier deliberately leave alone: the verifier (`V` codes) rejects
//! malformed programs, the auditor (`A` codes) rejects unsound rewrites,
//! while a `W` warning never blocks anything — serving layers only count
//! them. The catalogue mirrors the stability rules of
//! [`crate::verify::VerifyCode`]: a variant's code string never changes.

use crate::analysis::Liveness;
use crate::opcode::{OpKind, Opcode};
use crate::operand::Operand;
use crate::program::Program;
use std::fmt;

/// Stable advisory warning codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintCode {
    /// W100 — a write no later instruction (and no sync) ever observes.
    /// The optimiser's DCE removes these at `O1`+; at `O0`, or when the
    /// pipeline declined (all-registers-live policy), they linger.
    DeadStore,
    /// W101 — an `BH_IDENTITY` cast whose input was itself produced by a
    /// cast used nowhere else: the chain narrows or round-trips dtypes
    /// and could be a single conversion.
    RedundantCastChain,
    /// W102 — an element-wise op reads and writes overlapping but
    /// differently-laid-out views of one register: correct under the
    /// VM's serial semantics, but a hazard for any reordering backend.
    SelfAliasHazard,
    /// W103 — every input of a computational op is a constant; the result
    /// is compile-time known, yet the plan still evaluates it.
    ConstantCondition,
}

impl LintCode {
    /// Every code, for exhaustive catalogue tests and documentation.
    pub const ALL: [LintCode; 4] = [
        LintCode::DeadStore,
        LintCode::RedundantCastChain,
        LintCode::SelfAliasHazard,
        LintCode::ConstantCondition,
    ];

    /// The stable code string (`"W100"`).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::DeadStore => "W100",
            LintCode::RedundantCastChain => "W101",
            LintCode::SelfAliasHazard => "W102",
            LintCode::ConstantCondition => "W103",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One advisory finding, anchored to an instruction index.
///
/// `#[non_exhaustive]` so fields can grow without breaking downstream
/// constructors — build one with [`LintWarning::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct LintWarning {
    /// The stable code.
    pub code: LintCode,
    /// Index of the instruction the finding concerns.
    pub instr: usize,
    /// Human-readable specifics.
    pub detail: String,
}

impl LintWarning {
    /// A finding for `code` at instruction `instr`.
    pub fn new(code: LintCode, instr: usize, detail: impl Into<String>) -> LintWarning {
        LintWarning {
            code,
            instr,
            detail: detail.into(),
        }
    }

    /// The stable machine code (`"W100"`…), for wire protocols and logs
    /// that must not match on `Display` text.
    pub fn code(&self) -> &'static str {
        self.code.as_str()
    }
}

impl fmt::Display for LintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at instruction {}: {}",
            self.code, self.instr, self.detail
        )
    }
}

// Advisory, but still an error type for uniform reporting chains
// (serving layers box findings behind one `dyn Error` surface).
impl std::error::Error for LintWarning {}

impl Program {
    /// Run the advisory lint catalogue over this program.
    ///
    /// Findings are ordered by instruction index, then code. Linting
    /// never fails and never rejects: callers at most count the result.
    pub fn lint(&self) -> Vec<LintWarning> {
        let mut out = Vec::new();
        let live = Liveness::compute(self);
        let instrs = self.instrs();

        for (idx, instr) in instrs.iter().enumerate() {
            let op = instr.op;
            if op == Opcode::NoOp {
                continue;
            }

            // W100 — dead store under the synced-only observation model.
            if op.has_output() && !live.write_is_live(self, idx) {
                let name = instr
                    .out_view()
                    .map(|v| self.base(v.reg).name.clone())
                    .unwrap_or_default();
                out.push(LintWarning {
                    code: LintCode::DeadStore,
                    instr: idx,
                    detail: format!("write to `{name}` is never observed ({op})"),
                });
            }

            // W101 — back-to-back casts through a single-use temporary.
            if op == Opcode::Identity {
                if let Some(w) = self.cast_chain(idx) {
                    out.push(w);
                }
            }

            // W102 — in-place through overlapping, different-layout views.
            if matches!(
                op.kind(),
                OpKind::ElementwiseUnary | OpKind::ElementwiseBinary
            ) {
                if let (Some(out_view), Ok(out_geom)) = (
                    instr.out_view(),
                    instr
                        .out_view()
                        .map_or_else(|| Err(()), |v| self.resolve_view(v).map_err(|_| ())),
                ) {
                    for input in instr.inputs() {
                        let Some(iv) = input.as_view() else { continue };
                        if iv.reg != out_view.reg {
                            continue;
                        }
                        let Ok(in_geom) = self.resolve_view(iv) else {
                            continue;
                        };
                        if !in_geom.same_layout(&out_geom) && in_geom.may_overlap(&out_geom) {
                            out.push(LintWarning {
                                code: LintCode::SelfAliasHazard,
                                instr: idx,
                                detail: format!(
                                    "`{}` is read and written through overlapping views \
                                     with different layouts ({op})",
                                    self.base(iv.reg).name
                                ),
                            });
                            break;
                        }
                    }
                }
            }

            // W103 — a computational op fed only by constants.
            if matches!(
                op.kind(),
                OpKind::ElementwiseUnary | OpKind::ElementwiseBinary
            ) && op != Opcode::Identity
                && !instr.inputs().is_empty()
                && instr
                    .inputs()
                    .iter()
                    .all(|o| matches!(o, Operand::Const(_)))
            {
                out.push(LintWarning {
                    code: LintCode::ConstantCondition,
                    instr: idx,
                    detail: format!(
                        "every input of {op} is a constant; result is compile-time known"
                    ),
                });
            }
        }
        out
    }

    /// W101 helper: `idx` is an `BH_IDENTITY`; does its view input come
    /// from another cast used only here?
    fn cast_chain(&self, idx: usize) -> Option<LintWarning> {
        let instrs = self.instrs();
        let instr = &instrs[idx];
        let out_view = instr.out_view()?;
        let in_view = instr.inputs().first()?.as_view()?;
        let out_dtype = self.base(out_view.reg).dtype;
        let mid_dtype = self.base(in_view.reg).dtype;
        if mid_dtype == out_dtype {
            return None; // a copy, not a cast
        }
        // Most recent def of the input register before idx.
        let def = instrs[..idx]
            .iter()
            .rposition(|i| i.out_view().is_some_and(|v| v.reg == in_view.reg))?;
        let def_instr = &instrs[def];
        if def_instr.op != Opcode::Identity {
            return None;
        }
        let src_view = def_instr.inputs().first()?.as_view()?;
        let src_dtype = self.base(src_view.reg).dtype;
        if src_dtype == mid_dtype {
            return None; // first hop is a copy
        }
        // The temporary must feed only this cast (no other reader, no sync).
        let sole_use = instrs
            .iter()
            .enumerate()
            .filter(|(j, i)| {
                *j != def
                    && i.inputs()
                        .iter()
                        .filter_map(Operand::as_view)
                        .any(|v| v.reg == in_view.reg)
            })
            .all(|(j, _)| j == idx);
        if !sole_use {
            return None;
        }
        Some(LintWarning {
            code: LintCode::RedundantCastChain,
            instr: idx,
            detail: format!(
                "cast chain {src_dtype} → {mid_dtype} → {out_dtype} through single-use `{}`",
                self.base(in_view.reg).name
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn lints(text: &str) -> Vec<LintCode> {
        parse_program(text)
            .unwrap()
            .lint()
            .into_iter()
            .map(|w| w.code)
            .collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let codes = lints("BH_ADD a0 [0:8:1] a0 [0:8:1] 1\nBH_SYNC a0\n");
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn dead_store_is_w100() {
        // The second write is never synced nor read.
        let codes = lints("BH_IDENTITY a0 [0:8:1] 1\nBH_SYNC a0\nBH_ADD a0 a0 1\n");
        assert_eq!(codes, vec![LintCode::DeadStore]);
    }

    #[test]
    fn cast_chain_is_w101() {
        let text = "\
.base x f64[8] input
.base t f32[8]
.base y i32[8]
BH_IDENTITY t x
BH_IDENTITY y t
BH_SYNC y
";
        let codes = lints(text);
        assert!(codes.contains(&LintCode::RedundantCastChain), "{codes:?}");
    }

    #[test]
    fn cast_chain_spares_multi_use_temporaries() {
        let text = "\
.base x f64[8] input
.base t f32[8]
.base y i32[8]
BH_IDENTITY t x
BH_IDENTITY y t
BH_SYNC y
BH_SYNC t
";
        let codes = lints(text);
        assert!(!codes.contains(&LintCode::RedundantCastChain), "{codes:?}");
    }

    #[test]
    fn self_alias_hazard_is_w102() {
        // Shifted overlapping read/write windows of the same register.
        let codes =
            lints(".base v f64[8]\nBH_IDENTITY v 1\nBH_ADD v [1:5:1] v [0:4:1] 1\nBH_SYNC v\n");
        assert!(codes.contains(&LintCode::SelfAliasHazard), "{codes:?}");
    }

    #[test]
    fn in_place_same_layout_is_fine() {
        let codes = lints("BH_ADD a0 [0:8:1] a0 [0:8:1] 1\nBH_SYNC a0\n");
        assert!(!codes.contains(&LintCode::SelfAliasHazard), "{codes:?}");
    }

    #[test]
    fn constant_condition_is_w103() {
        let codes = lints(".base v f64[4]\nBH_ADD v 1 2\nBH_SYNC v\n");
        assert!(codes.contains(&LintCode::ConstantCondition), "{codes:?}");
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for code in LintCode::ALL {
            assert!(seen.insert(code.as_str()), "duplicate {code}");
            assert!(code.as_str().starts_with('W'));
        }
    }
}
