//! The byte-code verifier: abstract interpretation over programs, run
//! once at admission/plan-build time.
//!
//! [`verify`] walks a [`Program`] with a per-register abstract state
//! (initialised? freed?) while checking every instruction against the
//! full rule catalogue — operand arity and kind, view resolution and
//! bounds, dtype agreement and legal casts, reduction/scan axis and
//! shape rules, linalg dimension rules, in-place aliasing hazards,
//! def-before-use and use-after-`BH_FREE`. Every failure carries a
//! **stable machine-readable code** ([`VerifyCode`], `V###` in the style
//! of JVM/IronPLC verifier rule tables) so untrusted submissions can be
//! rejected with an actionable, grep-able reason; *all* problems are
//! collected, never just the first.
//!
//! A successful pass mints a witness — [`VerifiedProgram`] (borrowed) or
//! [`Verified`] (owned) — whose only constructors are the verifier
//! itself. Holding the witness *is* the proof: downstream engines may
//! skip per-run re-validation (`bh_vm::Vm::run_verified`) and demote
//! their per-instruction checks to debug assertions, because the witness
//! cannot name a program that did not pass (neither type exposes mutable
//! access to the wrapped program).
//!
//! # Example
//!
//! ```
//! use bh_ir::{parse_program, verify, VerifyCode};
//!
//! let good = parse_program("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n")?;
//! assert!(verify(&good).is_ok());
//!
//! // Reads `a` before anything wrote it: rejected with a stable code.
//! let bad = parse_program("BH_ADD a [0:4:1] a [0:4:1] 1\n")?;
//! let errors = verify(&bad).unwrap_err();
//! assert_eq!(errors[0].code, VerifyCode::ReadBeforeWrite);
//! assert_eq!(errors[0].code.as_str(), "V200");
//! # Ok::<(), bh_ir::ParseError>(())
//! ```

use crate::instr::Instruction;
use crate::opcode::{OpKind, Opcode, TypeRule};
use crate::operand::Operand;
use crate::program::Program;
use bh_tensor::{DType, Shape, ViewGeom};
use std::fmt;
use std::ops::Deref;

/// Stable machine-readable verifier rule codes.
///
/// Codes are grouped by hundreds, mirroring the rule-table conventions
/// of byte-code verifier specifications: `V1xx` structural validity,
/// `V2xx` register data-flow, `V3xx` dtype rules, `V4xx` shape rules,
/// `V5xx` aliasing rules. The numeric string ([`VerifyCode::as_str`]) is
/// part of the public contract: codes never change meaning, new rules
/// get new numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyCode {
    /// V100 — instruction has the wrong number of operands for its
    /// op-code.
    BadArity,
    /// V101 — the result (or system-op target) operand is a constant
    /// where a view is required.
    OutputNotView,
    /// V102 — an input operand is a constant where the op-code requires
    /// a view (reduction/scan inputs, linalg operands).
    NonViewOperand,
    /// V103 — a view operand does not resolve against its base (too many
    /// slices for the base rank, zero-step slice).
    BadView,
    /// V104 — a view's slice indices or resolved address range fall
    /// outside its base's extent (`offset + stride*(n-1)` must stay
    /// below the base element count).
    ViewOutOfBounds,
    /// V200 — a register is read before any instruction writes it and it
    /// is not declared `input`.
    ReadBeforeWrite,
    /// V201 — a register is used (read, written or re-freed) after
    /// `BH_FREE` released it.
    UseAfterFree,
    /// V300 — the op-code does not support the input dtype.
    UnsupportedDType,
    /// V301 — two view inputs of one instruction carry different dtypes
    /// (the IR requires explicit `BH_IDENTITY` casts).
    InputDTypeMismatch,
    /// V302 — the output dtype does not match the op-code's result
    /// dtype.
    OutputDTypeMismatch,
    /// V303 — a reduction's output dtype is not the input's accumulator
    /// dtype.
    ReduceDTypeMismatch,
    /// V304 — a linalg op-code received a non-float operand.
    NonFloatOperand,
    /// V305 — `BH_RANDOM`'s seed operand is not an integral constant.
    BadSeed,
    /// V400 — an element-wise input shape does not broadcast to the
    /// output shape.
    BroadcastMismatch,
    /// V401 — a reduction's output shape is not the input shape with the
    /// reduced axis removed.
    ReduceShapeMismatch,
    /// V402 — a scan's output shape differs from its input shape.
    ScanShapeMismatch,
    /// V403 — a reduction/scan axis operand is not a constant
    /// non-negative integer within the input's rank.
    BadAxis,
    /// V404 — linalg dimension rules violated (inner dimensions, square
    /// matrices, output extents).
    LinalgShapeMismatch,
    /// V500 — the output view aliases an input view of the same base in
    /// a way the engines do not define (partial element-wise overlap,
    /// reduction/linalg output overlapping an input).
    AliasedOutput,
}

impl VerifyCode {
    /// Every code, in numeric order (rule-catalogue iteration, corpus
    /// coverage tests).
    pub const ALL: [VerifyCode; 19] = [
        VerifyCode::BadArity,
        VerifyCode::OutputNotView,
        VerifyCode::NonViewOperand,
        VerifyCode::BadView,
        VerifyCode::ViewOutOfBounds,
        VerifyCode::ReadBeforeWrite,
        VerifyCode::UseAfterFree,
        VerifyCode::UnsupportedDType,
        VerifyCode::InputDTypeMismatch,
        VerifyCode::OutputDTypeMismatch,
        VerifyCode::ReduceDTypeMismatch,
        VerifyCode::NonFloatOperand,
        VerifyCode::BadSeed,
        VerifyCode::BroadcastMismatch,
        VerifyCode::ReduceShapeMismatch,
        VerifyCode::ScanShapeMismatch,
        VerifyCode::BadAxis,
        VerifyCode::LinalgShapeMismatch,
        VerifyCode::AliasedOutput,
    ];

    /// The stable `V###` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            VerifyCode::BadArity => "V100",
            VerifyCode::OutputNotView => "V101",
            VerifyCode::NonViewOperand => "V102",
            VerifyCode::BadView => "V103",
            VerifyCode::ViewOutOfBounds => "V104",
            VerifyCode::ReadBeforeWrite => "V200",
            VerifyCode::UseAfterFree => "V201",
            VerifyCode::UnsupportedDType => "V300",
            VerifyCode::InputDTypeMismatch => "V301",
            VerifyCode::OutputDTypeMismatch => "V302",
            VerifyCode::ReduceDTypeMismatch => "V303",
            VerifyCode::NonFloatOperand => "V304",
            VerifyCode::BadSeed => "V305",
            VerifyCode::BroadcastMismatch => "V400",
            VerifyCode::ReduceShapeMismatch => "V401",
            VerifyCode::ScanShapeMismatch => "V402",
            VerifyCode::BadAxis => "V403",
            VerifyCode::LinalgShapeMismatch => "V404",
            VerifyCode::AliasedOutput => "V500",
        }
    }
}

impl fmt::Display for VerifyCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verifier finding: which rule fired, where, and why.
///
/// `#[non_exhaustive]` so fields can grow without breaking downstream
/// constructors — build one with [`VerifyError::new`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct VerifyError {
    /// Which rule fired.
    pub code: VerifyCode,
    /// Index of the offending instruction.
    pub instr: usize,
    /// Human-readable detail for the specific violation.
    pub detail: String,
}

impl VerifyError {
    /// A finding for `code` at instruction `instr`.
    pub fn new(code: VerifyCode, instr: usize, detail: impl Into<String>) -> VerifyError {
        VerifyError {
            code,
            instr,
            detail: detail.into(),
        }
    }

    /// The stable machine code (`"V100"`…), for wire protocols and logs
    /// that must not match on `Display` text.
    pub fn code(&self) -> &'static str {
        self.code.as_str()
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] instruction #{}: {}",
            self.code, self.instr, self.detail
        )
    }
}

impl std::error::Error for VerifyError {}

/// Borrowed witness that a program passed [`verify`].
///
/// Cheap to copy (one reference). Holding one proves the referenced
/// program satisfies every verifier rule: the only constructor is
/// [`verify`] itself, and neither witness type hands out `&mut Program`,
/// so the proof cannot be invalidated after minting. Engines accept it
/// where they elide re-validation (`bh_vm::Vm::run_verified`).
#[derive(Debug, Clone, Copy)]
pub struct VerifiedProgram<'a> {
    program: &'a Program,
}

impl<'a> VerifiedProgram<'a> {
    /// The verified program.
    pub fn program(self) -> &'a Program {
        self.program
    }
}

impl Deref for VerifiedProgram<'_> {
    type Target = Program;

    fn deref(&self) -> &Program {
        self.program
    }
}

/// Owned witness that a program passed [`verify`]: the storable form for
/// caches and plans ([`verify_owned`] constructs it).
///
/// Dereferences to [`Program`] for read access; mutable access is never
/// exposed, so the witness stays truthful for the life of the value.
#[derive(Debug, Clone)]
pub struct Verified {
    program: Program,
}

impl Verified {
    /// Borrow the proof (the form engines accept).
    pub fn as_verified(&self) -> VerifiedProgram<'_> {
        VerifiedProgram {
            program: &self.program,
        }
    }

    /// Surrender the witness and take the program back (the proof is
    /// lost; re-[`verify`] to re-mint it).
    pub fn into_inner(self) -> Program {
        self.program
    }
}

impl Deref for Verified {
    type Target = Program;

    fn deref(&self) -> &Program {
        &self.program
    }
}

/// Verify a program against the full rule catalogue, collecting every
/// violation.
///
/// # Errors
///
/// All findings, in instruction order (instruction-local rules before
/// data-flow rules at each index). An empty error list is impossible:
/// `Err` always carries at least one finding.
pub fn verify(program: &Program) -> Result<VerifiedProgram<'_>, Vec<VerifyError>> {
    let errors = collect_errors(program);
    if errors.is_empty() {
        Ok(VerifiedProgram { program })
    } else {
        Err(errors)
    }
}

/// [`verify`], taking ownership: success returns the storable
/// [`Verified`] witness.
///
/// # Errors
///
/// The program is handed back together with every finding, so failed
/// admission does not cost the caller their (possibly large) program.
pub fn verify_owned(program: Program) -> Result<Verified, (Program, Vec<VerifyError>)> {
    let errors = collect_errors(&program);
    if errors.is_empty() {
        Ok(Verified { program })
    } else {
        Err((program, errors))
    }
}

/// Check one instruction's local rules (everything except data-flow),
/// collecting all problems — the all-errors replacement for the old
/// first-error-only `validate_instr`.
pub fn verify_instr(program: &Program, instr: &Instruction) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    if regs_in_range(program, 0, instr, &mut errors) {
        check_instruction(program, 0, instr, &mut errors);
    }
    errors
}

/// Per-register abstract state tracked while walking the program.
#[derive(Clone, Copy)]
struct RegState {
    /// Some instruction (or the `input` declaration) has written it.
    written: bool,
    /// `BH_FREE` released it.
    freed: bool,
}

fn collect_errors(program: &Program) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let mut state: Vec<RegState> = program
        .bases()
        .iter()
        .map(|b| RegState {
            written: b.is_input,
            freed: false,
        })
        .collect();
    for (i, instr) in program.instrs().iter().enumerate() {
        if instr.is_noop() {
            continue;
        }
        if !regs_in_range(program, i, instr, &mut errors) {
            // Every later rule (and the register state vector) indexes
            // `bases` by register, so nothing else can run safely.
            continue;
        }
        check_instruction(program, i, instr, &mut errors);
        check_flow(program, i, instr, &mut state, &mut errors);
    }
    errors
}

/// Registers must name declared bases before any other rule can run:
/// the rule checks (and the digest encoder) index `bases` by register,
/// and untrusted programs — e.g. decoded from a wire container — can
/// name any register they like. A dangling register is a `V103` finding,
/// never a panic.
fn regs_in_range(
    program: &Program,
    index: usize,
    instr: &Instruction,
    errors: &mut Vec<VerifyError>,
) -> bool {
    let nbases = program.bases().len();
    let mut ok = true;
    for o in &instr.operands {
        if let Some(r) = o.reg() {
            if r.index() >= nbases {
                errors.push(VerifyError::new(
                    VerifyCode::BadView,
                    index,
                    format!(
                        "register index {} out of range ({nbases} bases declared)",
                        r.index()
                    ),
                ));
                ok = false;
            }
        }
    }
    ok
}

/// Data-flow rules: def-before-use and use-after-free, updating the
/// abstract register state.
fn check_flow(
    program: &Program,
    index: usize,
    instr: &Instruction,
    state: &mut [RegState],
    errors: &mut Vec<VerifyError>,
) {
    let mut push = |code, detail| {
        errors.push(VerifyError {
            code,
            instr: index,
            detail,
        })
    };
    if instr.op == Opcode::Free {
        if let Some(r) = instr.operands.first().and_then(|o| o.reg()) {
            let s = &mut state[r.index()];
            if s.freed {
                push(
                    VerifyCode::UseAfterFree,
                    format!("register `{}` freed twice", program.base(r).name),
                );
            }
            s.freed = true;
        }
        return;
    }
    // Use-after-free: any reference (read or write) to a freed base.
    for o in &instr.operands {
        if let Some(r) = o.reg() {
            let s = &mut state[r.index()];
            if s.freed {
                push(
                    VerifyCode::UseAfterFree,
                    format!(
                        "register `{}` used after BH_FREE released it",
                        program.base(r).name
                    ),
                );
                s.freed = false; // report once per free
            }
        }
    }
    // Read-before-write (freeing an unwritten base is legal, handled
    // above).
    for r in instr.input_regs() {
        let s = &mut state[r.index()];
        if !s.written {
            push(
                VerifyCode::ReadBeforeWrite,
                format!(
                    "register `{}` read before any write (declare it `input` \
                     or initialise it with BH_IDENTITY)",
                    program.base(r).name
                ),
            );
            s.written = true; // report once
        }
    }
    if let Some(r) = instr.out_reg() {
        state[r.index()].written = true;
    }
}

/// Instruction-local rules: arity, operand kinds, view resolution and
/// bounds, dtype/shape rules per op-code kind, aliasing.
fn check_instruction(
    program: &Program,
    index: usize,
    instr: &Instruction,
    errors: &mut Vec<VerifyError>,
) {
    let op = instr.op;
    if op == Opcode::NoOp {
        return;
    }
    let before = errors.len();
    let arity_ok = instr.operands.len() == op.operand_count();
    if !arity_ok {
        errors.push(VerifyError {
            code: VerifyCode::BadArity,
            instr: index,
            detail: format!(
                "{op} expects {} operands, found {}",
                op.operand_count(),
                instr.operands.len()
            ),
        });
    }
    if op.has_output() {
        if instr
            .operands
            .first()
            .is_some_and(|o| o.as_view().is_none())
        {
            errors.push(VerifyError {
                code: VerifyCode::OutputNotView,
                instr: index,
                detail: format!("{op} result operand must be a view"),
            });
        }
    } else if let Some(Operand::Const(_)) = instr.operands.first() {
        errors.push(VerifyError {
            code: VerifyCode::OutputNotView,
            instr: index,
            detail: format!("{op} target must be a view"),
        });
    }

    // Resolve every view operand once, with strict bounds checking.
    let mut geoms: Vec<Option<ViewGeom>> = Vec::with_capacity(instr.operands.len());
    let mut dtypes: Vec<Option<DType>> = Vec::with_capacity(instr.operands.len());
    for o in &instr.operands {
        match o {
            Operand::View(v) => {
                geoms.push(check_view(program, index, v, errors));
                dtypes.push(Some(program.base(v.reg).dtype));
            }
            Operand::Const(c) => {
                geoms.push(None);
                dtypes.push(Some(c.dtype()));
            }
        }
    }

    // Kind-specific rules need operands at their expected positions.
    if arity_ok {
        match op.kind() {
            OpKind::ElementwiseUnary | OpKind::ElementwiseBinary => {
                check_elementwise(op, index, instr, &geoms, &dtypes, errors)
            }
            OpKind::Reduction => check_reduce_scan(program, op, index, instr, &geoms, true, errors),
            OpKind::Scan => check_reduce_scan(program, op, index, instr, &geoms, false, errors),
            OpKind::Generator => check_generator(op, index, instr, errors),
            OpKind::System => {}
            OpKind::LinAlg => check_linalg(op, index, instr, &geoms, &dtypes, errors),
        }
        check_aliasing(program, op, index, instr, &geoms, errors);
    }
    debug_assert!(
        arity_ok || errors.len() > before,
        "arity failure must be reported"
    );
}

/// Resolve a view operand and check it stays inside its base: the slice
/// indices must lie within each axis extent and the resolved address
/// range (`offset + stride*(n-1)`) below the base element count.
fn check_view(
    program: &Program,
    index: usize,
    view: &crate::operand::ViewRef,
    errors: &mut Vec<VerifyError>,
) -> Option<ViewGeom> {
    let base = program.base(view.reg);
    if let Some(slices) = &view.slices {
        for (axis, s) in slices.iter().enumerate() {
            if axis >= base.shape.rank() {
                break; // resolve_view reports the rank mismatch below
            }
            let n = base.shape.dim(axis) as i64;
            if !slice_bound_ok(s.start, n) || !slice_bound_ok(s.stop, n) {
                errors.push(VerifyError {
                    code: VerifyCode::ViewOutOfBounds,
                    instr: index,
                    detail: format!(
                        "slice {s} of `{}` exceeds axis {axis} extent {n}",
                        base.name
                    ),
                });
                return None;
            }
        }
    }
    match program.resolve_view(view) {
        Ok(geom) => {
            if let Some((_, hi)) = geom.address_range() {
                if hi >= base.shape.nelem() {
                    errors.push(VerifyError {
                        code: VerifyCode::ViewOutOfBounds,
                        instr: index,
                        detail: format!(
                            "view of `{}` addresses element {hi} of a {}-element base",
                            base.name,
                            base.shape.nelem()
                        ),
                    });
                    return None;
                }
            }
            Some(geom)
        }
        Err(e) => {
            errors.push(VerifyError {
                code: VerifyCode::BadView,
                instr: index,
                detail: format!("bad view of `{}`: {e}", base.name),
            });
            None
        }
    }
}

/// Strict slice-bound rule: an explicit index must name a position of
/// the axis — non-negative values in `0..=n`, negative (from-the-end)
/// values no further back than `-n` (`resolve` would silently clamp;
/// the verifier treats clamping as an error in untrusted byte-code).
fn slice_bound_ok(bound: Option<i64>, n: i64) -> bool {
    match bound {
        None => true,
        Some(v) if v < 0 => v + n >= -1, // -(n), and -1 as "before start" for step<0
        Some(v) => v <= n,
    }
}

fn shape_of(geom: &Option<ViewGeom>) -> Option<Shape> {
    geom.as_ref().map(ViewGeom::shape)
}

fn check_elementwise(
    op: Opcode,
    index: usize,
    instr: &Instruction,
    geoms: &[Option<ViewGeom>],
    dtypes: &[Option<DType>],
    errors: &mut Vec<VerifyError>,
) {
    let mut push = |code, detail| {
        errors.push(VerifyError {
            code,
            instr: index,
            detail,
        })
    };
    // Input views must broadcast to the output shape.
    if let Some(out_shape) = shape_of(&geoms[0]) {
        for (k, g) in geoms.iter().enumerate().skip(1) {
            if let Some(s) = shape_of(g) {
                let ok = s
                    .broadcast(&out_shape)
                    .map(|b| b == out_shape)
                    .unwrap_or(false);
                if !ok {
                    push(
                        VerifyCode::BroadcastMismatch,
                        format!(
                            "operand {k} shape {s} does not broadcast to output shape {out_shape}"
                        ),
                    );
                }
            }
        }
    }
    // Dtype rules: all *view* inputs must agree; the output must carry
    // the op-code's result dtype (or anything, for the BH_IDENTITY cast).
    let Some(out_dtype) = instr.operands[0].as_view().and_then(|_| dtypes[0]) else {
        return; // output was a constant; already reported
    };
    let mut in_view_dtype: Option<DType> = None;
    for (k, o) in instr.operands.iter().enumerate().skip(1) {
        if o.as_view().is_some() {
            let d = dtypes[k].expect("views carry dtypes");
            match in_view_dtype {
                None => in_view_dtype = Some(d),
                Some(prev) if prev != d => {
                    push(
                        VerifyCode::InputDTypeMismatch,
                        format!(
                            "input dtypes disagree: {prev} vs {d} (Bohrium inserts \
                             BH_IDENTITY casts; do the same)"
                        ),
                    );
                }
                _ => {}
            }
        }
    }
    let in_dtype = in_view_dtype.unwrap_or(out_dtype);
    match op.result_dtype(in_dtype) {
        Err(e) => push(VerifyCode::UnsupportedDType, e.to_string()),
        Ok(result) => {
            let expected_out = if op.type_rule() == TypeRule::Cast {
                out_dtype // BH_IDENTITY casts to whatever the output is
            } else {
                result
            };
            if out_dtype != expected_out {
                push(
                    VerifyCode::OutputDTypeMismatch,
                    format!(
                        "output dtype {out_dtype} does not match {op} result dtype {expected_out}"
                    ),
                );
            }
        }
    }
}

fn check_reduce_scan(
    program: &Program,
    op: Opcode,
    index: usize,
    instr: &Instruction,
    geoms: &[Option<ViewGeom>],
    is_reduction: bool,
    errors: &mut Vec<VerifyError>,
) {
    let mut push = |code, detail| {
        errors.push(VerifyError {
            code,
            instr: index,
            detail,
        })
    };
    let axis = match reduce_axis_const(instr) {
        Ok(axis) => Some(axis),
        Err(detail) => {
            push(VerifyCode::BadAxis, detail);
            None
        }
    };
    if instr.operands[1].as_view().is_none() {
        push(
            VerifyCode::NonViewOperand,
            format!("{op} input must be a view"),
        );
        return;
    }
    let (Some(in_shape), Some(out_shape)) = (shape_of(&geoms[1]), shape_of(&geoms[0])) else {
        return; // unresolvable views already reported
    };
    if is_reduction && in_shape.rank() == 0 {
        push(
            VerifyCode::BadAxis,
            format!("{op} cannot reduce a rank-0 view"),
        );
        return;
    }
    let axis = match axis {
        Some(a) if a >= in_shape.rank() => {
            push(
                VerifyCode::BadAxis,
                format!(
                    "{} axis {a} out of range for rank-{} input",
                    if is_reduction { "reduction" } else { "scan" },
                    in_shape.rank()
                ),
            );
            return;
        }
        Some(a) => a,
        None => return,
    };
    if is_reduction {
        let expected = in_shape.without_axis(axis);
        if out_shape != expected {
            push(
                VerifyCode::ReduceShapeMismatch,
                format!("reduction output shape {out_shape} should be {expected}"),
            );
        }
        let out_dtype = program.operand_dtype(&instr.operands[0]);
        let in_dtype = program.operand_dtype(&instr.operands[1]);
        if out_dtype != in_dtype.reduce_dtype() {
            push(
                VerifyCode::ReduceDTypeMismatch,
                format!(
                    "reduction output dtype {out_dtype} should be {}",
                    in_dtype.reduce_dtype()
                ),
            );
        }
    } else if out_shape != in_shape {
        push(
            VerifyCode::ScanShapeMismatch,
            format!("scan preserves shape: output {out_shape} vs input {in_shape}"),
        );
    }
}

fn check_generator(op: Opcode, index: usize, instr: &Instruction, errors: &mut Vec<VerifyError>) {
    if op == Opcode::Random {
        let detail = match instr.operands[1].as_const() {
            None => Some("BH_RANDOM seed must be a constant".to_string()),
            Some(seed) if seed.as_integral().is_none() => {
                Some("BH_RANDOM seed must be integral".to_string())
            }
            Some(_) => None,
        };
        if let Some(detail) = detail {
            errors.push(VerifyError {
                code: VerifyCode::BadSeed,
                instr: index,
                detail,
            });
        }
    }
}

fn check_linalg(
    op: Opcode,
    index: usize,
    instr: &Instruction,
    geoms: &[Option<ViewGeom>],
    dtypes: &[Option<DType>],
    errors: &mut Vec<VerifyError>,
) {
    let mut push = |code, detail| {
        errors.push(VerifyError {
            code,
            instr: index,
            detail,
        })
    };
    let mut all_views = true;
    for (k, o) in instr.operands.iter().enumerate() {
        if o.as_const().is_some() {
            all_views = false;
            push(
                VerifyCode::NonViewOperand,
                format!("{op} operand {k} must be a view, not a constant"),
            );
            continue;
        }
        let d = dtypes[k].expect("views carry dtypes");
        if op != Opcode::Transpose && !d.is_float() {
            push(
                VerifyCode::NonFloatOperand,
                format!("{op} requires float operands, found {d}"),
            );
        }
    }
    // Dimension rules need every operand's geometry.
    if !all_views || geoms.iter().any(Option::is_none) {
        return;
    }
    let shape = |k: usize| shape_of(&geoms[k]).expect("all linalg operands resolved");
    let mut push = |detail: String| {
        errors.push(VerifyError {
            code: VerifyCode::LinalgShapeMismatch,
            instr: index,
            detail,
        })
    };
    match op {
        Opcode::MatMul => {
            let (out, a, b) = (shape(0), shape(1), shape(2));
            // Positional orientation, as in NumPy dot: rank-1 lhs is a row
            // vector, rank-1 rhs a column vector.
            let (ar, ac) = match a.rank() {
                1 => (1, a.dim(0)),
                2 => (a.dim(0), a.dim(1)),
                _ => return push("BH_MATMUL lhs must be rank 1 or 2".into()),
            };
            let (br, bc) = match b.rank() {
                1 => (b.dim(0), 1),
                2 => (b.dim(0), b.dim(1)),
                _ => return push("BH_MATMUL rhs must be rank 1 or 2".into()),
            };
            let _ = ar;
            if ac != br {
                return push(format!("BH_MATMUL inner dimensions disagree: {a} @ {b}"));
            }
            let expected = match (a.rank(), b.rank()) {
                (2, 2) => Shape::matrix(a.dim(0), bc),
                (2, 1) => Shape::vector(a.dim(0)),
                (1, 2) => Shape::vector(bc),
                _ => Shape::vector(1),
            };
            if out != expected {
                push(format!("BH_MATMUL output shape {out} should be {expected}"));
            }
        }
        Opcode::Transpose => {
            let (out, a) = (shape(0), shape(1));
            if a.rank() != 2 || out.rank() != 2 {
                return push("BH_TRANSPOSE operates on matrices".into());
            }
            if out.dim(0) != a.dim(1) || out.dim(1) != a.dim(0) {
                push(format!(
                    "BH_TRANSPOSE output shape {out} should be ({},{})",
                    a.dim(1),
                    a.dim(0)
                ));
            }
        }
        Opcode::Inverse => {
            let (out, a) = (shape(0), shape(1));
            if !is_square(&a) {
                return push(format!("BH_INVERSE requires a square matrix, found {a}"));
            }
            if out != a {
                push(format!("BH_INVERSE output shape {out} should be {a}"));
            }
        }
        Opcode::Solve => {
            let (out, a, b) = (shape(0), shape(1), shape(2));
            if !is_square(&a) {
                return push(format!(
                    "BH_SOLVE coefficient matrix must be square, found {a}"
                ));
            }
            let n = a.dim(0);
            let b_rows = match b.rank() {
                1 | 2 => b.dim(0),
                _ => return push("BH_SOLVE rhs must be rank 1 or 2".into()),
            };
            if b_rows != n {
                return push(format!("BH_SOLVE rhs rows {b_rows} should be {n}"));
            }
            if out != b {
                push(format!("BH_SOLVE output shape {out} should match rhs {b}"));
            }
        }
        _ => {}
    }
}

/// In-place aliasing rules. The engines define exactly one aliasing
/// pattern: an element-wise op whose input view is *the same layout* as
/// its output (`BH_ADD a a 1`). Everything else — partial element-wise
/// overlap, a reduction or linalg output overlapping its input, a scan
/// overlapping with a different layout — reads elements the instruction
/// is concurrently writing, so the verifier rejects it.
fn check_aliasing(
    program: &Program,
    op: Opcode,
    index: usize,
    instr: &Instruction,
    geoms: &[Option<ViewGeom>],
    errors: &mut Vec<VerifyError>,
) {
    if !op.has_output() {
        return;
    }
    let Some(out_view) = instr.operands.first().and_then(|o| o.as_view()) else {
        return;
    };
    let Some(out_geom) = geoms[0].as_ref() else {
        return;
    };
    let out_shape = out_geom.shape();
    for (k, o) in instr.operands.iter().enumerate().skip(1) {
        // The reduction/scan axis constant is never a view; only same-base
        // view inputs can alias.
        let Some(v) = o.as_view() else { continue };
        if v.reg != out_view.reg {
            continue;
        }
        let Some(in_geom) = geoms[k].as_ref() else {
            continue;
        };
        let hazard = match op.kind() {
            OpKind::ElementwiseUnary | OpKind::ElementwiseBinary => {
                match in_geom.broadcast_to(&out_shape) {
                    // Broadcast-resolved identical layout is the defined
                    // in-place form; partial overlap is not.
                    Ok(b) => b.may_overlap(out_geom) && !b.same_layout(out_geom),
                    Err(_) => false, // already a broadcast error
                }
            }
            OpKind::Scan => in_geom.may_overlap(out_geom) && !in_geom.same_layout(out_geom),
            OpKind::Reduction | OpKind::LinAlg => in_geom.may_overlap(out_geom),
            OpKind::Generator | OpKind::System => false,
        };
        if hazard {
            errors.push(VerifyError {
                code: VerifyCode::AliasedOutput,
                instr: index,
                detail: format!(
                    "output view of `{}` overlaps input operand {k} without an \
                     identical layout ({op} would read elements it is writing)",
                    program.base(v.reg).name
                ),
            });
        }
    }
}

fn reduce_axis_const(instr: &Instruction) -> Result<usize, String> {
    let c = instr.operands[2]
        .as_const()
        .ok_or("axis operand must be a constant")?;
    let v = c.as_integral().ok_or("axis operand must be integral")?;
    usize::try_from(v).map_err(|_| "axis operand must be non-negative".to_string())
}

fn is_square(s: &Shape) -> bool {
    s.rank() == 2 && s.dim(0) == s.dim(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::{Reg, ViewRef};
    use crate::parse::parse_program;
    use crate::program::ProgramBuilder;
    use bh_tensor::Scalar;

    fn codes(text: &str) -> Vec<VerifyCode> {
        let p = parse_program(text).unwrap();
        match verify(&p) {
            Ok(_) => Vec::new(),
            Err(errors) => errors.iter().map(|e| e.code).collect(),
        }
    }

    #[test]
    fn valid_program_mints_a_witness() {
        let p = parse_program("BH_IDENTITY a [0:4:1] 1\nBH_ADD a a 1\nBH_SYNC a\n").unwrap();
        let w = verify(&p).unwrap();
        assert_eq!(w.program().instrs().len(), 3);
        assert_eq!(w.instrs().len(), 3); // deref
        let owned = verify_owned(p).unwrap();
        assert_eq!(owned.as_verified().instrs().len(), 3);
        let back = owned.into_inner();
        assert_eq!(back.instrs().len(), 3);
    }

    #[test]
    fn read_before_write_is_v200() {
        assert_eq!(
            codes("BH_ADD a [0:4:1] a [0:4:1] 1\n"),
            vec![VerifyCode::ReadBeforeWrite]
        );
    }

    #[test]
    fn use_after_free_is_v201() {
        assert_eq!(
            codes("BH_IDENTITY a [0:4:1] 1\nBH_FREE a\nBH_SYNC a\n"),
            vec![VerifyCode::UseAfterFree]
        );
        assert_eq!(
            codes("BH_IDENTITY a [0:4:1] 1\nBH_FREE a\nBH_FREE a\n"),
            vec![VerifyCode::UseAfterFree]
        );
    }

    #[test]
    fn out_of_bounds_slice_is_v104() {
        assert_eq!(
            codes(".base x f64[4] input\nBH_SYNC x[0:9:1]\n"),
            vec![VerifyCode::ViewOutOfBounds]
        );
    }

    #[test]
    fn multiple_errors_in_one_instruction_all_reported() {
        // i32 input into BH_SQRT (unsupported dtype) *and* a shape that
        // does not broadcast: both reported, not just the first.
        let cs = codes(
            ".base x i32[4] input\n\
             .base y i32[5]\n\
             BH_SQRT y x\n",
        );
        assert!(cs.contains(&VerifyCode::BroadcastMismatch), "{cs:?}");
        assert!(cs.contains(&VerifyCode::UnsupportedDType), "{cs:?}");
    }

    #[test]
    fn partial_overlap_in_place_is_v500() {
        assert_eq!(
            codes(
                ".base a f64[16] input\n\
                 BH_ADD a[0:8:1] a[1:9:1] 1\n\
                 BH_SYNC a\n"
            ),
            vec![VerifyCode::AliasedOutput]
        );
        // Identical layout (classic in-place) is the defined form.
        assert_eq!(
            codes(".base a f64[16] input\nBH_ADD a a 1\nBH_SYNC a\n"),
            vec![]
        );
        // Disjoint regions of one base never alias.
        assert_eq!(
            codes(".base a f64[16] input\nBH_ADD a[0:8:1] a[8:16:1] 1\nBH_SYNC a\n"),
            vec![]
        );
    }

    #[test]
    fn scan_into_a_reversed_view_of_itself_is_v500() {
        assert_eq!(
            codes(
                ".base a f64[4] input\n\
                 BH_ADD_ACCUMULATE a a[::-1] 0\n\
                 BH_SYNC a\n"
            ),
            vec![VerifyCode::AliasedOutput]
        );
    }

    #[test]
    fn reduction_overlapping_its_input_is_flagged() {
        // Slicing preserves rank, so a shape-correct reduction can never
        // alias its input; the aliasing rule still fires (alongside the
        // shape rule) on an overlapping same-base output.
        let cs = codes(
            ".base a f64[4,4] input\n\
             BH_ADD_REDUCE a[0:1:1] a 0\n",
        );
        assert!(cs.contains(&VerifyCode::AliasedOutput), "{cs:?}");
        assert!(cs.contains(&VerifyCode::ReduceShapeMismatch), "{cs:?}");
    }

    #[test]
    fn arity_error_is_v100_and_reported_programmatically() {
        let mut b = ProgramBuilder::new(DType::Float64, Shape::vector(2));
        let a = b.reg("a");
        b.identity_const(a, Scalar::F64(0.0));
        let mut p = b.build();
        p.push(Instruction::unary(
            Opcode::Add,
            ViewRef::full(a),
            Scalar::F64(1.0),
        ));
        let errors = verify(&p).unwrap_err();
        assert_eq!(errors[0].code, VerifyCode::BadArity);
        assert!(errors[0].detail.contains("expects 3 operands"));
    }

    #[test]
    fn output_constant_is_v101() {
        let mut b = ProgramBuilder::new(DType::Float64, Shape::vector(2));
        let a = b.reg("a");
        b.identity_const(a, Scalar::F64(0.0));
        let mut p = b.build();
        p.push(Instruction::binary(
            Opcode::Add,
            ViewRef::full(a),
            ViewRef::full(a),
            Scalar::F64(1.0),
        ));
        // Clobber the output with a constant.
        p.instrs_mut()[1].operands[0] = Operand::Const(Scalar::F64(0.0));
        let errors = verify(&p).unwrap_err();
        assert!(errors.iter().any(|e| e.code == VerifyCode::OutputNotView));
    }

    #[test]
    fn error_display_carries_the_code() {
        let p = parse_program("BH_ADD a [0:4:1] a [0:4:1] 1\n").unwrap();
        let e = &verify(&p).unwrap_err()[0];
        let s = e.to_string();
        assert!(s.contains("V200"), "{s}");
        assert!(s.contains("instruction #0"), "{s}");
        assert_eq!(Reg(0), p.instrs()[0].out_reg().unwrap());
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in VerifyCode::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().starts_with('V'));
        }
        assert_eq!(seen.len(), VerifyCode::ALL.len());
        assert_eq!(VerifyCode::ReadBeforeWrite.to_string(), "V200");
    }

    #[test]
    fn strict_bounds_accept_in_range_and_negative_indexing() {
        assert_eq!(codes(".base x f64[4] input\nBH_SYNC x[0:4:1]\n"), vec![]);
        assert_eq!(codes(".base x f64[4] input\nBH_SYNC x[-4:-1:1]\n"), vec![]);
        assert_eq!(codes(".base x f64[4] input\nBH_SYNC x[::-1]\n"), vec![]);
        assert_eq!(
            codes(".base x f64[4] input\nBH_SYNC x[-9::1]\n"),
            vec![VerifyCode::ViewOutOfBounds]
        );
    }

    #[test]
    fn verify_instr_reports_all_local_problems() {
        let p = parse_program(
            ".base x i32[4] input\n\
             .base y i32[5]\n\
             BH_SQRT y x\n",
        )
        .unwrap();
        let errors = verify_instr(&p, &p.instrs()[0]);
        assert!(errors.len() >= 2, "{errors:?}");
    }

    #[test]
    fn slice_too_deep_is_v103() {
        assert_eq!(
            codes(".base x f64[4] input\nBH_SYNC x[0:1:1,0:1:1]\n"),
            vec![VerifyCode::BadView]
        );
    }

    #[test]
    fn dangling_register_is_v103_not_a_panic() {
        // The parser can't produce one, but a decoded wire container
        // can: an instruction naming a register no base declares.
        use crate::operand::{Operand, Reg};
        let mut p = Program::default();
        p.push(crate::Instruction::new(
            Opcode::Add,
            vec![
                Operand::full(Reg(7)),
                Operand::full(Reg(7)),
                Operand::full(Reg(7)),
            ],
        ));
        let errors = verify(&p).unwrap_err();
        assert!(!errors.is_empty());
        assert!(
            errors.iter().all(|e| e.code == VerifyCode::BadView),
            "{errors:?}"
        );
        assert!(verify_instr(&p, &p.instrs()[0])
            .iter()
            .all(|e| e.code == VerifyCode::BadView));
    }
}
