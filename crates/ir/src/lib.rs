//! # bh-ir — the descriptive vector byte-code IR
//!
//! The intermediate language of the reproduction of *Algebraic
//! Transformation of Descriptive Vector Byte-code Sequences* (Middleware
//! DS '16). A byte-code "consists of an op-code, e.g. `BH_ADD`, a result
//! register, and up to two parameter registers or constants" (paper §3);
//! this crate defines those instructions, the programs that sequence them,
//! a parser/printer for the paper's textual format, and the data-flow
//! analyses the transformation engine (`bh-opt`) builds on.
//!
//! # Example
//!
//! Parse Listing 2 of the paper and inspect it:
//!
//! ```
//! use bh_ir::{parse_program, Opcode, PrintStyle};
//!
//! let listing2 = "\
//! BH_IDENTITY a0 [0:10:1] 0
//! BH_ADD a0 [0:10:1] a0 [0:10:1] 1
//! BH_ADD a0 [0:10:1] a0 [0:10:1] 1
//! BH_ADD a0 [0:10:1] a0 [0:10:1] 1
//! BH_SYNC a0 [0:10:1]
//! ";
//! let program = parse_program(listing2)?;
//! assert_eq!(program.count_op(Opcode::Add), 3);
//! println!("{}", program.to_text(PrintStyle::COMPACT));
//! # Ok::<(), bh_ir::ParseError>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod digest;
pub mod equiv;
pub mod fold;
mod instr;
pub mod lint;
mod opcode;
mod operand;
mod parse;
mod program;
pub mod validate;
pub mod verify;

pub use analysis::{is_full_write, rerun_safe, DefUse, Liveness};
pub use digest::ProgramDigest;
pub use equiv::{check_equiv, EquivCode, EquivError, EquivOptions, EquivWitness};
pub use fold::const_eval;
pub use instr::Instruction;
pub use lint::{LintCode, LintWarning};
pub use opcode::{OpKind, Opcode, OpcodeTypeError, ParseOpcodeError, TypeRule, ALL_OPCODES};
pub use operand::{Operand, Reg, ViewRef};
pub use parse::{parse_program, parse_program_with, ParseError, ParseOptions};
pub use program::{BaseDecl, PrintStyle, Program, ProgramBuilder};
pub use validate::{validate, validate_instr, ValidationError};
pub use verify::{
    verify, verify_instr, verify_owned, Verified, VerifiedProgram, VerifyCode, VerifyError,
};
