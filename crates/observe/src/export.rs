//! The structured metrics exporter.
//!
//! Stats live in whichever crate owns them (`RuntimeStats` in
//! `bh-runtime`, `ServeStats` in `bh-serve`, [`ProfileTable`] here);
//! each implements [`Collect`], projecting itself into the neutral
//! [`MetricSet`] model. A `MetricSet` then renders as Prometheus text
//! exposition ([`MetricSet::to_prometheus`]) or as a serde-free JSON
//! string ([`MetricSet::to_json`]). Both formats are golden-file tested:
//! metric names, help strings and label keys are a **contract** —
//! renaming one must fail CI until the golden files are re-blessed.

use crate::profile::ProfileTable;
use std::fmt::Write as _;

/// How many of the hottest digests [`ProfileTable`]'s [`Collect`]
/// implementation exports per-digest series for (bounds exposition-page
/// cardinality however large the table is).
pub const EXPORT_TOP_K: usize = 16;

/// Prometheus metric kind (drives the `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing.
    Counter,
    /// Free-running value.
    Gauge,
}

impl MetricKind {
    const fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// A sample's value: integer counters stay integers (rendered exactly);
/// means and ratios are floats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Exact unsigned value.
    Uint(u64),
    /// Floating-point value (non-finite values render as `0` in JSON,
    /// which has no encoding for them).
    Float(f64),
}

impl From<u64> for MetricValue {
    fn from(v: u64) -> MetricValue {
        MetricValue::Uint(v)
    }
}

impl From<usize> for MetricValue {
    fn from(v: usize) -> MetricValue {
        MetricValue::Uint(v as u64)
    }
}

impl From<f64> for MetricValue {
    fn from(v: f64) -> MetricValue {
        MetricValue::Float(v)
    }
}

/// One labelled sample of a family.
#[derive(Debug, Clone)]
pub struct Sample {
    /// `(key, value)` label pairs, in insertion order.
    pub labels: Vec<(&'static str, String)>,
    /// The sample's value.
    pub value: MetricValue,
}

/// One metric family: a name, help text, kind, and its samples.
#[derive(Debug, Clone)]
pub struct MetricFamily {
    /// Metric name (`bh_runtime_evals_total`, …). Part of the contract.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// The family's samples.
    pub samples: Vec<Sample>,
}

impl MetricFamily {
    /// Add an unlabelled sample.
    pub fn value(&mut self, v: impl Into<MetricValue>) -> &mut MetricFamily {
        self.labelled(&[], v)
    }

    /// Add a sample with labels.
    pub fn labelled(
        &mut self,
        labels: &[(&'static str, &str)],
        v: impl Into<MetricValue>,
    ) -> &mut MetricFamily {
        self.samples.push(Sample {
            labels: labels.iter().map(|&(k, val)| (k, val.to_owned())).collect(),
            value: v.into(),
        });
        self
    }
}

/// An ordered collection of metric families — the neutral model every
/// [`Collect`] source projects into and every renderer consumes.
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    /// The families, in the order they were registered.
    pub families: Vec<MetricFamily>,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> MetricSet {
        MetricSet::default()
    }

    /// Register (or reopen) a counter family.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> &mut MetricFamily {
        self.family(name, help, MetricKind::Counter)
    }

    /// Register (or reopen) a gauge family.
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> &mut MetricFamily {
        self.family(name, help, MetricKind::Gauge)
    }

    fn family(
        &mut self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
    ) -> &mut MetricFamily {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            return &mut self.families[i];
        }
        self.families.push(MetricFamily {
            name,
            help,
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("pushed above")
    }

    /// Gather several sources into one set, in order.
    pub fn collect_from(sources: &[&dyn Collect]) -> MetricSet {
        let mut set = MetricSet::new();
        for s in sources {
            s.collect_into(&mut set);
        }
        set
    }

    /// Render as Prometheus text exposition (version 0.0.4): `# HELP` /
    /// `# TYPE` per family, then one `name{labels} value` line per
    /// sample. Label values are escaped per the spec (`\\`, `\"`, `\n`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
            for s in &f.samples {
                out.push_str(f.name);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{k}=\"");
                        for c in v.chars() {
                            match c {
                                '\\' => out.push_str("\\\\"),
                                '"' => out.push_str("\\\""),
                                '\n' => out.push_str("\\n"),
                                c => out.push(c),
                            }
                        }
                        out.push('"');
                    }
                    out.push('}');
                }
                match s.value {
                    MetricValue::Uint(v) => {
                        let _ = writeln!(out, " {v}");
                    }
                    MetricValue::Float(v) => {
                        let _ = writeln!(out, " {v}");
                    }
                }
            }
        }
        out
    }

    /// Render as a JSON object (`{"families": [...]}`) without serde:
    /// each family carries `name`, `kind`, `help` and `samples` (label
    /// object + numeric `value`). Non-finite floats render as `0`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"families\":[");
        for (fi, f) in self.families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, f.name);
            out.push_str(",\"kind\":");
            json_string(&mut out, f.kind.as_str());
            out.push_str(",\"help\":");
            json_string(&mut out, f.help);
            out.push_str(",\"samples\":[");
            for (si, s) in f.samples.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (li, (k, v)) in s.labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    json_string(&mut out, k);
                    out.push(':');
                    json_string(&mut out, v);
                }
                out.push_str("},\"value\":");
                match s.value {
                    MetricValue::Uint(v) => {
                        let _ = write!(out, "{v}");
                    }
                    MetricValue::Float(v) if v.is_finite() => {
                        let _ = write!(out, "{v}");
                    }
                    MetricValue::Float(_) => out.push('0'),
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A stats source that can project itself into a [`MetricSet`].
/// Implemented by `RuntimeStats` (`bh-runtime`), `ServeStats`
/// (`bh-serve`) and [`ProfileTable`] — the exporter composes them
/// without this crate depending on those layers.
pub trait Collect {
    /// Append this source's metric families to `set`.
    fn collect_into(&self, set: &mut MetricSet);
}

impl Collect for bh_vm::ExecStats {
    /// Exports the VM's execution counters as `bh_vm_*` counter
    /// families. Implemented here (not in `bh-vm`) because the exporter
    /// sits above the VM in the dependency graph.
    fn collect_into(&self, set: &mut MetricSet) {
        set.counter(
            "bh_vm_instructions_total",
            "Byte-code instructions executed (excluding BH_NONE).",
        )
        .value(self.instructions);
        set.counter("bh_vm_kernels_total", "Kernels launched.")
            .value(self.kernels);
        set.counter("bh_vm_fused_groups_total", "Fused groups executed.")
            .value(self.fused_groups);
        set.counter(
            "bh_vm_fused_reductions_total",
            "Reductions executed fused into a preceding element-wise group.",
        )
        .value(self.fused_reductions);
        set.counter(
            "bh_vm_par_shards_total",
            "Element shards dispatched to the worker pool (observational).",
        )
        .value(self.par_shards);
        set.counter(
            "bh_vm_reduce_shards_total",
            "Reduction/scan ranges dispatched to the worker pool (observational).",
        )
        .value(self.reduce_shards);
        set.counter(
            "bh_vm_elements_written_total",
            "Elements written to output views.",
        )
        .value(self.elements_written);
        set.counter("bh_vm_bytes_read_total", "Bytes read from base arrays.")
            .value(self.bytes_read);
        set.counter("bh_vm_bytes_written_total", "Bytes written to base arrays.")
            .value(self.bytes_written);
        set.counter("bh_vm_flops_total", "Abstract flops (op-code unit costs).")
            .value(self.flops);
        set.counter("bh_vm_syncs_total", "BH_SYNCs observed.")
            .value(self.syncs);
    }
}

impl Collect for ProfileTable {
    /// Exports table-level gauges plus per-digest series for the
    /// [`EXPORT_TOP_K`] hottest digests: hits, plan builds, per-stage
    /// total/mean nanoseconds, and per-opcode executed-instruction
    /// totals. The `digest` label is the 16-hex-digit fingerprint.
    fn collect_into(&self, set: &mut MetricSet) {
        set.gauge(
            "bh_profile_digests",
            "Digests currently resident in the profile table.",
        )
        .value(self.len());
        set.counter(
            "bh_profile_evictions_total",
            "Cold profile entries displaced by new digests.",
        )
        .value(self.evictions());
        let top = self.top_k(EXPORT_TOP_K);
        for p in &top {
            let digest = format!("{:016x}", p.fingerprint);
            set.counter(
                "bh_profile_digest_hits_total",
                "Evaluations recorded per digest (hottest digests only).",
            )
            .labelled(&[("digest", &digest)], p.hits);
            set.counter(
                "bh_profile_digest_plan_builds_total",
                "Plan builds (cache misses and promotions) recorded per digest.",
            )
            .labelled(&[("digest", &digest)], p.plan_builds);
            set.gauge(
                "bh_profile_digest_tier",
                "Optimisation tier of the digest's current plan (0 = cheap tier-0, 2 = full-strength tier-2).",
            )
            .labelled(&[("digest", &digest), ("tier", p.tier.name())], p.tier.level());
            for (stage, hist) in p.stages.iter() {
                if hist.count() == 0 {
                    continue;
                }
                let labels: &[(&'static str, &str)] =
                    &[("digest", &digest), ("stage", stage.name())];
                set.counter(
                    "bh_profile_stage_nanos_total",
                    "Total nanoseconds spent per digest and pipeline stage.",
                )
                .labelled(
                    labels,
                    u64::try_from(hist.total_nanos()).unwrap_or(u64::MAX),
                );
                set.counter(
                    "bh_profile_stage_samples_total",
                    "Samples recorded per digest and pipeline stage.",
                )
                .labelled(labels, hist.count());
                set.gauge(
                    "bh_profile_stage_mean_nanos",
                    "Mean nanoseconds per sample, per digest and stage.",
                )
                .labelled(
                    labels,
                    u64::try_from(hist.mean().as_nanos()).unwrap_or(u64::MAX),
                );
            }
            for (op, total) in p.opcode_totals() {
                if total == 0 {
                    continue;
                }
                set.counter(
                    "bh_profile_opcode_instructions_total",
                    "Instructions executed per digest and op-code (per-eval census × hits).",
                )
                .labelled(&[("digest", &digest), ("opcode", op.name())], total);
            }
            set.counter(
                "bh_profile_digest_fused_groups_total",
                "Fused groups executed per digest.",
            )
            .labelled(&[("digest", &digest)], p.exec.fused_groups);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EvalSample;
    use std::time::Duration;

    struct One;
    impl Collect for One {
        fn collect_into(&self, set: &mut MetricSet) {
            set.counter("bh_test_total", "A test counter.")
                .value(41u64)
                .labelled(&[("tenant", "a\"b\\c\nd")], 1u64);
            set.gauge("bh_test_ratio", "A test gauge.").value(0.25);
        }
    }

    #[test]
    fn prometheus_rendering_and_escaping() {
        let set = MetricSet::collect_from(&[&One]);
        let text = set.to_prometheus();
        assert!(text.contains("# HELP bh_test_total A test counter.\n"));
        assert!(text.contains("# TYPE bh_test_total counter\n"));
        assert!(text.contains("bh_test_total 41\n"));
        assert!(text.contains("bh_test_total{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"));
        assert!(text.contains("# TYPE bh_test_ratio gauge\n"));
        assert!(text.contains("bh_test_ratio 0.25\n"));
    }

    #[test]
    fn json_rendering_and_escaping() {
        let set = MetricSet::collect_from(&[&One]);
        let json = set.to_json();
        assert!(json.starts_with("{\"families\":["));
        assert!(json.contains("\"name\":\"bh_test_total\""));
        assert!(json.contains("\"kind\":\"counter\""));
        assert!(json.contains("\"tenant\":\"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"value\":41"));
        assert!(json.contains("\"value\":0.25"));
        // Balanced braces/brackets — cheap structural sanity.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn non_finite_floats_render_as_zero_in_json() {
        let mut set = MetricSet::new();
        set.gauge("bh_nan", "n").value(f64::NAN);
        assert!(set.to_json().contains("\"value\":0"));
    }

    #[test]
    fn reopening_a_family_appends_samples() {
        let mut set = MetricSet::new();
        set.counter("bh_x_total", "x").value(1u64);
        set.counter("bh_x_total", "x").value(2u64);
        assert_eq!(set.families.len(), 1);
        assert_eq!(set.families[0].samples.len(), 2);
        // Only one HELP/TYPE block in the rendered text.
        assert_eq!(set.to_prometheus().matches("# HELP").count(), 1);
    }

    #[test]
    fn profile_table_exports_top_k_series() {
        let table = ProfileTable::new(64);
        let census = [(bh_ir::Opcode::Add, 2u64)];
        table.record_plan_build(
            0xfeed,
            Duration::from_micros(10),
            Duration::from_micros(2),
            &census,
        );
        table.set_tier(0xfeed, crate::profile::Tier::Tier2);
        for _ in 0..3 {
            table.record_eval(
                0xfeed,
                &EvalSample {
                    bind_nanos: 100,
                    execute_nanos: 5_000,
                    read_back_nanos: 300,
                    exec: bh_vm::ExecStats {
                        fused_groups: 1,
                        ..Default::default()
                    },
                },
                &census,
            );
        }
        let text = MetricSet::collect_from(&[&table]).to_prometheus();
        assert!(text.contains("bh_profile_digests 1\n"));
        assert!(
            text.contains("bh_profile_digest_tier{digest=\"000000000000feed\",tier=\"tier2\"} 2\n")
        );
        assert!(text.contains("bh_profile_digest_hits_total{digest=\"000000000000feed\"} 3\n"));
        assert!(text.contains(
            "bh_profile_stage_samples_total{digest=\"000000000000feed\",stage=\"execute\"} 3\n"
        ));
        assert!(text.contains(
            "bh_profile_opcode_instructions_total{digest=\"000000000000feed\",opcode=\"BH_ADD\"} 6\n"
        ));
        assert!(
            text.contains("bh_profile_digest_fused_groups_total{digest=\"000000000000feed\"} 3\n")
        );
        // Stages with no samples export nothing.
        assert!(!text.contains("stage=\"queue_wait\""));
    }
}
