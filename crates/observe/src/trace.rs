//! Request-lifecycle tracing: a zero-dependency flight recorder.
//!
//! A [`TraceSink`] receives span-style [`TraceEvent`]s (begin/end pairs
//! tagged with stage, digest fingerprint and optionally tenant) from the
//! runtime and serving layers. Tracing is **off by default**: when no
//! sink is installed, emitting an event costs exactly one branch on an
//! `Option` — no allocation, no clock read, no atomic (DESIGN.md §13).
//!
//! The bundled [`RingTraceSink`] keeps the last `capacity` events in a
//! fixed ring, overwriting the oldest when full — a flight recorder: the
//! moment a batch gets stuck, [`RingTraceSink::dump`] prints the recent
//! history that led up to it. Events carry a monotonic sequence number
//! assigned at record time, so overwritten gaps are visible in the dump
//! (`seq` jumps) rather than silently smoothed over.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Which side of a span an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// The stage began.
    Begin,
    /// The stage finished.
    End,
}

impl TracePhase {
    /// `"B"` / `"E"`, the conventional compact phase tags.
    pub const fn tag(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
        }
    }
}

/// One flight-recorder record. `Copy`-cheap apart from the optional
/// tenant tag, which is a shared `Arc<str>` so cloning never allocates.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Monotonic sequence number assigned by the sink at record time;
    /// gaps in a dump mean the ring overwrote intervening events.
    pub seq: u64,
    /// Nanoseconds since the sink was created.
    pub at_nanos: u64,
    /// Begin or end of the stage.
    pub phase: TracePhase,
    /// Stage label (a [`crate::Stage`] name or a layer-specific tag such
    /// as `"batch"`).
    pub stage: &'static str,
    /// Digest fingerprint of the program involved (0 when not tied to a
    /// specific program).
    pub fingerprint: u64,
    /// Submitting tenant, when the emitting layer knows it.
    pub tenant: Option<Arc<str>>,
}

/// Receiver for trace events. Implementations must be cheap and
/// non-blocking: the runtime emits events from its hot path while
/// holding no locks, but a slow sink still stalls evaluation.
pub trait TraceSink: Send + Sync {
    /// Record one event. `seq` and `at_nanos` are left to the sink so a
    /// disabled/noop sink pays nothing for them.
    fn record(
        &self,
        phase: TracePhase,
        stage: &'static str,
        fingerprint: u64,
        tenant: Option<Arc<str>>,
    );
}

struct Ring {
    events: Vec<TraceEvent>,
    /// Index the next event lands on once the ring is full.
    head: usize,
    next_seq: u64,
}

/// A bounded in-memory [`TraceSink`]: keeps the most recent `capacity`
/// events, overwriting the oldest (flight-recorder semantics).
pub struct RingTraceSink {
    ring: Mutex<Ring>,
    capacity: usize,
    epoch: Instant,
}

impl std::fmt::Debug for RingTraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingTraceSink")
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl RingTraceSink {
    /// A ring holding the most recent `capacity` events (clamped to ≥1).
    pub fn new(capacity: usize) -> RingTraceSink {
        RingTraceSink {
            ring: Mutex::new(Ring {
                events: Vec::new(),
                head: 0,
                next_seq: 0,
            }),
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// Convenience: a new ring behind the `Arc<dyn TraceSink>` the
    /// builders accept.
    pub fn shared(capacity: usize) -> Arc<RingTraceSink> {
        Arc::new(RingTraceSink::new(capacity))
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().next_seq
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock();
        let mut out = Vec::with_capacity(ring.events.len());
        if ring.events.len() == self.capacity {
            out.extend_from_slice(&ring.events[ring.head..]);
            out.extend_from_slice(&ring.events[..ring.head]);
        } else {
            out.extend_from_slice(&ring.events);
        }
        out
    }

    /// Human-readable flight-recorder dump, oldest first: one line per
    /// event (`seq`, time since the sink's epoch, `B`/`E`, stage, digest
    /// fingerprint, tenant). A `…` line marks where the ring overwrote
    /// history.
    pub fn dump(&self) -> String {
        let events = self.events();
        let mut out = String::new();
        let overwritten = self.recorded().saturating_sub(events.len() as u64);
        if overwritten > 0 {
            let _ = writeln!(out, "… {overwritten} earlier event(s) overwritten");
        }
        for e in &events {
            let _ = write!(
                out,
                "#{seq:<6} {ms:>10.3}ms {tag} {stage:<12} digest={fp:016x}",
                seq = e.seq,
                ms = e.at_nanos as f64 / 1e6,
                tag = e.phase.tag(),
                stage = e.stage,
                fp = e.fingerprint,
            );
            if let Some(tenant) = &e.tenant {
                let _ = write!(out, " tenant={tenant}");
            }
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingTraceSink {
    fn record(
        &self,
        phase: TracePhase,
        stage: &'static str,
        fingerprint: u64,
        tenant: Option<Arc<str>>,
    ) {
        let at_nanos = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut ring = self.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let event = TraceEvent {
            seq,
            at_nanos,
            phase,
            stage,
            fingerprint,
            tenant,
        };
        if ring.events.len() < self.capacity {
            ring.events.push(event);
        } else {
            let head = ring.head;
            ring.events[head] = event;
            ring.head = (head + 1) % self.capacity;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sequenced_and_ordered() {
        let sink = RingTraceSink::new(8);
        sink.record(TracePhase::Begin, "execute", 0xabc, None);
        sink.record(TracePhase::End, "execute", 0xabc, Some(Arc::from("acme")));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].phase, TracePhase::Begin);
        assert_eq!(events[1].tenant.as_deref(), Some("acme"));
        assert!(events[0].at_nanos <= events[1].at_nanos);
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_sequence() {
        let sink = RingTraceSink::new(3);
        for i in 0..7u64 {
            sink.record(TracePhase::Begin, "verify", i, None);
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6], "oldest-first, most recent retained");
        assert_eq!(sink.recorded(), 7);
    }

    #[test]
    fn dump_is_readable_and_marks_overwrites() {
        let sink = RingTraceSink::new(2);
        for i in 0..4u64 {
            sink.record(TracePhase::Begin, "bind", 0x10 + i, Some(Arc::from("t0")));
        }
        let dump = sink.dump();
        assert!(dump.starts_with("… 2 earlier event(s) overwritten"));
        assert!(dump.contains("B bind"));
        assert!(dump.contains("digest=0000000000000013"));
        assert!(dump.contains("tenant=t0"));
        assert_eq!(dump.lines().count(), 3);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let sink = RingTraceSink::new(0);
        sink.record(TracePhase::Begin, "a", 1, None);
        sink.record(TracePhase::Begin, "b", 2, None);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stage, "b");
    }
}
