//! `bh-observe` — the workspace's observability layer.
//!
//! The paper's claim is that algebraic transformation of byte-code
//! sequences pays for itself at runtime; this crate provides the
//! instruments that *measure* that claim per program instead of
//! asserting it globally. Three pillars (DESIGN.md §13):
//!
//! 1. **Per-digest profiling** ([`ProfileTable`]) — a bounded,
//!    lock-striped table keyed by program-digest fingerprint recording
//!    hit counts, per-[`Stage`] latency histograms (queue-wait →
//!    optimise → verify → bind → execute → read-back), per-opcode
//!    execution accounting and fused-group composition. This is the
//!    hotness signal the ROADMAP's tiered, profile-guided optimisation
//!    consumes via `Runtime::profile()`.
//! 2. **Request-lifecycle tracing** ([`TraceSink`], [`RingTraceSink`])
//!    — a zero-dependency span-event flight recorder, off by default
//!    and costing one branch when disabled.
//! 3. **A structured exporter** ([`MetricSet`], [`Collect`]) — renders
//!    any stats snapshot as Prometheus text exposition or serde-free
//!    JSON; both formats are golden-file tested contracts.
//!
//! [`LatencyHistogram`] (previously private to `bh-serve`) lives here so
//! every layer shares one histogram type with one set of percentile
//! semantics.

#![deny(missing_docs)]

mod export;
mod hist;
mod profile;
mod trace;

pub use export::{Collect, MetricFamily, MetricKind, MetricSet, MetricValue, Sample, EXPORT_TOP_K};
pub use hist::{LatencyHistogram, LATENCY_BUCKETS};
pub use profile::{DigestProfile, EvalSample, ProfileTable, Stage, StageLatencies, Tier};
pub use trace::{RingTraceSink, TraceEvent, TracePhase, TraceSink};
