//! The per-digest profile table: hotness, stage latencies and per-opcode
//! execution accounting, keyed by program digest.
//!
//! This is the measurement side of the "tiered, profile-guided
//! optimisation" plan: the runtime already decides per digest whether to
//! re-run the rewrite fixpoint; the [`ProfileTable`] records what each
//! digest *costs* — how often it runs ([`DigestProfile::hits`]), where
//! each of those runs spends its time (per-[`Stage`] latency
//! histograms), and what it executes (per-opcode instruction counts,
//! fused-group composition via [`bh_vm::ExecStats`]) — so a tiering
//! policy can promote digests from measured data.
//!
//! # Bounding and eviction
//!
//! The table is bounded at construction ([`ProfileTable::new`]) and
//! **lock-striped**: entries are spread over [`STRIPES`] independent
//! mutexes by digest fingerprint, so concurrent evaluations of different
//! digests almost never contend on a profile lock. Each stripe holds at
//! most `ceil(capacity / STRIPES)` entries; when a stripe is full, a new
//! digest displaces that stripe's **coldest** entry — fewest hits, ties
//! broken by evicting the longest-resident entry — and the displacement
//! is counted in [`ProfileTable::evictions`]. A digest hotter than the
//! coldest resident is therefore never shut out, and the table's memory
//! is a fixed function of its capacity however many distinct digests a
//! long-running server sees.
//!
//! # Determinism
//!
//! Hit counts, per-opcode totals and the analytic [`bh_vm::ExecStats`]
//! counters are bit-identical at every VM worker-thread count for a
//! fixed workload (the observational shard counters and the wall-clock
//! histograms are explicitly *not* — see
//! [`DigestProfile::deterministic_key`], which the equivalence-style
//! test suite asserts on).

use crate::hist::LatencyHistogram;
use bh_ir::Opcode;
use bh_vm::ExecStats;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Optimisation tier of a digest's cached plan.
///
/// Defined here (the bottom of the dependency graph) so the runtime's
/// tiering policy, the profile table and the exporter all share one
/// vocabulary. A non-tiered runtime builds every plan at full strength,
/// so its plans are [`Tier::Tier2`] from birth; a tiered runtime builds
/// [`Tier::Tier0`] plans on cache misses and re-optimises hot digests to
/// `Tier2` (the cold → promoted lifecycle, DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Tier {
    /// The cheap first-eval pipeline: no rewrite fixpoint (`O0`, one
    /// sweep), minimal time between cache miss and first execution.
    #[default]
    Tier0,
    /// Full-strength optimisation: the complete rule schedule run to
    /// fixpoint, the plan a hot digest deserves.
    Tier2,
}

impl Tier {
    /// Stable snake_case name, used as the exporter's `tier` label.
    pub const fn name(self) -> &'static str {
        match self {
            Tier::Tier0 => "tier0",
            Tier::Tier2 => "tier2",
        }
    }

    /// Numeric level for gauge export (0 or 2).
    pub const fn level(self) -> u64 {
        match self {
            Tier::Tier0 => 0,
            Tier::Tier2 => 2,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Pipeline stages a request's lifetime decomposes into. `QueueWait` is
/// recorded by the serving layer (time between submission and batch
/// start); `Optimise` and `Verify` happen once per plan build (cache
/// miss); `Bind`, `Execute` and `ReadBack` are per evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Submission → batch-execution start (serving layer only).
    QueueWait = 0,
    /// The rewrite fixpoint (once per plan build).
    Optimise = 1,
    /// Byte-code verification of the optimised plan (once per build).
    Verify = 2,
    /// Binding input tensors into the VM.
    Bind = 3,
    /// Executing the verified program.
    Execute = 4,
    /// Reading the result tensor back.
    ReadBack = 5,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::QueueWait,
        Stage::Optimise,
        Stage::Verify,
        Stage::Bind,
        Stage::Execute,
        Stage::ReadBack,
    ];

    /// Stable snake_case name, used as the exporter's `stage` label.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Optimise => "optimise",
            Stage::Verify => "verify",
            Stage::Bind => "bind",
            Stage::Execute => "execute",
            Stage::ReadBack => "read_back",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-evaluation stage timings handed to [`ProfileTable::record_eval`]
/// by the runtime's hot path, in nanoseconds (no `Duration` round trips
/// on the hot path).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalSample {
    /// Time spent binding input tensors.
    pub bind_nanos: u64,
    /// Time spent in `Vm::run_verified`.
    pub execute_nanos: u64,
    /// Time spent reading the result back.
    pub read_back_nanos: u64,
    /// The evaluation's VM counter delta.
    pub exec: ExecStats,
}

/// One digest's accumulated profile (a snapshot clone; the live entry
/// stays inside the table).
#[derive(Debug, Clone)]
pub struct DigestProfile {
    /// The digest's 64-bit fingerprint (`bh_ir::ProgramDigest::fingerprint`),
    /// the identity digests are logged and labelled under.
    pub fingerprint: u64,
    /// Evaluations recorded for this digest — the hotness signal.
    pub hits: u64,
    /// Plan builds recorded (cache misses: optimise + verify ran).
    pub plan_builds: u64,
    /// Optimisation tier of the digest's *live* plan, as reported by
    /// [`ProfileTable::set_tier`] each time a plan transition commits.
    /// Starts at [`Tier::Tier0`]; a tiered runtime's promotion step
    /// moves it to [`Tier::Tier2`], and an eviction-forced rebuild moves
    /// it back.
    pub tier: Tier,
    /// Per-stage latency histograms, indexed by [`Stage`].
    pub stages: StageLatencies,
    /// Aggregated VM execution counters across all recorded evaluations.
    pub exec: ExecStats,
    /// Instructions the digest's *plan* executes per evaluation, by
    /// opcode, sorted by opcode. Multiplied by [`DigestProfile::hits`]
    /// this is the per-opcode execution accounting
    /// ([`DigestProfile::opcode_totals`]).
    pub opcodes_per_eval: Vec<(Opcode, u64)>,
}

impl DigestProfile {
    fn new(fingerprint: u64, opcodes: &[(Opcode, u64)]) -> DigestProfile {
        DigestProfile {
            fingerprint,
            hits: 0,
            plan_builds: 0,
            tier: Tier::default(),
            stages: StageLatencies::default(),
            exec: ExecStats::default(),
            opcodes_per_eval: opcodes.to_vec(),
        }
    }

    /// Total instructions executed for this digest, by opcode
    /// (`opcodes_per_eval × hits`), sorted by opcode.
    pub fn opcode_totals(&self) -> Vec<(Opcode, u64)> {
        self.opcodes_per_eval
            .iter()
            .map(|&(op, n)| (op, n.saturating_mul(self.hits)))
            .collect()
    }

    /// Mean latency of one stage (zero when that stage has no samples).
    pub fn mean_stage(&self, stage: Stage) -> Duration {
        self.stages.get(stage).mean()
    }

    /// The fields that are bit-identical at every VM worker-thread count
    /// for a fixed workload: hits, plan builds, per-opcode totals, and
    /// the analytic execution counters (instructions, kernels, fused
    /// groups/reductions, elements, bytes, flops, syncs). Wall-clock
    /// histograms and the observational `par_shards`/`reduce_shards`
    /// counters are deliberately excluded — those are *allowed* to vary
    /// with parallelism. The thread-matrix test asserts equality of this
    /// key across `BH_VM_TEST_THREADS`.
    pub fn deterministic_key(&self) -> impl PartialEq + fmt::Debug {
        (
            self.fingerprint,
            self.hits,
            self.plan_builds,
            self.tier,
            self.opcode_totals(),
            (
                self.exec.instructions,
                self.exec.kernels,
                self.exec.fused_groups,
                self.exec.fused_reductions,
                self.exec.elements_written,
                self.exec.bytes_read,
                self.exec.bytes_written,
                self.exec.flops,
                self.exec.syncs,
            ),
        )
    }
}

/// The six per-stage latency histograms of one digest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageLatencies {
    by_stage: [LatencyHistogram; Stage::ALL.len()],
}

impl StageLatencies {
    /// The histogram for one stage.
    pub fn get(&self, stage: Stage) -> &LatencyHistogram {
        &self.by_stage[stage as usize]
    }

    fn get_mut(&mut self, stage: Stage) -> &mut LatencyHistogram {
        &mut self.by_stage[stage as usize]
    }

    /// Iterate `(stage, histogram)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, &LatencyHistogram)> {
        Stage::ALL.iter().map(move |&s| (s, self.get(s)))
    }
}

struct Entry {
    profile: DigestProfile,
    /// Monotonic per-stripe insertion sequence, the eviction tie-break.
    inserted: u64,
}

#[derive(Default)]
struct Stripe {
    map: HashMap<u64, Entry>,
    insert_seq: u64,
    evictions: u64,
}

impl Stripe {
    /// Fetch or create the entry for `fingerprint`, evicting the coldest
    /// entry (fewest hits, then longest-resident) when the stripe is at
    /// `cap`.
    fn entry_mut(
        &mut self,
        fingerprint: u64,
        cap: usize,
        opcodes: &[(Opcode, u64)],
    ) -> &mut DigestProfile {
        if !self.map.contains_key(&fingerprint) {
            if self.map.len() >= cap {
                if let Some(&victim) = self
                    .map
                    .iter()
                    .min_by_key(|(_, e)| (e.profile.hits, e.inserted))
                    .map(|(fp, _)| fp)
                {
                    self.map.remove(&victim);
                    self.evictions += 1;
                }
            }
            self.insert_seq += 1;
            self.map.insert(
                fingerprint,
                Entry {
                    profile: DigestProfile::new(fingerprint, opcodes),
                    inserted: self.insert_seq,
                },
            );
        }
        &mut self
            .map
            .get_mut(&fingerprint)
            .expect("entry inserted above")
            .profile
    }
}

/// Stripe count: a power of two so stripe selection is a mask. 16 keeps
/// contention negligible for any realistic worker count while the empty
/// table stays a few hundred bytes.
const STRIPES: usize = 16;

/// Bounded, lock-striped map from digest fingerprint to accumulated
/// [`DigestProfile`] (see the module docs for the bounding/eviction
/// policy and the determinism contract).
///
/// Keys are 64-bit digest fingerprints rather than full canonical
/// digests: a fingerprint collision would merge two digests' profiles —
/// harmless for an observability signal, and it keeps the hot-path
/// record cost to a hash of one `u64`.
pub struct ProfileTable {
    stripes: Box<[Mutex<Stripe>]>,
    stripe_cap: usize,
}

impl fmt::Debug for ProfileTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProfileTable")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl ProfileTable {
    /// A table holding at most (about) `capacity` digests, spread over
    /// `STRIPES` (16) lock stripes (each stripe holds at most
    /// `ceil(capacity / STRIPES)`; capacity is clamped to at least one
    /// entry per stripe).
    pub fn new(capacity: usize) -> ProfileTable {
        ProfileTable {
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            stripe_cap: capacity.div_ceil(STRIPES).max(1),
        }
    }

    /// Upper bound on resident digests (`stripes × per-stripe cap`).
    pub fn capacity(&self) -> usize {
        self.stripe_cap * self.stripes.len()
    }

    /// Digests currently resident.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no digest has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cold entries displaced by new digests since construction.
    pub fn evictions(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().evictions).sum()
    }

    fn stripe(&self, fingerprint: u64) -> &Mutex<Stripe> {
        // The fingerprint is FNV-1a output: well-mixed low bits.
        &self.stripes[(fingerprint as usize) & (self.stripes.len() - 1)]
    }

    /// Record one plan build — a cache miss *or* a tier promotion: the
    /// optimise and verify stage durations and the per-eval opcode census
    /// of the built plan. The census replaces the entry's previous one:
    /// it describes the digest's *current* plan (so
    /// [`DigestProfile::opcode_totals`] is exact between builds and an
    /// approximation across a promotion).
    ///
    /// The entry's [`DigestProfile::tier`] is deliberately *not* written
    /// here: a build that loses an insert race never goes live, so the
    /// runtime reports the surviving plan's tier separately via
    /// [`ProfileTable::set_tier`], ordered with the cache transition.
    pub fn record_plan_build(
        &self,
        fingerprint: u64,
        optimise: Duration,
        verify: Duration,
        opcodes: &[(Opcode, u64)],
    ) {
        let mut stripe = self.stripe(fingerprint).lock();
        let entry = stripe.entry_mut(fingerprint, self.stripe_cap, opcodes);
        entry.plan_builds = entry.plan_builds.saturating_add(1);
        entry.opcodes_per_eval = opcodes.to_vec();
        entry
            .stages
            .get_mut(Stage::Optimise)
            .record_nanos(u64::try_from(optimise.as_nanos()).unwrap_or(u64::MAX));
        entry
            .stages
            .get_mut(Stage::Verify)
            .record_nanos(u64::try_from(verify.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Report the optimisation tier of the digest's *live* plan — the
    /// value the `bh_profile_digest_tier` gauge renders.
    ///
    /// Callers must invoke this only when a plan transition actually
    /// commits (an insert that was kept, a promotion swap that landed),
    /// and ordered with that transition — the runtime calls it under its
    /// plan-cache lock. A build that lost an insert race must *not*
    /// report its tier: on a loaded host the losing tier-0 builder can
    /// finish arbitrarily late and would otherwise overwrite the
    /// promoted entry's `tier2` with a stale `tier0`. No entry is
    /// created when the digest has been displaced: a tier without a
    /// resident profile carries no signal.
    pub fn set_tier(&self, fingerprint: u64, tier: Tier) {
        let mut stripe = self.stripe(fingerprint).lock();
        if let Some(entry) = stripe.map.get_mut(&fingerprint) {
            entry.profile.tier = tier;
        }
    }

    /// Record one evaluation: bind/execute/read-back stage timings and
    /// the VM counter delta. `opcodes` is the plan's per-eval opcode
    /// census, consulted only when the digest's entry has to be
    /// (re)created — e.g. after an eviction.
    pub fn record_eval(&self, fingerprint: u64, sample: &EvalSample, opcodes: &[(Opcode, u64)]) {
        let mut stripe = self.stripe(fingerprint).lock();
        let entry = stripe.entry_mut(fingerprint, self.stripe_cap, opcodes);
        entry.hits = entry.hits.saturating_add(1);
        entry.exec += sample.exec;
        entry
            .stages
            .get_mut(Stage::Bind)
            .record_nanos(sample.bind_nanos);
        entry
            .stages
            .get_mut(Stage::Execute)
            .record_nanos(sample.execute_nanos);
        entry
            .stages
            .get_mut(Stage::ReadBack)
            .record_nanos(sample.read_back_nanos);
    }

    /// Record the queue wait a serving layer observed for one request of
    /// this digest (no entry is created: queue wait without a subsequent
    /// evaluation carries no hotness signal).
    pub fn record_queue_wait(&self, fingerprint: u64, wait: Duration) {
        let mut stripe = self.stripe(fingerprint).lock();
        if let Some(entry) = stripe.map.get_mut(&fingerprint) {
            entry
                .profile
                .stages
                .get_mut(Stage::QueueWait)
                .record_nanos(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// The recorded hit count of one digest (zero when the digest has no
    /// entry — never recorded, or displaced by eviction). This is the
    /// tiering policy's hotness read path: one stripe lock, one hash of
    /// a `u64`, cheap enough to consult on every cache hit.
    pub fn hits(&self, fingerprint: u64) -> u64 {
        self.stripe(fingerprint)
            .lock()
            .map
            .get(&fingerprint)
            .map_or(0, |e| e.profile.hits)
    }

    /// Snapshot every resident profile, hottest first (ties broken by
    /// fingerprint so the order is deterministic).
    pub fn snapshot(&self) -> Vec<DigestProfile> {
        let mut all: Vec<DigestProfile> = self
            .stripes
            .iter()
            .flat_map(|s| {
                s.lock()
                    .map
                    .values()
                    .map(|e| e.profile.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by(|a, b| {
            b.hits
                .cmp(&a.hits)
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        });
        all
    }

    /// The `k` hottest digests (by hit count, deterministic ties) — the
    /// view a tiering policy consumes.
    pub fn top_k(&self, k: usize) -> Vec<DigestProfile> {
        let mut all = self.snapshot();
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(spec: &[(Opcode, u64)]) -> Vec<(Opcode, u64)> {
        spec.to_vec()
    }

    fn eval_sample(execute_nanos: u64) -> EvalSample {
        EvalSample {
            bind_nanos: 10,
            execute_nanos,
            read_back_nanos: 20,
            exec: ExecStats {
                instructions: 3,
                kernels: 1,
                ..Default::default()
            },
        }
    }

    #[test]
    fn records_accumulate_per_digest() {
        let t = ProfileTable::new(64);
        let census = ops(&[(Opcode::Add, 2), (Opcode::Sync, 1)]);
        t.record_plan_build(
            7,
            Duration::from_micros(5),
            Duration::from_micros(1),
            &census,
        );
        t.set_tier(7, Tier::Tier0);
        for _ in 0..3 {
            t.record_eval(7, &eval_sample(1_000), &census);
        }
        t.record_queue_wait(7, Duration::from_micros(9));
        assert_eq!(t.hits(7), 3);
        assert_eq!(t.hits(8), 0, "unknown digest reads as cold");
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        let p = &snap[0];
        assert_eq!(p.fingerprint, 7);
        assert_eq!(p.hits, 3);
        assert_eq!(p.plan_builds, 1);
        assert_eq!(p.tier, Tier::Tier0);
        assert_eq!(p.exec.instructions, 9);
        assert_eq!(p.stages.get(Stage::Execute).count(), 3);
        assert_eq!(p.stages.get(Stage::Optimise).count(), 1);
        assert_eq!(p.stages.get(Stage::QueueWait).count(), 1);
        assert_eq!(p.opcode_totals(), vec![(Opcode::Add, 6), (Opcode::Sync, 3)]);
        assert!(p.mean_stage(Stage::Execute) > Duration::ZERO);
    }

    #[test]
    fn promotion_rebuild_updates_tier_and_census() {
        let t = ProfileTable::new(64);
        let tier0_census = ops(&[(Opcode::Add, 24), (Opcode::Sync, 1)]);
        t.record_plan_build(
            9,
            Duration::from_micros(2),
            Duration::from_micros(1),
            &tier0_census,
        );
        t.set_tier(9, Tier::Tier0);
        t.record_eval(9, &eval_sample(500), &tier0_census);
        // The promoted plan executes fewer instructions per eval; the
        // entry's census must describe the *current* plan.
        let tier2_census = ops(&[(Opcode::Add, 1), (Opcode::Sync, 1)]);
        t.record_plan_build(
            9,
            Duration::from_micros(40),
            Duration::from_micros(1),
            &tier2_census,
        );
        t.set_tier(9, Tier::Tier2);
        let p = &t.snapshot()[0];
        assert_eq!(p.tier, Tier::Tier2);
        assert_eq!(p.plan_builds, 2);
        assert_eq!(p.opcodes_per_eval, tier2_census);
        assert_eq!(Tier::Tier0.name(), "tier0");
        assert_eq!(Tier::Tier2.level(), 2);
        // A build that never went live (lost an insert race) records its
        // work but must not overwrite the live tier.
        t.record_plan_build(
            9,
            Duration::from_micros(2),
            Duration::from_micros(1),
            &tier0_census,
        );
        let p = &t.snapshot()[0];
        assert_eq!(p.plan_builds, 3);
        assert_eq!(p.tier, Tier::Tier2, "stale build overwrote the live tier");
    }

    #[test]
    fn top_k_orders_by_hits_with_deterministic_ties() {
        let t = ProfileTable::new(64);
        for (fp, hits) in [(1u64, 5u64), (2, 9), (3, 5), (4, 1)] {
            for _ in 0..hits {
                t.record_eval(fp, &eval_sample(100), &[]);
            }
        }
        let top: Vec<(u64, u64)> = t.top_k(3).iter().map(|p| (p.fingerprint, p.hits)).collect();
        assert_eq!(top, vec![(2, 9), (1, 5), (3, 5)]);
        assert_eq!(t.top_k(100).len(), 4);
    }

    #[test]
    fn capacity_clamps_to_one_entry_per_stripe() {
        let t = ProfileTable::new(1);
        assert_eq!(t.capacity(), STRIPES);
    }

    #[test]
    fn table_is_bounded_and_evicts_the_coldest() {
        // Capacity 32 → 2 entries per stripe; force collisions onto
        // stripe 0 by fixing the low fingerprint bits.
        let t = ProfileTable::new(32);
        assert_eq!(t.capacity(), 32);
        let fp = |i: u64| i << 8; // all land in stripe 0
                                  // Digest A gets hot; B arrives and is colder; C displaces B, not A.
        for _ in 0..5 {
            t.record_eval(fp(1), &eval_sample(100), &[]);
        }
        t.record_eval(fp(2), &eval_sample(100), &[]);
        assert_eq!(t.evictions(), 0);
        t.record_eval(fp(3), &eval_sample(100), &[]);
        assert_eq!(t.evictions(), 1);
        let survivors: Vec<u64> = t.snapshot().iter().map(|p| p.fingerprint).collect();
        assert!(survivors.contains(&fp(1)), "hot digest must survive");
        assert!(!survivors.contains(&fp(2)), "coldest digest is displaced");
        assert!(survivors.contains(&fp(3)));
    }

    #[test]
    fn eviction_ties_displace_the_longest_resident() {
        let t = ProfileTable::new(32); // 2 per stripe
        let fp = |i: u64| i << 8; // all land in stripe 0
        t.record_eval(fp(1), &eval_sample(100), &[]);
        t.record_eval(fp(2), &eval_sample(100), &[]);
        t.record_eval(fp(3), &eval_sample(100), &[]); // tie on hits: evicts 1
        let mut survivors: Vec<u64> = t.snapshot().iter().map(|p| p.fingerprint).collect();
        survivors.sort_unstable();
        assert_eq!(survivors, vec![fp(2), fp(3)]);
    }

    #[test]
    fn queue_wait_without_an_entry_is_dropped() {
        let t = ProfileTable::new(8);
        t.record_queue_wait(42, Duration::from_micros(1));
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let t = std::sync::Arc::new(ProfileTable::new(256));
        let handles: Vec<_> = (0..8u64)
            .map(|thread| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        t.record_eval(thread * 100 + (i % 10), &eval_sample(50), &[]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 80);
        assert_eq!(snap.iter().map(|p| p.hits).sum::<u64>(), 800);
    }
}
