//! Fixed-footprint log₂ latency histogram.
//!
//! Lifted out of `bh-serve` so every layer of the stack (scheduler
//! turnaround, per-digest stage latencies, bench harnesses) shares one
//! histogram type with one set of percentile semantics. `bh_serve`
//! re-exports it, so existing callers are unaffected.

use std::fmt;
use std::time::Duration;

/// Number of log₂ latency buckets; bucket `i` spans `[2^i, 2^{i+1})`
/// nanoseconds, so the histogram covers up to ~18 minutes.
pub const LATENCY_BUCKETS: usize = 40;

/// Fixed-footprint log-scale latency histogram with percentile
/// estimation (bucket upper bounds, so estimates are conservative).
///
/// # Percentile semantics
///
/// [`LatencyHistogram::percentile`] uses the nearest-rank method on the
/// bucketed counts and reports the containing bucket's *upper* bound,
/// clamped to the exact maximum sample, so:
///
/// * an empty histogram reports [`Duration::ZERO`] for every quantile,
/// * `q = 0.0` (clamped rank 1) reports the lowest occupied bucket,
/// * `q = 1.0` reports the exact maximum sample,
/// * a single-sample histogram reports that sample's bucket (clamped to
///   the sample itself — i.e. exactly) for every quantile, and
/// * merging histograms then taking a percentile equals recording all
///   samples into one histogram first ([`LatencyHistogram::merge`]
///   is exact on counts; only `max` can tighten the clamp).
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    total_nanos: u128,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            total_nanos: 0,
            max_nanos: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, sample: Duration) {
        self.record_nanos(u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record one sample given directly in nanoseconds (the hot-path
    /// variant: no `Duration` round trip).
    pub fn record_nanos(&mut self, nanos: u64) {
        self.buckets[Self::bucket_index(nanos)] += 1;
        self.count += 1;
        self.total_nanos += u128::from(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// The bucket a `nanos`-long sample lands in: `floor(log₂ nanos)`,
    /// clamped into range (0 behaves as 1; the last bucket absorbs
    /// everything ≥ 2³⁹ ns).
    fn bucket_index(nanos: u64) -> usize {
        (63 - nanos.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Fold another histogram into this one. Bucket counts, totals and
    /// maxima combine exactly (saturating, never wrapping), so
    /// merge-then-percentile agrees with record-everything-then-percentile.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in nanoseconds (exact, not bucketed).
    pub fn total_nanos(&self) -> u128 {
        self.total_nanos
    }

    /// Arithmetic mean of all samples (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.total_nanos / u128::from(self.count)) as u64)
    }

    /// Largest sample seen (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The raw per-bucket counts (bucket `i` spans `[2^i, 2^{i+1})` ns),
    /// for exporters that render the histogram itself.
    pub fn bucket_counts(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Upper bound of bucket `i` in nanoseconds (`2^{i+1}`, saturating).
    pub fn bucket_upper_nanos(i: usize) -> u64 {
        1u64 << (i + 1).min(63)
    }

    /// Estimated `q`-quantile, reported as the containing bucket's upper
    /// bound clamped to the exact maximum sample; zero when empty (see
    /// the type docs for the full edge-case contract).
    pub fn percentile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i == LATENCY_BUCKETS - 1 {
                    // The last bucket is open-ended (absorbs everything
                    // ≥ 2³⁹ ns): its only honest upper bound is the max.
                    return self.max();
                }
                let upper = Self::bucket_upper_nanos(i);
                return Duration::from_nanos(upper.min(self.max_nanos.max(1)));
            }
        }
        self.max()
    }

    /// Median estimate.
    pub fn p50(&self) -> Duration {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Duration {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Duration {
        self.percentile(0.99)
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 10, 100, 1000, 10_000] {
            for _ in 0..20 {
                h.record(Duration::from_micros(us));
            }
        }
        assert_eq!(h.count(), 100);
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
        assert!(h.mean() > Duration::ZERO);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.percentile(0.0), Duration::ZERO);
        assert_eq!(h.percentile(1.0), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_is_reported_exactly_at_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(777));
        for q in [0.0, 0.01, 0.5, 0.95, 1.0] {
            // The bucket upper bound (1024) is clamped to the exact max.
            assert_eq!(h.percentile(q), Duration::from_nanos(777), "q={q}");
        }
        assert_eq!(h.mean(), Duration::from_nanos(777));
    }

    #[test]
    fn extreme_quantiles_pick_lowest_and_highest_samples() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(100)); // bucket [64, 128)
        h.record(Duration::from_nanos(100_000)); // bucket [65536, 131072)
                                                 // q=0.0 clamps to rank 1: the lowest occupied bucket's upper bound.
        assert_eq!(h.percentile(0.0), Duration::from_nanos(128));
        // Out-of-range q clamps rather than panicking or indexing wild.
        assert_eq!(h.percentile(-3.0), h.percentile(0.0));
        // q=1.0 is the exact maximum, not its bucket's upper bound.
        assert_eq!(h.percentile(1.0), Duration::from_nanos(100_000));
        assert_eq!(h.percentile(7.0), h.percentile(1.0));
    }

    #[test]
    fn samples_on_exact_bucket_boundaries_stay_in_their_bucket() {
        // 2^k is the *inclusive lower* bound of bucket k: the estimate for
        // a boundary sample must come from bucket k (upper bound 2^{k+1}),
        // clamped to the exact sample.
        for k in [4u32, 10, 20, 30] {
            let exact = 1u64 << k;
            let mut h = LatencyHistogram::new();
            h.record(Duration::from_nanos(exact));
            assert_eq!(h.percentile(0.5), Duration::from_nanos(exact), "2^{k}");
            // One below the boundary lands one bucket down.
            let mut low = LatencyHistogram::new();
            low.record(Duration::from_nanos(exact - 1));
            assert_eq!(low.percentile(0.5), Duration::from_nanos(exact - 1));
            // With a later larger sample the boundary bucket's upper bound
            // is reported unclamped.
            h.record(Duration::from_nanos(u64::from(k) << 40));
            assert_eq!(h.percentile(0.25), Duration::from_nanos(exact * 2));
        }
    }

    #[test]
    fn zero_and_huge_samples_clamp_into_range() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO); // treated as 1 ns: bucket 0
        h.record(Duration::from_secs(40_000)); // beyond the last bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[LATENCY_BUCKETS - 1], 1);
        assert_eq!(h.max(), Duration::from_secs(40_000));
        assert_eq!(h.percentile(1.0), Duration::from_secs(40_000));
    }

    #[test]
    fn merge_then_percentile_matches_recording_into_one() {
        let samples_a = [3u64, 900, 17_000, 1 << 20, 5];
        let samples_b = [250u64, 250, 1 << 30, 64, 8_191, 8_192];
        let mut merged_into = LatencyHistogram::new();
        let mut part_b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for &n in &samples_a {
            merged_into.record_nanos(n);
            all.record_nanos(n);
        }
        for &n in &samples_b {
            part_b.record_nanos(n);
            all.record_nanos(n);
        }
        merged_into.merge(&part_b);
        assert_eq!(merged_into, all, "merge must be exact on all state");
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(merged_into.percentile(q), all.percentile(q), "q={q}");
        }
        assert_eq!(merged_into.mean(), all.mean());
        assert_eq!(merged_into.max(), all.max());
    }

    #[test]
    fn merge_into_empty_copies_and_from_empty_is_identity() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(5));
        let mut empty = LatencyHistogram::new();
        empty.merge(&h);
        assert_eq!(empty, h);
        let before = h.clone();
        h.merge(&LatencyHistogram::new());
        assert_eq!(h, before);
    }

    #[test]
    fn percentile_brackets_the_true_value() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(Duration::from_micros(100)); // 100_000 ns
        }
        // The estimate lands in the sample's own bucket: within 2× above.
        let p = h.p50().as_nanos() as u64;
        assert!((100_000..=200_000).contains(&p), "{p}");
    }
}
