//! Dense matrix multiply and transpose.

use crate::error::LinalgError;
use crate::util::{cast_like, require_float};
use bh_tensor::{Shape, Tensor};

/// `C = A @ B` with NumPy `dot` shape semantics for rank ≤ 2:
/// matrix·matrix, matrix·vector, vector·matrix and vector·vector (dot
/// product, returned as a 1-element vector).
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] on inner-dimension disagreement or
/// rank > 2; [`LinalgError::UnsupportedDType`] for non-float inputs.
///
/// # Examples
///
/// ```
/// use bh_linalg::matmul;
/// use bh_tensor::{Shape, Tensor};
/// let a = Tensor::from_shape_vec(Shape::matrix(2, 2), vec![1.0f64, 2.0, 3.0, 4.0])?;
/// let x = Tensor::from_vec(vec![1.0f64, 1.0]);
/// assert_eq!(matmul(&a, &x)?.to_f64_vec(), vec![3.0, 7.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, LinalgError> {
    require_float(a)?;
    require_float(b)?;
    // Orientation is positional, as in NumPy: a rank-1 left operand is a
    // row vector, a rank-1 right operand a column vector.
    let (ar, ac, a_is_vec) = match a.shape().rank() {
        1 => (1, a.shape().dim(0), true),
        2 => (a.shape().dim(0), a.shape().dim(1), false),
        _ => {
            return Err(LinalgError::DimensionMismatch {
                constraint: format!("matmul operands must be rank 1 or 2, found {}", a.shape()),
            })
        }
    };
    let (br, bc, b_is_vec) = match b.shape().rank() {
        1 => (b.shape().dim(0), 1, true),
        2 => (b.shape().dim(0), b.shape().dim(1), false),
        _ => {
            return Err(LinalgError::DimensionMismatch {
                constraint: format!("matmul operands must be rank 1 or 2, found {}", b.shape()),
            })
        }
    };
    if ac != br {
        return Err(LinalgError::DimensionMismatch {
            constraint: format!("inner dimensions {} vs {}", a.shape(), b.shape()),
        });
    }
    let av = a.to_f64_vec();
    let bv = b.to_f64_vec();
    let mut out = vec![0.0f64; ar * bc];
    // ikj loop order: streams B rows, decent cache behaviour without
    // blocking; ample for the experiment sizes (n ≤ 512).
    for i in 0..ar {
        for k in 0..ac {
            let aik = av[i * ac + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[k * bc..(k + 1) * bc];
            let orow = &mut out[i * bc..(i + 1) * bc];
            for j in 0..bc {
                orow[j] += aik * brow[j];
            }
        }
    }
    let shape = match (a_is_vec, b_is_vec) {
        (false, false) => Shape::matrix(ar, bc),
        (false, true) => Shape::vector(ar),
        (true, false) => Shape::vector(bc),
        (true, true) => Shape::vector(1),
    };
    let t = Tensor::from_shape_vec(shape, out).expect("output buffer sized from dims");
    Ok(cast_like(t, a))
}

/// Shape of `a @ b` without computing it (mirrors [`matmul`]'s rules).
pub fn matmul_result_shape(a: &Shape, b: &Shape) -> Option<Shape> {
    let (ac, a_is_vec, ar) = match a.rank() {
        1 => (a.dim(0), true, 1),
        2 => (a.dim(1), false, a.dim(0)),
        _ => return None,
    };
    let (br, b_is_vec, bc) = match b.rank() {
        1 => (b.dim(0), true, 1),
        2 => (b.dim(0), false, b.dim(1)),
        _ => return None,
    };
    if ac != br {
        return None;
    }
    Some(match (a_is_vec, b_is_vec) {
        (false, false) => Shape::matrix(ar, bc),
        (false, true) => Shape::vector(ar),
        (true, false) => Shape::vector(bc),
        (true, true) => Shape::vector(1),
    })
}

/// Matrix transpose.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] unless the input is rank-2.
pub fn transpose(a: &Tensor) -> Result<Tensor, LinalgError> {
    if a.shape().rank() != 2 {
        return Err(LinalgError::DimensionMismatch {
            constraint: format!("transpose needs a matrix, found {}", a.shape()),
        });
    }
    let (r, c) = (a.shape().dim(0), a.shape().dim(1));
    let av = a.to_f64_vec();
    let mut out = vec![0.0f64; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = av[i * c + j];
        }
    }
    let t = Tensor::from_shape_vec(Shape::matrix(c, r), out).expect("sized r*c");
    Ok(cast_like(t, a))
}

/// Flops of an `m×k @ k×n` multiply (`2mkn`).
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_tensor::{random_tensor, DType, Distribution};

    fn m(r: usize, c: usize, data: Vec<f64>) -> Tensor {
        Tensor::from_shape_vec(Shape::matrix(r, c), data).unwrap()
    }

    #[test]
    fn known_product() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &Shape::matrix(2, 2));
        assert_eq!(c.to_f64_vec(), vec![58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_tensor(
            DType::Float64,
            Shape::matrix(5, 5),
            4,
            Distribution::Uniform,
        );
        let i = Tensor::eye(DType::Float64, 5);
        assert!(matmul(&a, &i).unwrap().allclose(&a, 1e-14));
        assert!(matmul(&i, &a).unwrap().allclose(&a, 1e-14));
    }

    #[test]
    fn matrix_vector_and_dot() {
        let a = m(2, 2, vec![1., 2., 3., 4.]);
        let x = Tensor::from_vec(vec![1.0f64, 1.0]);
        assert_eq!(matmul(&a, &x).unwrap().to_f64_vec(), vec![3., 7.]);
        assert_eq!(matmul(&x, &a).unwrap().to_f64_vec(), vec![4., 6.]);
        let d = matmul(&x, &x).unwrap();
        assert_eq!(d.to_f64_vec(), vec![2.0]);
    }

    #[test]
    fn inner_dim_mismatch() {
        let a = m(2, 3, vec![0.0; 6]);
        let b = m(2, 3, vec![0.0; 6]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn associativity_numerical() {
        let a = random_tensor(
            DType::Float64,
            Shape::matrix(4, 4),
            1,
            Distribution::Uniform,
        );
        let b = random_tensor(
            DType::Float64,
            Shape::matrix(4, 4),
            2,
            Distribution::Uniform,
        );
        let c = random_tensor(
            DType::Float64,
            Shape::matrix(4, 4),
            3,
            Distribution::Uniform,
        );
        let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        assert!(left.allclose(&right, 1e-10));
    }

    #[test]
    fn transpose_round_trip() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = transpose(&a).unwrap();
        assert_eq!(t.shape(), &Shape::matrix(3, 2));
        assert_eq!(t.get(&[2, 1]).unwrap().as_f64(), 6.0);
        assert!(transpose(&t).unwrap().allclose(&a, 0.0));
    }

    #[test]
    fn f32_stays_f32() {
        let a = Tensor::eye(DType::Float32, 3);
        assert_eq!(matmul(&a, &a).unwrap().dtype(), DType::Float32);
        assert_eq!(transpose(&a).unwrap().dtype(), DType::Float32);
    }

    #[test]
    fn int_rejected() {
        let a = Tensor::eye(DType::Int64, 2);
        assert!(matmul(&a, &a).is_err());
    }

    #[test]
    fn flops_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
    }
}
