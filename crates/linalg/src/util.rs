//! Shared conversion helpers.

use crate::error::LinalgError;
use bh_tensor::Tensor;

/// Extract a square matrix's dimension.
///
/// # Errors
///
/// [`LinalgError::NotSquare`] unless the tensor is rank-2 with equal dims.
pub(crate) fn square_dim(a: &Tensor) -> Result<usize, LinalgError> {
    let s = a.shape();
    if s.rank() == 2 && s.dim(0) == s.dim(1) {
        Ok(s.dim(0))
    } else {
        Err(LinalgError::NotSquare { shape: s.clone() })
    }
}

/// Row-major f64 copy of a float tensor's elements.
///
/// # Errors
///
/// [`LinalgError::UnsupportedDType`] for non-float input.
pub(crate) fn as_f64_matrix(a: &Tensor) -> Result<Vec<f64>, LinalgError> {
    require_float(a)?;
    Ok(a.to_f64_vec())
}

/// f64 copy of a float vector's elements.
///
/// # Errors
///
/// [`LinalgError::UnsupportedDType`] for non-float input.
pub(crate) fn as_f64_vec(a: &Tensor) -> Result<Vec<f64>, LinalgError> {
    require_float(a)?;
    Ok(a.to_f64_vec())
}

pub(crate) fn require_float(a: &Tensor) -> Result<(), LinalgError> {
    if a.dtype().is_float() {
        Ok(())
    } else {
        Err(LinalgError::UnsupportedDType { dtype: a.dtype() })
    }
}

/// Cast the result back to the dtype of the prototype operand, so f32
/// pipelines stay f32 end-to-end.
pub(crate) fn cast_like(result: Tensor, prototype: &Tensor) -> Tensor {
    if result.dtype() == prototype.dtype() {
        result
    } else {
        result.cast(prototype.dtype())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_tensor::{DType, Shape};

    #[test]
    fn square_dim_checks_rank_and_equality() {
        assert_eq!(square_dim(&Tensor::eye(DType::Float64, 4)).unwrap(), 4);
        assert!(square_dim(&Tensor::zeros(DType::Float64, Shape::from([2, 3]))).is_err());
        assert!(square_dim(&Tensor::zeros(DType::Float64, Shape::vector(4))).is_err());
    }

    #[test]
    fn cast_like_round_trips_f32() {
        let proto = Tensor::zeros(DType::Float32, Shape::vector(2));
        let r = Tensor::from_vec(vec![1.0f64, 2.0]);
        assert_eq!(cast_like(r, &proto).dtype(), DType::Float32);
    }
}
