//! LU factorisation with partial pivoting.
//!
//! The paper's Eq. 2 observes that solving `Ax = B` through an explicit
//! inverse is wasteful and that "one could do a LU-factorization of the
//! same problem, which would usually be faster to compute" — this module is
//! that faster path. Flop accounting follows Golub & Van Loan: `PA = LU`
//! costs ~2n³/3 flops, each triangular pair-solve ~2n².

use crate::error::LinalgError;
use crate::util::{as_f64_matrix, square_dim};
use bh_tensor::{Shape, Tensor};

/// A packed `PA = LU` factorisation.
///
/// `L` (unit lower-triangular) and `U` (upper-triangular) share one `n × n`
/// store; `perm` maps factored row index → original row index.
///
/// # Examples
///
/// ```
/// use bh_linalg::LuFactorization;
/// use bh_tensor::{Shape, Tensor};
///
/// let a = Tensor::from_shape_vec(Shape::matrix(2, 2), vec![4.0f64, 3.0, 6.0, 3.0])?;
/// let lu = LuFactorization::factorize(&a)?;
/// let x = lu.solve_vec(&Tensor::from_vec(vec![10.0f64, 12.0]))?;
/// assert!((x.to_f64_vec()[0] - 1.0).abs() < 1e-12);
/// assert!((x.to_f64_vec()[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LuFactorization {
    n: usize,
    /// Row-major packed L\U (diagonal belongs to U; L's diagonal is
    /// implicitly 1).
    packed: Vec<f64>,
    /// `perm[i]` = original row stored at factored row `i`.
    perm: Vec<usize>,
    /// Number of row swaps performed (sign of the permutation).
    swaps: usize,
}

/// Pivot threshold: pivots with absolute value at or below this are treated
/// as exact zeros and reported as singularity.
const PIVOT_EPS: f64 = 1e-300;

impl LuFactorization {
    /// Factor a square float matrix with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] for non-square input.
    /// * [`LinalgError::UnsupportedDType`] for non-float input.
    /// * [`LinalgError::Singular`] when a pivot vanishes.
    pub fn factorize(a: &Tensor) -> Result<LuFactorization, LinalgError> {
        let n = square_dim(a)?;
        let mut packed = as_f64_matrix(a)?;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0usize;
        for k in 0..n {
            // Partial pivot: largest |value| in column k at/below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = packed[k * n + k].abs();
            for r in k + 1..n {
                let v = packed[r * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= PIVOT_EPS {
                return Err(LinalgError::Singular { column: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    packed.swap(k * n + c, pivot_row * n + c);
                }
                perm.swap(k, pivot_row);
                swaps += 1;
            }
            let pivot = packed[k * n + k];
            for r in k + 1..n {
                let factor = packed[r * n + k] / pivot;
                packed[r * n + k] = factor; // store L entry
                for c in k + 1..n {
                    packed[r * n + c] -= factor * packed[k * n + c];
                }
            }
        }
        Ok(LuFactorization {
            n,
            packed,
            perm,
            swaps,
        })
    }

    /// Matrix dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The row permutation (factored row → original row).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Determinant of the original matrix: `(-1)^swaps · ∏ diag(U)`.
    pub fn det(&self) -> f64 {
        let mut d = if self.swaps % 2 == 0 { 1.0 } else { -1.0 };
        for k in 0..self.n {
            d *= self.packed[k * self.n + k];
        }
        d
    }

    /// Solve `Ax = b` for one right-hand side.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] when `b` is not an `n`-vector, or
    /// [`LinalgError::UnsupportedDType`] for non-float `b`.
    pub fn solve_vec(&self, b: &Tensor) -> Result<Tensor, LinalgError> {
        if b.shape().rank() != 1 || b.shape().dim(0) != self.n {
            return Err(LinalgError::DimensionMismatch {
                constraint: format!("rhs must be a {}-vector, found {}", self.n, b.shape()),
            });
        }
        let bv = crate::util::as_f64_vec(b)?;
        let x = self.solve_in_place(&bv);
        Ok(Tensor::from_vec(x))
    }

    /// Solve `AX = B` column-by-column for an `n × k` right-hand side.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] when `B` has the wrong row count,
    /// or [`LinalgError::UnsupportedDType`] for non-float `B`.
    pub fn solve_mat(&self, b: &Tensor) -> Result<Tensor, LinalgError> {
        if b.shape().rank() != 2 || b.shape().dim(0) != self.n {
            return Err(LinalgError::DimensionMismatch {
                constraint: format!("rhs must have {} rows, found {}", self.n, b.shape()),
            });
        }
        let k = b.shape().dim(1);
        let bm = as_f64_matrix(b)?;
        let mut out = vec![0.0f64; self.n * k];
        let mut col = vec![0.0f64; self.n];
        for j in 0..k {
            for i in 0..self.n {
                col[i] = bm[i * k + j];
            }
            let x = self.solve_in_place(&col);
            for i in 0..self.n {
                out[i * k + j] = x[i];
            }
        }
        Tensor::from_shape_vec(Shape::matrix(self.n, k), out).map_err(|_| {
            LinalgError::DimensionMismatch {
                constraint: "internal shape bookkeeping".into(),
            }
        })
    }

    /// Forward + back substitution against one permuted right-hand side.
    fn solve_in_place(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        // y = L⁻¹ P b
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                s -= self.packed[i * n + j] * yj;
            }
            y[i] = s;
        }
        // x = U⁻¹ y
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.packed[i * n + j] * xj;
            }
            x[i] = s / self.packed[i * n + i];
        }
        x
    }

    /// Reconstruct the unit-lower-triangular factor `L` (testing helper).
    pub fn l_matrix(&self) -> Tensor {
        let n = self.n;
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                l[i * n + j] = match i.cmp(&j) {
                    std::cmp::Ordering::Greater => self.packed[i * n + j],
                    std::cmp::Ordering::Equal => 1.0,
                    std::cmp::Ordering::Less => 0.0,
                };
            }
        }
        Tensor::from_shape_vec(Shape::matrix(n, n), l).expect("sized n*n")
    }

    /// Reconstruct the upper-triangular factor `U` (testing helper).
    pub fn u_matrix(&self) -> Tensor {
        let n = self.n;
        let mut u = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                u[i * n + j] = self.packed[i * n + j];
            }
        }
        Tensor::from_shape_vec(Shape::matrix(n, n), u).expect("sized n*n")
    }

    /// Flops of the factorisation itself (`~2n³/3`).
    pub fn factorization_flops(n: usize) -> u64 {
        (2 * n as u64 * n as u64 * n as u64) / 3
    }

    /// Flops of one pair of triangular solves (`~2n²`).
    pub fn solve_flops(n: usize) -> u64 {
        2 * (n as u64) * (n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul;
    use bh_tensor::{random_tensor, DType, Distribution};

    fn mat(n: usize, data: Vec<f64>) -> Tensor {
        Tensor::from_shape_vec(Shape::matrix(n, n), data).unwrap()
    }

    fn random_spd_ish(n: usize, seed: u64) -> Tensor {
        // Random + n·I: comfortably non-singular.
        let mut t = random_tensor(
            DType::Float64,
            Shape::matrix(n, n),
            seed,
            Distribution::Uniform,
        );
        for i in 0..n {
            let v = t.get(&[i, i]).unwrap().as_f64();
            t.set(&[i, i], bh_tensor::Scalar::F64(v + n as f64))
                .unwrap();
        }
        t
    }

    #[test]
    fn pa_equals_lu() {
        let a = random_spd_ish(8, 3);
        let lu = LuFactorization::factorize(&a).unwrap();
        let l = lu.l_matrix();
        let u = lu.u_matrix();
        let prod = matmul(&l, &u).unwrap();
        // PA: apply the permutation to A's rows.
        let n = lu.dim();
        let pa = Tensor::from_fn(Shape::matrix(n, n), |idx| {
            a.get(&[lu.permutation()[idx[0]], idx[1]]).unwrap().as_f64()
        });
        assert!(prod.allclose(&pa, 1e-10), "PA != LU");
    }

    #[test]
    fn solves_known_system() {
        // [[2,1],[1,3]] x = [3,5] -> x = [0.8, 1.4]
        let a = mat(2, vec![2.0, 1.0, 1.0, 3.0]);
        let lu = LuFactorization::factorize(&a).unwrap();
        let x = lu.solve_vec(&Tensor::from_vec(vec![3.0f64, 5.0])).unwrap();
        assert!(x.allclose(&Tensor::from_vec(vec![0.8f64, 1.4]), 1e-12));
    }

    #[test]
    fn solve_residual_small_random() {
        for seed in 0..5u64 {
            let n = 16;
            let a = random_spd_ish(n, seed);
            let b = random_tensor(
                DType::Float64,
                Shape::vector(n),
                seed + 100,
                Distribution::Uniform,
            );
            let lu = LuFactorization::factorize(&a).unwrap();
            let x = lu.solve_vec(&b).unwrap();
            // residual r = Ax - b
            let ax = matmul(&a, &x).unwrap();
            let r = ax.zip::<f64>(&b, |p, q| p - q).unwrap();
            let rn = r.to_f64_vec().iter().map(|v| v * v).sum::<f64>().sqrt();
            let bn = b.to_f64_vec().iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(rn / bn < 1e-10, "relative residual {}", rn / bn);
        }
    }

    #[test]
    fn solve_mat_matches_columnwise() {
        let n = 6;
        let a = random_spd_ish(n, 9);
        let b = random_tensor(
            DType::Float64,
            Shape::matrix(n, 3),
            10,
            Distribution::Uniform,
        );
        let lu = LuFactorization::factorize(&a).unwrap();
        let x = lu.solve_mat(&b).unwrap();
        for j in 0..3 {
            let bj = Tensor::from_fn(Shape::vector(n), |i| b.get(&[i[0], j]).unwrap().as_f64());
            let xj = lu.solve_vec(&bj).unwrap();
            for i in 0..n {
                assert!((x.get(&[i, j]).unwrap().as_f64() - xj.to_f64_vec()[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // a11 = 0 forces a swap; without pivoting this would divide by zero.
        let a = mat(2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = LuFactorization::factorize(&a).unwrap();
        let x = lu.solve_vec(&Tensor::from_vec(vec![2.0f64, 3.0])).unwrap();
        assert!(x.allclose(&Tensor::from_vec(vec![3.0f64, 2.0]), 1e-12));
        assert_eq!(lu.permutation(), &[1, 0]);
    }

    #[test]
    fn determinant() {
        let a = mat(2, vec![3.0, 8.0, 4.0, 6.0]);
        let lu = LuFactorization::factorize(&a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-12);
        // Identity has det 1.
        let i = Tensor::eye(DType::Float64, 5);
        assert!((LuFactorization::factorize(&i).unwrap().det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = mat(2, vec![1.0, 2.0, 2.0, 4.0]);
        match LuFactorization::factorize(&a) {
            Err(LinalgError::Singular { column }) => assert_eq!(column, 1),
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = Tensor::zeros(DType::Float64, Shape::from([2, 3]));
        assert!(matches!(
            LuFactorization::factorize(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn int_dtype_rejected() {
        let a = Tensor::eye(DType::Int32, 3);
        assert!(matches!(
            LuFactorization::factorize(&a),
            Err(LinalgError::UnsupportedDType { .. })
        ));
    }

    #[test]
    fn f32_input_accepted_via_cast() {
        let a = Tensor::eye(DType::Float32, 3);
        let lu = LuFactorization::factorize(&a).unwrap();
        assert!((lu.det() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rhs_dimension_checked() {
        let a = Tensor::eye(DType::Float64, 3);
        let lu = LuFactorization::factorize(&a).unwrap();
        assert!(lu.solve_vec(&Tensor::from_vec(vec![1.0f64, 2.0])).is_err());
        assert!(lu
            .solve_mat(&Tensor::zeros(DType::Float64, Shape::matrix(2, 2)))
            .is_err());
    }

    #[test]
    fn flop_model_orders() {
        // Factorisation dominates a single solve for any n >= 4.
        for n in [4usize, 16, 64] {
            assert!(
                LuFactorization::factorization_flops(n) > LuFactorization::solve_flops(n),
                "n={n}"
            );
        }
    }
}
