//! Explicit matrix inverse and the two `Ax = B` solution strategies of the
//! paper's Eq. 2.
//!
//! `solve_via_inverse` is the *baseline* the paper criticises: form `A⁻¹`
//! (one LU factorisation + `n` triangular pair-solves ≈ 2n³ flops) and then
//! multiply (`2n²k` more). `solve_lu` is the rewrite target: factor once and
//! substitute (≈ 2n³/3 + 2n²k flops). Both produce the same `x`, which is
//! exactly what makes the byte-code rewrite sound.

use crate::error::LinalgError;
use crate::lu::LuFactorization;
use crate::matmul::matmul;
use crate::util::cast_like;
use bh_tensor::{DType, Tensor};

/// Explicit inverse via LU: solve `A X = I` column-by-column.
///
/// # Errors
///
/// Propagates factorisation failures (non-square, singular, non-float).
///
/// # Examples
///
/// ```
/// use bh_linalg::{inverse, matmul};
/// use bh_tensor::{DType, Shape, Tensor};
/// let a = Tensor::from_shape_vec(Shape::matrix(2, 2), vec![4.0f64, 7.0, 2.0, 6.0])?;
/// let inv = inverse(&a)?;
/// assert!(matmul(&a, &inv)?.allclose(&Tensor::eye(DType::Float64, 2), 1e-12));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn inverse(a: &Tensor) -> Result<Tensor, LinalgError> {
    let lu = LuFactorization::factorize(a)?;
    let n = lu.dim();
    let identity = Tensor::eye(DType::Float64, n);
    let inv = lu.solve_mat(&identity)?;
    Ok(cast_like(inv, a))
}

/// Solve `Ax = B` the paper's Eq. 2 *left* way: `x = A⁻¹ B`.
///
/// `b` may be a vector or a matrix of stacked right-hand sides.
///
/// # Errors
///
/// Propagates factorisation and dimension failures.
pub fn solve_via_inverse(a: &Tensor, b: &Tensor) -> Result<Tensor, LinalgError> {
    let inv = inverse(a)?;
    matmul(&inv, b)
}

/// Solve `Ax = B` the paper's Eq. 2 *right* way: LU factorisation plus
/// substitution, no explicit inverse.
///
/// # Errors
///
/// Propagates factorisation and dimension failures.
pub fn solve_lu(a: &Tensor, b: &Tensor) -> Result<Tensor, LinalgError> {
    let lu = LuFactorization::factorize(a)?;
    let x = match b.shape().rank() {
        1 => lu.solve_vec(b)?,
        2 => lu.solve_mat(b)?,
        _ => {
            return Err(LinalgError::DimensionMismatch {
                constraint: format!("rhs must be rank 1 or 2, found {}", b.shape()),
            })
        }
    };
    Ok(cast_like(x, b))
}

/// Determinant via LU.
///
/// # Errors
///
/// Propagates factorisation failures; a singular matrix yields `Ok(0.0)` is
/// **not** guaranteed — singularity surfaces as [`LinalgError::Singular`]
/// (use [`LuFactorization`] directly for a pivot-tolerant path).
pub fn det(a: &Tensor) -> Result<f64, LinalgError> {
    Ok(LuFactorization::factorize(a)?.det())
}

/// Flop model for `solve_via_inverse` on `n×n`·`n×k`:
/// inverse (`2n³`) + multiply (`2n²k`).
pub fn inverse_solve_flops(n: usize, k: usize) -> u64 {
    let n64 = n as u64;
    2 * n64 * n64 * n64 + 2 * n64 * n64 * k as u64
}

/// Flop model for `solve_lu` on `n×n`·`n×k`: factorise (`2n³/3`) +
/// `k` substitutions (`2n²` each).
pub fn lu_solve_flops(n: usize, k: usize) -> u64 {
    LuFactorization::factorization_flops(n) + LuFactorization::solve_flops(n) * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_tensor::{random_tensor, Distribution, Scalar, Shape};

    fn random_well_conditioned(n: usize, seed: u64) -> Tensor {
        let mut t = random_tensor(
            DType::Float64,
            Shape::matrix(n, n),
            seed,
            Distribution::Uniform,
        );
        for i in 0..n {
            let v = t.get(&[i, i]).unwrap().as_f64();
            t.set(&[i, i], Scalar::F64(v + n as f64)).unwrap();
        }
        t
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        for n in [1usize, 2, 5, 12] {
            let a = random_well_conditioned(n, n as u64);
            let inv = inverse(&a).unwrap();
            let prod = matmul(&a, &inv).unwrap();
            assert!(
                prod.allclose(&Tensor::eye(DType::Float64, n), 1e-9),
                "n={n}"
            );
        }
    }

    #[test]
    fn both_solvers_agree_vector_rhs() {
        // Eq. 2 soundness: A⁻¹B == LU-solve(A, B).
        for seed in 0..5u64 {
            let n = 10;
            let a = random_well_conditioned(n, seed);
            let b = random_tensor(
                DType::Float64,
                Shape::vector(n),
                seed + 50,
                Distribution::Uniform,
            );
            let x1 = solve_via_inverse(&a, &b).unwrap();
            let x2 = solve_lu(&a, &b).unwrap();
            assert!(
                x1.allclose(&x2, 1e-9),
                "seed {seed}: {}",
                x1.max_abs_diff(&x2)
            );
        }
    }

    #[test]
    fn both_solvers_agree_matrix_rhs() {
        let n = 8;
        let a = random_well_conditioned(n, 7);
        let b = random_tensor(
            DType::Float64,
            Shape::matrix(n, 4),
            77,
            Distribution::Uniform,
        );
        let x1 = solve_via_inverse(&a, &b).unwrap();
        let x2 = solve_lu(&a, &b).unwrap();
        assert_eq!(x1.shape(), &Shape::matrix(n, 4));
        assert!(x1.allclose(&x2, 1e-9));
    }

    #[test]
    fn solution_satisfies_system() {
        let a = random_well_conditioned(12, 3);
        let b = random_tensor(DType::Float64, Shape::vector(12), 33, Distribution::Uniform);
        let x = solve_lu(&a, &b).unwrap();
        let ax = matmul(&a, &x).unwrap();
        assert!(ax.allclose(&b, 1e-9));
    }

    #[test]
    fn det_of_known_matrices() {
        assert!((det(&Tensor::eye(DType::Float64, 4)).unwrap() - 1.0).abs() < 1e-12);
        let a = Tensor::from_shape_vec(Shape::matrix(2, 2), vec![1.0f64, 2.0, 3.0, 4.0]).unwrap();
        assert!((det(&a).unwrap() - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn flop_model_lu_strictly_cheaper() {
        // The Eq. 2 rewrite must win for every size with few RHS columns.
        for n in [8usize, 32, 128, 512] {
            for k in [1usize, 4] {
                assert!(
                    lu_solve_flops(n, k) < inverse_solve_flops(n, k),
                    "n={n} k={k}"
                );
            }
        }
        // ... and the advantage approaches 3x for k << n.
        let ratio = inverse_solve_flops(256, 1) as f64 / lu_solve_flops(256, 1) as f64;
        assert!(ratio > 2.5 && ratio < 3.5, "ratio {ratio}");
    }

    #[test]
    fn singular_surfaces_cleanly() {
        let a = Tensor::from_shape_vec(Shape::matrix(2, 2), vec![1.0f64, 1.0, 1.0, 1.0]).unwrap();
        assert!(matches!(inverse(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn f32_round_trips() {
        let a = Tensor::eye(DType::Float32, 3);
        assert_eq!(inverse(&a).unwrap().dtype(), DType::Float32);
        let b = Tensor::ones(DType::Float32, Shape::vector(3));
        assert_eq!(solve_lu(&a, &b).unwrap().dtype(), DType::Float32);
    }

    #[test]
    fn bad_rhs_rank() {
        let a = Tensor::eye(DType::Float64, 2);
        let b = Tensor::zeros(DType::Float64, Shape::from([2, 2, 2]));
        assert!(solve_lu(&a, &b).is_err());
    }
}
