//! # bh-linalg — dense linear-algebra substrate
//!
//! The linear-algebra routines behind the paper's context-aware Eq. 2
//! rewrite: solving `Ax = B` via an explicit inverse versus via LU
//! factorisation. The byte-code VM (`bh-vm`) executes `BH_MATMUL`,
//! `BH_INVERSE` and `BH_SOLVE` through this crate, and the benchmark
//! harness compares the two strategies directly.
//!
//! # Example
//!
//! ```
//! use bh_linalg::{solve_lu, solve_via_inverse};
//! use bh_tensor::{Shape, Tensor};
//!
//! let a = Tensor::from_shape_vec(Shape::matrix(2, 2), vec![2.0f64, 1.0, 1.0, 3.0])?;
//! let b = Tensor::from_vec(vec![3.0f64, 5.0]);
//! let fast = solve_lu(&a, &b)?;            // Eq. 2 right-hand side
//! let slow = solve_via_inverse(&a, &b)?;   // Eq. 2 left-hand side
//! assert!(fast.allclose(&slow, 1e-12));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod inverse;
mod lu;
mod matmul;
mod util;

pub use error::LinalgError;
pub use inverse::{det, inverse, inverse_solve_flops, lu_solve_flops, solve_lu, solve_via_inverse};
pub use lu::LuFactorization;
pub use matmul::{matmul, matmul_flops, matmul_result_shape, transpose};
