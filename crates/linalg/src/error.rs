//! Error type for dense linear algebra.

use bh_tensor::{DType, Shape};
use std::fmt;

/// Errors produced by the linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The operation requires a square matrix.
    NotSquare {
        /// The offending shape.
        shape: Shape,
    },
    /// The operation requires matching dimensions.
    DimensionMismatch {
        /// Description of the constraint that failed.
        constraint: String,
    },
    /// The matrix is singular (a pivot underflowed) to working precision.
    Singular {
        /// The elimination column where the zero pivot appeared.
        column: usize,
    },
    /// The routine supports float dtypes only.
    UnsupportedDType {
        /// The offending dtype.
        dtype: DType,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { shape } => {
                write!(f, "expected a square matrix, found shape {shape}")
            }
            LinalgError::DimensionMismatch { constraint } => {
                write!(f, "dimension mismatch: {constraint}")
            }
            LinalgError::Singular { column } => {
                write!(f, "matrix is singular: zero pivot in column {column}")
            }
            LinalgError::UnsupportedDType { dtype } => {
                write!(f, "linear algebra requires a float dtype, found {dtype}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LinalgError::Singular { column: 2 };
        assert_eq!(e.to_string(), "matrix is singular: zero pivot in column 2");
        let e = LinalgError::NotSquare {
            shape: Shape::from([2, 3]),
        };
        assert!(e.to_string().contains("(2,3)"));
    }
}
