//! A thread-safe pool of recycled virtual machines.
//!
//! Building a [`Vm`] is cheap, but a recycled one is cheaper still: its
//! base-slot table is already grown and, when the caller runs the same
//! plan repeatedly *without* recycling in between, its base buffers stay
//! allocated too. The pool is the checkout/return surface behind both the
//! runtime's per-eval path and a serving layer that pins one VM per
//! micro-batch.

use crate::machine::{Engine, Vm};
use crate::stats::ExecStats;
use bh_tensor::kernels::{shard_ranges, RangeExecutor};
use parking_lot::Mutex;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A persistent pool of worker threads that executes contiguous element
/// ranges in parallel: the engine behind the VM's fused-group sharding and
/// the parallel kernel variants in [`bh_tensor::kernels`].
///
/// The pool spawns `threads - 1` OS threads once and keeps them parked
/// between jobs; the caller of [`WorkerPool::run_ranges`] participates as
/// the final worker, so a job never pays a context switch when the pool is
/// size 1 and never leaves the caller idle while shards remain. This
/// replaces the seed's per-operation `std::thread::scope` spawning, whose
/// thread start-up cost swamped medium-sized operations.
///
/// # Examples
///
/// ```
/// use bh_tensor::kernels::RangeExecutor;
/// use bh_vm::WorkerPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let sum = AtomicU64::new(0);
/// pool.run_ranges(1000, 1, &|lo, hi| {
///     sum.fetch_add((lo..hi).map(|v| v as u64).sum(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
/// ```
pub struct WorkerPool {
    threads: usize,
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Borrowed range task, lifetime-erased. Valid for the lifetime of the
/// job because `run_ranges` does not return until the job completes.
type TaskPtr = *const (dyn Fn(usize, usize) + Sync);

/// One published job: an element count pre-sharded into ranges, a borrowed
/// task, and grab/complete bookkeeping.
struct Job {
    task: TaskPtr,
    ranges: Vec<(usize, usize)>,
    next: usize,
    active: usize,
}

// SAFETY: `task` crosses threads only while the submitting `run_ranges`
// call is blocked waiting for the job, keeping the referent alive.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    epoch: u64,
    done_epoch: u64,
    shutdown: bool,
}

impl PoolState {
    /// Claim the next unclaimed shard of the current job (if any),
    /// marking it active. Shared by the worker loop and the submitter's
    /// participation loop so the `next`/`active` bookkeeping has exactly
    /// one implementation.
    fn grab_shard(&mut self) -> Option<(TaskPtr, (usize, usize))> {
        let job = self.job.as_mut()?;
        if job.next >= job.ranges.len() {
            return None;
        }
        let range = job.ranges[job.next];
        job.next += 1;
        job.active += 1;
        Some((job.task, range))
    }
}

struct PoolShared {
    state: std::sync::Mutex<PoolState>,
    work: std::sync::Condvar,
    done: std::sync::Condvar,
}

impl WorkerPool {
    /// A pool with `threads` workers in total (clamped to at least 1). The
    /// calling thread counts as one worker, so `threads - 1` OS threads
    /// are spawned.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: std::sync::Mutex::new(PoolState {
                job: None,
                epoch: 0,
                done_epoch: 0,
                shutdown: false,
            }),
            work: std::sync::Condvar::new(),
            done: std::sync::Condvar::new(),
        });
        let handles = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            threads,
            shared,
            handles,
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut g = shared.state.lock().unwrap();
    loop {
        if g.shutdown {
            return;
        }
        match g.grab_shard() {
            Some((task, (lo, hi))) => {
                drop(g);
                // SAFETY: the submitter keeps the closure alive until the
                // job completes (it blocks in `run_ranges`).
                unsafe { (*task)(lo, hi) };
                g = shared.state.lock().unwrap();
                finish_shard(shared, &mut g);
            }
            None => {
                g = shared.work.wait(g).unwrap();
            }
        }
    }
}

/// Decrement the active count after running a shard; when the job is fully
/// drained, retire it and wake the submitter.
fn finish_shard(shared: &PoolShared, g: &mut std::sync::MutexGuard<'_, PoolState>) {
    let job = g.job.as_mut().expect("job present while shards active");
    job.active -= 1;
    if job.next == job.ranges.len() && job.active == 0 {
        g.done_epoch = g.epoch;
        g.job = None;
        shared.done.notify_all();
    }
}

impl RangeExecutor for WorkerPool {
    fn threads(&self) -> usize {
        self.threads
    }

    fn run_ranges(&self, n: usize, grain: usize, task: &(dyn Fn(usize, usize) + Sync)) -> usize {
        if n == 0 {
            return 0;
        }
        let ranges = shard_ranges(n, self.threads, grain);
        if ranges.len() <= 1 {
            task(0, n);
            return 1;
        }
        let shards = ranges.len();
        // SAFETY: the transmute only erases the borrow lifetime. Workers
        // dereference the pointer exclusively between job publication and
        // job retirement, and this call does not return until retirement,
        // so the borrow outlives every dereference.
        let task_ptr: TaskPtr =
            unsafe { std::mem::transmute::<&(dyn Fn(usize, usize) + Sync), TaskPtr>(task) };
        let my_epoch;
        {
            let mut g = self.shared.state.lock().unwrap();
            if g.job.is_some() {
                // Another VM sharing this pool is mid-job (pools are shared
                // across a `VmPool`). Degrade gracefully: run serially
                // rather than deadlock or queue behind foreign work.
                drop(g);
                task(0, n);
                return 1;
            }
            g.epoch += 1;
            my_epoch = g.epoch;
            g.job = Some(Job {
                task: task_ptr,
                ranges,
                next: 0,
                active: 0,
            });
        }
        self.shared.work.notify_all();
        // The caller participates as a worker until the job drains.
        let mut g = self.shared.state.lock().unwrap();
        loop {
            if g.done_epoch == my_epoch {
                return shards;
            }
            match g.grab_shard() {
                // The submitter runs its shard through its own `task`
                // reference; the returned pointer is for the workers.
                Some((_task, (lo, hi))) => {
                    drop(g);
                    task(lo, hi);
                    g = self.shared.state.lock().unwrap();
                    finish_shard(&self.shared, &mut g);
                }
                None => {
                    g = self.shared.done.wait(g).unwrap();
                }
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.state.lock().unwrap();
            g.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Bounded stash of idle [`Vm`]s, all configured with one engine and
/// thread count.
///
/// # Examples
///
/// ```
/// use bh_ir::parse_program;
/// use bh_vm::{Engine, VmPool};
///
/// let pool = VmPool::new(Engine::Naive, 1, 4);
/// let program = parse_program("BH_IDENTITY a [0:4:1] 7\nBH_SYNC a\n")?;
/// {
///     let mut vm = pool.checkout();
///     vm.run(&program)?;
///     assert_eq!(vm.read_by_name(&program, "a")?.to_f64_vec(), vec![7.0; 4]);
/// } // dropped → recycled back into the pool
/// assert_eq!(pool.idle(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct VmPool {
    engine: Engine,
    threads: usize,
    limit: usize,
    idle: Mutex<Vec<Vm>>,
    workers: Option<Arc<WorkerPool>>,
}

impl VmPool {
    /// A pool whose VMs run `engine` with `threads` workers, keeping at
    /// most `limit` idle VMs for reuse (checkouts beyond the limit build
    /// fresh VMs; returns beyond it drop them).
    ///
    /// With `threads > 1` the pool spawns **one** persistent
    /// [`WorkerPool`] and installs it on every checked-out VM, so
    /// concurrent VMs share a single set of worker threads instead of
    /// each spawning their own.
    pub fn new(engine: Engine, threads: usize, limit: usize) -> VmPool {
        let threads = threads.max(1);
        VmPool {
            engine,
            threads,
            limit,
            idle: Mutex::new(Vec::new()),
            workers: (threads > 1).then(|| Arc::new(WorkerPool::new(threads))),
        }
    }

    /// The shared worker pool handed to checked-out VMs (`None` when the
    /// pool is single-threaded).
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.workers.as_ref()
    }

    /// The engine every checked-out VM is configured with.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Worker threads every checked-out VM is configured with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Upper bound on idle VMs kept for reuse.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Idle VMs currently available without building a new one.
    pub fn idle(&self) -> usize {
        self.idle.lock().len()
    }

    /// Check a VM out: a recycled idle one when available, a fresh one
    /// otherwise. Either way it comes with clean memory and counters and
    /// the pool's engine/thread configuration. The guard returns it on
    /// drop.
    pub fn checkout(&self) -> PooledVm<'_> {
        let mut vm = self.idle.lock().pop().unwrap_or_default();
        vm.recycle();
        vm.set_engine(self.engine);
        match &self.workers {
            Some(pool) => vm.set_worker_pool(Arc::clone(pool)),
            None => vm.set_threads(1),
        };
        PooledVm {
            pool: self,
            vm: Some(vm),
        }
    }

    fn checkin(&self, mut vm: Vm) {
        // Recycle on the way *in*, not just out: an idle pooled VM must
        // not pin the base buffers of the last program it executed.
        vm.recycle();
        let mut idle = self.idle.lock();
        if idle.len() < self.limit {
            idle.push(vm);
        }
    }
}

impl fmt::Debug for VmPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmPool")
            .field("engine", &self.engine)
            .field("threads", &self.threads)
            .field("limit", &self.limit)
            .field("idle", &self.idle.lock().len())
            .finish()
    }
}

/// RAII checkout from a [`VmPool`]; derefs to the [`Vm`] and returns it
/// (recycled) to the pool on drop.
pub struct PooledVm<'p> {
    pool: &'p VmPool,
    vm: Option<Vm>,
}

impl PooledVm<'_> {
    /// Snapshot the VM's accumulated counters (convenience for computing
    /// per-run deltas with [`ExecStats::since`] when several runs share
    /// this checkout).
    pub fn stats_snapshot(&self) -> ExecStats {
        *self.vm.as_ref().expect("present until drop").stats()
    }

    /// Detach the VM from the pool: it will not be returned on drop.
    pub fn detach(mut self) -> Vm {
        self.vm.take().expect("present until drop")
    }
}

impl Deref for PooledVm<'_> {
    type Target = Vm;

    fn deref(&self) -> &Vm {
        self.vm.as_ref().expect("present until drop")
    }
}

impl DerefMut for PooledVm<'_> {
    fn deref_mut(&mut self) -> &mut Vm {
        self.vm.as_mut().expect("present until drop")
    }
}

impl Drop for PooledVm<'_> {
    fn drop(&mut self) {
        if let Some(vm) = self.vm.take() {
            self.pool.checkin(vm);
        }
    }
}

impl fmt::Debug for PooledVm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledVm").field("vm", &self.vm).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;

    fn program() -> bh_ir::Program {
        parse_program("BH_IDENTITY a [0:8:1] 1\nBH_ADD a a 2\nBH_SYNC a\n").unwrap()
    }

    #[test]
    fn checkout_runs_and_returns() {
        let pool = VmPool::new(Engine::Naive, 1, 2);
        assert_eq!(pool.idle(), 0);
        {
            let mut vm = pool.checkout();
            vm.run(&program()).unwrap();
        }
        assert_eq!(pool.idle(), 1);
        // The recycled VM comes back clean.
        let vm = pool.checkout();
        assert_eq!(vm.stats().instructions, 0);
    }

    #[test]
    fn limit_caps_idle_vms() {
        let pool = VmPool::new(Engine::Naive, 1, 1);
        let a = pool.checkout();
        let b = pool.checkout();
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn checkout_applies_engine_and_threads() {
        let pool = VmPool::new(Engine::Fusing { block: 64 }, 3, 4);
        let vm = pool.checkout();
        assert_eq!(vm.engine(), Engine::Fusing { block: 64 });
        drop(vm);
        // Returned VM is re-targeted on the next checkout even if the
        // caller switched its engine while holding it.
        let mut vm = pool.checkout();
        vm.set_engine(Engine::Naive);
        drop(vm);
        assert_eq!(pool.checkout().engine(), Engine::Fusing { block: 64 });
    }

    #[test]
    fn detach_keeps_the_vm_out_of_the_pool() {
        let pool = VmPool::new(Engine::Naive, 1, 4);
        let vm = pool.checkout().detach();
        drop(vm);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn worker_pool_covers_ranges_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = WorkerPool::new(4);
        for n in [0usize, 1, 7, 1000, 4096] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let shards = pool.run_ranges(n, 64, &|lo, hi| {
                for h in &hits[lo..hi] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(shards <= 4);
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n={n}: every element must be visited exactly once"
            );
        }
    }

    #[test]
    fn worker_pool_reusable_across_jobs() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = WorkerPool::new(3);
        for _ in 0..50 {
            let sum = AtomicU64::new(0);
            pool.run_ranges(999, 10, &|lo, hi| {
                sum.fetch_add((hi - lo) as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 999);
        }
    }

    #[test]
    fn worker_pool_degrades_serially_when_busy() {
        // Two threads each driving jobs through one shared pool: one of
        // them finds the job slot occupied sometimes and must fall back
        // to inline execution without deadlock or data loss.
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let total = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..200 {
                        pool.run_ranges(100, 1, &|lo, hi| {
                            total.fetch_add((hi - lo) as u64, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 2 * 200 * 100);
    }

    #[test]
    fn vm_pool_shares_one_worker_pool() {
        let pool = VmPool::new(Engine::Naive, 3, 2);
        let workers = Arc::clone(pool.worker_pool().expect("multi-threaded pool"));
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(a.threads(), 3);
        assert_eq!(b.threads(), 3);
        // Both VMs plus the pool hold the same WorkerPool.
        assert!(Arc::strong_count(&workers) >= 3);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let pool = Arc::new(VmPool::new(Engine::Naive, 1, 4));
        let p = program();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let p = p.clone();
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        let mut vm = pool.checkout();
                        vm.run(&p).unwrap();
                        assert_eq!(vm.read_by_name(&p, "a").unwrap().to_f64_vec(), vec![3.0; 8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.idle() <= 4);
    }
}
