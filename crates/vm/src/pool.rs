//! A thread-safe pool of recycled virtual machines.
//!
//! Building a [`Vm`] is cheap, but a recycled one is cheaper still: its
//! base-slot table is already grown and, when the caller runs the same
//! plan repeatedly *without* recycling in between, its base buffers stay
//! allocated too. The pool is the checkout/return surface behind both the
//! runtime's per-eval path and a serving layer that pins one VM per
//! micro-batch.

use crate::machine::{Engine, Vm};
use crate::stats::ExecStats;
use parking_lot::Mutex;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Bounded stash of idle [`Vm`]s, all configured with one engine and
/// thread count.
///
/// # Examples
///
/// ```
/// use bh_ir::parse_program;
/// use bh_vm::{Engine, VmPool};
///
/// let pool = VmPool::new(Engine::Naive, 1, 4);
/// let program = parse_program("BH_IDENTITY a [0:4:1] 7\nBH_SYNC a\n")?;
/// {
///     let mut vm = pool.checkout();
///     vm.run(&program)?;
///     assert_eq!(vm.read_by_name(&program, "a")?.to_f64_vec(), vec![7.0; 4]);
/// } // dropped → recycled back into the pool
/// assert_eq!(pool.idle(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct VmPool {
    engine: Engine,
    threads: usize,
    limit: usize,
    idle: Mutex<Vec<Vm>>,
}

impl VmPool {
    /// A pool whose VMs run `engine` with `threads` workers, keeping at
    /// most `limit` idle VMs for reuse (checkouts beyond the limit build
    /// fresh VMs; returns beyond it drop them).
    pub fn new(engine: Engine, threads: usize, limit: usize) -> VmPool {
        VmPool {
            engine,
            threads: threads.max(1),
            limit,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The engine every checked-out VM is configured with.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Worker threads every checked-out VM is configured with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Upper bound on idle VMs kept for reuse.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Idle VMs currently available without building a new one.
    pub fn idle(&self) -> usize {
        self.idle.lock().len()
    }

    /// Check a VM out: a recycled idle one when available, a fresh one
    /// otherwise. Either way it comes with clean memory and counters and
    /// the pool's engine/thread configuration. The guard returns it on
    /// drop.
    pub fn checkout(&self) -> PooledVm<'_> {
        let mut vm = self.idle.lock().pop().unwrap_or_default();
        vm.recycle();
        vm.set_engine(self.engine);
        vm.set_threads(self.threads);
        PooledVm {
            pool: self,
            vm: Some(vm),
        }
    }

    fn checkin(&self, mut vm: Vm) {
        // Recycle on the way *in*, not just out: an idle pooled VM must
        // not pin the base buffers of the last program it executed.
        vm.recycle();
        let mut idle = self.idle.lock();
        if idle.len() < self.limit {
            idle.push(vm);
        }
    }
}

impl fmt::Debug for VmPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmPool")
            .field("engine", &self.engine)
            .field("threads", &self.threads)
            .field("limit", &self.limit)
            .field("idle", &self.idle.lock().len())
            .finish()
    }
}

/// RAII checkout from a [`VmPool`]; derefs to the [`Vm`] and returns it
/// (recycled) to the pool on drop.
pub struct PooledVm<'p> {
    pool: &'p VmPool,
    vm: Option<Vm>,
}

impl PooledVm<'_> {
    /// Snapshot the VM's accumulated counters (convenience for computing
    /// per-run deltas with [`ExecStats::since`] when several runs share
    /// this checkout).
    pub fn stats_snapshot(&self) -> ExecStats {
        *self.vm.as_ref().expect("present until drop").stats()
    }

    /// Detach the VM from the pool: it will not be returned on drop.
    pub fn detach(mut self) -> Vm {
        self.vm.take().expect("present until drop")
    }
}

impl Deref for PooledVm<'_> {
    type Target = Vm;

    fn deref(&self) -> &Vm {
        self.vm.as_ref().expect("present until drop")
    }
}

impl DerefMut for PooledVm<'_> {
    fn deref_mut(&mut self) -> &mut Vm {
        self.vm.as_mut().expect("present until drop")
    }
}

impl Drop for PooledVm<'_> {
    fn drop(&mut self) {
        if let Some(vm) = self.vm.take() {
            self.pool.checkin(vm);
        }
    }
}

impl fmt::Debug for PooledVm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledVm").field("vm", &self.vm).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;

    fn program() -> bh_ir::Program {
        parse_program("BH_IDENTITY a [0:8:1] 1\nBH_ADD a a 2\nBH_SYNC a\n").unwrap()
    }

    #[test]
    fn checkout_runs_and_returns() {
        let pool = VmPool::new(Engine::Naive, 1, 2);
        assert_eq!(pool.idle(), 0);
        {
            let mut vm = pool.checkout();
            vm.run(&program()).unwrap();
        }
        assert_eq!(pool.idle(), 1);
        // The recycled VM comes back clean.
        let vm = pool.checkout();
        assert_eq!(vm.stats().instructions, 0);
    }

    #[test]
    fn limit_caps_idle_vms() {
        let pool = VmPool::new(Engine::Naive, 1, 1);
        let a = pool.checkout();
        let b = pool.checkout();
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn checkout_applies_engine_and_threads() {
        let pool = VmPool::new(Engine::Fusing { block: 64 }, 3, 4);
        let vm = pool.checkout();
        assert_eq!(vm.engine(), Engine::Fusing { block: 64 });
        drop(vm);
        // Returned VM is re-targeted on the next checkout even if the
        // caller switched its engine while holding it.
        let mut vm = pool.checkout();
        vm.set_engine(Engine::Naive);
        drop(vm);
        assert_eq!(pool.checkout().engine(), Engine::Fusing { block: 64 });
    }

    #[test]
    fn detach_keeps_the_vm_out_of_the_pool() {
        let pool = VmPool::new(Engine::Naive, 1, 4);
        let vm = pool.checkout().detach();
        drop(vm);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let pool = Arc::new(VmPool::new(Engine::Naive, 1, 4));
        let p = program();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let p = p.clone();
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        let mut vm = pool.checkout();
                        vm.run(&p).unwrap();
                        assert_eq!(vm.read_by_name(&p, "a").unwrap().to_f64_vec(), vec![3.0; 8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.idle() <= 4);
    }
}
