//! Typed element-wise execution paths.
//!
//! These functions receive an output buffer slice, pre-resolved view
//! geometry and classified inputs, then pick the correct kernel variant:
//! out-of-place, in-place (output aliases an input base, as in
//! `BH_ADD a0 a0 1`), or materialise-first when an aliased input view
//! overlaps the output with a *different* layout (the only hazardous case).
//!
//! When every view is contiguous and aliasing layouts agree, large
//! operations are sharded across the VM's persistent worker pool (the
//! "multicore" half of Bohrium's pitch): out-of-place maps, in-place maps,
//! slice×slice binaries, comparisons and predicates all parallelise, not
//! just the flat in-place special case the seed handled.

use crate::eltops::VmElement;
use crate::pool::WorkerPool;
use bh_ir::Opcode;
use bh_tensor::kernels::{self, RangeExecutor};
use bh_tensor::ViewGeom;

/// Default minimum element count before the parallel path engages.
pub(crate) const PAR_THRESHOLD: usize = 1 << 16;

/// Parallel-execution context threaded through the typed paths: the VM's
/// worker pool (if any) plus the element-count threshold under which
/// sharding is not worth the synchronisation.
#[derive(Clone, Copy)]
pub(crate) struct ParCtx<'a> {
    /// Pooled workers; `None` runs everything serially.
    pub pool: Option<&'a WorkerPool>,
    /// Minimum output elements before sharding engages.
    pub threshold: usize,
}

impl ParCtx<'_> {
    /// Serial context (used by tests that must not shard).
    #[cfg(test)]
    pub(crate) fn serial() -> ParCtx<'static> {
        ParCtx {
            pool: None,
            threshold: usize::MAX,
        }
    }

    /// The executor to shard `nelem` output elements over, when the
    /// operation is big enough and workers exist.
    pub(crate) fn executor(&self, nelem: usize) -> Option<&WorkerPool> {
        match self.pool {
            Some(p) if p.threads() > 1 && nelem >= self.threshold.max(1) => Some(p),
            _ => None,
        }
    }
}

/// One classified binary input.
pub(crate) enum BinIn<'a, T> {
    /// View into the *output's own* base buffer.
    Aliased(ViewGeom),
    /// View into another base.
    Slice(&'a [T], ViewGeom),
    /// Immediate constant (already cast to the operating dtype).
    Const(T),
}

/// Execute `out = f(a, b)` element-wise over `ov`. Returns the number of
/// shards the operation was split into (0 when it ran on a serial
/// kernel) for the caller's `par_shards` accounting.
pub(crate) fn exec_binary<T: VmElement>(
    out: &mut [T],
    ov: &ViewGeom,
    a: BinIn<'_, T>,
    b: BinIn<'_, T>,
    f: impl Fn(T, T) -> T + Copy + Sync,
    par: ParCtx<'_>,
) -> usize {
    use BinIn::*;
    // Materialise hazardous aliased inputs first (different layout AND
    // overlapping the output view ⇒ in-place iteration could read elements
    // the loop already overwrote). The copies live in these locals for the
    // duration of the kernel call.
    #[allow(unused_assignments)]
    let mut temp_a: Vec<T> = Vec::new();
    #[allow(unused_assignments)]
    let mut temp_b: Vec<T> = Vec::new();
    let a = match a {
        Aliased(iv) if is_hazard(&iv, ov) => {
            temp_a = kernels::materialize(out, &iv);
            Slice(temp_a.as_slice(), ViewGeom::contiguous(&iv.shape()))
        }
        other => other,
    };
    let b = match b {
        Aliased(iv) if is_hazard(&iv, ov) => {
            temp_b = kernels::materialize(out, &iv);
            Slice(temp_b.as_slice(), ViewGeom::contiguous(&iv.shape()))
        }
        other => other,
    };

    let exec = par.executor(ov.nelem());
    match (&a, &b) {
        (Const(x), Const(y)) => {
            let v = f(*x, *y);
            if let Some(x) = exec {
                if let Some(s) = kernels::par_fill(x, out, ov, v) {
                    return s;
                }
            }
            kernels::fill(out, ov, v);
            0
        }
        (Aliased(av), Const(y)) => {
            let y = *y;
            if let Some(x) = exec {
                if let Some(s) = kernels::par_map1_inplace(x, out, ov, av, |v| f(v, y)) {
                    return s;
                }
            }
            kernels::map1_inplace(out, ov, av, |v| f(v, y));
            0
        }
        (Const(x), Aliased(bv)) => {
            let x0 = *x;
            if let Some(x) = exec {
                if let Some(s) = kernels::par_map1_inplace(x, out, ov, bv, |v| f(x0, v)) {
                    return s;
                }
            }
            kernels::map1_inplace(out, ov, bv, |v| f(x0, v));
            0
        }
        (Slice(sa, av), Const(y)) => {
            let y = *y;
            if let Some(x) = exec {
                if let Some(s) = kernels::par_map1(x, out, ov, sa, av, |v| f(v, y)) {
                    return s;
                }
            }
            kernels::map1(out, ov, sa, av, |v| f(v, y));
            0
        }
        (Const(x), Slice(sb, bv)) => {
            let x0 = *x;
            if let Some(x) = exec {
                if let Some(s) = kernels::par_map1(x, out, ov, sb, bv, |v| f(x0, v)) {
                    return s;
                }
            }
            kernels::map1(out, ov, sb, bv, |v| f(x0, v));
            0
        }
        (Aliased(av), Aliased(bv)) => {
            if let Some(x) = exec {
                if let Some(s) = kernels::par_map2_inplace(x, out, ov, av, bv, f) {
                    return s;
                }
            }
            kernels::map2_inplace(out, ov, av, bv, f);
            0
        }
        (Aliased(av), Slice(sb, bv)) => {
            if let Some(x) = exec {
                if let Some(s) = kernels::par_map2_left_inplace(x, out, ov, av, sb, bv, f) {
                    return s;
                }
            }
            kernels::map2_left_inplace(out, ov, av, sb, bv, f);
            0
        }
        (Slice(sa, av), Aliased(bv)) => {
            if let Some(x) = exec {
                if let Some(s) =
                    kernels::par_map2_left_inplace(x, out, ov, bv, sa, av, |x, y| f(y, x))
                {
                    return s;
                }
            }
            kernels::map2_left_inplace(out, ov, bv, sa, av, |x, y| f(y, x));
            0
        }
        (Slice(sa, av), Slice(sb, bv)) => {
            if let Some(x) = exec {
                if let Some(s) = kernels::par_map2(x, out, ov, sa, av, sb, bv, f) {
                    return s;
                }
            }
            kernels::map2(out, ov, sa, av, sb, bv, f);
            0
        }
    }
}

/// Execute `out = f(input)` element-wise over `ov`. Returns the shard
/// count, as [`exec_binary`] does.
pub(crate) fn exec_unary<T: VmElement>(
    out: &mut [T],
    ov: &ViewGeom,
    input: BinIn<'_, T>,
    f: impl Fn(T) -> T + Copy + Sync,
    par: ParCtx<'_>,
) -> usize {
    let temp: Vec<T>;
    let input = match input {
        BinIn::Aliased(iv) if is_hazard(&iv, ov) => {
            temp = kernels::materialize(out, &iv);
            BinIn::Slice(temp.as_slice(), ViewGeom::contiguous(&iv.shape()))
        }
        other => other,
    };
    let exec = par.executor(ov.nelem());
    match input {
        BinIn::Const(c) => {
            let v = f(c);
            if let Some(x) = exec {
                if let Some(s) = kernels::par_fill(x, out, ov, v) {
                    return s;
                }
            }
            kernels::fill(out, ov, v);
            0
        }
        BinIn::Aliased(iv) => {
            if let Some(x) = exec {
                if let Some(s) = kernels::par_map1_inplace(x, out, ov, &iv, f) {
                    return s;
                }
            }
            kernels::map1_inplace(out, ov, &iv, f);
            0
        }
        BinIn::Slice(data, iv) => {
            if let Some(x) = exec {
                if let Some(s) = kernels::par_map1(x, out, ov, data, &iv, f) {
                    return s;
                }
            }
            kernels::map1(out, ov, data, &iv, f);
            0
        }
    }
}

/// An aliased input is hazardous when it overlaps the output view with a
/// different layout: the logical iteration could then read elements the
/// same iteration already overwrote.
fn is_hazard(iv: &ViewGeom, ov: &ViewGeom) -> bool {
    !iv.same_layout(ov) && iv.may_overlap(ov)
}

/// Identity element of a reduction's fold op-code: the value folding
/// starts from in every engine, serial or sharded (`f(init, x) == x` for
/// all `x` the fold can produce, which is what makes the blocked combine
/// in `bh_tensor::kernels::par_reduce_lane` exact on short lanes).
pub(crate) fn fold_init<T: VmElement>(fold: Opcode) -> T {
    match fold {
        Opcode::Add => T::zero(),
        Opcode::Multiply => T::one(),
        Opcode::Maximum => T::vm_lowest(),
        Opcode::Minimum => T::vm_highest(),
        other => unreachable!("{other} is not a fold op"),
    }
}

/// fn-pointer table for binary op-codes over one element type.
pub(crate) fn binary_fn<T: VmElement>(op: Opcode) -> fn(T, T) -> T {
    match op {
        Opcode::Add => T::vm_add,
        Opcode::Subtract => T::vm_sub,
        Opcode::Multiply => T::vm_mul,
        Opcode::Divide => T::vm_div,
        Opcode::Power => T::vm_pow,
        Opcode::Mod => T::vm_mod,
        Opcode::Maximum => T::vm_max,
        Opcode::Minimum => T::vm_min,
        Opcode::BitwiseAnd | Opcode::LogicalAnd => T::vm_and,
        Opcode::BitwiseOr | Opcode::LogicalOr => T::vm_or,
        Opcode::BitwiseXor | Opcode::LogicalXor => T::vm_xor,
        Opcode::LeftShift => T::vm_shl,
        Opcode::RightShift => T::vm_shr,
        Opcode::Arctan2 => atan2_of::<T>,
        other => unreachable!("{other} is not a binary arithmetic op"),
    }
}

/// fn-pointer table for same-dtype unary op-codes.
pub(crate) fn unary_fn<T: VmElement>(op: Opcode) -> fn(T) -> T {
    match op {
        Opcode::Identity => ident_of::<T>,
        Opcode::Absolute => T::vm_abs,
        Opcode::Sign => T::vm_sign,
        Opcode::Invert | Opcode::LogicalNot => T::vm_not,
        Opcode::Sqrt => f_sqrt::<T>,
        Opcode::Exp => f_exp::<T>,
        Opcode::Exp2 => f_exp2::<T>,
        Opcode::Expm1 => f_expm1::<T>,
        Opcode::Log => f_log::<T>,
        Opcode::Log2 => f_log2::<T>,
        Opcode::Log10 => f_log10::<T>,
        Opcode::Log1p => f_log1p::<T>,
        Opcode::Sin => f_sin::<T>,
        Opcode::Cos => f_cos::<T>,
        Opcode::Tan => f_tan::<T>,
        Opcode::Sinh => f_sinh::<T>,
        Opcode::Cosh => f_cosh::<T>,
        Opcode::Tanh => f_tanh::<T>,
        Opcode::Arcsin => f_asin::<T>,
        Opcode::Arccos => f_acos::<T>,
        Opcode::Arctan => f_atan::<T>,
        Opcode::Arcsinh => f_asinh::<T>,
        Opcode::Arccosh => f_acosh::<T>,
        Opcode::Arctanh => f_atanh::<T>,
        Opcode::Ceil => f_ceil::<T>,
        Opcode::Floor => f_floor::<T>,
        Opcode::Trunc => f_trunc::<T>,
        Opcode::Rint => f_rint::<T>,
        other => unreachable!("{other} is not a same-dtype unary op"),
    }
}

/// fn-pointer table for comparison op-codes (`T × T → bool`).
pub(crate) fn compare_fn<T: VmElement>(op: Opcode) -> fn(T, T) -> bool {
    match op {
        Opcode::Greater => cmp_gt::<T>,
        Opcode::GreaterEqual => cmp_ge::<T>,
        Opcode::Less => cmp_lt::<T>,
        Opcode::LessEqual => cmp_le::<T>,
        Opcode::Equal => cmp_eq::<T>,
        Opcode::NotEqual => cmp_ne::<T>,
        other => unreachable!("{other} is not a comparison"),
    }
}

/// fn-pointer table for unary predicates (`T → bool`).
pub(crate) fn predicate_fn<T: VmElement>(op: Opcode) -> fn(T) -> bool {
    match op {
        Opcode::IsNan => pred_isnan::<T>,
        Opcode::IsInf => pred_isinf::<T>,
        other => unreachable!("{other} is not a predicate"),
    }
}

fn ident_of<T: VmElement>(x: T) -> T {
    x
}
fn atan2_of<T: VmElement>(a: T, b: T) -> T {
    T::from_f64(a.to_f64().atan2(b.to_f64()))
}
fn cmp_gt<T: VmElement>(a: T, b: T) -> bool {
    a > b
}
fn cmp_ge<T: VmElement>(a: T, b: T) -> bool {
    a >= b
}
fn cmp_lt<T: VmElement>(a: T, b: T) -> bool {
    a < b
}
fn cmp_le<T: VmElement>(a: T, b: T) -> bool {
    a <= b
}
fn cmp_eq<T: VmElement>(a: T, b: T) -> bool {
    a == b
}
fn cmp_ne<T: VmElement>(a: T, b: T) -> bool {
    a != b
}
fn pred_isnan<T: VmElement>(a: T) -> bool {
    a.to_f64().is_nan()
}
fn pred_isinf<T: VmElement>(a: T) -> bool {
    a.to_f64().is_infinite()
}

macro_rules! funary {
    ($($name:ident => $f:expr;)*) => {$(
        fn $name<T: VmElement>(x: T) -> T {
            x.vm_float_unary($f)
        }
    )*};
}

funary! {
    f_sqrt => |v: f64| v.sqrt();
    f_exp => |v: f64| v.exp();
    f_exp2 => |v: f64| v.exp2();
    f_expm1 => |v: f64| v.exp_m1();
    f_log => |v: f64| v.ln();
    f_log2 => |v: f64| v.log2();
    f_log10 => |v: f64| v.log10();
    f_log1p => |v: f64| v.ln_1p();
    f_sin => |v: f64| v.sin();
    f_cos => |v: f64| v.cos();
    f_tan => |v: f64| v.tan();
    f_sinh => |v: f64| v.sinh();
    f_cosh => |v: f64| v.cosh();
    f_tanh => |v: f64| v.tanh();
    f_asin => |v: f64| v.asin();
    f_acos => |v: f64| v.acos();
    f_atan => |v: f64| v.atan();
    f_asinh => |v: f64| v.asinh();
    f_acosh => |v: f64| v.acosh();
    f_atanh => |v: f64| v.atanh();
    f_ceil => |v: f64| v.ceil();
    f_floor => |v: f64| v.floor();
    f_trunc => |v: f64| v.trunc();
    f_rint => |v: f64| {
        // Round half to even, matching BH_RINT / IEEE.
        let r = v.round();
        if (v - v.trunc()).abs() == 0.5 && r % 2.0 != 0.0 { r - v.signum() } else { r }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_tensor::{Shape, Slice};

    fn full(n: usize) -> ViewGeom {
        ViewGeom::contiguous(&Shape::vector(n))
    }

    fn serial() -> ParCtx<'static> {
        ParCtx::serial()
    }

    #[test]
    fn binary_const_in_place() {
        let mut buf = vec![1.0f64; 8];
        let v = full(8);
        exec_binary::<f64>(
            &mut buf,
            &v,
            BinIn::Aliased(v.clone()),
            BinIn::Const(2.0),
            binary_fn::<f64>(Opcode::Add),
            serial(),
        );
        assert_eq!(buf, vec![3.0; 8]);
    }

    #[test]
    fn binary_two_slices() {
        let a = vec![1.0f64, 2.0];
        let b = vec![10.0f64, 20.0];
        let mut out = vec![0.0f64; 2];
        let v = full(2);
        exec_binary::<f64>(
            &mut out,
            &v,
            BinIn::Slice(&a, v.clone()),
            BinIn::Slice(&b, v.clone()),
            binary_fn::<f64>(Opcode::Multiply),
            serial(),
        );
        assert_eq!(out, vec![10.0, 40.0]);
    }

    #[test]
    fn non_commutative_right_alias() {
        // out = b_slice - out  (out aliases the RIGHT operand)
        let mut out = vec![1.0f64, 2.0];
        let a = vec![10.0f64, 10.0];
        let v = full(2);
        exec_binary::<f64>(
            &mut out,
            &v,
            BinIn::Slice(&a, v.clone()),
            BinIn::Aliased(v.clone()),
            binary_fn::<f64>(Opcode::Subtract),
            serial(),
        );
        assert_eq!(out, vec![9.0, 8.0]);
    }

    #[test]
    fn hazardous_overlap_is_defused() {
        // out view = buf[1..4], in view = buf[0..3]: shifted self-overlap.
        // Naively in-place this reads clobbered data; defusing copies first.
        let mut buf = vec![1.0f64, 2.0, 3.0, 4.0];
        let base = Shape::vector(4);
        let ov = ViewGeom::from_slices(&base, &[Slice::range(1, 4)]).unwrap();
        let iv = ViewGeom::from_slices(&base, &[Slice::range(0, 3)]).unwrap();
        exec_unary::<f64>(
            &mut buf,
            &ov,
            BinIn::Aliased(iv),
            unary_fn::<f64>(Opcode::Identity),
            serial(),
        );
        assert_eq!(buf, vec![1.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = WorkerPool::new(4);
        // Low threshold so small inputs still exercise the sharded path.
        let par = ParCtx {
            pool: Some(&pool),
            threshold: 8,
        };
        fn mk<'a>(kind: usize, s: &'a [f64], v: &ViewGeom) -> BinIn<'a, f64> {
            match kind {
                0 => BinIn::Const(3.0),
                1 => BinIn::Slice(s, v.clone()),
                _ => BinIn::Aliased(v.clone()),
            }
        }
        let n = 1000;
        for (a_kind, b_kind) in [(0, 1), (1, 0), (1, 1), (2, 1), (1, 2)] {
            let v = full(n);
            let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
            let f = binary_fn::<f64>(Opcode::Add);
            let mut seq: Vec<f64> = data.clone();
            exec_binary::<f64>(
                &mut seq,
                &v,
                mk(a_kind, &data, &v),
                mk(b_kind, &data, &v),
                f,
                serial(),
            );
            let mut par_out: Vec<f64> = data.clone();
            exec_binary::<f64>(
                &mut par_out,
                &v,
                mk(a_kind, &data, &v),
                mk(b_kind, &data, &v),
                f,
                par,
            );
            assert_eq!(seq, par_out, "kinds {a_kind}/{b_kind} diverged");
        }
    }

    #[test]
    fn unary_tables() {
        assert_eq!(unary_fn::<f64>(Opcode::Sqrt)(9.0), 3.0);
        assert_eq!(unary_fn::<f64>(Opcode::Floor)(1.7), 1.0);
        assert_eq!(unary_fn::<f64>(Opcode::Rint)(2.5), 2.0); // half-to-even
        assert_eq!(unary_fn::<f64>(Opcode::Rint)(3.5), 4.0);
        assert_eq!(unary_fn::<i32>(Opcode::Absolute)(-4), 4);
    }

    #[test]
    fn compare_and_predicate_tables() {
        assert!(compare_fn::<i64>(Opcode::Less)(1, 2));
        assert!(!compare_fn::<f64>(Opcode::Equal)(f64::NAN, f64::NAN));
        assert!(predicate_fn::<f64>(Opcode::IsNan)(f64::NAN));
        assert!(!predicate_fn::<i32>(Opcode::IsNan)(3));
        assert!(predicate_fn::<f32>(Opcode::IsInf)(f32::INFINITY));
    }

    #[test]
    fn atan2() {
        let f = binary_fn::<f64>(Opcode::Arctan2);
        assert!((f(1.0, 1.0) - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }
}
