//! # bh-vm — the byte-code virtual machine
//!
//! Executes descriptive vector byte-code (`bh-ir`) over the tensor
//! substrate (`bh-tensor`), standing in for the Bohrium runtime and its
//! OpenCL/CPU backends (see DESIGN.md §2 for the substitution argument).
//!
//! Alongside producing results, the VM meters the quantities the paper's
//! transformations optimise — kernel launches, memory traffic and flops —
//! so every experiment can report model counters next to wall-clock time.
//!
//! # Example
//!
//! Execute Listing 2 unoptimised vs. Listing 3 optimised and compare both
//! results and costs:
//!
//! ```
//! use bh_ir::parse_program;
//! use bh_vm::Vm;
//!
//! let unopt = parse_program(
//!     "BH_IDENTITY a0 [0:10:1] 0\n\
//!      BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
//!      BH_SYNC a0\n")?;
//! let opt = parse_program(
//!     "BH_IDENTITY a0 [0:10:1] 0\n\
//!      BH_ADD a0 a0 3\n\
//!      BH_SYNC a0\n")?;
//!
//! let mut vm1 = Vm::new();
//! vm1.run(&unopt)?;
//! let mut vm2 = Vm::new();
//! vm2.run(&opt)?;
//!
//! assert_eq!(vm1.read_by_name(&unopt, "a0")?, vm2.read_by_name(&opt, "a0")?);
//! assert!(vm2.stats().kernels < vm1.stats().kernels);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

mod eltops;
mod error;
mod exec;
mod fusion;
mod machine;
mod pool;
mod stats;

pub use eltops::VmElement;
pub use error::VmError;
pub use machine::{Engine, Vm};
pub use pool::{PooledVm, VmPool, WorkerPool};
pub use stats::ExecStats;

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::{parse_program, parse_program_with, ParseOptions};
    use bh_tensor::{DType, Shape, Tensor};

    fn run_text(text: &str) -> (bh_ir::Program, Vm) {
        let p = parse_program(text).unwrap();
        let mut vm = Vm::new();
        vm.run(&p).unwrap();
        (p, vm)
    }

    #[test]
    fn listing2_produces_threes() {
        let (p, vm) = run_text(
            "BH_IDENTITY a0 [0:10:1] 0\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_SYNC a0 [0:10:1]\n",
        );
        assert_eq!(
            vm.read_by_name(&p, "a0").unwrap().to_f64_vec(),
            vec![3.0; 10]
        );
        assert_eq!(vm.stats().instructions, 5);
        assert_eq!(vm.stats().kernels, 4);
        assert_eq!(vm.stats().syncs, 1);
    }

    #[test]
    fn listing5_power_chain_computes_x_to_10() {
        let (p, vm) = run_text(
            "BH_IDENTITY a0 [0:4:1] 2\n\
             BH_MULTIPLY a1 [0:4:1] a0 [0:4:1] a0 [0:4:1]\n\
             BH_MULTIPLY a1 a1 a1\n\
             BH_MULTIPLY a1 a1 a1\n\
             BH_MULTIPLY a1 a1 a0\n\
             BH_MULTIPLY a1 a1 a0\n\
             BH_SYNC a1\n",
        );
        assert_eq!(
            vm.read_by_name(&p, "a1").unwrap().to_f64_vec(),
            vec![1024.0; 4]
        );
    }

    #[test]
    fn power_opcode_matches_chain() {
        let (p, vm) = run_text(
            "BH_IDENTITY x [0:4:1] 3\n\
             BH_POWER y [0:4:1] x [0:4:1] 5\n\
             BH_SYNC y\n",
        );
        assert_eq!(
            vm.read_by_name(&p, "y").unwrap().to_f64_vec(),
            vec![243.0; 4]
        );
    }

    #[test]
    fn sliced_updates_touch_only_the_view() {
        let (p, vm) = run_text(
            "BH_IDENTITY a0 [0:10:1] 1\n\
             BH_ADD a0 [0:10:2] a0 [0:10:2] 10\n\
             BH_SYNC a0\n",
        );
        assert_eq!(
            vm.read_by_name(&p, "a0").unwrap().to_f64_vec(),
            vec![11.0, 1.0, 11.0, 1.0, 11.0, 1.0, 11.0, 1.0, 11.0, 1.0]
        );
    }

    #[test]
    fn reversed_view_copy() {
        let (p, vm) = run_text(
            ".base a f64[4] input\n\
             .base b f64[4]\n\
             BH_IDENTITY b a [::-1]\n\
             BH_SYNC b\n",
        );
        // bind happened implicitly as zeros; rebind with data and re-run:
        let mut vm2 = Vm::new();
        vm2.bind_by_name(&p, "a", &Tensor::from_vec(vec![1.0f64, 2.0, 3.0, 4.0]))
            .unwrap();
        vm2.run(&p).unwrap();
        assert_eq!(
            vm2.read_by_name(&p, "b").unwrap().to_f64_vec(),
            vec![4.0, 3.0, 2.0, 1.0]
        );
        let _ = vm;
    }

    #[test]
    fn comparison_writes_bools() {
        let (p, vm) = run_text(
            ".base x f64[4]\n.base m bool[4]\n\
             BH_RANGE x\n\
             BH_GREATER m x 1.5\n\
             BH_SYNC m\n",
        );
        let m = vm.read_by_name(&p, "m").unwrap();
        assert_eq!(m.dtype(), DType::Bool);
        assert_eq!(m.to_f64_vec(), vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn identity_casts_between_dtypes() {
        let (p, vm) = run_text(
            ".base x i32[3]\n.base y f64[3]\n\
             BH_IDENTITY x 7\n\
             BH_IDENTITY y x\n\
             BH_SYNC y\n",
        );
        let y = vm.read_by_name(&p, "y").unwrap();
        assert_eq!(y.dtype(), DType::Float64);
        assert_eq!(y.to_f64_vec(), vec![7.0; 3]);
    }

    #[test]
    fn reduction_and_scan() {
        let (p, vm) = run_text(
            ".base m f64[2,3]\n.base s f64[2]\n.base c f64[2,3]\n\
             BH_RANGE m\n\
             BH_ADD_REDUCE s m 1\n\
             BH_ADD_ACCUMULATE c m 1\n\
             BH_SYNC s\nBH_SYNC c\n",
        );
        // m = [[0,1,2],[3,4,5]]
        assert_eq!(
            vm.read_by_name(&p, "s").unwrap().to_f64_vec(),
            vec![3.0, 12.0]
        );
        assert_eq!(
            vm.read_by_name(&p, "c").unwrap().to_f64_vec(),
            vec![0.0, 1.0, 3.0, 3.0, 7.0, 12.0]
        );
    }

    #[test]
    fn max_reduce_handles_negatives() {
        let p = parse_program(
            ".base x f64[4] input\n.base m f64[]\n\
             BH_MAXIMUM_REDUCE m x 0\n\
             BH_SYNC m\n",
        )
        .unwrap();
        let mut vm = Vm::new();
        vm.bind_by_name(&p, "x", &Tensor::from_vec(vec![-5.0f64, -2.0, -9.0, -3.0]))
            .unwrap();
        vm.run(&p).unwrap();
        assert_eq!(vm.read_by_name(&p, "m").unwrap().to_f64_vec(), vec![-2.0]);
    }

    #[test]
    fn matmul_solve_inverse_opcodes() {
        let p = parse_program(
            ".base a f64[2,2] input\n.base b f64[2] input\n\
             .base inv f64[2,2]\n.base x1 f64[2]\n.base x2 f64[2]\n\
             BH_INVERSE inv a\n\
             BH_MATMUL x1 inv b\n\
             BH_SOLVE x2 a b\n\
             BH_SYNC x1\nBH_SYNC x2\n",
        )
        .unwrap();
        let mut vm = Vm::new();
        let a = Tensor::from_shape_vec(Shape::matrix(2, 2), vec![2.0f64, 1.0, 1.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3.0f64, 5.0]);
        vm.bind_by_name(&p, "a", &a).unwrap();
        vm.bind_by_name(&p, "b", &b).unwrap();
        vm.run(&p).unwrap();
        let x1 = vm.read_by_name(&p, "x1").unwrap();
        let x2 = vm.read_by_name(&p, "x2").unwrap();
        // Eq. 2: both strategies produce the same x.
        assert!(x1.allclose(&x2, 1e-12));
        assert!(x1.allclose(&Tensor::from_vec(vec![0.8f64, 1.4]), 1e-12));
    }

    #[test]
    fn free_releases_memory() {
        let (p, vm) = run_text(
            "BH_IDENTITY a0 [0:4:1] 1\n\
             BH_FREE a0\n",
        );
        assert!(vm.read_by_name(&p, "a0").is_err());
    }

    #[test]
    fn fused_engine_matches_naive() {
        let text = "\
BH_IDENTITY a0 [0:1000:1] 1\n\
BH_ADD a0 a0 2\n\
BH_MULTIPLY a0 a0 a0\n\
BH_SUBTRACT a0 a0 5\n\
BH_SYNC a0\n";
        let p = parse_program(text).unwrap();
        let mut naive = Vm::new();
        naive.run(&p).unwrap();
        let mut fused = Vm::with_engine(Engine::Fusing { block: 64 });
        fused.run(&p).unwrap();
        assert_eq!(
            naive.read_by_name(&p, "a0").unwrap(),
            fused.read_by_name(&p, "a0").unwrap()
        );
        // 4 kernel launches collapse into 1 fused group + sync accounting.
        assert_eq!(naive.stats().kernels, 4);
        assert_eq!(fused.stats().fused_groups, 1);
        assert!(fused.stats().kernels < naive.stats().kernels);
    }

    #[test]
    fn fused_engine_handles_power_chain() {
        let text = "\
BH_IDENTITY a0 [0:257:1] 2\n\
BH_MULTIPLY a1 [0:257:1] a0 a0\n\
BH_MULTIPLY a1 a1 a1\n\
BH_MULTIPLY a1 a1 a1\n\
BH_MULTIPLY a1 a1 a0\n\
BH_MULTIPLY a1 a1 a0\n\
BH_SYNC a1\n";
        let p = parse_program(text).unwrap();
        let mut fused = Vm::with_engine(Engine::Fusing { block: 100 });
        fused.run(&p).unwrap();
        assert_eq!(
            fused.read_by_name(&p, "a1").unwrap().to_f64_vec(),
            vec![1024.0; 257]
        );
    }

    #[test]
    fn parallel_threads_match_sequential() {
        let n = 1 << 17;
        let text = format!(
            "BH_IDENTITY a0 [0:{n}:1] 1.5\n\
             BH_MULTIPLY a0 a0 2\n\
             BH_ADD a0 a0 1\n\
             BH_SYNC a0\n"
        );
        let p = parse_program(&text).unwrap();
        let mut seq = Vm::new();
        seq.run(&p).unwrap();
        let mut par = Vm::new();
        par.set_threads(4);
        par.run(&p).unwrap();
        assert_eq!(
            seq.read_by_name(&p, "a0").unwrap(),
            par.read_by_name(&p, "a0").unwrap()
        );
    }

    #[test]
    fn parallel_fused_groups_match_serial_and_naive() {
        // Mixed chain over full views: arithmetic, compare into a bool
        // base, cast back — everything the step compiler handles — small
        // arrays with a forced-low threshold so sharding really engages.
        let text = "\
.base x f64[100]\n.base y f64[100]\n.base m bool[100]\n.base z f64[100]\n\
BH_IDENTITY x 1.5\n\
BH_MULTIPLY y x 3\n\
BH_ADD y y x\n\
BH_GREATER m y 5\n\
BH_IDENTITY z m\n\
BH_ADD z z y\n\
BH_SYNC z\nBH_SYNC m\n";
        let p = parse_program(text).unwrap();
        let mut naive = Vm::new();
        naive.run(&p).unwrap();
        let mut serial = Vm::with_engine(Engine::Fusing { block: 16 });
        serial.run(&p).unwrap();
        let mut par = Vm::with_engine(Engine::Fusing { block: 16 });
        par.set_threads(4).set_par_threshold(1);
        par.run(&p).unwrap();
        for name in ["z", "m"] {
            let a = naive.read_by_name(&p, name).unwrap();
            let b = serial.read_by_name(&p, name).unwrap();
            let c = par.read_by_name(&p, name).unwrap();
            assert_eq!(a, b, "{name}: serial fused diverged from naive");
            assert_eq!(b, c, "{name}: parallel fused diverged from serial fused");
        }
        // Thread count must not change the cost counters (only the purely
        // observational shard count may differ).
        let mut s = *serial.stats();
        let mut q = *par.stats();
        assert!(q.par_shards > 0, "parallel engine must have sharded");
        s.par_shards = 0;
        q.par_shards = 0;
        assert_eq!(s, q);
    }

    #[test]
    fn unfused_slice_ops_shard_across_the_pool() {
        // Shifted 1-D slices are contiguous but never fuse (partial
        // views): the naive engine must still shard them — and the
        // results must match the serial run exactly.
        let n = 4096;
        let text = format!(
            ".base g f64[{n}]\n.base s f64[{n}]\n\
             BH_RANGE g\n\
             BH_IDENTITY s g\n\
             BH_IDENTITY s[1:{i}:1] g[0:{lim}:1]\n\
             BH_ADD s[1:{i}:1] s[1:{i}:1] g[2:{n}:1]\n\
             BH_MULTIPLY s[1:{i}:1] s[1:{i}:1] 0.5\n\
             BH_SYNC s\n",
            i = n - 1,
            lim = n - 2,
        );
        let p = parse_program(&text).unwrap();
        let mut serial = Vm::new();
        serial.run(&p).unwrap();
        let mut par = Vm::new();
        par.set_threads(4).set_par_threshold(1);
        par.run(&p).unwrap();
        assert!(par.stats().par_shards > 0, "slice ops must have sharded");
        assert_eq!(serial.stats().par_shards, 0);
        assert_eq!(
            serial.read_by_name(&p, "s").unwrap(),
            par.read_by_name(&p, "s").unwrap()
        );
    }

    #[test]
    fn fused_group_with_input_binding_is_cow_safe() {
        // The bound input is written inside the fused group; the caller's
        // tensor must keep its original values (copy-on-write) while the
        // parallel engine sees the private copy.
        let p = parse_program(
            ".base x f64[64] input\n\
             BH_ADD x x 1\n\
             BH_MULTIPLY x x 2\n\
             BH_SYNC x\n",
        )
        .unwrap();
        let input = Tensor::from_vec(vec![1.0f64; 64]);
        let mut vm = Vm::with_engine(Engine::Fusing { block: 8 });
        vm.set_threads(3).set_par_threshold(1);
        vm.bind_by_name(&p, "x", &input).unwrap();
        vm.run(&p).unwrap();
        assert_eq!(
            vm.read_by_name(&p, "x").unwrap().to_f64_vec(),
            vec![4.0; 64]
        );
        assert_eq!(input.to_f64_vec(), vec![1.0; 64]);
    }

    #[test]
    fn fused_stats_count_instructions_once() {
        // 4 fusable byte-codes over 1000 elements with block 64: the
        // group is one kernel and each instruction counts exactly once,
        // regardless of how many blocks the chain walks.
        let p = parse_program(
            "BH_IDENTITY a0 [0:1000:1] 1\n\
             BH_ADD a0 a0 2\n\
             BH_MULTIPLY a0 a0 a0\n\
             BH_SUBTRACT a0 a0 5\n\
             BH_SYNC a0\n",
        )
        .unwrap();
        let mut vm = Vm::with_engine(Engine::Fusing { block: 64 });
        vm.run(&p).unwrap();
        let s = vm.stats();
        assert_eq!(s.fused_groups, 1);
        assert_eq!(s.kernels, 1); // the whole group is one kernel
        assert_eq!(s.instructions, 5); // 4 element-wise + 1 sync
                                       // Traffic scales with the full array per instruction: identity
                                       // writes 8000B; add/sub read+write 8000B each; multiply reads
                                       // 16000B writes 8000B.
        assert_eq!(s.bytes_written, 4 * 8000);
        assert_eq!(s.bytes_read, 4 * 8000);
    }

    #[test]
    fn fused_chain_feeding_reduction_is_one_kernel() {
        let text = ".base x f64[1000]\n.base s f64[]\n\
                    BH_IDENTITY x 2\n\
                    BH_ADD x x 1\n\
                    BH_MULTIPLY x x x\n\
                    BH_ADD_REDUCE s x 0\n\
                    BH_SYNC s\n";
        let p = parse_program(text).unwrap();
        let mut naive = Vm::new();
        naive.run(&p).unwrap();
        let want = naive.read_by_name(&p, "s").unwrap();
        assert_eq!(want.to_f64_vec(), vec![9000.0]);
        assert_eq!(naive.stats().fused_reductions, 0);

        let mut vm = Vm::with_engine(Engine::Fusing { block: 64 });
        vm.run(&p).unwrap();
        let s = vm.stats();
        // Chain + reduction execute as one kernel, counters analytic:
        // 3 element-wise + 1 reduction + 1 sync instructions.
        assert_eq!(s.kernels, 1);
        assert_eq!(s.fused_groups, 1);
        assert_eq!(s.fused_reductions, 1);
        assert_eq!(s.instructions, naive.stats().instructions);
        assert_eq!(s.bytes_read, naive.stats().bytes_read);
        assert_eq!(s.bytes_written, naive.stats().bytes_written);
        assert_eq!(s.flops, naive.stats().flops);
        assert_eq!(vm.read_by_name(&p, "s").unwrap(), want);
    }

    #[test]
    fn fused_reduction_matches_unfused_at_every_thread_count() {
        // Long enough to span several canonical partial blocks; the float
        // sum must come out bit-identical on every engine × thread count.
        let n = 20_000;
        let text = format!(
            ".base x f64[{n}]\n.base s f64[]\n\
             BH_RANGE x\n\
             BH_MULTIPLY x x 0.001\n\
             BH_ADD x x 1\n\
             BH_ADD_REDUCE s x 0\n\
             BH_SYNC s\n"
        );
        let p = parse_program(&text).unwrap();
        let mut reference: Option<Tensor> = None;
        for engine in [Engine::Naive, Engine::Fusing { block: 512 }] {
            for threads in [1usize, 2, 3, 4] {
                let mut vm = Vm::with_engine(engine);
                vm.set_threads(threads).set_par_threshold(1);
                vm.run(&p).unwrap();
                let got = vm.read_by_name(&p, "s").unwrap();
                match &reference {
                    None => reference = Some(got),
                    Some(want) => {
                        assert_eq!(&got, want, "engine {engine:?} × {threads} threads diverged");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_reduction_and_scan_record_shards() {
        let n = 50_000;
        let text = format!(
            ".base x f64[{n}] input\n.base s f64[]\n.base c f64[{n}]\n\
             BH_ADD_REDUCE s x 0\n\
             BH_ADD_ACCUMULATE c x 0\n\
             BH_SYNC s\nBH_SYNC c\n"
        );
        let p = parse_program(&text).unwrap();
        let x = Tensor::from_vec((0..n).map(|i| i as f64 * 0.5).collect::<Vec<_>>());
        let mut serial = Vm::new();
        serial.bind_by_name(&p, "x", &x).unwrap();
        serial.run(&p).unwrap();
        assert_eq!(serial.stats().reduce_shards, 0);

        let mut par = Vm::new();
        par.set_threads(4).set_par_threshold(1);
        par.bind_by_name(&p, "x", &x).unwrap();
        par.run(&p).unwrap();
        assert!(
            par.stats().reduce_shards > 0,
            "sharded folds must be observable: {}",
            par.stats()
        );
        // Observability only — results and analytic counters unchanged.
        assert_eq!(par.stats().instructions, serial.stats().instructions);
        assert_eq!(par.stats().kernels, serial.stats().kernels);
        assert_eq!(
            par.read_by_name(&p, "s").unwrap(),
            serial.read_by_name(&p, "s").unwrap()
        );
        assert_eq!(
            par.read_by_name(&p, "c").unwrap(),
            serial.read_by_name(&p, "c").unwrap()
        );
    }

    #[test]
    fn strided_view_reduction_avoids_materialise_and_matches() {
        // Reduce every other element; direct-borrow path handles the
        // strided lane without a copy, parallel or not.
        let text = ".base x i64[101] input\n.base s i64[]\n\
                    BH_ADD_REDUCE s x [0:101:2] 0\n\
                    BH_SYNC s\n";
        let p = parse_program(text).unwrap();
        let x = Tensor::from_vec((0..101i64).collect::<Vec<_>>());
        let want: i64 = (0..101i64).step_by(2).sum();
        for threads in [1usize, 4] {
            let mut vm = Vm::new();
            vm.set_threads(threads).set_par_threshold(1);
            vm.bind_by_name(&p, "x", &x).unwrap();
            vm.run(&p).unwrap();
            assert_eq!(
                vm.read_by_name(&p, "s").unwrap().to_f64_vec(),
                vec![want as f64],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn bool_reduction_still_widens_to_i64() {
        let text = ".base b bool[6] input\n.base s i64[]\n\
                    BH_ADD_REDUCE s b 0\n\
                    BH_SYNC s\n";
        let p = parse_program(text).unwrap();
        let b = Tensor::from_vec(vec![true, false, true, true, false, true]);
        let mut vm = Vm::new();
        vm.bind_by_name(&p, "b", &b).unwrap();
        vm.run(&p).unwrap();
        let s = vm.read_by_name(&p, "s").unwrap();
        assert_eq!(s.dtype(), DType::Int64);
        assert_eq!(s.to_f64_vec(), vec![4.0]);
    }

    #[test]
    fn in_place_scan_keeps_materialise_semantics() {
        // x = cumsum(x): output register aliases the input; the engine
        // must snapshot the input rather than read half-written data.
        let text = ".base x f64[5] input\nBH_ADD_ACCUMULATE x x 0\nBH_SYNC x\n";
        let p = parse_program(text).unwrap();
        let x = Tensor::from_vec(vec![1.0f64, 2.0, 3.0, 4.0, 5.0]);
        let mut vm = Vm::new();
        vm.set_threads(4).set_par_threshold(1);
        vm.bind_by_name(&p, "x", &x).unwrap();
        vm.run(&p).unwrap();
        assert_eq!(
            vm.read_by_name(&p, "x").unwrap().to_f64_vec(),
            vec![1.0, 3.0, 6.0, 10.0, 15.0]
        );
    }

    #[test]
    fn invalid_program_rejected_before_execution() {
        let p = parse_program("BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n").unwrap();
        let mut vm = Vm::new();
        assert!(matches!(vm.run(&p), Err(VmError::Invalid(_))));
    }

    #[test]
    fn bind_validates_shape_and_dtype() {
        let p = parse_program(".base x f64[4] input\nBH_SYNC x\n").unwrap();
        let mut vm = Vm::new();
        assert!(vm
            .bind_by_name(&p, "x", &Tensor::zeros(DType::Float32, Shape::vector(4)))
            .is_err());
        assert!(vm
            .bind_by_name(&p, "x", &Tensor::zeros(DType::Float64, Shape::vector(5)))
            .is_err());
        assert!(vm
            .bind_by_name(&p, "x", &Tensor::zeros(DType::Float64, Shape::vector(4)))
            .is_ok());
        assert!(vm
            .bind_by_name(
                &p,
                "nosuch",
                &Tensor::zeros(DType::Float64, Shape::vector(4))
            )
            .is_err());
    }

    #[test]
    fn stats_track_bytes_and_flops() {
        let (_, vm) = run_text(
            "BH_IDENTITY a0 [0:100:1] 1\n\
             BH_ADD a0 a0 1\n\
             BH_SYNC a0\n",
        );
        let s = vm.stats();
        // identity writes 100 f64 = 800B; add reads 800B writes 800B.
        assert_eq!(s.bytes_written, 1600);
        assert_eq!(s.bytes_read, 800);
        assert!(s.flops >= 200);
        assert_eq!(s.elements_written, 200);
    }

    #[test]
    fn elided_views_default_shape() {
        let p = parse_program_with(
            "BH_IDENTITY a0 0\nBH_ADD a0 a0 3\nBH_SYNC a0\n",
            &ParseOptions {
                default_dtype: DType::Float64,
                default_shape: Some(Shape::vector(16)),
            },
        )
        .unwrap();
        let mut vm = Vm::new();
        vm.run(&p).unwrap();
        assert_eq!(
            vm.read_by_name(&p, "a0").unwrap().to_f64_vec(),
            vec![3.0; 16]
        );
    }

    #[test]
    fn reset_clears_state() {
        let (p, mut vm) = run_text("BH_IDENTITY a0 [0:4:1] 1\nBH_SYNC a0\n");
        assert!(vm.read_by_name(&p, "a0").is_ok());
        vm.reset();
        assert!(vm.read_by_name(&p, "a0").is_err());
        assert_eq!(vm.stats().instructions, 0);
    }

    #[test]
    fn recycled_vm_reruns_cleanly() {
        let (p, mut vm) = run_text("BH_IDENTITY a0 [0:4:1] 1\nBH_ADD a0 a0 2\nBH_SYNC a0\n");
        let first = vm.read_by_name(&p, "a0").unwrap();
        let kernels = vm.stats().kernels;
        vm.recycle();
        assert_eq!(vm.stats().kernels, 0);
        assert!(vm.read_by_name(&p, "a0").is_err());
        vm.run(&p).unwrap();
        assert_eq!(vm.read_by_name(&p, "a0").unwrap(), first);
        assert_eq!(vm.stats().kernels, kernels);
    }

    #[test]
    fn engine_can_be_switched_between_runs() {
        let p = parse_program(
            "BH_IDENTITY a0 [0:512:1] 1\nBH_ADD a0 a0 2\nBH_MULTIPLY a0 a0 a0\nBH_SYNC a0\n",
        )
        .unwrap();
        let mut vm = Vm::new();
        vm.run(&p).unwrap();
        let naive = vm.read_by_name(&p, "a0").unwrap();
        vm.recycle();
        vm.set_engine(Engine::Fusing { block: 64 });
        assert_eq!(vm.engine(), Engine::Fusing { block: 64 });
        vm.run(&p).unwrap();
        assert_eq!(vm.read_by_name(&p, "a0").unwrap(), naive);
        assert!(vm.stats().fused_groups >= 1);
    }

    #[test]
    fn broadcast_vector_input() {
        let p = parse_program(
            ".base row f64[3] input\n.base m f64[2,3]\n\
             BH_IDENTITY m 0\n\
             BH_ADD m m row\n\
             BH_SYNC m\n",
        )
        .unwrap();
        let mut vm = Vm::new();
        vm.bind_by_name(&p, "row", &Tensor::from_vec(vec![1.0f64, 2.0, 3.0]))
            .unwrap();
        vm.run(&p).unwrap();
        assert_eq!(
            vm.read_by_name(&p, "m").unwrap().to_f64_vec(),
            vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn unary_math_opcodes() {
        let (p, vm) = run_text(
            ".base x f64[3]\n.base y f64[3]\n\
             BH_IDENTITY x 4\n\
             BH_SQRT y x\n\
             BH_SYNC y\n",
        );
        assert_eq!(vm.read_by_name(&p, "y").unwrap().to_f64_vec(), vec![2.0; 3]);
    }

    #[test]
    fn random_is_deterministic() {
        let text = ".base r f64[32]\nBH_RANDOM r 99\nBH_SYNC r\n";
        let (p1, vm1) = run_text(text);
        let (p2, vm2) = run_text(text);
        assert_eq!(
            vm1.read_by_name(&p1, "r").unwrap(),
            vm2.read_by_name(&p2, "r").unwrap()
        );
    }

    #[test]
    fn transpose_opcode() {
        let p = parse_program(
            ".base a f64[2,3] input\n.base t f64[3,2]\n\
             BH_TRANSPOSE t a\n\
             BH_SYNC t\n",
        )
        .unwrap();
        let mut vm = Vm::new();
        let a = Tensor::from_shape_vec(Shape::matrix(2, 3), vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0])
            .unwrap();
        vm.bind_by_name(&p, "a", &a).unwrap();
        vm.run(&p).unwrap();
        let t = vm.read_by_name(&p, "t").unwrap();
        assert_eq!(t.get(&[2, 0]).unwrap().as_f64(), 3.0);
        assert_eq!(t.get(&[0, 1]).unwrap().as_f64(), 4.0);
    }
}
