//! The byte-code virtual machine.
//!
//! Stands in for the Bohrium runtime + backend: it owns the base-array
//! memory, executes instruction streams and counts the cost quantities
//! (kernel launches, traffic, flops) the transformation layer is supposed
//! to reduce. Two engines are provided:
//!
//! * **Naive** — one kernel launch and one full-array pass per byte-code.
//!   This is the execution regime in which the paper's rewrites pay off.
//! * **Fusing** — contracts runs of element-wise byte-codes over identical
//!   full views and executes them block-by-block, modelling Bohrium's JIT
//!   kernel fusion ("loop-fusion-like contractions of byte-codes", §2).

use crate::error::VmError;
use crate::exec::{self, BinIn, ParCtx};
use crate::fusion::{self, FusedInput, FusedInstr};
use crate::pool::WorkerPool;
use crate::stats::ExecStats;
use bh_ir::{Instruction, OpKind, Opcode, Operand, Program, Reg, TypeRule, ViewRef};
use bh_linalg as linalg;
use bh_tensor::kernels::{self, RangeExecutor};
use bh_tensor::{with_dtype, Buffer, DType, Element, Scalar, Shape, Tensor, ViewGeom};
use std::sync::Arc;

use crate::eltops::VmElement;

/// Execution engine selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One kernel per byte-code (Bohrium without fusion).
    #[default]
    Naive,
    /// Contract element-wise runs and execute them in cache-sized blocks.
    Fusing {
        /// Elements per block; must be non-zero. 4096 doubles ≈ 32 KiB,
        /// i.e. L1-resident.
        block: usize,
    },
}

/// The virtual machine.
///
/// # Examples
///
/// Run the paper's Listing 2 and read the result:
///
/// ```
/// use bh_ir::parse_program;
/// use bh_vm::Vm;
///
/// let program = parse_program(
///     "BH_IDENTITY a0 [0:10:1] 0\n\
///      BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
///      BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
///      BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
///      BH_SYNC a0 [0:10:1]\n",
/// )?;
/// let mut vm = Vm::new();
/// vm.run(&program)?;
/// let a0 = vm.read_by_name(&program, "a0")?;
/// assert_eq!(a0.to_f64_vec(), vec![3.0; 10]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Vm {
    engine: Engine,
    workers: Option<Arc<WorkerPool>>,
    par_threshold: usize,
    bases: Vec<Option<Buffer>>,
    stats: ExecStats,
    count_kernel_per_instr: bool,
}

impl Default for Vm {
    fn default() -> Vm {
        Vm::new()
    }
}

impl Vm {
    /// A naive-engine, single-threaded VM.
    pub fn new() -> Vm {
        Vm::with_engine(Engine::Naive)
    }

    /// A VM with the given engine.
    pub fn with_engine(engine: Engine) -> Vm {
        Vm {
            engine,
            workers: None,
            par_threshold: exec::PAR_THRESHOLD,
            bases: Vec::new(),
            stats: ExecStats::new(),
            count_kernel_per_instr: true,
        }
    }

    /// Set the worker-thread count for large contiguous element-wise ops
    /// and fused groups.
    ///
    /// `threads > 1` spawns a persistent [`WorkerPool`] owned by this VM
    /// (reused across runs — no per-operation thread start-up). A pool of
    /// the same size already installed (by an earlier call or by
    /// [`Vm::set_worker_pool`]) is kept. `threads <= 1` removes the pool.
    pub fn set_threads(&mut self, threads: usize) -> &mut Self {
        let threads = threads.max(1);
        if threads == 1 {
            self.workers = None;
        } else if self.workers.as_ref().map(|w| w.threads()) != Some(threads) {
            self.workers = Some(Arc::new(WorkerPool::new(threads)));
        }
        self
    }

    /// Install a shared worker pool (e.g. one owned by a [`crate::VmPool`]
    /// so concurrent VMs share a single set of worker threads).
    pub fn set_worker_pool(&mut self, pool: Arc<WorkerPool>) -> &mut Self {
        self.workers = if pool.threads() > 1 { Some(pool) } else { None };
        self
    }

    /// Worker threads used for large element-wise operations (1 = serial).
    pub fn threads(&self) -> usize {
        self.workers.as_ref().map_or(1, |w| w.threads())
    }

    /// Set the minimum output-element count before operations shard
    /// across the worker pool (default `65536`). Mostly a tuning/test
    /// knob: equivalence suites lower it to force the parallel paths on
    /// small fixtures.
    pub fn set_par_threshold(&mut self, threshold: usize) -> &mut Self {
        self.par_threshold = threshold.max(1);
        self
    }

    /// Current parallel-dispatch threshold in elements.
    pub fn par_threshold(&self) -> usize {
        self.par_threshold
    }

    /// The engine in use.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Switch the execution engine. Takes effect on the next `run`;
    /// existing memory and counters are untouched, which lets a pooled VM
    /// be re-targeted between runs without reallocating.
    pub fn set_engine(&mut self, engine: Engine) -> &mut Self {
        self.engine = engine;
        self
    }

    /// Clear memory and counters but keep the base-slot allocation, so a
    /// pooled VM re-running same-shaped programs avoids re-growing its
    /// register table. Equivalent to [`Vm::reset`] observationally.
    pub fn recycle(&mut self) {
        for slot in &mut self.bases {
            *slot = None;
        }
        self.stats = ExecStats::new();
        self.count_kernel_per_instr = true;
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Clear memory and counters.
    pub fn reset(&mut self) {
        self.bases.clear();
        self.stats = ExecStats::new();
        self.count_kernel_per_instr = true;
    }

    /// Provide input data for a register declared `input`.
    ///
    /// # Errors
    ///
    /// [`VmError::Register`] when dtype or shape disagree with the
    /// declaration.
    pub fn bind(&mut self, program: &Program, reg: Reg, tensor: &Tensor) -> Result<(), VmError> {
        let decl = program.base(reg);
        if decl.dtype != tensor.dtype() {
            return Err(VmError::Register {
                reason: format!(
                    "binding `{}`: dtype {} does not match declared {}",
                    decl.name,
                    tensor.dtype(),
                    decl.dtype
                ),
            });
        }
        if &decl.shape != tensor.shape() {
            return Err(VmError::Register {
                reason: format!(
                    "binding `{}`: shape {} does not match declared {}",
                    decl.name,
                    tensor.shape(),
                    decl.shape
                ),
            });
        }
        self.ensure_slot(reg);
        self.bases[reg.index()] = Some(tensor.buffer().clone());
        Ok(())
    }

    /// [`Vm::bind`] by declared register name.
    ///
    /// # Errors
    ///
    /// [`VmError::Register`] for unknown names or mismatched data.
    pub fn bind_by_name(
        &mut self,
        program: &Program,
        name: &str,
        tensor: &Tensor,
    ) -> Result<(), VmError> {
        let reg = program.reg_by_name(name).ok_or_else(|| VmError::Register {
            reason: format!("no register named `{name}`"),
        })?;
        self.bind(program, reg, tensor)
    }

    /// Read a register's full base back as an owned tensor.
    ///
    /// # Errors
    ///
    /// [`VmError::Register`] when the register was never materialised (or
    /// was freed).
    pub fn read(&self, program: &Program, reg: Reg) -> Result<Tensor, VmError> {
        let decl = program.base(reg);
        let buffer = self
            .bases
            .get(reg.index())
            .and_then(|b| b.as_ref())
            .ok_or_else(|| VmError::Register {
                reason: format!("register `{}` holds no data", decl.name),
            })?;
        Tensor::from_parts(buffer.clone(), decl.shape.clone()).map_err(VmError::from)
    }

    /// [`Vm::read`] by declared register name.
    ///
    /// # Errors
    ///
    /// [`VmError::Register`] for unknown names or unmaterialised registers.
    pub fn read_by_name(&self, program: &Program, name: &str) -> Result<Tensor, VmError> {
        let reg = program.reg_by_name(name).ok_or_else(|| VmError::Register {
            reason: format!("no register named `{name}`"),
        })?;
        self.read(program, reg)
    }

    /// Verify and execute a program.
    ///
    /// # Errors
    ///
    /// [`VmError::Invalid`] if verification fails, otherwise any runtime
    /// failure.
    pub fn run(&mut self, program: &Program) -> Result<(), VmError> {
        let witness = bh_ir::verify(program).map_err(VmError::Invalid)?;
        self.run_verified(witness)
    }

    /// Execute a program that already carries a verification witness.
    ///
    /// This is the checked-once, trusted-forever hot path: the witness
    /// proves `bh_ir::verify` accepted the program, so no per-eval
    /// verification happens here. Debug builds re-verify behind a
    /// `debug_assert!` to catch witness misuse early; release builds
    /// trust the proof.
    ///
    /// # Errors
    ///
    /// Runtime failures only (unbound registers, allocation failures);
    /// never [`VmError::Invalid`].
    pub fn run_verified(&mut self, program: bh_ir::VerifiedProgram<'_>) -> Result<(), VmError> {
        debug_assert!(
            bh_ir::verify(program.program()).is_ok(),
            "VerifiedProgram witness no longer verifies — the program was \
             mutated after verification"
        );
        self.run_unchecked(program.program())
    }

    /// Execute without re-validating (hot path for benchmarks).
    ///
    /// # Errors
    ///
    /// Runtime failures only; malformed programs may panic instead.
    pub fn run_unchecked(&mut self, program: &Program) -> Result<(), VmError> {
        match self.engine {
            Engine::Naive => {
                for instr in program.instrs() {
                    self.exec_instr(program, instr, None)?;
                }
                Ok(())
            }
            Engine::Fusing { block } => self.run_fused(program, block.max(1)),
        }
    }

    fn run_fused(&mut self, program: &Program, block: usize) -> Result<(), VmError> {
        for group in fusion::find_groups(program) {
            match group {
                fusion::Group::Single(i) => {
                    self.exec_instr(program, &program.instrs()[i], None)?;
                }
                fusion::Group::Fused { range, nelem } => {
                    self.run_fused_group(program, range, nelem, block)?;
                }
                fusion::Group::FusedReduce {
                    range,
                    nelem,
                    reduce,
                } => {
                    self.run_fused_reduce_group(program, range, nelem, reduce, block)?;
                }
            }
        }
        Ok(())
    }

    /// Execute one fused group as a single kernel: compile every
    /// instruction into a range closure over raw base pointers, then walk
    /// `[0, nelem)` in cache-sized blocks applying the whole chain per
    /// block — sharded across the worker pool when the group is large
    /// enough. Shard boundaries are multiples of `block`, so the
    /// block-walk inside each shard is identical to the serial walk
    /// (DESIGN.md §10); results are bit-identical for every thread count.
    fn run_fused_group(
        &mut self,
        program: &Program,
        range: std::ops::Range<usize>,
        nelem: usize,
        block: usize,
    ) -> Result<(), VmError> {
        let instrs = fusion::classify_group(program, range.clone());
        let Some(steps) = self.prepare_fused_steps(program, &instrs) else {
            // Defensive fallback: interpret the group block-by-block.
            return self.run_fused_group_interpreted(program, range, nelem, block);
        };
        // Accounting is analytic and shard-independent: each instruction
        // counts once, traffic/flops scale with the full `nelem`, and the
        // group is one kernel — identical counters for 1 or N threads.
        self.stats.kernels += 1;
        self.stats.fused_groups += 1;
        self.account_fused_chain(&instrs, nelem);
        let run_chain = |lo: usize, hi: usize| {
            let mut b = lo;
            while b < hi {
                let e = (b + block).min(hi);
                for step in &steps {
                    step(b, e);
                }
                b = e;
            }
        };
        match self.workers.clone() {
            Some(pool) if pool.threads() > 1 && nelem >= self.par_threshold => {
                let shards = pool.run_ranges(nelem, block, &run_chain);
                if shards > 1 {
                    self.stats.par_shards += shards as u64;
                }
            }
            _ => run_chain(0, nelem),
        }
        Ok(())
    }

    /// Shared prologue of the compiled fused paths: materialise every
    /// touched base, CoW-unshare every *written* buffer **before** any
    /// pointer is captured (a copy taken after a read pointer would leave
    /// that reader staring at the stale allocation), then compile each
    /// instruction. Returns `None` when a step cannot be compiled —
    /// callers fall back to the interpreted group.
    fn prepare_fused_steps(
        &mut self,
        program: &Program,
        instrs: &[FusedInstr],
    ) -> Option<Vec<FusedStep>> {
        for fi in instrs {
            self.ensure_alloc(program, fi.out);
            for input in &fi.inputs {
                if let FusedInput::Reg(r) = input {
                    self.ensure_alloc(program, *r);
                }
            }
        }
        for fi in instrs {
            let buf = self.bases[fi.out.index()].as_mut().expect("just allocated");
            with_dtype!(fi.out_dtype, T, {
                let _ = buf.as_mut_slice::<T>().expect("dtype matches decl");
            });
        }
        let mut steps: Vec<FusedStep> = Vec::with_capacity(instrs.len());
        for fi in instrs {
            steps.push(self.compile_fused_step(fi)?);
        }
        Some(steps)
    }

    /// Analytic per-instruction accounting for a fused chain: one
    /// `instructions` tick per byte-code, traffic/flops scaled by the
    /// full `nelem` — the totals a naive run would report, independent of
    /// sharding (DESIGN.md §10).
    fn account_fused_chain(&mut self, instrs: &[FusedInstr], nelem: usize) {
        let n = nelem as u64;
        for fi in instrs {
            self.stats.instructions += 1;
            self.stats.elements_written += n;
            self.stats.bytes_written += n * fi.out_dtype.size_of() as u64;
            for input in &fi.inputs {
                if matches!(input, FusedInput::Reg(_)) {
                    self.stats.bytes_read += n * fi.in_dtype.size_of() as u64;
                }
            }
            self.stats.flops += fi.op.unit_cost() * n;
        }
    }

    /// Execute a fused element-wise chain *and* the single-lane reduction
    /// it feeds as one sharded kernel: each shard walks its canonical
    /// [`kernels::REDUCE_BLOCK`]-aligned range, applying the whole chain
    /// in engine-block-sized chunks and folding the freshly written
    /// reduction input into a per-block accumulator while it is still
    /// cache-resident. Block partials are combined left-to-right in block
    /// order (never arrival order), so the result is bit-identical to the
    /// unfused engines at every thread count — the same canonical combine
    /// tree as [`kernels::par_reduce_lane`] (DESIGN.md §11).
    fn run_fused_reduce_group(
        &mut self,
        program: &Program,
        range: std::ops::Range<usize>,
        nelem: usize,
        reduce: usize,
        block: usize,
    ) -> Result<(), VmError> {
        let rinstr = &program.instrs()[reduce];
        let in_ref = trusted(rinstr.operands[1].as_view(), "reduce input is a view");
        let out_ref = rinstr.out_view().expect("reductions have outputs");
        let out_geom = program.resolve_view(out_ref)?;
        let dtype = program.base(in_ref.reg).dtype;

        let instrs = fusion::classify_group(program, range.clone());
        self.ensure_alloc(program, in_ref.reg);
        self.ensure_alloc(program, out_ref.reg);
        let Some(steps) = self.prepare_fused_steps(program, &instrs) else {
            // Defensive fallback: run the chain interpreted, then the
            // reduction through its stand-alone (still parallel) path.
            self.run_fused_group_interpreted(program, range, nelem, block)?;
            return self.exec_instr(program, rinstr, None);
        };
        // Analytic accounting, shard-independent: chain instructions as in
        // `run_fused_group`, plus the reduction's own traffic/flops — the
        // per-instruction totals a naive run would report, under a single
        // kernel launch.
        self.stats.kernels += 1;
        self.stats.fused_groups += 1;
        self.stats.fused_reductions += 1;
        self.account_fused_chain(&instrs, nelem);
        let n = nelem as u64;
        self.stats.instructions += 1;
        self.stats.bytes_read += n * dtype.size_of() as u64;
        self.account_out(&out_geom, dtype);
        self.stats.flops += rinstr.op.unit_cost() * n;

        let fold = rinstr.op.fold_op().expect("reductions fold");
        let total_shards = with_dtype!(dtype, T, {
            let src = self
                .raw_const::<T>(in_ref.reg)
                .expect("allocated and dtype matches decl");
            let f = exec::binary_fn::<T>(fold);
            let init: T = exec::fold_init::<T>(fold);
            let nblocks = nelem.div_ceil(kernels::REDUCE_BLOCK);
            let mut partials = vec![init; nblocks];
            let pptr = RawMut(partials.as_mut_ptr());
            let run = |lo: usize, hi: usize| {
                // `lo` is a multiple of REDUCE_BLOCK (grain contract), so
                // partial boundaries are the canonical blocks regardless
                // of sharding; the chain is applied in engine-block-sized
                // chunks clipped to the canonical block (element-wise, so
                // chunking cannot change values).
                let mut cb = lo;
                while cb < hi {
                    let ce = (cb + kernels::REDUCE_BLOCK).min(hi);
                    let mut b = cb;
                    while b < ce {
                        let e = (b + block).min(ce);
                        for step in &steps {
                            step(b, e);
                        }
                        b = e;
                    }
                    let mut acc = init;
                    // SAFETY: same invariants as `compile_fused_step`
                    // (buffers un-shared before capture, disjoint shard
                    // ranges, program order within a shard); the fold
                    // reads elements the chain finished writing in this
                    // same range. Partial slots are unique per canonical
                    // block.
                    unsafe {
                        for k in cb..ce {
                            acc = f(acc, *src.get().add(k));
                        }
                        *pptr.get().add(cb / kernels::REDUCE_BLOCK) = acc;
                    }
                    cb = ce;
                }
            };
            let shards = match self.workers.clone() {
                Some(pool) if pool.threads() > 1 && nelem >= self.par_threshold => {
                    pool.run_ranges(nelem, kernels::REDUCE_BLOCK, &run)
                }
                _ => {
                    run(0, nelem);
                    1
                }
            };
            // Fixed-order combine: block order, never arrival order.
            let mut total = init;
            for p in partials {
                total = f(total, p);
            }
            let out_buf = self.bases[out_ref.reg.index()]
                .as_mut()
                .expect("just allocated");
            let out_slice = out_buf.as_mut_slice::<T>().expect("dtype matches decl");
            let o = out_geom.offset();
            assert!(o < out_slice.len(), "view escapes buffer");
            out_slice[o] = total;
            shards
        });
        if total_shards > 1 {
            self.stats.par_shards += total_shards as u64;
            self.stats.reduce_shards += total_shards as u64;
        }
        Ok(())
    }

    /// The seed's block-by-block interpreter for fused groups, kept as the
    /// fallback when a step cannot be compiled.
    fn run_fused_group_interpreted(
        &mut self,
        program: &Program,
        range: std::ops::Range<usize>,
        nelem: usize,
        block: usize,
    ) -> Result<(), VmError> {
        self.stats.kernels += 1;
        self.stats.fused_groups += 1;
        // Count each instruction once (not once per block); restore the
        // flag even if a block errors mid-group, so a pooled VM is not
        // left undercounting.
        self.count_kernel_per_instr = false;
        let result = (|| -> Result<(), VmError> {
            let mut lo = 0usize;
            while lo < nelem {
                let hi = (lo + block).min(nelem);
                for i in range.clone() {
                    self.exec_instr(program, &program.instrs()[i], Some((lo, hi)))?;
                }
                lo = hi;
            }
            Ok(())
        })();
        self.count_kernel_per_instr = true;
        result
    }

    /// Compile one fused instruction into a closure executing it over an
    /// element range `[lo, hi)` through raw base pointers.
    ///
    /// # Safety argument
    ///
    /// The closures dereference raw pointers captured from `self.bases`.
    /// This is sound because (a) every written buffer was un-shared
    /// before any pointer was taken and no buffer is reallocated until
    /// the group finishes, (b) fusability guarantees every view is the
    /// full contiguous `[0, nelem)` of its base, so concurrent shards
    /// touch pairwise-disjoint index ranges, and (c) within one shard the
    /// chain runs in program order, so a step's reads of an element
    /// happen before any later step's write of it — exactly the serial
    /// interpreter's order per element.
    fn compile_fused_step(&mut self, fi: &FusedInstr) -> Option<FusedStep> {
        let is_compare = fi.op.type_rule() == TypeRule::CompareLike;
        let is_cast = fi.op == Opcode::Identity && fi.in_dtype != fi.out_dtype;
        if is_compare {
            with_dtype!(fi.in_dtype, T, {
                let out = self.raw_mut::<bool>(fi.out)?;
                if fi.op.arity() == 1 {
                    let a = self.step_in::<T>(&fi.inputs[0])?;
                    Some(fused_pred_step(out, a, exec::predicate_fn::<T>(fi.op)))
                } else {
                    let a = self.step_in::<T>(&fi.inputs[0])?;
                    let b = self.step_in::<T>(&fi.inputs[1])?;
                    Some(fused_cmp_step(out, a, b, exec::compare_fn::<T>(fi.op)))
                }
            })
        } else if is_cast {
            with_dtype!(fi.in_dtype, I, {
                with_dtype!(fi.out_dtype, O, {
                    let out = self.raw_mut::<O>(fi.out)?;
                    match &fi.inputs[0] {
                        FusedInput::Const(c) => {
                            Some(fused_fill_step(out, c.cast(fi.out_dtype).get::<O>()))
                        }
                        FusedInput::Reg(r) => {
                            let a = self.raw_const::<I>(*r)?;
                            Some(fused_cast_step::<I, O>(out, a))
                        }
                    }
                })
            })
        } else {
            with_dtype!(fi.in_dtype, T, {
                let out = self.raw_mut::<T>(fi.out)?;
                if fi.op.arity() == 1 {
                    let a = self.step_in::<T>(&fi.inputs[0])?;
                    Some(fused_un_step(out, a, exec::unary_fn::<T>(fi.op)))
                } else {
                    let a = self.step_in::<T>(&fi.inputs[0])?;
                    let b = self.step_in::<T>(&fi.inputs[1])?;
                    // Direct dispatch (function *items*, not pointers) for
                    // the hot arithmetic ops, so each compiled loop
                    // inlines its operation — same trick as the
                    // interpreter's `call_bin!`.
                    macro_rules! bin {
                        ($f:expr) => {
                            Some(fused_bin_step(out, a, b, $f))
                        };
                    }
                    match fi.op {
                        Opcode::Add => bin!(T::vm_add),
                        Opcode::Subtract => bin!(T::vm_sub),
                        Opcode::Multiply => bin!(T::vm_mul),
                        Opcode::Divide => bin!(T::vm_div),
                        Opcode::Power => bin!(T::vm_pow),
                        Opcode::Mod => bin!(T::vm_mod),
                        Opcode::Maximum => bin!(T::vm_max),
                        Opcode::Minimum => bin!(T::vm_min),
                        Opcode::BitwiseAnd | Opcode::LogicalAnd => bin!(T::vm_and),
                        Opcode::BitwiseOr | Opcode::LogicalOr => bin!(T::vm_or),
                        Opcode::BitwiseXor | Opcode::LogicalXor => bin!(T::vm_xor),
                        Opcode::LeftShift => bin!(T::vm_shl),
                        Opcode::RightShift => bin!(T::vm_shr),
                        other => bin!(exec::binary_fn::<T>(other)),
                    }
                }
            })
        }
    }

    /// Raw mutable pointer to a register's (already unique) base storage.
    fn raw_mut<T: Element>(&mut self, reg: Reg) -> Option<RawMut<T>> {
        let buf = self.bases.get_mut(reg.index())?.as_mut()?;
        Some(RawMut(buf.as_mut_slice::<T>()?.as_mut_ptr()))
    }

    /// Raw const pointer to a register's base storage.
    fn raw_const<T: Element>(&self, reg: Reg) -> Option<RawConst<T>> {
        let buf = self.bases.get(reg.index())?.as_ref()?;
        Some(RawConst(buf.as_slice::<T>()?.as_ptr()))
    }

    /// Resolve a fused input to a pointer or an in-dtype constant.
    fn step_in<T: VmElement>(&self, input: &FusedInput) -> Option<StepIn<T>> {
        Some(match input {
            FusedInput::Const(c) => StepIn::Const(c.cast(T::DTYPE).get::<T>()),
            FusedInput::Reg(r) => StepIn::Ptr(self.raw_const::<T>(*r)?),
        })
    }

    fn ensure_slot(&mut self, reg: Reg) {
        if self.bases.len() <= reg.index() {
            self.bases.resize_with(reg.index() + 1, || None);
        }
    }

    fn ensure_alloc(&mut self, program: &Program, reg: Reg) {
        self.ensure_slot(reg);
        if self.bases[reg.index()].is_none() {
            let decl = program.base(reg);
            self.bases[reg.index()] = Some(Buffer::zeros(decl.dtype, decl.shape.nelem()));
        }
    }

    fn exec_instr(
        &mut self,
        program: &Program,
        instr: &Instruction,
        restrict: Option<(usize, usize)>,
    ) -> Result<(), VmError> {
        match instr.op.kind() {
            OpKind::System => self.exec_system(program, instr),
            OpKind::Generator => self.exec_generator(program, instr),
            OpKind::Reduction | OpKind::Scan => self.exec_reduce_scan(program, instr),
            OpKind::LinAlg => self.exec_linalg(program, instr),
            OpKind::ElementwiseUnary | OpKind::ElementwiseBinary => {
                self.exec_elementwise(program, instr, restrict)
            }
        }
    }

    fn exec_system(&mut self, program: &Program, instr: &Instruction) -> Result<(), VmError> {
        match instr.op {
            Opcode::Sync => {
                self.stats.instructions += 1;
                self.stats.syncs += 1;
                Ok(())
            }
            Opcode::Free => {
                self.stats.instructions += 1;
                if let Some(v) = instr.operands.first().and_then(|o| o.as_view()) {
                    let _ = program;
                    if let Some(slot) = self.bases.get_mut(v.reg.index()) {
                        *slot = None;
                    }
                }
                Ok(())
            }
            Opcode::NoOp => Ok(()),
            other => unreachable!("{other} is not a system op"),
        }
    }

    fn exec_generator(&mut self, program: &Program, instr: &Instruction) -> Result<(), VmError> {
        let out_ref = instr.out_view().expect("generators have outputs");
        let reg = out_ref.reg;
        let geom = program.resolve_view(out_ref)?;
        let dtype = program.base(reg).dtype;
        self.ensure_alloc(program, reg);
        self.note_kernel(1);
        self.account_out(&geom, dtype);
        self.stats.flops += instr.op.unit_cost() * geom.nelem() as u64;
        let buffer = self.bases[reg.index()].as_mut().expect("just allocated");
        match instr.op {
            Opcode::Range => {
                with_dtype!(dtype, T, {
                    let slice = buffer.as_mut_slice::<T>().expect("dtype matches decl");
                    // Write index values in logical order.
                    let offsets: Vec<usize> = geom.offsets().collect();
                    for (counter, off) in offsets.into_iter().enumerate() {
                        slice[off] = <T as Element>::from_f64(counter as f64);
                    }
                });
                Ok(())
            }
            Opcode::Random => {
                let seed = instr.operands[1]
                    .as_const()
                    .and_then(Scalar::as_integral)
                    .unwrap_or(0) as u64;
                let data = bh_tensor::random_tensor(
                    dtype,
                    geom.shape(),
                    seed,
                    bh_tensor::Distribution::Uniform,
                );
                write_tensor_into_view(buffer, &geom, &data);
                Ok(())
            }
            other => unreachable!("{other} is not a generator"),
        }
    }

    fn exec_reduce_scan(&mut self, program: &Program, instr: &Instruction) -> Result<(), VmError> {
        let out_ref = instr.out_view().expect("reductions have outputs");
        let in_ref = trusted(instr.operands[1].as_view(), "reduce input is a view");
        let axis = trusted(
            instr.operands[2].as_const().and_then(Scalar::as_integral),
            "reduce axis is an integral constant",
        ) as usize;
        let out_reg = out_ref.reg;
        let out_geom = program.resolve_view(out_ref)?;
        let in_geom = program.resolve_view(in_ref)?;
        let dtype = program.base(in_ref.reg).dtype;
        self.ensure_alloc(program, in_ref.reg);
        self.ensure_alloc(program, out_reg);
        self.note_kernel(1);
        self.account_in(&in_geom, dtype);
        self.account_out(&out_geom, program.base(out_reg).dtype);
        self.stats.flops += instr.op.unit_cost() * in_geom.nelem() as u64;

        let fold = instr.op.fold_op().expect("reductions fold");
        // Bool reductions widen to i64 (NumPy); run the fold in the widened
        // domain by materialising a cast input. Otherwise fold straight out
        // of the input base — the kernels walk strided/sliced views
        // directly, so no materialise copy sits on the hot path.
        let work_dtype = program.base(out_reg).dtype;
        let direct = work_dtype == dtype && in_ref.reg != out_reg;
        let (owned, in_view) = if direct {
            (None, in_geom)
        } else {
            let input_tensor = self.materialize_view(program, in_ref)?;
            let input_cast = if work_dtype != dtype {
                input_tensor.cast(work_dtype)
            } else {
                input_tensor
            };
            let view = ViewGeom::contiguous(input_cast.shape());
            (Some(input_cast), view)
        };
        let mut out_buf = self.take_buffer(out_reg)?;
        let lane_work = in_view.nelem();
        let workers = self.workers.clone();
        let threshold = self.par_threshold;
        let shards = with_dtype!(work_dtype, T, {
            let in_slice: &[T] = match &owned {
                Some(t) => t.as_slice::<T>().expect("cast to work dtype"),
                None => trusted(
                    self.borrow_buffer(in_ref.reg)?.as_slice::<T>(),
                    "buffer dtype matches decl",
                ),
            };
            let out_slice = out_buf.as_mut_slice::<T>().expect("dtype matches decl");
            let f = exec::binary_fn::<T>(fold);
            // Serial and sharded runs share one kernel family whose
            // combine order is executor-independent (DESIGN.md §11), so
            // the executor choice below can never change results.
            let executor: &dyn RangeExecutor = match &workers {
                Some(p) if p.threads() > 1 && lane_work >= threshold => p.as_ref(),
                _ => &kernels::InlineExec,
            };
            match instr.op.kind() {
                OpKind::Reduction => {
                    let init: T = exec::fold_init::<T>(fold);
                    kernels::par_reduce_axis(
                        executor, out_slice, &out_geom, in_slice, &in_view, axis, init, f,
                    )
                }
                OpKind::Scan => kernels::par_scan_axis(
                    executor, out_slice, &out_geom, in_slice, &in_view, axis, f,
                ),
                _ => unreachable!("dispatched as reduction/scan"),
            }
        });
        if shards > 1 {
            self.stats.par_shards += shards as u64;
            self.stats.reduce_shards += shards as u64;
        }
        self.bases[out_reg.index()] = Some(out_buf);
        Ok(())
    }

    fn exec_linalg(&mut self, program: &Program, instr: &Instruction) -> Result<(), VmError> {
        let out_ref = instr.out_view().expect("linalg ops have outputs");
        let out_reg = out_ref.reg;
        let out_geom = program.resolve_view(out_ref)?;
        self.note_kernel(1);
        let result = match instr.op {
            Opcode::MatMul => {
                let a = self.materialize_view(program, view_of(&instr.operands[1]))?;
                let b = self.materialize_view(program, view_of(&instr.operands[2]))?;
                let (m, k) = mat_dims(a.shape());
                let (_, n) = mat_dims(b.shape());
                self.stats.flops += linalg::matmul_flops(m, k, n);
                self.account_in_tensor(&a);
                self.account_in_tensor(&b);
                linalg::matmul(&a, &b)?
            }
            Opcode::Transpose => {
                let a = self.materialize_view(program, view_of(&instr.operands[1]))?;
                self.account_in_tensor(&a);
                linalg::transpose(&a)?
            }
            Opcode::Inverse => {
                let a = self.materialize_view(program, view_of(&instr.operands[1]))?;
                let n = a.shape().dim(0);
                // inverse = factorise + n pair-solves ≈ 2n³
                self.stats.flops += 2 * (n as u64).pow(3);
                self.account_in_tensor(&a);
                linalg::inverse(&a)?
            }
            Opcode::Solve => {
                let a = self.materialize_view(program, view_of(&instr.operands[1]))?;
                let b = self.materialize_view(program, view_of(&instr.operands[2]))?;
                let n = a.shape().dim(0);
                let k = if b.shape().rank() == 2 {
                    b.shape().dim(1)
                } else {
                    1
                };
                self.stats.flops += linalg::lu_solve_flops(n, k);
                self.account_in_tensor(&a);
                self.account_in_tensor(&b);
                linalg::solve_lu(&a, &b)?
            }
            other => unreachable!("{other} is not a linalg op"),
        };
        self.ensure_alloc(program, out_reg);
        self.account_out(&out_geom, program.base(out_reg).dtype);
        let result = if result.dtype() == program.base(out_reg).dtype {
            result
        } else {
            result.cast(program.base(out_reg).dtype)
        };
        let buffer = self.bases[out_reg.index()]
            .as_mut()
            .expect("just allocated");
        write_tensor_into_view(buffer, &out_geom, &result);
        Ok(())
    }

    fn exec_elementwise(
        &mut self,
        program: &Program,
        instr: &Instruction,
        restrict: Option<(usize, usize)>,
    ) -> Result<(), VmError> {
        let out_ref = instr.out_view().expect("elementwise ops have outputs");
        let out_reg = out_ref.reg;
        self.ensure_alloc(program, out_reg);
        let mut out_geom = program.resolve_view(out_ref)?;
        let mut out_shape = out_geom.shape();
        let out_dtype = program.base(out_reg).dtype;

        // Resolve + broadcast inputs; ensure any read base is materialised.
        enum RIn {
            View(Reg, ViewGeom),
            Const(Scalar),
        }
        let mut rins: Vec<RIn> = Vec::with_capacity(2);
        for o in instr.inputs() {
            match o {
                Operand::View(v) => {
                    self.ensure_alloc(program, v.reg);
                    let g = program.resolve_view(v)?.broadcast_to(&out_shape)?;
                    rins.push(RIn::View(v.reg, g));
                }
                Operand::Const(c) => rins.push(RIn::Const(*c)),
            }
        }

        // Fused-block restriction: replace every (guaranteed contiguous,
        // full, equal-length) geometry with the [lo, hi) sub-range.
        if let Some((lo, hi)) = restrict {
            let len = hi - lo;
            let sub = |g: &ViewGeom| {
                ViewGeom::from_parts(g.offset() + lo, vec![bh_tensor::ViewDim { len, stride: 1 }])
            };
            out_geom = sub(&out_geom);
            for rin in &mut rins {
                if let RIn::View(_, g) = rin {
                    *g = sub(g);
                }
            }
            out_shape = Shape::vector(len);
        }
        let _ = &out_shape;

        // Operating dtype: the dtype of view inputs (validated to agree),
        // else the output dtype.
        let in_dtype = rins
            .iter()
            .find_map(|r| match r {
                RIn::View(reg, _) => Some(program.base(*reg).dtype),
                RIn::Const(_) => None,
            })
            .unwrap_or(out_dtype);

        // Accounting.
        self.stats.instructions += 1;
        if self.count_kernel_per_instr {
            self.stats.kernels += 1;
        }
        let n = out_geom.nelem() as u64;
        self.stats.elements_written += n;
        self.stats.bytes_written += n * out_dtype.size_of() as u64;
        for rin in &rins {
            if let RIn::View(_, g) = rin {
                self.stats.bytes_read += g.nelem() as u64 * in_dtype.size_of() as u64;
            }
        }
        self.stats.flops += instr.op.unit_cost() * n;

        let mut out_buf = self.take_buffer(out_reg)?;
        let par = ParCtx {
            pool: self.workers.as_deref(),
            threshold: self.par_threshold,
        };

        // Classify into the typed execution paths.
        let rule = instr.op.type_rule();
        let is_compare = rule == TypeRule::CompareLike;
        let is_cast = instr.op == Opcode::Identity && in_dtype != out_dtype;

        let shards: usize = if is_compare {
            // T × T → bool (or T → bool predicates).
            with_dtype!(in_dtype, T, {
                // Aliasing possible only when T == bool; materialise then.
                let gather = |rin: &RIn| -> BinInOwned<T> {
                    match rin {
                        RIn::Const(c) => BinInOwned::Const(c.cast(in_dtype).get::<T>()),
                        RIn::View(reg, g) => {
                            if *reg == out_reg {
                                let t = vm_read_view::<T>(&out_buf, g);
                                BinInOwned::Owned(t, ViewGeom::contiguous(&g.shape()))
                            } else {
                                BinInOwned::Borrowed(*reg, g.clone())
                            }
                        }
                    }
                };
                let exec = par.executor(out_geom.nelem());
                if instr.op.arity() == 1 {
                    let a = gather(&rins[0]);
                    let f = exec::predicate_fn::<T>(instr.op);
                    let (sa, ga) = self.slice_of(&a)?;
                    let out_slice = out_buf
                        .as_mut_slice::<bool>()
                        .expect("compare output is bool");
                    match sa {
                        SliceOr::Const(c) => {
                            let v = f(c);
                            let s =
                                exec.and_then(|x| kernels::par_fill(x, out_slice, &out_geom, v));
                            if s.is_none() {
                                kernels::fill(out_slice, &out_geom, v);
                            }
                            s.unwrap_or(0)
                        }
                        SliceOr::Data(da) => {
                            let s = exec.and_then(|x| {
                                kernels::par_map1(x, out_slice, &out_geom, da, &ga, f)
                            });
                            if s.is_none() {
                                kernels::map1(out_slice, &out_geom, da, &ga, f);
                            }
                            s.unwrap_or(0)
                        }
                    }
                } else {
                    let a = gather(&rins[0]);
                    let b = gather(&rins[1]);
                    let f = exec::compare_fn::<T>(instr.op);
                    // Resolve both to slices (possibly owned).
                    let (sa, ga) = self.slice_of(&a)?;
                    let (sb, gb) = self.slice_of(&b)?;
                    let out_slice = out_buf
                        .as_mut_slice::<bool>()
                        .expect("compare output is bool");
                    match (sa, sb) {
                        (SliceOr::Const(x), SliceOr::Const(y)) => {
                            let v = f(x, y);
                            let s =
                                exec.and_then(|x| kernels::par_fill(x, out_slice, &out_geom, v));
                            if s.is_none() {
                                kernels::fill(out_slice, &out_geom, v);
                            }
                            s.unwrap_or(0)
                        }
                        (SliceOr::Data(da), SliceOr::Const(y)) => {
                            let s = exec.and_then(|x| {
                                kernels::par_map1(x, out_slice, &out_geom, da, &ga, |v| f(v, y))
                            });
                            if s.is_none() {
                                kernels::map1(out_slice, &out_geom, da, &ga, |v| f(v, y));
                            }
                            s.unwrap_or(0)
                        }
                        (SliceOr::Const(x), SliceOr::Data(db)) => {
                            let s = exec.and_then(|e| {
                                kernels::par_map1(e, out_slice, &out_geom, db, &gb, |v| f(x, v))
                            });
                            if s.is_none() {
                                kernels::map1(out_slice, &out_geom, db, &gb, |v| f(x, v));
                            }
                            s.unwrap_or(0)
                        }
                        (SliceOr::Data(da), SliceOr::Data(db)) => {
                            let s = exec.and_then(|e| {
                                kernels::par_map2(e, out_slice, &out_geom, da, &ga, db, &gb, f)
                            });
                            if s.is_none() {
                                kernels::map2(out_slice, &out_geom, da, &ga, db, &gb, f);
                            }
                            s.unwrap_or(0)
                        }
                    }
                }
            })
        } else if is_cast {
            // BH_IDENTITY with dtype conversion: I → O. Different dtypes
            // mean different registers, so no aliasing.
            let exec = par.executor(out_geom.nelem());
            match &rins[0] {
                RIn::Const(c) => {
                    let v = c.cast(out_dtype);
                    with_dtype!(out_dtype, O, {
                        let out_slice = out_buf.as_mut_slice::<O>().expect("out dtype");
                        let v = v.get::<O>();
                        let s = exec.and_then(|x| kernels::par_fill(x, out_slice, &out_geom, v));
                        if s.is_none() {
                            kernels::fill(out_slice, &out_geom, v);
                        }
                        s.unwrap_or(0)
                    })
                }
                RIn::View(reg, g) => {
                    let in_buf = self.borrow_buffer(*reg)?;
                    with_dtype!(in_dtype, I, {
                        with_dtype!(out_dtype, O, {
                            let in_slice = in_buf.as_slice::<I>().expect("in dtype");
                            let out_slice = out_buf.as_mut_slice::<O>().expect("out dtype");
                            let s = exec.and_then(|x| {
                                kernels::par_map1(x, out_slice, &out_geom, in_slice, g, |v| {
                                    cast_element::<I, O>(v)
                                })
                            });
                            if s.is_none() {
                                kernels::map1(out_slice, &out_geom, in_slice, g, |x| {
                                    cast_element::<I, O>(x)
                                });
                            }
                            s.unwrap_or(0)
                        })
                    })
                }
            }
        } else {
            // Same-dtype arithmetic (output dtype == operating dtype).
            with_dtype!(in_dtype, T, {
                let out_slice_owner: &mut Buffer = &mut out_buf;
                let classify = |rin: &RIn| -> ClassIn<T> {
                    match rin {
                        RIn::Const(c) => ClassIn::Const(c.cast(in_dtype).get::<T>()),
                        RIn::View(reg, g) => {
                            if *reg == out_reg {
                                ClassIn::Aliased(g.clone())
                            } else {
                                ClassIn::Other(*reg, g.clone())
                            }
                        }
                    }
                };
                if instr.op.arity() == 1 {
                    let f = exec::unary_fn::<T>(instr.op);
                    let a = classify(&rins[0]);
                    let out_slice = out_slice_owner.as_mut_slice::<T>().expect("dtype");
                    match a {
                        ClassIn::Const(c) => {
                            exec::exec_unary(out_slice, &out_geom, BinIn::Const(c), f, par)
                        }
                        ClassIn::Aliased(g) => {
                            exec::exec_unary(out_slice, &out_geom, BinIn::Aliased(g), f, par)
                        }
                        ClassIn::Other(reg, g) => {
                            let buf = self.borrow_buffer(reg)?;
                            let s = trusted(buf.as_slice::<T>(), "buffer dtype matches decl");
                            exec::exec_unary(out_slice, &out_geom, BinIn::Slice(s, g), f, par)
                        }
                    }
                } else {
                    let a = classify(&rins[0]);
                    let b = classify(&rins[1]);
                    // Borrow other-register slices before splitting out_buf.
                    let sa = self.resolve_class::<T>(&a)?;
                    let sb = self.resolve_class::<T>(&b)?;
                    let out_slice = out_slice_owner.as_mut_slice::<T>().expect("dtype");
                    // Direct dispatch: passing the method as a function
                    // *item* (not pointer) lets each per-op inner loop
                    // inline — the difference between memory-bound and
                    // call-bound execution on large arrays.
                    macro_rules! call_bin {
                        ($f:expr) => {
                            exec::exec_binary(out_slice, &out_geom, sa, sb, $f, par)
                        };
                    }
                    match instr.op {
                        Opcode::Add => call_bin!(T::vm_add),
                        Opcode::Subtract => call_bin!(T::vm_sub),
                        Opcode::Multiply => call_bin!(T::vm_mul),
                        Opcode::Divide => call_bin!(T::vm_div),
                        Opcode::Power => call_bin!(T::vm_pow),
                        Opcode::Mod => call_bin!(T::vm_mod),
                        Opcode::Maximum => call_bin!(T::vm_max),
                        Opcode::Minimum => call_bin!(T::vm_min),
                        Opcode::BitwiseAnd | Opcode::LogicalAnd => call_bin!(T::vm_and),
                        Opcode::BitwiseOr | Opcode::LogicalOr => call_bin!(T::vm_or),
                        Opcode::BitwiseXor | Opcode::LogicalXor => call_bin!(T::vm_xor),
                        Opcode::LeftShift => call_bin!(T::vm_shl),
                        Opcode::RightShift => call_bin!(T::vm_shr),
                        other => call_bin!(exec::binary_fn::<T>(other)),
                    }
                }
            })
        };
        if shards > 1 {
            self.stats.par_shards += shards as u64;
        }

        self.bases[out_reg.index()] = Some(out_buf);
        Ok(())
    }

    fn resolve_class<'a, T: VmElement>(&'a self, c: &ClassIn<T>) -> Result<BinIn<'a, T>, VmError> {
        Ok(match c {
            ClassIn::Const(v) => BinIn::Const(*v),
            ClassIn::Aliased(g) => BinIn::Aliased(g.clone()),
            ClassIn::Other(reg, g) => {
                let buf = self.borrow_buffer(*reg)?;
                let s = trusted(buf.as_slice::<T>(), "buffer dtype matches decl");
                BinIn::Slice(s, g.clone())
            }
        })
    }

    fn slice_of<'a, T: VmElement>(
        &'a self,
        b: &'a BinInOwned<T>,
    ) -> Result<(SliceOr<'a, T>, ViewGeom), VmError> {
        Ok(match b {
            BinInOwned::Const(c) => (SliceOr::Const(*c), ViewGeom::scalar_at(0)),
            BinInOwned::Owned(v, g) => (SliceOr::Data(v.as_slice()), g.clone()),
            BinInOwned::Borrowed(reg, g) => {
                let buf = self.borrow_buffer(*reg)?;
                let s = trusted(buf.as_slice::<T>(), "buffer dtype matches decl");
                (SliceOr::Data(s), g.clone())
            }
        })
    }

    fn take_buffer(&mut self, reg: Reg) -> Result<Buffer, VmError> {
        self.bases
            .get_mut(reg.index())
            .and_then(Option::take)
            .ok_or_else(|| VmError::Register {
                reason: format!("register r{} holds no data", reg.0),
            })
    }

    fn borrow_buffer(&self, reg: Reg) -> Result<&Buffer, VmError> {
        self.bases
            .get(reg.index())
            .and_then(|b| b.as_ref())
            .ok_or_else(|| VmError::Register {
                reason: format!("register r{} holds no data", reg.0),
            })
    }

    /// Copy a view of a register out into an owned contiguous tensor.
    fn materialize_view(&mut self, program: &Program, v: &ViewRef) -> Result<Tensor, VmError> {
        self.ensure_alloc(program, v.reg);
        let geom = program.resolve_view(v)?;
        let dtype = program.base(v.reg).dtype;
        let buf = self.borrow_buffer(v.reg)?;
        let out = with_dtype!(dtype, T, {
            let s = buf.as_slice::<T>().expect("dtype matches decl");
            Buffer::from_vec(bh_tensor::kernels::materialize(s, &geom))
        });
        Tensor::from_parts(out, geom.shape()).map_err(VmError::from)
    }

    fn note_kernel(&mut self, instrs: u64) {
        self.stats.instructions += instrs;
        if self.count_kernel_per_instr {
            self.stats.kernels += instrs;
        }
    }

    fn account_in(&mut self, g: &ViewGeom, dtype: DType) {
        self.stats.bytes_read += g.nelem() as u64 * dtype.size_of() as u64;
    }

    fn account_in_tensor(&mut self, t: &Tensor) {
        self.stats.bytes_read += t.nelem() as u64 * t.dtype().size_of() as u64;
    }

    fn account_out(&mut self, g: &ViewGeom, dtype: DType) {
        let n = g.nelem() as u64;
        self.stats.elements_written += n;
        self.stats.bytes_written += n * dtype.size_of() as u64;
    }
}

/// One compiled instruction of a fused group: executes the op over the
/// element range `[lo, hi)` of every operand's full contiguous view.
type FusedStep = Box<dyn Fn(usize, usize) + Send + Sync>;

/// Raw mutable base pointer that may cross shard threads. Soundness is
/// argued at [`Vm::compile_fused_step`].
#[derive(Clone, Copy)]
struct RawMut<T>(*mut T);
// SAFETY: the wrapped pointer targets a base buffer that outlives the
// fused run, and shards write disjoint `[lo, hi)` element ranges (see
// `Vm::compile_fused_step`), so sending/sharing the pointer across the
// pool threads cannot race.
unsafe impl<T: Send> Send for RawMut<T> {}
// SAFETY: as above — concurrent access is read-or-disjoint-write only.
unsafe impl<T: Sync> Sync for RawMut<T> {}

impl<T> RawMut<T> {
    /// Accessor (not field access) so closures capture the `Sync` wrapper.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Raw const base pointer that may cross shard threads.
#[derive(Clone, Copy)]
struct RawConst<T>(*const T);
// SAFETY: the pointer targets a base buffer that outlives the fused run
// and is only ever read through this wrapper; shared reads across the
// pool threads are race-free (see `Vm::compile_fused_step`).
unsafe impl<T: Send> Send for RawConst<T> {}
// SAFETY: as above — read-only access for the duration of the run.
unsafe impl<T: Sync> Sync for RawConst<T> {}

impl<T> RawConst<T> {
    fn get(&self) -> *const T {
        self.0
    }
}

/// Input of a compiled fused step.
#[derive(Clone, Copy)]
enum StepIn<T> {
    /// Full base view, read at the same index as the output element.
    Ptr(RawConst<T>),
    /// Immediate constant, already cast to the operating dtype.
    Const(T),
}

/// Compiled `out[i] = f(a[i], b[i])` over pointer/constant operands.
fn fused_bin_step<T: VmElement>(
    out: RawMut<T>,
    a: StepIn<T>,
    b: StepIn<T>,
    f: impl Fn(T, T) -> T + Copy + Send + Sync + 'static,
) -> FusedStep {
    Box::new(move |lo, hi| {
        let o = out.get();
        // SAFETY: see `Vm::compile_fused_step` — pointers are live for
        // the group, ranges are in-bounds and disjoint across shards,
        // reads of an element precede its write within a shard.
        unsafe {
            match (a, b) {
                (StepIn::Ptr(pa), StepIn::Ptr(pb)) => {
                    for k in lo..hi {
                        *o.add(k) = f(*pa.get().add(k), *pb.get().add(k));
                    }
                }
                (StepIn::Ptr(pa), StepIn::Const(cb)) => {
                    for k in lo..hi {
                        *o.add(k) = f(*pa.get().add(k), cb);
                    }
                }
                (StepIn::Const(ca), StepIn::Ptr(pb)) => {
                    for k in lo..hi {
                        *o.add(k) = f(ca, *pb.get().add(k));
                    }
                }
                (StepIn::Const(ca), StepIn::Const(cb)) => {
                    let v = f(ca, cb);
                    for k in lo..hi {
                        *o.add(k) = v;
                    }
                }
            }
        }
    })
}

/// Compiled `out[i] = f(a[i])`.
fn fused_un_step<T: VmElement>(
    out: RawMut<T>,
    a: StepIn<T>,
    f: impl Fn(T) -> T + Copy + Send + Sync + 'static,
) -> FusedStep {
    Box::new(move |lo, hi| {
        let o = out.get();
        // SAFETY: see `Vm::compile_fused_step`.
        unsafe {
            match a {
                StepIn::Ptr(pa) => {
                    for k in lo..hi {
                        *o.add(k) = f(*pa.get().add(k));
                    }
                }
                StepIn::Const(c) => {
                    let v = f(c);
                    for k in lo..hi {
                        *o.add(k) = v;
                    }
                }
            }
        }
    })
}

/// Compiled `out[i] = value` (cast identity from a constant).
fn fused_fill_step<O: Element>(out: RawMut<O>, value: O) -> FusedStep {
    Box::new(move |lo, hi| {
        let o = out.get();
        // SAFETY: see `Vm::compile_fused_step`.
        unsafe {
            for k in lo..hi {
                *o.add(k) = value;
            }
        }
    })
}

/// Compiled dtype-converting identity `out[i] = cast(a[i])`.
fn fused_cast_step<I: Element, O: Element>(out: RawMut<O>, a: RawConst<I>) -> FusedStep {
    Box::new(move |lo, hi| {
        let o = out.get();
        // SAFETY: see `Vm::compile_fused_step`; different dtypes mean
        // different registers, so `a` never aliases `out`.
        unsafe {
            for k in lo..hi {
                *o.add(k) = cast_element::<I, O>(*a.get().add(k));
            }
        }
    })
}

/// Compiled comparison `out[i] = f(a[i], b[i])` with bool output.
fn fused_cmp_step<T: VmElement>(
    out: RawMut<bool>,
    a: StepIn<T>,
    b: StepIn<T>,
    f: fn(T, T) -> bool,
) -> FusedStep {
    Box::new(move |lo, hi| {
        let o = out.get();
        // SAFETY: see `Vm::compile_fused_step`; when `T == bool` the
        // output may alias an input, and each element is read before it
        // is written.
        unsafe {
            match (a, b) {
                (StepIn::Ptr(pa), StepIn::Ptr(pb)) => {
                    for k in lo..hi {
                        *o.add(k) = f(*pa.get().add(k), *pb.get().add(k));
                    }
                }
                (StepIn::Ptr(pa), StepIn::Const(cb)) => {
                    for k in lo..hi {
                        *o.add(k) = f(*pa.get().add(k), cb);
                    }
                }
                (StepIn::Const(ca), StepIn::Ptr(pb)) => {
                    for k in lo..hi {
                        *o.add(k) = f(ca, *pb.get().add(k));
                    }
                }
                (StepIn::Const(ca), StepIn::Const(cb)) => {
                    let v = f(ca, cb);
                    for k in lo..hi {
                        *o.add(k) = v;
                    }
                }
            }
        }
    })
}

/// Compiled predicate `out[i] = f(a[i])` with bool output.
fn fused_pred_step<T: VmElement>(out: RawMut<bool>, a: StepIn<T>, f: fn(T) -> bool) -> FusedStep {
    Box::new(move |lo, hi| {
        let o = out.get();
        // SAFETY: see `Vm::compile_fused_step`.
        unsafe {
            match a {
                StepIn::Ptr(pa) => {
                    for k in lo..hi {
                        *o.add(k) = f(*pa.get().add(k));
                    }
                }
                StepIn::Const(c) => {
                    let v = f(c);
                    for k in lo..hi {
                        *o.add(k) = v;
                    }
                }
            }
        }
    })
}

enum ClassIn<T> {
    Const(T),
    Aliased(ViewGeom),
    Other(Reg, ViewGeom),
}

enum BinInOwned<T> {
    Const(T),
    Owned(Vec<T>, ViewGeom),
    Borrowed(Reg, ViewGeom),
}

enum SliceOr<'a, T> {
    Const(T),
    Data(&'a [T]),
}

fn vm_read_view<T: Element>(buf: &Buffer, g: &ViewGeom) -> Vec<T> {
    let s = trusted(buf.as_slice::<T>(), "buffer dtype matches decl");
    bh_tensor::kernels::materialize(s, g)
}

/// Unwrap an `Option` the verifier proved is `Some`.
///
/// Programs only reach the execution hot path through a
/// [`bh_ir::VerifiedProgram`] witness (or after `Vm::run`'s own verify
/// call), so these invariants hold by construction. Debug builds assert
/// them loudly to catch verifier gaps; release builds fall through to a
/// cold panic naming the broken invariant — never undefined behaviour.
#[inline(always)]
#[track_caller]
fn trusted<T>(value: Option<T>, invariant: &'static str) -> T {
    debug_assert!(value.is_some(), "verifier invariant violated: {invariant}");
    match value {
        Some(v) => v,
        None => invariant_broken(invariant),
    }
}

#[cold]
#[inline(never)]
#[track_caller]
fn invariant_broken(invariant: &'static str) -> ! {
    panic!("verifier invariant violated: {invariant}")
}

fn view_of(o: &Operand) -> &ViewRef {
    trusted(o.as_view(), "operand is a view")
}

fn mat_dims(s: &Shape) -> (usize, usize) {
    match s.rank() {
        1 => (1, s.dim(0)),
        _ => (s.dim(0), s.dim(1)),
    }
}

fn cast_element<I: Element, O: Element>(x: I) -> O {
    O::from_f64(x.to_f64())
}

/// Write an owned tensor's elements into a view of a buffer.
fn write_tensor_into_view(buffer: &mut Buffer, geom: &ViewGeom, data: &Tensor) {
    debug_assert_eq!(geom.nelem(), data.nelem(), "view/tensor size mismatch");
    let dtype = buffer.dtype();
    let data = if data.dtype() == dtype {
        data.clone()
    } else {
        data.cast(dtype)
    };
    with_dtype!(dtype, T, {
        let src = data.as_slice::<T>().expect("cast above");
        let dst = buffer.as_mut_slice::<T>().expect("dtype of buffer");
        let dst_ptr = dst.as_mut_ptr();
        let dst_len = dst.len();
        let mut i = 0usize;
        bh_tensor::kernels::zip_offsets([geom], |[o]| {
            assert!(o < dst_len, "view escapes buffer");
            // SAFETY: bounds asserted; offsets are per-element unique.
            unsafe { *dst_ptr.add(o) = src[i] };
            i += 1;
        });
    });
}
