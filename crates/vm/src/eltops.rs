//! Per-element semantics of every element-wise op-code, per dtype.
//!
//! The VM hoists the op-code dispatch out of the loop: each instruction
//! selects one of these `#[inline]` methods once, and the strided kernel
//! monomorphises over it. Semantics follow NumPy/Bohrium conventions:
//!
//! * integer division / modulo by zero yields 0 (NumPy emits a warning and
//!   produces 0; we skip the warning),
//! * integer overflow wraps (NumPy c-casts),
//! * integer **and** float modulo are *floored* (NumPy `mod`): a non-zero
//!   result takes the sign of the divisor, so `-7 mod 3 = 2`,
//!   `7 mod -3 = -2` and `-7 mod -3 = -1`,
//! * integer power: negative exponents truncate (`1^-n = 1`, else `0`,
//!   since NumPy raises instead of defining them); non-negative exponents
//!   beyond `u32::MAX` **saturate** to `u32::MAX` (they are not silently
//!   truncated mod 2³²). The constant folder (`bh_opt::const_eval`)
//!   implements the identical rule, keeping folder ≡ VM,
//! * shift counts are masked to the type width,
//! * boolean arithmetic is the logical lattice (`+` = or, `*` = and).

use bh_tensor::Element;

/// Element types executable by the VM: [`Element`] plus total definitions
/// of every arithmetic op-code.
///
/// Sealed in practice: implemented for the eleven supported element types.
pub trait VmElement: Element {
    /// `BH_ADD`.
    fn vm_add(self, b: Self) -> Self;
    /// `BH_SUBTRACT`.
    fn vm_sub(self, b: Self) -> Self;
    /// `BH_MULTIPLY`.
    fn vm_mul(self, b: Self) -> Self;
    /// `BH_DIVIDE`.
    fn vm_div(self, b: Self) -> Self;
    /// `BH_POWER`.
    fn vm_pow(self, b: Self) -> Self;
    /// `BH_MOD`.
    fn vm_mod(self, b: Self) -> Self;
    /// `BH_MAXIMUM`.
    fn vm_max(self, b: Self) -> Self;
    /// `BH_MINIMUM`.
    fn vm_min(self, b: Self) -> Self;
    /// `BH_ABSOLUTE`.
    fn vm_abs(self) -> Self;
    /// `BH_SIGN`.
    fn vm_sign(self) -> Self;

    /// `BH_BITWISE_AND` (bool: logical and).
    fn vm_and(self, b: Self) -> Self;
    /// `BH_BITWISE_OR`.
    fn vm_or(self, b: Self) -> Self;
    /// `BH_BITWISE_XOR`.
    fn vm_xor(self, b: Self) -> Self;
    /// `BH_INVERT` (bitwise not; bool: logical not).
    fn vm_not(self) -> Self;
    /// `BH_LEFT_SHIFT` (no-op for floats/bool — validation excludes them).
    fn vm_shl(self, b: Self) -> Self;
    /// `BH_RIGHT_SHIFT`.
    fn vm_shr(self, b: Self) -> Self;

    /// Float-only unary op-codes take this hook; integer types return
    /// `self` unchanged (validation excludes them, so the value is never
    /// observed).
    fn vm_float_unary(self, f: fn(f64) -> f64) -> Self;

    /// Identity of `BH_MAXIMUM_REDUCE`: the lowest representable value.
    fn vm_lowest() -> Self;
    /// Identity of `BH_MINIMUM_REDUCE`: the highest representable value.
    fn vm_highest() -> Self;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl VmElement for $t {
            #[inline] fn vm_add(self, b: Self) -> Self { self.wrapping_add(b) }
            #[inline] fn vm_sub(self, b: Self) -> Self { self.wrapping_sub(b) }
            #[inline] fn vm_mul(self, b: Self) -> Self { self.wrapping_mul(b) }
            #[inline] fn vm_div(self, b: Self) -> Self {
                if b == 0 { 0 } else { self.wrapping_div(b) }
            }
            #[inline] fn vm_pow(self, b: Self) -> Self {
                #[allow(unused_comparisons)]
                if b < 0 {
                    // x^-n truncates to 0 for |x|>1, 1 for x==1, as NumPy's
                    // integer power semantics error out; we pick total
                    // truncation semantics instead.
                    if self == 1 { 1 } else { 0 }
                } else if (b as u64) > u32::MAX as u64 {
                    // Exponents beyond u32::MAX saturate (see module doc);
                    // `b as u32` would silently reduce them mod 2^32.
                    self.wrapping_pow(u32::MAX)
                } else {
                    self.wrapping_pow(b as u32)
                }
            }
            #[inline] fn vm_mod(self, b: Self) -> Self {
                // Floored (NumPy) modulo: non-zero results take the sign
                // of the divisor. `rem_euclid` would instead always be
                // non-negative, diverging for negative divisors.
                if b == 0 { 0 } else {
                    let r = self.wrapping_rem(b);
                    #[allow(unused_comparisons)]
                    if r != 0 && (r < 0) != (b < 0) { r.wrapping_add(b) } else { r }
                }
            }
            #[inline] fn vm_max(self, b: Self) -> Self { Ord::max(self, b) }
            #[inline] fn vm_min(self, b: Self) -> Self { Ord::min(self, b) }
            #[inline] fn vm_abs(self) -> Self {
                #[allow(unused_comparisons)]
                { if self < 0 { self.wrapping_neg() } else { self } }
            }
            #[inline] fn vm_sign(self) -> Self {
                #[allow(unused_comparisons)]
                { if self < 0 { Self::wrapping_neg(1) } else if self == 0 { 0 } else { 1 } }
            }
            #[inline] fn vm_and(self, b: Self) -> Self { self & b }
            #[inline] fn vm_or(self, b: Self) -> Self { self | b }
            #[inline] fn vm_xor(self, b: Self) -> Self { self ^ b }
            #[inline] fn vm_not(self) -> Self { !self }
            #[inline] fn vm_shl(self, b: Self) -> Self {
                self.wrapping_shl(b as u32)
            }
            #[inline] fn vm_shr(self, b: Self) -> Self {
                self.wrapping_shr(b as u32)
            }
            #[inline] fn vm_float_unary(self, _f: fn(f64) -> f64) -> Self { self }
            #[inline] fn vm_lowest() -> Self { Self::MIN }
            #[inline] fn vm_highest() -> Self { Self::MAX }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl VmElement for $t {
            #[inline] fn vm_add(self, b: Self) -> Self { self + b }
            #[inline] fn vm_sub(self, b: Self) -> Self { self - b }
            #[inline] fn vm_mul(self, b: Self) -> Self { self * b }
            #[inline] fn vm_div(self, b: Self) -> Self { self / b }
            #[inline] fn vm_pow(self, b: Self) -> Self { self.powf(b) }
            #[inline] fn vm_mod(self, b: Self) -> Self {
                // NumPy mod: result has the divisor's sign.
                let r = self % b;
                if r != 0.0 && (r < 0.0) != (b < 0.0) { r + b } else { r }
            }
            #[inline] fn vm_max(self, b: Self) -> Self { self.max(b) }
            #[inline] fn vm_min(self, b: Self) -> Self { self.min(b) }
            #[inline] fn vm_abs(self) -> Self { self.abs() }
            #[inline] fn vm_sign(self) -> Self {
                if self.is_nan() { self } else if self > 0.0 { 1.0 } else if self < 0.0 { -1.0 } else { self }
            }
            #[inline] fn vm_and(self, _b: Self) -> Self { self }
            #[inline] fn vm_or(self, _b: Self) -> Self { self }
            #[inline] fn vm_xor(self, _b: Self) -> Self { self }
            #[inline] fn vm_not(self) -> Self { self }
            #[inline] fn vm_shl(self, _b: Self) -> Self { self }
            #[inline] fn vm_shr(self, _b: Self) -> Self { self }
            #[inline] fn vm_float_unary(self, f: fn(f64) -> f64) -> Self { f(self as f64) as $t }
            #[inline] fn vm_lowest() -> Self { Self::NEG_INFINITY }
            #[inline] fn vm_highest() -> Self { Self::INFINITY }
        }
    )*};
}

impl_float!(f32, f64);

impl VmElement for bool {
    #[inline]
    fn vm_add(self, b: Self) -> Self {
        self | b
    }
    #[inline]
    fn vm_sub(self, b: Self) -> Self {
        self ^ b
    }
    #[inline]
    fn vm_mul(self, b: Self) -> Self {
        self & b
    }
    #[inline]
    fn vm_div(self, b: Self) -> Self {
        self & b
    }
    #[inline]
    fn vm_pow(self, b: Self) -> Self {
        // x^0 = 1 (true); x^1 = x.
        self | !b
    }
    #[inline]
    fn vm_mod(self, _b: Self) -> Self {
        false
    }
    #[inline]
    fn vm_max(self, b: Self) -> Self {
        self | b
    }
    #[inline]
    fn vm_min(self, b: Self) -> Self {
        self & b
    }
    #[inline]
    fn vm_abs(self) -> Self {
        self
    }
    #[inline]
    fn vm_sign(self) -> Self {
        self
    }
    #[inline]
    fn vm_and(self, b: Self) -> Self {
        self & b
    }
    #[inline]
    fn vm_or(self, b: Self) -> Self {
        self | b
    }
    #[inline]
    fn vm_xor(self, b: Self) -> Self {
        self ^ b
    }
    #[inline]
    fn vm_not(self) -> Self {
        !self
    }
    #[inline]
    fn vm_shl(self, _b: Self) -> Self {
        self
    }
    #[inline]
    fn vm_shr(self, _b: Self) -> Self {
        self
    }
    #[inline]
    fn vm_float_unary(self, _f: fn(f64) -> f64) -> Self {
        self
    }
    #[inline]
    fn vm_lowest() -> Self {
        false
    }
    #[inline]
    fn vm_highest() -> Self {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_division_by_zero_is_zero() {
        assert_eq!(7i32.vm_div(0), 0);
        assert_eq!(7u8.vm_mod(0), 0);
        assert_eq!(7i32.vm_div(2), 3);
    }

    #[test]
    fn int_overflow_wraps() {
        assert_eq!(u8::MAX.vm_add(1), 0);
        assert_eq!(i8::MIN.vm_abs(), i8::MIN); // |-128| wraps like NumPy int8
        assert_eq!(200u8.vm_mul(2), 144);
    }

    #[test]
    fn int_pow() {
        assert_eq!(2i64.vm_pow(10), 1024);
        assert_eq!(3u32.vm_pow(0), 1);
        assert_eq!(2i32.vm_pow(-1), 0);
        assert_eq!(1i32.vm_pow(-5), 1);
    }

    #[test]
    fn int_pow_saturates_oversized_exponents() {
        // Regression: `b as u32` used to reduce the exponent mod 2^32, so
        // 2^(2^32) "became" 2^0 = 1. Saturation keeps it at 2^(2^32 - 1),
        // which is 0 mod 2^64.
        let huge = (u32::MAX as u64) + 1;
        assert_eq!(2u64.vm_pow(huge), 2u64.vm_pow(u32::MAX as u64));
        assert_ne!(2u64.vm_pow(huge), 1);
        assert_eq!(2i64.vm_pow(i64::MAX), 0); // 2^(2^32-1) mod 2^64
        assert_eq!(1u64.vm_pow(u64::MAX), 1);
        // In-range exponents are untouched.
        assert_eq!(3u64.vm_pow(4), 81);
    }

    #[test]
    fn int_mod_is_floored() {
        // NumPy convention: a non-zero result takes the divisor's sign.
        assert_eq!((-7i32).vm_mod(3), 2);
        assert_eq!(7i32.vm_mod(-3), -2);
        assert_eq!((-7i32).vm_mod(-3), -1); // rem_euclid wrongly gave 2
        assert_eq!(7i32.vm_mod(3), 1);
        assert_eq!((-6i32).vm_mod(3), 0);
        assert_eq!((-6i32).vm_mod(-3), 0);
        assert_eq!(i32::MIN.vm_mod(-1), 0); // must not overflow
        assert_eq!(i8::MIN.vm_mod(-1), 0);
        // Unsigned dtypes are unaffected.
        assert_eq!(7u8.vm_mod(3), 1);
        assert_eq!(250u8.vm_mod(7), 5);
    }

    #[test]
    fn shifts_mask_counts() {
        assert_eq!(1u8.vm_shl(3), 8);
        assert_eq!(1u8.vm_shl(9), 2); // 9 & 7 == 1
        assert_eq!(128u8.vm_shr(7), 1);
    }

    #[test]
    fn float_mod_sign_of_divisor() {
        assert_eq!((-7.0f64).vm_mod(3.0), 2.0);
        assert_eq!(7.0f64.vm_mod(-3.0), -2.0);
        assert_eq!(7.0f64.vm_mod(3.0), 1.0);
    }

    #[test]
    fn float_pow_and_sign() {
        assert_eq!(2.0f64.vm_pow(10.0), 1024.0);
        assert_eq!((-3.0f64).vm_sign(), -1.0);
        assert_eq!(0.0f64.vm_sign(), 0.0);
        assert!(f64::NAN.vm_sign().is_nan());
    }

    #[test]
    fn float_unary_hook() {
        assert_eq!(4.0f64.vm_float_unary(f64::sqrt), 2.0);
        assert_eq!(4.0f32.vm_float_unary(f64::sqrt), 2.0f32);
        // ints pass through untouched
        assert_eq!(4i32.vm_float_unary(f64::sqrt), 4);
    }

    #[test]
    fn bool_lattice() {
        assert!(true.vm_add(false)); // or
        assert!(!true.vm_mul(false)); // and
        assert!(!true.vm_sub(true)); // xor
        assert!(false.vm_pow(false)); // x^0 == 1
        assert!(!false.vm_pow(true));
        assert!(!true.vm_not());
    }

    #[test]
    fn min_max() {
        assert_eq!(3i32.vm_max(5), 5);
        assert_eq!(3.0f64.vm_min(5.0), 3.0);
        assert!(!true.vm_min(false));
    }
}
