//! VM error type.

use bh_ir::VerifyError;
use bh_linalg::LinalgError;
use bh_tensor::TensorError;
use std::fmt;

/// Errors surfaced while executing a byte-code program.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// The program failed the static verifier before execution. Each
    /// finding carries a stable [`bh_ir::VerifyCode`] so callers (and
    /// serving layers) can reject untrusted byte-code with a
    /// machine-readable reason.
    Invalid(Vec<VerifyError>),
    /// A view or shape operation failed at run time.
    Tensor(TensorError),
    /// A linear-algebra extension op-code failed.
    Linalg(LinalgError),
    /// A register was read (or bound) in an inconsistent state.
    Register {
        /// Human-readable reason.
        reason: String,
    },
}

impl VmError {
    /// The stable machine code for this failure class: `"invalid"`,
    /// `"tensor"`, `"linalg"`, `"register"`. Never changes once shipped.
    pub fn code(&self) -> &'static str {
        match self {
            VmError::Invalid(_) => "invalid",
            VmError::Tensor(_) => "tensor",
            VmError::Linalg(_) => "linalg",
            VmError::Register { .. } => "register",
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Invalid(errors) => {
                write!(
                    f,
                    "program failed verification with {} error(s): ",
                    errors.len()
                )?;
                if let Some(first) = errors.first() {
                    write!(f, "{first}")?;
                }
                Ok(())
            }
            VmError::Tensor(e) => write!(f, "tensor error: {e}"),
            VmError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            VmError::Register { reason } => write!(f, "register error: {reason}"),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Tensor(e) => Some(e),
            VmError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for VmError {
    fn from(e: TensorError) -> VmError {
        VmError::Tensor(e)
    }
}

impl From<LinalgError> for VmError {
    fn from(e: LinalgError) -> VmError {
        VmError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = VmError::Register {
            reason: "r0 unbound".into(),
        };
        assert!(e.to_string().contains("r0 unbound"));
        let e: VmError = TensorError::OutOfBounds { offset: 1, len: 0 }.into();
        assert!(e.to_string().contains("tensor error"));
    }

    #[test]
    fn invalid_display_surfaces_the_first_code() {
        let e = VmError::Invalid(vec![VerifyError::new(
            bh_ir::VerifyCode::ReadBeforeWrite,
            3,
            "register `a` read before any write",
        )]);
        let s = e.to_string();
        assert!(s.contains("V200"), "{s}");
        assert!(s.contains("1 error(s)"), "{s}");
    }
}
