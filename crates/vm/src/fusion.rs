//! Fusion grouping: the "loop-fusion-like contractions" of §2.
//!
//! A run of element-wise byte-codes whose operands are all *full,
//! contiguous* views of equally sized bases can be executed as one fused
//! kernel: instead of `k` passes over `n` elements (each loading and
//! storing the whole array), the fusing engine walks the arrays once in
//! cache-sized blocks, applying all `k` operations per block. Kernel-launch
//! count drops from `k` to 1 and intermediate traffic stays cache-resident.

use bh_ir::{Opcode, Operand, Program, Reg};
use bh_tensor::{DType, Scalar};

/// One scheduling unit for the fusing engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Group {
    /// Not fusable (or a singleton run); execute stand-alone.
    Single(usize),
    /// Instructions `range` fused over a common element count.
    Fused {
        /// Instruction index range (half-open).
        range: std::ops::Range<usize>,
        /// Shared element count of every operand view.
        nelem: usize,
    },
}

/// One input of a fused instruction, fully resolved: fusable views are
/// always the *full, contiguous, offset-0* view of their base, so a
/// register identifies the operand completely — no geometry needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FusedInput {
    /// Full view of a base register.
    Reg(Reg),
    /// Immediate constant (not yet cast to the operating dtype).
    Const(Scalar),
}

/// One instruction of a fused group with its operands classified at
/// compile time, so per-shard execution touches no program structure.
#[derive(Debug, Clone)]
pub(crate) struct FusedInstr {
    /// The element-wise op-code.
    pub op: Opcode,
    /// Output register (written via its full contiguous view).
    pub out: Reg,
    /// Declared dtype of the output base.
    pub out_dtype: DType,
    /// Operating dtype: the dtype of view inputs (validated to agree),
    /// else the output dtype (mirrors the interpreter's rule).
    pub in_dtype: DType,
    /// The instruction's inputs, in operand order (`arity()` entries).
    pub inputs: Vec<FusedInput>,
}

/// Resolve every instruction of a fused `range` into [`FusedInstr`]s.
///
/// Only call this on ranges produced by [`find_groups`]: the
/// classification relies on the fusability invariant (all views full,
/// contiguous, equal length).
pub(crate) fn classify_group(program: &Program, range: std::ops::Range<usize>) -> Vec<FusedInstr> {
    range
        .map(|i| {
            let instr = &program.instrs()[i];
            debug_assert!(instr.op.is_elementwise(), "fused groups are element-wise");
            let out = instr.out_view().expect("element-wise ops have outputs").reg;
            let inputs: Vec<FusedInput> = instr
                .inputs()
                .iter()
                .map(|o| match o {
                    Operand::View(v) => FusedInput::Reg(v.reg),
                    Operand::Const(c) => FusedInput::Const(*c),
                })
                .collect();
            let out_dtype = program.base(out).dtype;
            let in_dtype = inputs
                .iter()
                .find_map(|i| match i {
                    FusedInput::Reg(r) => Some(program.base(*r).dtype),
                    FusedInput::Const(_) => None,
                })
                .unwrap_or(out_dtype);
            FusedInstr {
                op: instr.op,
                out,
                out_dtype,
                in_dtype,
                inputs,
            }
        })
        .collect()
}

/// Element count shared by all of an instruction's full contiguous views,
/// or `None` when the instruction is not fusable.
fn fusable_nelem(program: &Program, idx: usize) -> Option<usize> {
    let instr = &program.instrs()[idx];
    if !instr.op.is_elementwise() {
        return None;
    }
    let mut common: Option<usize> = None;
    for o in &instr.operands {
        match o {
            Operand::Const(_) => {}
            Operand::View(v) => {
                let geom = program.resolve_view(v).ok()?;
                let base_n = program.base(v.reg).shape.nelem();
                if geom.offset() != 0 || !geom.is_contiguous() || geom.nelem() != base_n {
                    return None;
                }
                match common {
                    None => common = Some(geom.nelem()),
                    Some(n) if n != geom.nelem() => return None,
                    _ => {}
                }
            }
        }
    }
    common
}

/// Partition the program into maximal fused groups and singletons.
pub(crate) fn find_groups(program: &Program) -> Vec<Group> {
    let n = program.instrs().len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        match fusable_nelem(program, i) {
            None => {
                out.push(Group::Single(i));
                i += 1;
            }
            Some(nelem) => {
                let mut j = i + 1;
                while j < n && fusable_nelem(program, j) == Some(nelem) {
                    j += 1;
                }
                if j - i >= 2 {
                    out.push(Group::Fused { range: i..j, nelem });
                } else {
                    out.push(Group::Single(i));
                }
                i = j;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;

    #[test]
    fn listing2_adds_fuse() {
        let p = parse_program(
            "BH_IDENTITY a0 [0:10:1] 0\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_SYNC a0 [0:10:1]\n",
        )
        .unwrap();
        let groups = find_groups(&p);
        assert_eq!(
            groups,
            vec![
                Group::Fused {
                    range: 0..4,
                    nelem: 10
                },
                Group::Single(4),
            ]
        );
    }

    #[test]
    fn sync_breaks_groups() {
        let p = parse_program(
            "BH_IDENTITY a0 [0:8:1] 1\n\
             BH_SYNC a0\n\
             BH_ADD a0 a0 1\n\
             BH_ADD a0 a0 1\n",
        )
        .unwrap();
        let groups = find_groups(&p);
        assert_eq!(
            groups,
            vec![
                Group::Single(0),
                Group::Single(1),
                Group::Fused {
                    range: 2..4,
                    nelem: 8
                },
            ]
        );
    }

    #[test]
    fn sliced_views_do_not_fuse() {
        let p = parse_program(
            "BH_IDENTITY a0 [0:8:1] 1\n\
             BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n\
             BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n",
        )
        .unwrap();
        let groups = find_groups(&p);
        // The partial-view adds are not full writes; they stay singles.
        assert_eq!(
            groups,
            vec![Group::Single(0), Group::Single(1), Group::Single(2)]
        );
    }

    #[test]
    fn size_mismatch_splits_group() {
        let p = parse_program(
            "BH_IDENTITY a0 [0:8:1] 1\n\
             BH_IDENTITY b0 [0:4:1] 1\n\
             BH_ADD b0 b0 1\n",
        )
        .unwrap();
        let groups = find_groups(&p);
        assert_eq!(
            groups,
            vec![
                Group::Single(0),
                Group::Fused {
                    range: 1..3,
                    nelem: 4
                },
            ]
        );
    }

    #[test]
    fn singleton_runs_stay_single() {
        let p = parse_program("BH_IDENTITY a0 [0:8:1] 1\nBH_SYNC a0\n").unwrap();
        assert_eq!(find_groups(&p), vec![Group::Single(0), Group::Single(1)]);
    }
}
