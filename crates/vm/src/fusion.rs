//! Fusion grouping: the "loop-fusion-like contractions" of §2.
//!
//! A run of element-wise byte-codes whose operands are all *full,
//! contiguous* views of equally sized bases can be executed as one fused
//! kernel: instead of `k` passes over `n` elements (each loading and
//! storing the whole array), the fusing engine walks the arrays once in
//! cache-sized blocks, applying all `k` operations per block. Kernel-launch
//! count drops from `k` to 1 and intermediate traffic stays cache-resident.

use bh_ir::{Opcode, Operand, Program, Reg};
use bh_tensor::{DType, Scalar};

/// One scheduling unit for the fusing engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Group {
    /// Not fusable (or a singleton run); execute stand-alone.
    Single(usize),
    /// Instructions `range` fused over a common element count.
    Fused {
        /// Instruction index range (half-open).
        range: std::ops::Range<usize>,
        /// Shared element count of every operand view.
        nelem: usize,
    },
    /// A fused element-wise `range` whose result feeds the single-lane
    /// reduction at instruction index `reduce`: the chain and the fold
    /// execute as **one** sharded kernel with per-block accumulators,
    /// never materialising the chain output for a second pass.
    FusedReduce {
        /// Element-wise instruction index range (half-open, excludes the
        /// reduction).
        range: std::ops::Range<usize>,
        /// Shared element count of every chain operand view.
        nelem: usize,
        /// Instruction index of the trailing reduction.
        reduce: usize,
    },
}

/// One input of a fused instruction, fully resolved: fusable views are
/// always the *full, contiguous, offset-0* view of their base, so a
/// register identifies the operand completely — no geometry needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FusedInput {
    /// Full view of a base register.
    Reg(Reg),
    /// Immediate constant (not yet cast to the operating dtype).
    Const(Scalar),
}

/// One instruction of a fused group with its operands classified at
/// compile time, so per-shard execution touches no program structure.
#[derive(Debug, Clone)]
pub(crate) struct FusedInstr {
    /// The element-wise op-code.
    pub op: Opcode,
    /// Output register (written via its full contiguous view).
    pub out: Reg,
    /// Declared dtype of the output base.
    pub out_dtype: DType,
    /// Operating dtype: the dtype of view inputs (validated to agree),
    /// else the output dtype (mirrors the interpreter's rule).
    pub in_dtype: DType,
    /// The instruction's inputs, in operand order (`arity()` entries).
    pub inputs: Vec<FusedInput>,
}

/// Resolve every instruction of a fused `range` into [`FusedInstr`]s.
///
/// Only call this on ranges produced by [`find_groups`]: the
/// classification relies on the fusability invariant (all views full,
/// contiguous, equal length).
pub(crate) fn classify_group(program: &Program, range: std::ops::Range<usize>) -> Vec<FusedInstr> {
    range
        .map(|i| {
            let instr = &program.instrs()[i];
            debug_assert!(instr.op.is_elementwise(), "fused groups are element-wise");
            let out = instr.out_view().expect("element-wise ops have outputs").reg;
            let inputs: Vec<FusedInput> = instr
                .inputs()
                .iter()
                .map(|o| match o {
                    Operand::View(v) => FusedInput::Reg(v.reg),
                    Operand::Const(c) => FusedInput::Const(*c),
                })
                .collect();
            let out_dtype = program.base(out).dtype;
            let in_dtype = inputs
                .iter()
                .find_map(|i| match i {
                    FusedInput::Reg(r) => Some(program.base(*r).dtype),
                    FusedInput::Const(_) => None,
                })
                .unwrap_or(out_dtype);
            FusedInstr {
                op: instr.op,
                out,
                out_dtype,
                in_dtype,
                inputs,
            }
        })
        .collect()
}

/// Element count shared by all of an instruction's full contiguous views,
/// or `None` when the instruction is not fusable.
fn fusable_nelem(program: &Program, idx: usize) -> Option<usize> {
    let instr = &program.instrs()[idx];
    if !instr.op.is_elementwise() {
        return None;
    }
    let mut common: Option<usize> = None;
    for o in &instr.operands {
        match o {
            Operand::Const(_) => {}
            Operand::View(v) => {
                let geom = program.resolve_view(v).ok()?;
                let base_n = program.base(v.reg).shape.nelem();
                if geom.offset() != 0 || !geom.is_contiguous() || geom.nelem() != base_n {
                    return None;
                }
                match common {
                    None => common = Some(geom.nelem()),
                    Some(n) if n != geom.nelem() => return None,
                    _ => {}
                }
            }
        }
    }
    common
}

/// True when instruction `idx` is a reduction the fusing engine can fold
/// into a preceding fused group of `nelem`-element chains: a single-lane
/// (rank-1, axis-0) reduction over the full contiguous view of an
/// `nelem`-element base, producing a scalar of the same dtype in a
/// distinct one-element base. Bool inputs are excluded (they widen to
/// i64), as is `nelem <= 1` (no chain to amortise, and a 1-element chain
/// base could alias the scalar output).
fn fusable_reduce(program: &Program, idx: usize, nelem: usize) -> bool {
    if nelem <= 1 {
        return false;
    }
    let Some(instr) = program.instrs().get(idx) else {
        return false;
    };
    if instr.op.kind() != bh_ir::OpKind::Reduction || instr.op.fold_op().is_none() {
        return false;
    }
    let axis = instr
        .operands
        .get(2)
        .and_then(Operand::as_const)
        .and_then(Scalar::as_integral);
    if axis != Some(0) {
        return false;
    }
    let Some(in_ref) = instr.operands.get(1).and_then(Operand::as_view) else {
        return false;
    };
    let Ok(in_geom) = program.resolve_view(in_ref) else {
        return false;
    };
    let full = in_geom.rank() == 1
        && in_geom.offset() == 0
        && in_geom.is_contiguous()
        && in_geom.nelem() == nelem
        && in_geom.nelem() == program.base(in_ref.reg).shape.nelem();
    if !full {
        return false;
    }
    let Some(out_ref) = instr.out_view() else {
        return false;
    };
    let out_base = program.base(out_ref.reg);
    let Ok(out_geom) = program.resolve_view(out_ref) else {
        return false;
    };
    // Same dtype (no bool→i64 widening) and a dedicated scalar base, so
    // the output can never alias a chain operand.
    out_geom.nelem() == 1
        && out_base.shape.nelem() == 1
        && out_base.dtype == program.base(in_ref.reg).dtype
        && out_ref.reg != in_ref.reg
}

/// Partition the program into maximal fused groups and singletons.
pub(crate) fn find_groups(program: &Program) -> Vec<Group> {
    let n = program.instrs().len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        match fusable_nelem(program, i) {
            None => {
                out.push(Group::Single(i));
                i += 1;
            }
            Some(nelem) => {
                let mut j = i + 1;
                while j < n && fusable_nelem(program, j) == Some(nelem) {
                    j += 1;
                }
                if j - i >= 2 {
                    if fusable_reduce(program, j, nelem) {
                        out.push(Group::FusedReduce {
                            range: i..j,
                            nelem,
                            reduce: j,
                        });
                        i = j + 1;
                        continue;
                    }
                    out.push(Group::Fused { range: i..j, nelem });
                } else {
                    out.push(Group::Single(i));
                }
                i = j;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;

    #[test]
    fn listing2_adds_fuse() {
        let p = parse_program(
            "BH_IDENTITY a0 [0:10:1] 0\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_ADD a0 [0:10:1] a0 [0:10:1] 1\n\
             BH_SYNC a0 [0:10:1]\n",
        )
        .unwrap();
        let groups = find_groups(&p);
        assert_eq!(
            groups,
            vec![
                Group::Fused {
                    range: 0..4,
                    nelem: 10
                },
                Group::Single(4),
            ]
        );
    }

    #[test]
    fn sync_breaks_groups() {
        let p = parse_program(
            "BH_IDENTITY a0 [0:8:1] 1\n\
             BH_SYNC a0\n\
             BH_ADD a0 a0 1\n\
             BH_ADD a0 a0 1\n",
        )
        .unwrap();
        let groups = find_groups(&p);
        assert_eq!(
            groups,
            vec![
                Group::Single(0),
                Group::Single(1),
                Group::Fused {
                    range: 2..4,
                    nelem: 8
                },
            ]
        );
    }

    #[test]
    fn sliced_views_do_not_fuse() {
        let p = parse_program(
            "BH_IDENTITY a0 [0:8:1] 1\n\
             BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n\
             BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n",
        )
        .unwrap();
        let groups = find_groups(&p);
        // The partial-view adds are not full writes; they stay singles.
        assert_eq!(
            groups,
            vec![Group::Single(0), Group::Single(1), Group::Single(2)]
        );
    }

    #[test]
    fn size_mismatch_splits_group() {
        let p = parse_program(
            "BH_IDENTITY a0 [0:8:1] 1\n\
             BH_IDENTITY b0 [0:4:1] 1\n\
             BH_ADD b0 b0 1\n",
        )
        .unwrap();
        let groups = find_groups(&p);
        assert_eq!(
            groups,
            vec![
                Group::Single(0),
                Group::Fused {
                    range: 1..3,
                    nelem: 4
                },
            ]
        );
    }

    #[test]
    fn singleton_runs_stay_single() {
        let p = parse_program("BH_IDENTITY a0 [0:8:1] 1\nBH_SYNC a0\n").unwrap();
        assert_eq!(find_groups(&p), vec![Group::Single(0), Group::Single(1)]);
    }

    #[test]
    fn trailing_full_reduction_joins_the_group() {
        let p = parse_program(
            ".base x f64[8]\n.base s f64[]\n\
             BH_IDENTITY x 1\n\
             BH_ADD x x 2\n\
             BH_ADD_REDUCE s x 0\n\
             BH_SYNC s\n",
        )
        .unwrap();
        assert_eq!(
            find_groups(&p),
            vec![
                Group::FusedReduce {
                    range: 0..2,
                    nelem: 8,
                    reduce: 2
                },
                Group::Single(3),
            ]
        );
    }

    #[test]
    fn reduction_without_a_chain_stays_single() {
        let p = parse_program(
            ".base x f64[8] input\n.base s f64[]\n\
             BH_ADD_REDUCE s x 0\nBH_SYNC s\n",
        )
        .unwrap();
        assert_eq!(find_groups(&p), vec![Group::Single(0), Group::Single(1)]);
    }

    #[test]
    fn multi_lane_and_widening_reductions_do_not_fuse() {
        // Rank-2 input: multi-lane, stays outside the group.
        let p = parse_program(
            ".base m f64[2,4]\n.base s f64[4]\n\
             BH_IDENTITY m 1\nBH_ADD m m 1\n\
             BH_ADD_REDUCE s m 0\nBH_SYNC s\n",
        )
        .unwrap();
        assert_eq!(
            find_groups(&p),
            vec![
                Group::Fused {
                    range: 0..2,
                    nelem: 8
                },
                Group::Single(2),
                Group::Single(3),
            ]
        );
        // Bool input widens to i64: stays outside the group.
        let p = parse_program(
            ".base b bool[8]\n.base s i64[]\n\
             BH_IDENTITY b 1\nBH_BITWISE_AND b b 1\n\
             BH_ADD_REDUCE s b 0\nBH_SYNC s\n",
        )
        .unwrap();
        assert_eq!(
            find_groups(&p),
            vec![
                Group::Fused {
                    range: 0..2,
                    nelem: 8
                },
                Group::Single(2),
                Group::Single(3),
            ]
        );
    }

    #[test]
    fn scan_after_chain_does_not_join() {
        let p = parse_program(
            ".base x f64[8]\n.base c f64[8]\n\
             BH_IDENTITY x 1\nBH_ADD x x 2\n\
             BH_ADD_ACCUMULATE c x 0\nBH_SYNC c\n",
        )
        .unwrap();
        assert_eq!(
            find_groups(&p),
            vec![
                Group::Fused {
                    range: 0..2,
                    nelem: 8
                },
                Group::Single(2),
                Group::Single(3),
            ]
        );
    }
}
