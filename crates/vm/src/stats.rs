//! Execution statistics and the abstract cost counters.
//!
//! The paper's transformations pay off by *removing byte-codes* (fewer
//! kernel launches, less memory traffic) or *replacing expensive op-codes*
//! (fewer flops). The VM measures all three so benchmarks can report the
//! model quantities alongside wall-clock time, making the experiment shapes
//! reproducible on any host.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counters accumulated while executing a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Instructions executed (excluding `BH_NONE`).
    pub instructions: u64,
    /// Kernels launched: one per byte-code on the naive engine, one per
    /// fused group on the fusing engine.
    pub kernels: u64,
    /// Fused groups executed (fusing engine only).
    pub fused_groups: u64,
    /// Contiguous element shards dispatched to the worker pool — by
    /// parallel fused-group runs and by sharded unfused element-wise
    /// kernels (0 when everything ran serially). Purely observational:
    /// sharding never changes results or the other counters
    /// (DESIGN.md §10).
    pub par_shards: u64,
    /// Ranges dispatched to the worker pool by parallel reductions and
    /// scans (lane shards of multi-lane reductions, canonical-block
    /// shards of single-lane ones; 0 when every fold ran serially).
    /// Observational like [`ExecStats::par_shards`]: the deterministic
    /// combine tree keeps results and the analytic counters identical
    /// at every thread count (DESIGN.md §11).
    pub reduce_shards: u64,
    /// Reductions executed fused into a preceding element-wise group
    /// (fusing engine only): the chain and the fold ran as one sharded
    /// kernel with per-block accumulators.
    pub fused_reductions: u64,
    /// Elements written to output views.
    pub elements_written: u64,
    /// Bytes read from base arrays by input views.
    pub bytes_read: u64,
    /// Bytes written to base arrays by output views.
    pub bytes_written: u64,
    /// Abstract flops: per-element op-code unit costs plus linalg flop
    /// models (see `Opcode::unit_cost` and `bh-linalg`).
    pub flops: u64,
    /// `BH_SYNC`s observed (host-visible results).
    pub syncs: u64,
}

impl ExecStats {
    /// Fresh zeroed counters.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Total modelled memory traffic in bytes.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Modelled execution time in abstract units: each kernel launch pays a
    /// fixed overhead `launch_overhead`, each byte moved costs 1, each flop
    /// costs `flop_cost`. The defaults (overhead 4096, flop cost 4) mirror
    /// a GPU-offload regime where the paper's transformations matter most.
    pub fn model_time(&self, launch_overhead: u64, flop_cost: u64) -> u64 {
        self.kernels * launch_overhead + self.bytes_total() + self.flops * flop_cost
    }

    /// Field-wise difference against an earlier snapshot of the *same*
    /// accumulating counters — the per-run delta when several runs share
    /// one VM without recycling in between. Saturates at zero so a stale
    /// snapshot can never produce wrapped counters.
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            kernels: self.kernels.saturating_sub(earlier.kernels),
            fused_groups: self.fused_groups.saturating_sub(earlier.fused_groups),
            par_shards: self.par_shards.saturating_sub(earlier.par_shards),
            reduce_shards: self.reduce_shards.saturating_sub(earlier.reduce_shards),
            fused_reductions: self
                .fused_reductions
                .saturating_sub(earlier.fused_reductions),
            elements_written: self
                .elements_written
                .saturating_sub(earlier.elements_written),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            flops: self.flops.saturating_sub(earlier.flops),
            syncs: self.syncs.saturating_sub(earlier.syncs),
        }
    }
}

impl Add for ExecStats {
    type Output = ExecStats;

    // Saturating: these counters aggregate for the life of a server, and
    // merging snapshots must never overflow-panic in debug builds.
    fn add(self, rhs: ExecStats) -> ExecStats {
        ExecStats {
            instructions: self.instructions.saturating_add(rhs.instructions),
            kernels: self.kernels.saturating_add(rhs.kernels),
            fused_groups: self.fused_groups.saturating_add(rhs.fused_groups),
            par_shards: self.par_shards.saturating_add(rhs.par_shards),
            reduce_shards: self.reduce_shards.saturating_add(rhs.reduce_shards),
            fused_reductions: self.fused_reductions.saturating_add(rhs.fused_reductions),
            elements_written: self.elements_written.saturating_add(rhs.elements_written),
            bytes_read: self.bytes_read.saturating_add(rhs.bytes_read),
            bytes_written: self.bytes_written.saturating_add(rhs.bytes_written),
            flops: self.flops.saturating_add(rhs.flops),
            syncs: self.syncs.saturating_add(rhs.syncs),
        }
    }
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instrs={} kernels={} fused={} shards={} rshards={} fredux={} elems={} read={}B written={}B flops={} syncs={}",
            self.instructions,
            self.kernels,
            self.fused_groups,
            self.par_shards,
            self.reduce_shards,
            self.fused_reductions,
            self.elements_written,
            self.bytes_read,
            self.bytes_written,
            self.flops,
            self.syncs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_model_time() {
        let s = ExecStats {
            kernels: 2,
            bytes_read: 100,
            bytes_written: 50,
            flops: 10,
            ..ExecStats::default()
        };
        assert_eq!(s.bytes_total(), 150);
        assert_eq!(s.model_time(1000, 4), 2 * 1000 + 150 + 40);
    }

    #[test]
    fn add_combines_fieldwise() {
        let a = ExecStats {
            instructions: 1,
            kernels: 2,
            ..Default::default()
        };
        let b = ExecStats {
            instructions: 10,
            syncs: 1,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.instructions, 11);
        assert_eq!(c.kernels, 2);
        assert_eq!(c.syncs, 1);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!ExecStats::new().to_string().is_empty());
    }

    #[test]
    fn since_yields_the_delta() {
        let before = ExecStats {
            instructions: 5,
            kernels: 4,
            bytes_read: 100,
            ..Default::default()
        };
        let after = ExecStats {
            instructions: 9,
            kernels: 6,
            bytes_read: 180,
            syncs: 1,
            ..Default::default()
        };
        let d = after.since(&before);
        assert_eq!(d.instructions, 4);
        assert_eq!(d.kernels, 2);
        assert_eq!(d.bytes_read, 80);
        assert_eq!(d.syncs, 1);
        // A stale (larger) snapshot saturates instead of wrapping.
        assert_eq!(before.since(&after).instructions, 0);
    }

    #[test]
    fn reduction_counters_flow_through_add_and_since() {
        let a = ExecStats {
            reduce_shards: 3,
            fused_reductions: 1,
            ..Default::default()
        };
        let b = ExecStats {
            reduce_shards: 5,
            fused_reductions: 2,
            ..Default::default()
        };
        assert_eq!((a + b).reduce_shards, 8);
        assert_eq!((a + b).fused_reductions, 3);
        assert_eq!(b.since(&a).reduce_shards, 2);
        assert_eq!(b.since(&a).fused_reductions, 1);
    }
}
