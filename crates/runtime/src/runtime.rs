//! The unified runtime: optimise → plan → execute behind one handle.

use crate::cache::{opcode_census, CacheKey, EvalPlan, TransformCache};
use crate::stats::RuntimeStats;
use bh_ir::Program;
use bh_observe::{DigestProfile, EvalSample, ProfileTable, TracePhase, TraceSink};
use bh_opt::{OptLevel, OptOptions, Optimizer, RewriteCtx};
use bh_tensor::Tensor;
use bh_vm::{Engine, PooledVm, Vm, VmError, VmPool};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Observer invoked after every evaluation, for metrics export.
pub type StatsSink = Arc<dyn Fn(&EvalOutcome) + Send + Sync>;

/// Upper bound on pooled VMs kept for reuse across evaluations.
const VM_POOL_LIMIT: usize = 8;

/// What one evaluation did: the plan it ran (shared with the cache), the
/// VM counters it accumulated, and whether the rewrite fixpoint was
/// skipped. Returned alongside the tensor by [`Runtime::eval`] — this
/// replaces the old `last_report`/`last_stats` mutable-context API.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The optimised plan that executed.
    pub plan: Arc<EvalPlan>,
    /// Execution counters for this evaluation only.
    pub exec: bh_vm::ExecStats,
    /// True when the plan came from the transformation cache.
    pub cache_hit: bool,
    /// Wall-clock time of this evaluation (bind → execute → read-back,
    /// excluding optimisation and queueing). This is the service-time
    /// signal a latency-SLO control loop should consume — a serving
    /// layer's turnaround additionally includes queue wait, which says
    /// something about load, not about per-request cost.
    pub elapsed: Duration,
}

impl EvalOutcome {
    /// The optimisation report of the plan that ran (produced once, when
    /// the plan was first built — on a cache hit it describes the original
    /// transformation, not re-done work).
    pub fn report(&self) -> &bh_opt::OptReport {
        &self.plan.report
    }
}

/// The single entry point of the stack: owns the optimiser schedule, the
/// execution-engine configuration, the transformation cache and the
/// aggregated statistics. Thread-safe; share one behind an `Arc` across
/// as many recording contexts or request handlers as you like.
///
/// # Examples
///
/// ```
/// use bh_ir::parse_program;
/// use bh_runtime::Runtime;
///
/// let rt = Runtime::new();
/// let program = parse_program(
///     "BH_IDENTITY a0 [0:10:1] 0\n\
///      BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
///      BH_SYNC a0\n")?;
/// let reg = program.reg_by_name("a0").unwrap();
///
/// let (value, outcome) = rt.eval(&program, &[], reg)?;
/// assert_eq!(value.to_f64_vec(), vec![3.0; 10]);
/// assert!(!outcome.cache_hit);
///
/// // Same structure again: the rewrite fixpoint is skipped entirely.
/// let (_, outcome) = rt.eval(&program, &[], reg)?;
/// assert!(outcome.cache_hit);
/// assert_eq!(rt.stats().cache_hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Runtime {
    options: OptOptions,
    cache_capacity: usize,
    cache: Mutex<TransformCache>,
    stats: Mutex<RuntimeStats>,
    vm_pool: VmPool,
    sink: Option<StatsSink>,
    profile: Option<Arc<ProfileTable>>,
    tracer: Option<Arc<dyn TraceSink>>,
}

impl Default for Runtime {
    fn default() -> Runtime {
        Runtime::builder().build()
    }
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("options", &self.options)
            .field("engine", &self.vm_pool.engine())
            .field("threads", &self.vm_pool.threads())
            .field("cached_plans", &self.cache.lock().len())
            .field("stats", &*self.stats.lock())
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// A runtime with Bohrium's defaults (O2, fast-math, naive engine).
    pub fn new() -> Runtime {
        Runtime::default()
    }

    /// Start configuring a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// The optimisation options applied to every plan (unless overridden
    /// per call with [`Runtime::eval_with`]).
    pub fn options(&self) -> &OptOptions {
        &self.options
    }

    /// The execution engine evaluations run on.
    pub fn engine(&self) -> Engine {
        self.vm_pool.engine()
    }

    /// Worker threads handed to each VM.
    pub fn threads(&self) -> usize {
        self.vm_pool.threads()
    }

    /// Configured capacity of the transformation cache (0 = disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// The configured per-eval observer, if any (shareable; lets a
    /// rebuilt runtime keep reporting to the same sink).
    pub fn stats_sink(&self) -> Option<StatsSink> {
        self.sink.clone()
    }

    /// The per-digest profile table, when profiling is enabled (the
    /// default). Serving layers use this to record queue-wait per digest
    /// and exporters render it via its `bh_observe::Collect` impl.
    pub fn profile_table(&self) -> Option<&Arc<ProfileTable>> {
        self.profile.as_ref()
    }

    /// The `k` hottest digests with their accumulated profiles — hit
    /// count, per-stage mean latencies, per-opcode execution totals.
    /// Empty when profiling was disabled at build time. This is the
    /// hotness signal a tiered, profile-guided optimisation policy
    /// consumes.
    ///
    /// # Examples
    ///
    /// ```
    /// use bh_ir::parse_program;
    /// use bh_observe::Stage;
    /// use bh_runtime::Runtime;
    ///
    /// let rt = Runtime::new();
    /// let program = parse_program(
    ///     "BH_IDENTITY a0 [0:10:1] 0\n\
    ///      BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
    ///      BH_SYNC a0\n")?;
    /// let reg = program.reg_by_name("a0").unwrap();
    /// for _ in 0..3 {
    ///     rt.eval(&program, &[], reg)?;
    /// }
    ///
    /// let top = rt.profile(10);
    /// assert_eq!(top.len(), 1);
    /// let hottest = &top[0];
    /// assert_eq!(hottest.hits, 3);
    /// assert_eq!(hottest.plan_builds, 1); // optimised + verified once
    /// assert!(hottest.mean_stage(Stage::Execute) > std::time::Duration::ZERO);
    /// // Per-opcode accounting: the optimised plan's census × hits.
    /// assert!(!hottest.opcode_totals().is_empty());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn profile(&self, k: usize) -> Vec<DigestProfile> {
        self.profile
            .as_ref()
            .map(|t| t.top_k(k))
            .unwrap_or_default()
    }

    /// The configured trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.tracer.as_ref()
    }

    /// Emit a span event to the trace sink: one branch when tracing is
    /// disabled.
    #[inline]
    fn trace(&self, phase: TracePhase, stage: &'static str, fingerprint: u64) {
        if let Some(t) = &self.tracer {
            t.record(phase, stage, fingerprint, None);
        }
    }

    /// Snapshot of the aggregated counters.
    pub fn stats(&self) -> RuntimeStats {
        *self.stats.lock()
    }

    /// Zero the aggregated counters (the cache is untouched).
    pub fn reset_stats(&self) {
        *self.stats.lock() = RuntimeStats::new();
    }

    /// Number of optimised plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().len()
    }

    /// Drop every cached plan (counters are untouched).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }

    /// Optimise `program` into an executable plan — or fetch the plan the
    /// cache already holds for a structurally identical program. The
    /// returned flag is true on a cache hit.
    ///
    /// The plan is verified once here and the [`bh_ir::Verified`] witness
    /// is stored in the cache; execution takes the trusted
    /// [`bh_vm::Vm::run_verified`] path with zero re-verification, like a
    /// byte-code verifier running at load time rather than per run
    /// ([`RuntimeStats::verifications`] counts how often this actually
    /// happened).
    ///
    /// # Errors
    ///
    /// [`VmError::Invalid`] when the optimised program fails verification.
    pub fn prepare(&self, program: &Program) -> Result<(Arc<EvalPlan>, bool), VmError> {
        self.prepare_with(program, &self.options)
    }

    /// [`Runtime::prepare`] under explicit options (cached separately per
    /// options value, so callers can mix levels on one runtime).
    ///
    /// # Errors
    ///
    /// [`VmError::Invalid`] when the optimised program fails verification.
    pub fn prepare_with(
        &self,
        program: &Program,
        options: &OptOptions,
    ) -> Result<(Arc<EvalPlan>, bool), VmError> {
        let digest = program.structural_digest();
        let key = CacheKey {
            digest,
            options: options.clone(),
        };
        if let Some(plan) = self.cache.lock().get(&key) {
            self.stats.lock().cache_hits += 1;
            return Ok((plan, true));
        }
        // Optimise outside the cache lock: a concurrent miss on the same
        // key duplicates work once, but never blocks other keys.
        let fingerprint = key.digest.fingerprint();
        let mut optimised = program.clone();
        self.trace(TracePhase::Begin, "optimise", fingerprint);
        let opt_begun = Instant::now();
        let report = Optimizer::new(options.clone()).run(&mut optimised);
        let opt_elapsed = opt_begun.elapsed();
        self.trace(TracePhase::End, "optimise", fingerprint);
        {
            // Record the miss before verification can bail: the optimiser
            // *did* run, and an invalid program re-fed forever should show
            // up as misses on a dashboard, not as a free 100% hit rate.
            // `verifications` counts alongside — verification runs exactly
            // once per miss and never on a hit, which is what the
            // checked-once claim means operationally.
            let mut stats = self.stats.lock();
            stats.cache_misses += 1;
            stats.verifications += 1;
            stats.rules_fired += report.total_applications() as u64;
            stats.opt_iterations += report.iterations as u64;
        }
        let census = opcode_census(&optimised);
        self.trace(TracePhase::Begin, "verify", fingerprint);
        let verify_begun = Instant::now();
        let verified = bh_ir::verify_owned(optimised).map_err(|(_, e)| VmError::Invalid(e))?;
        let verify_elapsed = verify_begun.elapsed();
        self.trace(TracePhase::End, "verify", fingerprint);
        if let Some(table) = &self.profile {
            table.record_plan_build(fingerprint, opt_elapsed, verify_elapsed, &census);
        }
        let plan = Arc::new(EvalPlan {
            program: verified,
            report,
            source_fingerprint: fingerprint,
            opcode_census: census,
        });
        let plan = self.cache.lock().insert(key, plan);
        Ok((plan, false))
    }

    /// Optimise (or fetch) and execute `program`, binding `bindings`
    /// (register → input tensor) first, and read back `result`.
    ///
    /// # Errors
    ///
    /// Validation failures of the optimised program, binding mismatches,
    /// or execution failures.
    pub fn eval(
        &self,
        program: &Program,
        bindings: &[(bh_ir::Reg, Tensor)],
        result: bh_ir::Reg,
    ) -> Result<(Tensor, EvalOutcome), VmError> {
        self.eval_with(program, bindings, result, &self.options)
    }

    /// [`Runtime::eval`] under explicit options.
    ///
    /// # Errors
    ///
    /// As [`Runtime::eval`].
    pub fn eval_with(
        &self,
        program: &Program,
        bindings: &[(bh_ir::Reg, Tensor)],
        result: bh_ir::Reg,
        options: &OptOptions,
    ) -> Result<(Tensor, EvalOutcome), VmError> {
        let (outcome, value) = self.run_plan(program, bindings, Some(result), options)?;
        Ok((value.expect("result register requested"), outcome))
    }

    /// Optimise (or fetch) and execute `program` without reading a result
    /// — the old `Context::flush` shape.
    ///
    /// # Errors
    ///
    /// As [`Runtime::eval`].
    pub fn execute(
        &self,
        program: &Program,
        bindings: &[(bh_ir::Reg, Tensor)],
    ) -> Result<EvalOutcome, VmError> {
        let (outcome, _) = self.run_plan(program, bindings, None, &self.options)?;
        Ok(outcome)
    }

    fn run_plan(
        &self,
        program: &Program,
        bindings: &[(bh_ir::Reg, Tensor)],
        result: Option<bh_ir::Reg>,
        options: &OptOptions,
    ) -> Result<(EvalOutcome, Option<Tensor>), VmError> {
        let (plan, cache_hit) = self.prepare_with(program, options)?;
        let mut vm = self.lease_vm();
        let (value, outcome) = self.eval_prepared(&plan, &mut vm, bindings, result, cache_hit)?;
        Ok((outcome, value))
    }

    /// Check a clean, correctly configured VM out of the runtime's pool.
    /// Dropping the guard recycles it back in. A serving layer pins one
    /// lease per micro-batch so the VM's base-slot table — and, across
    /// same-plan runs, its base buffers — amortise over the batch.
    pub fn lease_vm(&self) -> PooledVm<'_> {
        self.vm_pool.checkout()
    }

    /// Execute an already-prepared plan on a caller-held VM: the
    /// batched-serving hot path. Skips the digest computation, the cache
    /// lookup *and* the per-eval VM checkout that [`Runtime::eval`] pays;
    /// the plan carries the [`bh_ir::Verified`] witness minted when it
    /// was built, so execution takes [`bh_vm::Vm::run_verified`]'s
    /// trusted path.
    ///
    /// The VM is **not** recycled, so back-to-back calls with the *same*
    /// plan reuse its base buffers. That reuse is only observation-free
    /// when `bh_ir::analysis::rerun_safe(&plan.program)` holds **and**
    /// every base declared `input` appears in `bindings` (rebinding
    /// replaces the buffer wholesale); otherwise — and always when
    /// switching plans — call [`Vm::recycle`] between runs. The serve
    /// batcher checks exactly these two conditions per request (see
    /// DESIGN.md §7).
    ///
    /// `cache_hit` is recorded on the returned [`EvalOutcome`] (pass the
    /// flag [`Runtime::prepare`] returned, or `true` when re-running a
    /// held plan).
    ///
    /// # Errors
    ///
    /// Binding mismatches or execution failures. On error the VM may hold
    /// partial state; recycle it before reuse.
    pub fn eval_prepared(
        &self,
        plan: &Arc<EvalPlan>,
        vm: &mut Vm,
        bindings: &[(bh_ir::Reg, Tensor)],
        result: Option<bh_ir::Reg>,
        cache_hit: bool,
    ) -> Result<(Option<Tensor>, EvalOutcome), VmError> {
        let fingerprint = plan.source_fingerprint;
        // Stage splits cost two extra clock reads per eval and only when
        // profiling is on; the disabled path is the seed's, unchanged.
        let profiling = self.profile.is_some();
        let before = *vm.stats();
        self.trace(TracePhase::Begin, "bind", fingerprint);
        let begun = Instant::now();
        for (reg, tensor) in bindings {
            vm.bind(&plan.program, *reg, tensor)?;
        }
        let bound_at = if profiling {
            Some(Instant::now())
        } else {
            None
        };
        self.trace(TracePhase::End, "bind", fingerprint);
        self.trace(TracePhase::Begin, "execute", fingerprint);
        // The plan carries its verification witness from build time, so
        // this is the trusted path: zero verify/validate calls per eval.
        vm.run_verified(plan.program.as_verified())?;
        let ran_at = if profiling {
            Some(Instant::now())
        } else {
            None
        };
        self.trace(TracePhase::End, "execute", fingerprint);
        self.trace(TracePhase::Begin, "read_back", fingerprint);
        let value = match result {
            Some(reg) => Some(vm.read(&plan.program, reg)?),
            None => None,
        };
        let elapsed = begun.elapsed();
        self.trace(TracePhase::End, "read_back", fingerprint);
        let exec = vm.stats().since(&before);
        {
            let mut stats = self.stats.lock();
            stats.evals += 1;
            stats.exec += exec;
            stats.eval_nanos += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        }
        if let Some(table) = &self.profile {
            let total = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            let bind = bound_at
                .map(|t| t.duration_since(begun))
                .unwrap_or_default();
            let execute = match (bound_at, ran_at) {
                (Some(b), Some(r)) => r.duration_since(b),
                _ => Duration::ZERO,
            };
            let bind_nanos = u64::try_from(bind.as_nanos()).unwrap_or(u64::MAX);
            let execute_nanos = u64::try_from(execute.as_nanos()).unwrap_or(u64::MAX);
            table.record_eval(
                fingerprint,
                &EvalSample {
                    bind_nanos,
                    execute_nanos,
                    read_back_nanos: total.saturating_sub(bind_nanos.saturating_add(execute_nanos)),
                    exec,
                },
                &plan.opcode_census,
            );
        }
        let outcome = EvalOutcome {
            plan: Arc::clone(plan),
            exec,
            cache_hit,
            elapsed,
        };
        if let Some(sink) = &self.sink {
            sink(&outcome);
        }
        Ok((value, outcome))
    }
}

/// Configures and builds a [`Runtime`].
///
/// # Examples
///
/// ```
/// use bh_opt::OptLevel;
/// use bh_runtime::Runtime;
/// use bh_vm::Engine;
///
/// let rt = Runtime::builder()
///     .opt_level(OptLevel::O2)
///     .engine(Engine::Fusing { block: 4096 })
///     .threads(4)
///     .cache_capacity(512)
///     .build_shared();
/// assert_eq!(rt.threads(), 4);
/// ```
pub struct RuntimeBuilder {
    options: OptOptions,
    engine: Engine,
    threads: usize,
    cache_capacity: usize,
    sink: Option<StatsSink>,
    profiling: bool,
    profile_capacity: usize,
    tracer: Option<Arc<dyn TraceSink>>,
}

impl Default for RuntimeBuilder {
    fn default() -> RuntimeBuilder {
        RuntimeBuilder {
            options: OptOptions::default(),
            engine: Engine::Naive,
            threads: default_threads(),
            cache_capacity: 256,
            sink: None,
            profiling: true,
            profile_capacity: 1024,
            tracer: None,
        }
    }
}

/// Default VM worker-thread count: every core the host grants us
/// (`std::thread::available_parallelism`), so large element-wise
/// operations and fused groups stream on all cores out of the box.
/// Falls back to 1 when the parallelism query fails.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

impl fmt::Debug for RuntimeBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeBuilder")
            .field("options", &self.options)
            .field("engine", &self.engine)
            .field("threads", &self.threads)
            .field("cache_capacity", &self.cache_capacity)
            .field("has_sink", &self.sink.is_some())
            .field("profiling", &self.profiling)
            .field("profile_capacity", &self.profile_capacity)
            .field("has_tracer", &self.tracer.is_some())
            .finish()
    }
}

impl RuntimeBuilder {
    /// Replace the full optimisation options.
    pub fn options(mut self, options: OptOptions) -> RuntimeBuilder {
        self.options = options;
        self
    }

    /// Set just the optimisation level.
    pub fn opt_level(mut self, level: OptLevel) -> RuntimeBuilder {
        self.options.level = level;
        self
    }

    /// Replace the rewrite-context knobs (fast-math policy, expansion
    /// budget, observability).
    pub fn rewrite_ctx(mut self, ctx: RewriteCtx) -> RuntimeBuilder {
        self.options.ctx = ctx;
        self
    }

    /// Strict IEEE float semantics (no re-associating rewrites on floats).
    pub fn strict_math(mut self) -> RuntimeBuilder {
        self.options.ctx.fast_math = false;
        self
    }

    /// Select the execution engine for every evaluation.
    pub fn engine(mut self, engine: Engine) -> RuntimeBuilder {
        self.engine = engine;
        self
    }

    /// Worker threads per VM for large element-wise operations and fused
    /// groups. Defaults to [`std::thread::available_parallelism`]; the
    /// runtime owns **one** persistent worker pool shared by every pooled
    /// VM, so concurrent evaluations never over-subscribe the host.
    /// Values are clamped to at least 1; `1` disables parallelism.
    pub fn threads(mut self, threads: usize) -> RuntimeBuilder {
        self.threads = threads.max(1);
        self
    }

    /// Plans kept in the transformation cache (0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> RuntimeBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// Observer called after every evaluation with its [`EvalOutcome`]
    /// (metrics export, logging).
    pub fn stats_sink(
        mut self,
        sink: impl Fn(&EvalOutcome) + Send + Sync + 'static,
    ) -> RuntimeBuilder {
        self.sink = Some(Arc::new(sink));
        self
    }

    /// Install an already-shared observer (e.g. one taken from another
    /// runtime via [`Runtime::stats_sink`]).
    pub fn stats_sink_shared(mut self, sink: StatsSink) -> RuntimeBuilder {
        self.sink = Some(sink);
        self
    }

    /// Enable or disable the per-digest profile table (enabled by
    /// default). Disabling removes even the profiler's two extra clock
    /// reads from the eval path.
    pub fn profiling(mut self, enabled: bool) -> RuntimeBuilder {
        self.profiling = enabled;
        self
    }

    /// Digests the profile table retains before evicting the coldest
    /// (default 1024; clamped to at least one per lock stripe).
    pub fn profile_capacity(mut self, capacity: usize) -> RuntimeBuilder {
        self.profile_capacity = capacity;
        self
    }

    /// Install a request-lifecycle trace sink (e.g.
    /// [`bh_observe::RingTraceSink::shared`]). Tracing is off by default
    /// and costs one branch per span point when disabled.
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> RuntimeBuilder {
        self.tracer = Some(sink);
        self
    }

    /// Build the runtime.
    pub fn build(self) -> Runtime {
        Runtime {
            options: self.options,
            cache_capacity: self.cache_capacity,
            cache: Mutex::new(TransformCache::new(self.cache_capacity)),
            stats: Mutex::new(RuntimeStats::new()),
            vm_pool: VmPool::new(self.engine, self.threads, VM_POOL_LIMIT),
            sink: self.sink,
            profile: self
                .profiling
                .then(|| Arc::new(ProfileTable::new(self.profile_capacity))),
            tracer: self.tracer,
        }
    }

    /// Build the runtime already wrapped for sharing across contexts and
    /// threads.
    pub fn build_shared(self) -> Arc<Runtime> {
        Arc::new(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;
    use bh_tensor::{DType, Shape, Tensor};

    fn listing2() -> Program {
        parse_program(
            "BH_IDENTITY a0 [0:10:1] 0\n\
             BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
             BH_SYNC a0\n",
        )
        .unwrap()
    }

    #[test]
    fn second_eval_hits_the_cache_and_matches() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let (v1, o1) = rt.eval(&p, &[], reg).unwrap();
        let (v2, o2) = rt.eval(&p, &[], reg).unwrap();
        assert_eq!(v1, v2);
        assert!(!o1.cache_hit);
        assert!(o2.cache_hit);
        assert!(Arc::ptr_eq(&o1.plan, &o2.plan));
        let stats = rt.stats();
        assert_eq!(stats.evals, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        // The fixpoint ran exactly once.
        assert_eq!(stats.rules_fired, o1.report().total_applications() as u64);
    }

    #[test]
    fn renamed_registers_share_a_plan() {
        let rt = Runtime::new();
        let p = listing2();
        let q = parse_program(
            "BH_IDENTITY z [0:10:1] 0\n\
             BH_ADD z z 1\nBH_ADD z z 1\nBH_ADD z z 1\n\
             BH_SYNC z\n",
        )
        .unwrap();
        rt.eval(&p, &[], p.reg_by_name("a0").unwrap()).unwrap();
        let (v, o) = rt.eval(&q, &[], q.reg_by_name("z").unwrap()).unwrap();
        assert!(o.cache_hit);
        assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
    }

    #[test]
    fn options_fingerprints_partition_the_cache() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let (_, o2) = rt.eval(&p, &[], reg).unwrap();
        let (_, o0) = rt
            .eval_with(&p, &[], reg, &OptOptions::level(OptLevel::O0))
            .unwrap();
        assert!(!o2.cache_hit);
        assert!(!o0.cache_hit);
        assert_eq!(rt.cached_plans(), 2);
        // O0 kept all three adds; O2 merged them.
        assert!(o0.plan.program.instrs().len() > o2.plan.program.instrs().len());
    }

    #[test]
    fn bindings_feed_input_registers() {
        let rt = Runtime::new();
        let p = parse_program(".base x f64[4] input\n.base y f64[4]\nBH_ADD y x 1\nBH_SYNC y\n")
            .unwrap();
        let x = p.reg_by_name("x").unwrap();
        let y = p.reg_by_name("y").unwrap();
        let input = Tensor::from_vec(vec![1.0f64, 2.0, 3.0, 4.0]);
        let (v, _) = rt.eval(&p, &[(x, input)], y).unwrap();
        assert_eq!(v.to_f64_vec(), vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn outcomes_carry_service_time() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let (_, o1) = rt.eval(&p, &[], reg).unwrap();
        let (_, o2) = rt.eval(&p, &[], reg).unwrap();
        assert!(o1.elapsed > Duration::ZERO);
        let stats = rt.stats();
        assert_eq!(
            stats.eval_nanos,
            (o1.elapsed.as_nanos() + o2.elapsed.as_nanos()) as u64
        );
        assert!(stats.mean_eval_time() > Duration::ZERO);
        assert!(stats.eval_time() >= stats.mean_eval_time());
    }

    #[test]
    fn execute_runs_without_reading() {
        let rt = Runtime::new();
        let outcome = rt.execute(&listing2(), &[]).unwrap();
        assert!(!outcome.cache_hit);
        assert!(outcome.exec.kernels > 0);
        assert_eq!(rt.stats().evals, 1);
    }

    #[test]
    fn invalid_program_is_rejected_at_prepare() {
        let rt = Runtime::new();
        // Reads a never-written register; at O0 nothing rewrites the read
        // away, so plan validation must reject it (at O2 dead-code
        // elimination would legitimately leave an empty, valid plan).
        let p = parse_program("BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n").unwrap();
        let o0 = OptOptions::level(OptLevel::O0);
        assert!(matches!(rt.prepare_with(&p, &o0), Err(VmError::Invalid(_))));
        assert_eq!(rt.cached_plans(), 0);
        // The optimiser ran even though verification failed: that's a miss.
        assert_eq!(rt.stats().cache_misses, 1);
        assert_eq!(rt.stats().verifications, 1);
    }

    #[test]
    fn verification_runs_once_then_never_on_the_eval_path() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        // Cold prepare: exactly one verification.
        let (plan, hit) = rt.prepare(&p).unwrap();
        assert!(!hit);
        assert_eq!(rt.stats().verifications, 1);
        // Cache-hit prepares and full evals: the counter must not move —
        // the eval path performs zero verify/validate calls after a hit.
        for _ in 0..5 {
            let (_, hit) = rt.prepare(&p).unwrap();
            assert!(hit);
            rt.eval(&p, &[], reg).unwrap();
        }
        // The pinned-VM hot path trusts the witness too.
        let mut vm = rt.lease_vm();
        for _ in 0..5 {
            rt.eval_prepared(&plan, &mut vm, &[], Some(reg), true)
                .unwrap();
        }
        let stats = rt.stats();
        assert_eq!(stats.verifications, 1);
        assert_eq!(stats.evals, 10);
    }

    #[test]
    fn stats_sink_sees_every_outcome() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let rt = Runtime::builder()
            .stats_sink(move |_| {
                seen2.fetch_add(1, Ordering::SeqCst);
            })
            .build();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        rt.eval(&p, &[], reg).unwrap();
        rt.eval(&p, &[], reg).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn fusing_engine_runtime_fuses() {
        let rt = Runtime::builder()
            .engine(Engine::Fusing { block: 128 })
            .build();
        let p = parse_program(
            "BH_IDENTITY a0 [0:1000:1] 1\nBH_ADD a0 a0 2\nBH_MULTIPLY a0 a0 a0\nBH_SYNC a0\n",
        )
        .unwrap();
        let (v, o) = rt.eval(&p, &[], p.reg_by_name("a0").unwrap()).unwrap();
        assert_eq!(v.to_f64_vec()[0], 9.0);
        assert!(o.exec.fused_groups >= 1);
    }

    #[test]
    fn vm_pool_recycles_without_leaking_state() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        for _ in 0..(VM_POOL_LIMIT + 3) {
            let (v, _) = rt.eval(&p, &[], reg).unwrap();
            assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
        }
        assert!(rt.vm_pool.idle() <= VM_POOL_LIMIT);
        // A different program through the same pooled VMs still computes
        // correctly (no stale bindings).
        let q = parse_program("BH_IDENTITY b [0:4:1] 7\nBH_SYNC b\n").unwrap();
        let (v, _) = rt.eval(&q, &[], q.reg_by_name("b").unwrap()).unwrap();
        assert_eq!(v.to_f64_vec(), vec![7.0; 4]);
    }

    #[test]
    fn shared_runtime_is_thread_safe() {
        let rt = Runtime::builder().build_shared();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rt = Arc::clone(&rt);
                let p = p.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let (v, _) = rt.eval(&p, &[], reg).unwrap();
                        assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = rt.stats();
        assert_eq!(stats.evals, 80);
        // At most a couple of racing misses; everything else hit.
        assert!(stats.cache_hits >= 78 - stats.cache_misses, "{stats}");
        assert_eq!(rt.cached_plans(), 1);
    }

    #[test]
    fn builder_knobs_are_applied() {
        let rt = Runtime::builder()
            .opt_level(OptLevel::O1)
            .strict_math()
            .threads(3)
            .cache_capacity(7)
            .build();
        assert_eq!(rt.options().level, OptLevel::O1);
        assert!(!rt.options().ctx.fast_math);
        assert_eq!(rt.threads(), 3);
        let _ = Shape::vector(1);
        let _ = DType::Float64;
    }

    #[test]
    fn eval_prepared_on_a_pinned_vm_matches_eval() {
        let rt = Runtime::new();
        let p = parse_program(".base x f64[4] input\n.base y f64[4]\nBH_ADD y x 1\nBH_SYNC y\n")
            .unwrap();
        let x = p.reg_by_name("x").unwrap();
        let y = p.reg_by_name("y").unwrap();
        let (plan, hit) = rt.prepare(&p).unwrap();
        assert!(!hit);
        let mut vm = rt.lease_vm();
        // A whole batch back-to-back on one pinned VM, rebinding inputs.
        for i in 0..5 {
            let input = Tensor::from_vec(vec![i as f64; 4]);
            let (v, o) = rt
                .eval_prepared(&plan, &mut vm, &[(x, input)], Some(y), true)
                .unwrap();
            assert_eq!(v.unwrap().to_f64_vec(), vec![i as f64 + 1.0; 4]);
            assert!(o.cache_hit);
            // Per-run deltas, not accumulated totals.
            assert_eq!(o.exec.syncs, 1);
        }
        assert_eq!(rt.stats().evals, 5);
        // The prepared path never re-ran the optimiser.
        assert_eq!(rt.stats().cache_misses, 1);
    }

    #[test]
    fn eval_prepared_binds_cow_inputs_without_copying() {
        let rt = Runtime::new();
        let p = parse_program(".base x f64[8] input\nBH_SYNC x\n").unwrap();
        let x = p.reg_by_name("x").unwrap();
        let (plan, _) = rt.prepare(&p).unwrap();
        let input = Tensor::from_vec(vec![2.5f64; 8]);
        let mut vm = rt.lease_vm();
        let (v, _) = rt
            .eval_prepared(&plan, &mut vm, &[(x, input.clone())], Some(x), true)
            .unwrap();
        // Bind and read-back are O(1) Arc bumps: the result still shares
        // the caller's allocation.
        assert!(v.unwrap().shares_storage_with(&input));
    }

    #[test]
    fn profiling_records_stage_latencies_and_opcode_totals() {
        use bh_observe::Stage;
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        for _ in 0..4 {
            rt.eval(&p, &[], reg).unwrap();
        }
        let top = rt.profile(8);
        assert_eq!(top.len(), 1);
        let prof = &top[0];
        assert_eq!(prof.hits, 4);
        assert_eq!(prof.plan_builds, 1);
        // Optimise/verify sampled once (the miss); eval stages 4 times.
        assert_eq!(prof.stages.get(Stage::Optimise).count(), 1);
        assert_eq!(prof.stages.get(Stage::Verify).count(), 1);
        assert_eq!(prof.stages.get(Stage::Execute).count(), 4);
        assert_eq!(prof.stages.get(Stage::ReadBack).count(), 4);
        // Queue wait is the serving layer's to record, not the runtime's.
        assert_eq!(prof.stages.get(Stage::QueueWait).count(), 0);
        // The census matches the optimised plan, and totals scale by hits.
        let per_eval: u64 = prof.opcodes_per_eval.iter().map(|&(_, n)| n).sum();
        let (plan, _) = rt.prepare(&p).unwrap();
        assert_eq!(per_eval as usize, plan.program.instrs().len());
        assert_eq!(
            prof.opcode_totals().iter().map(|&(_, n)| n).sum::<u64>(),
            per_eval * 4
        );
        // Analytic exec counters aggregate exactly: 4 identical evals.
        assert_eq!(prof.exec.instructions % 4, 0);
    }

    #[test]
    fn disabling_profiling_empties_the_signal() {
        let rt = Runtime::builder().profiling(false).build();
        let p = listing2();
        rt.eval(&p, &[], p.reg_by_name("a0").unwrap()).unwrap();
        assert!(rt.profile_table().is_none());
        assert!(rt.profile(8).is_empty());
    }

    #[test]
    fn trace_sink_sees_span_pairs_for_every_stage() {
        use bh_observe::{RingTraceSink, TracePhase};
        let sink = RingTraceSink::shared(64);
        let rt = Runtime::builder()
            .trace_sink(sink.clone() as Arc<dyn bh_observe::TraceSink>)
            .build();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        rt.eval(&p, &[], reg).unwrap(); // miss: optimise + verify + eval
        rt.eval(&p, &[], reg).unwrap(); // hit: eval stages only
        let events = sink.events();
        let count = |stage: &str, phase: TracePhase| {
            events
                .iter()
                .filter(|e| e.stage == stage && e.phase == phase)
                .count()
        };
        for stage in ["optimise", "verify"] {
            assert_eq!(count(stage, TracePhase::Begin), 1, "{stage}");
            assert_eq!(count(stage, TracePhase::End), 1, "{stage}");
        }
        for stage in ["bind", "execute", "read_back"] {
            assert_eq!(count(stage, TracePhase::Begin), 2, "{stage}");
            assert_eq!(count(stage, TracePhase::End), 2, "{stage}");
        }
        // Every event carries the plan's fingerprint.
        let (plan, _) = rt.prepare(&p).unwrap();
        assert!(events
            .iter()
            .all(|e| e.fingerprint == plan.source_fingerprint));
        assert!(!sink.dump().is_empty());
    }

    #[test]
    fn clear_cache_forces_reoptimisation() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        rt.eval(&p, &[], reg).unwrap();
        assert_eq!(rt.cached_plans(), 1);
        rt.clear_cache();
        assert_eq!(rt.cached_plans(), 0);
        let (_, o) = rt.eval(&p, &[], reg).unwrap();
        assert!(!o.cache_hit);
        assert_eq!(rt.stats().cache_misses, 2);
    }
}
