//! The unified runtime: optimise → plan → execute behind one handle.

use crate::cache::{opcode_census, CacheKey, EvalPlan, TransformCache};
use crate::persist;
use crate::stats::RuntimeStats;
use bh_ir::Program;
use bh_observe::{DigestProfile, EvalSample, ProfileTable, Tier, TracePhase, TraceSink};
use bh_opt::{OptLevel, OptOptions, Optimizer, RewriteCtx};
use bh_tensor::Tensor;
use bh_vm::{Engine, PooledVm, Vm, VmError, VmPool};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Observer invoked after every evaluation, for metrics export.
pub type StatsSink = Arc<dyn Fn(&EvalOutcome) + Send + Sync>;

/// Upper bound on pooled VMs kept for reuse across evaluations.
const VM_POOL_LIMIT: usize = 8;

/// What one evaluation did: the plan it ran (shared with the cache), the
/// VM counters it accumulated, and whether the rewrite fixpoint was
/// skipped. Returned alongside the tensor by [`Runtime::eval`] — this
/// replaces the old `last_report`/`last_stats` mutable-context API.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The optimised plan that executed.
    pub plan: Arc<EvalPlan>,
    /// Execution counters for this evaluation only.
    pub exec: bh_vm::ExecStats,
    /// True when the plan came from the transformation cache.
    pub cache_hit: bool,
    /// Wall-clock time of this evaluation (bind → execute → read-back,
    /// excluding optimisation and queueing). This is the service-time
    /// signal a latency-SLO control loop should consume — a serving
    /// layer's turnaround additionally includes queue wait, which says
    /// something about load, not about per-request cost.
    pub elapsed: Duration,
}

impl EvalOutcome {
    /// The optimisation report of the plan that ran (produced once, when
    /// the plan was first built — on a cache hit it describes the original
    /// transformation, not re-done work).
    pub fn report(&self) -> &bh_opt::OptReport {
        &self.plan.report
    }
}

/// The single entry point of the stack: owns the optimiser schedule, the
/// execution-engine configuration, the transformation cache and the
/// aggregated statistics. Thread-safe; share one behind an `Arc` across
/// as many recording contexts or request handlers as you like.
///
/// # Examples
///
/// ```
/// use bh_ir::parse_program;
/// use bh_runtime::Runtime;
///
/// let rt = Runtime::new();
/// let program = parse_program(
///     "BH_IDENTITY a0 [0:10:1] 0\n\
///      BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
///      BH_SYNC a0\n")?;
/// let reg = program.reg_by_name("a0").unwrap();
///
/// let (value, outcome) = rt.eval(&program, &[], reg)?;
/// assert_eq!(value.to_f64_vec(), vec![3.0; 10]);
/// assert!(!outcome.cache_hit);
///
/// // Same structure again: the rewrite fixpoint is skipped entirely.
/// let (_, outcome) = rt.eval(&program, &[], reg)?;
/// assert!(outcome.cache_hit);
/// assert_eq!(rt.stats().cache_hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Runtime {
    options: OptOptions,
    audit: bool,
    cache_capacity: usize,
    // Cache and stats sit behind `Arc` so a background promotion job can
    // outlive the borrow of `&self` that spawned it (the job holds its
    // own handles; the runtime handle may even be dropped mid-flight).
    cache: Arc<Mutex<TransformCache>>,
    stats: Arc<Mutex<RuntimeStats>>,
    vm_pool: VmPool,
    sink: Option<StatsSink>,
    profile: Option<Arc<ProfileTable>>,
    tracer: Option<Arc<dyn TraceSink>>,
    tiered: bool,
    promote_after: u64,
    background_promotion: bool,
    pending_promotions: Arc<AtomicU64>,
    persist_path: Option<std::path::PathBuf>,
}

impl Default for Runtime {
    fn default() -> Runtime {
        Runtime::builder().build()
    }
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("options", &self.options)
            .field("engine", &self.vm_pool.engine())
            .field("threads", &self.vm_pool.threads())
            .field("cached_plans", &self.cache.lock().len())
            .field("stats", &*self.stats.lock())
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// A runtime with Bohrium's defaults (O2, fast-math, naive engine).
    pub fn new() -> Runtime {
        Runtime::default()
    }

    /// Start configuring a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// The optimisation options applied to every plan (unless overridden
    /// per call with [`Runtime::eval_with`]).
    pub fn options(&self) -> &OptOptions {
        &self.options
    }

    /// The execution engine evaluations run on.
    pub fn engine(&self) -> Engine {
        self.vm_pool.engine()
    }

    /// Worker threads handed to each VM.
    pub fn threads(&self) -> usize {
        self.vm_pool.threads()
    }

    /// Configured capacity of the transformation cache (0 = disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// True when this runtime compiles cache misses through the cheap
    /// tier-0 pipeline and promotes hot digests (see
    /// [`RuntimeBuilder::tiered`]).
    pub fn tiered(&self) -> bool {
        self.tiered
    }

    /// Fresh per-entry hits after which a tier-0 plan is promoted
    /// (meaningful only when [`Runtime::tiered`] is true).
    pub fn promote_after(&self) -> u64 {
        self.promote_after
    }

    /// True when every plan compile is audited by the translation
    /// validator before entering the cache (see [`RuntimeBuilder::audit`]).
    pub fn audit(&self) -> bool {
        self.audit
    }

    /// Background promotions currently in flight (always 0 in synchronous
    /// mode). Tests and graceful-shutdown paths can spin on this reaching
    /// zero to quiesce the promotion thread(s).
    pub fn pending_promotions(&self) -> u64 {
        self.pending_promotions.load(Ordering::SeqCst)
    }

    /// The configured per-eval observer, if any (shareable; lets a
    /// rebuilt runtime keep reporting to the same sink).
    pub fn stats_sink(&self) -> Option<StatsSink> {
        self.sink.clone()
    }

    /// The per-digest profile table, when profiling is enabled (the
    /// default). Serving layers use this to record queue-wait per digest
    /// and exporters render it via its `bh_observe::Collect` impl.
    pub fn profile_table(&self) -> Option<&Arc<ProfileTable>> {
        self.profile.as_ref()
    }

    /// The `k` hottest digests with their accumulated profiles — hit
    /// count, per-stage mean latencies, per-opcode execution totals.
    /// Empty when profiling was disabled at build time. This is the
    /// hotness signal a tiered, profile-guided optimisation policy
    /// consumes.
    ///
    /// # Examples
    ///
    /// ```
    /// use bh_ir::parse_program;
    /// use bh_observe::Stage;
    /// use bh_runtime::Runtime;
    ///
    /// let rt = Runtime::new();
    /// let program = parse_program(
    ///     "BH_IDENTITY a0 [0:10:1] 0\n\
    ///      BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
    ///      BH_SYNC a0\n")?;
    /// let reg = program.reg_by_name("a0").unwrap();
    /// for _ in 0..3 {
    ///     rt.eval(&program, &[], reg)?;
    /// }
    ///
    /// let top = rt.profile(10);
    /// assert_eq!(top.len(), 1);
    /// let hottest = &top[0];
    /// assert_eq!(hottest.hits, 3);
    /// assert_eq!(hottest.plan_builds, 1); // optimised + verified once
    /// assert!(hottest.mean_stage(Stage::Execute) > std::time::Duration::ZERO);
    /// // Per-opcode accounting: the optimised plan's census × hits.
    /// assert!(!hottest.opcode_totals().is_empty());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn profile(&self, k: usize) -> Vec<DigestProfile> {
        self.profile
            .as_ref()
            .map(|t| t.top_k(k))
            .unwrap_or_default()
    }

    /// The configured trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.tracer.as_ref()
    }

    /// Emit a span event to the trace sink: one branch when tracing is
    /// disabled.
    #[inline]
    fn trace(&self, phase: TracePhase, stage: &'static str, fingerprint: u64) {
        if let Some(t) = &self.tracer {
            t.record(phase, stage, fingerprint, None);
        }
    }

    /// The snapshot path plans persist to, when configured (see
    /// [`RuntimeBuilder::persist_path`]).
    pub fn persist_path(&self) -> Option<&std::path::Path> {
        self.persist_path.as_deref()
    }

    /// Snapshot the transformation cache to the configured
    /// [`RuntimeBuilder::persist_path`] now, atomically (temp file +
    /// rename). Returns the number of plans written; `Ok(0)` without
    /// touching disk when no path is configured. Also runs automatically
    /// when the runtime is dropped, so an orderly shutdown needs no
    /// explicit call — use this for periodic checkpoints.
    ///
    /// Only entries built under the runtime's own options are written:
    /// ad-hoc [`Runtime::eval_with`] plans would re-load as rejects
    /// (their options fingerprint can never match), so they are not
    /// worth the bytes.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating, writing, syncing or renaming the
    /// snapshot file.
    pub fn persist(&self) -> std::io::Result<usize> {
        let Some(path) = &self.persist_path else {
            return Ok(0);
        };
        let entries: Vec<_> = self
            .cache
            .lock()
            .entries()
            .into_iter()
            .filter(|(key, _)| key.options == self.options)
            .collect();
        persist::write_snapshot(path, &entries)
    }

    /// Warm-start from the configured snapshot, if any. Every entry is
    /// re-validated from scratch — decoded fail-closed, source and plan
    /// re-verified, digest recomputed, equivalence re-proven — before
    /// insertion; failures count as [`RuntimeStats::warm_rejects`] and
    /// are dropped. Audit counters are deliberately untouched: the
    /// `audits.total() == cache_misses + promotions` invariant is about
    /// plans this process compiled, and warm loads are neither.
    fn load_persisted(&self) {
        let Some(path) = &self.persist_path else {
            return;
        };
        for blob in persist::read_containers(path) {
            match persist::revalidate(&blob, &self.options, self.tiered) {
                Some((key, plan)) => {
                    let fingerprint = key.digest.fingerprint();
                    let tier = {
                        let mut cache = self.cache.lock();
                        cache.insert(key, plan, 0).tier
                    };
                    if let Some(table) = &self.profile {
                        table.set_tier(fingerprint, tier);
                    }
                    self.stats.lock().warm_loads += 1;
                }
                None => self.stats.lock().warm_rejects += 1,
            }
        }
    }

    /// Snapshot of the aggregated counters.
    pub fn stats(&self) -> RuntimeStats {
        *self.stats.lock()
    }

    /// Zero the aggregated counters (the cache is untouched).
    pub fn reset_stats(&self) {
        *self.stats.lock() = RuntimeStats::new();
    }

    /// Number of optimised plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().len()
    }

    /// Drop every cached plan (counters are untouched).
    pub fn clear_cache(&self) {
        self.cache.lock().clear();
    }

    /// Optimise `program` into an executable plan — or fetch the plan the
    /// cache already holds for a structurally identical program. The
    /// returned flag is true on a cache hit.
    ///
    /// The plan is verified once here and the [`bh_ir::Verified`] witness
    /// is stored in the cache; execution takes the trusted
    /// [`bh_vm::Vm::run_verified`] path with zero re-verification, like a
    /// byte-code verifier running at load time rather than per run
    /// ([`RuntimeStats::verifications`] counts how often this actually
    /// happened).
    ///
    /// # Errors
    ///
    /// [`VmError::Invalid`] when the optimised program fails verification.
    pub fn prepare(&self, program: &Program) -> Result<(Arc<EvalPlan>, bool), VmError> {
        self.prepare_with(program, &self.options)
    }

    /// [`Runtime::prepare`] under explicit options (cached separately per
    /// options value, so callers can mix levels on one runtime).
    ///
    /// On a tiered runtime ([`RuntimeBuilder::tiered`]) a miss compiles
    /// through the cheap tier-0 pipeline instead of `options` as given,
    /// and a hit on a tier-0 plan consults the promotion policy — which
    /// may re-optimise at full strength, re-verify, and swap the
    /// stronger plan into the cache before returning it.
    ///
    /// # Errors
    ///
    /// [`VmError::Invalid`] when the optimised program fails verification.
    pub fn prepare_with(
        &self,
        program: &Program,
        options: &OptOptions,
    ) -> Result<(Arc<EvalPlan>, bool), VmError> {
        let digest = program.structural_digest();
        let key = CacheKey {
            digest,
            options: options.clone(),
        };
        // Bind the lookup to a local so the cache guard drops *here*: the
        // promotion path below re-locks the cache, and `if let` on the
        // temporary would hold the guard across the whole body.
        let cached = self.cache.lock().get(&key);
        if let Some(plan) = cached {
            self.stats.lock().cache_hits += 1;
            if self.tiered && plan.tier == Tier::Tier0 {
                if let Some(promoted) = self.maybe_promote(&key, program) {
                    return Ok((promoted, true));
                }
            }
            return Ok((plan, true));
        }
        // Optimise outside the cache lock: a concurrent miss on the same
        // key duplicates work once, but never blocks other keys.
        let fingerprint = key.digest.fingerprint();
        let (build_options, tier) = if self.tiered {
            (tier0_options(options), Tier::Tier0)
        } else {
            (options.clone(), Tier::Tier2)
        };
        let equiv_options = self.audit.then(|| build_options.equiv_options());
        let rollback_options = self.audit.then(|| tier0_options(&build_options));
        let mut optimised = program.clone();
        self.trace(TracePhase::Begin, "optimise", fingerprint);
        let opt_begun = Instant::now();
        let mut report = Optimizer::new(build_options).run(&mut optimised);
        let opt_elapsed = opt_begun.elapsed();
        self.trace(TracePhase::End, "optimise", fingerprint);
        // Whole-plan translation validation: prove the optimised plan
        // observationally equivalent to its source before it can enter
        // the cache. One-sided — an unproven plan is not necessarily
        // wrong, so the runtime degrades gracefully by serving the
        // unoptimised source instead of failing the request.
        if let Some(equiv) = equiv_options {
            self.trace(TracePhase::Begin, "audit", fingerprint);
            let proved = bh_ir::check_equiv(program, &optimised, &equiv).is_ok();
            self.trace(TracePhase::End, "audit", fingerprint);
            {
                let mut stats = self.stats.lock();
                if proved {
                    stats.audits.passed += 1;
                } else {
                    stats.audits.failed += 1;
                    stats.audits.rolled_back += 1;
                }
            }
            if !proved {
                optimised = program.clone();
                // An O0 sweep over the fresh clone yields an honest
                // report for the plan that will actually run (zero
                // rewrites), instead of one describing discarded work.
                report = Optimizer::new(rollback_options.expect("set alongside equiv_options"))
                    .run(&mut optimised);
            }
        }
        // The promotion baseline: hits the digest already has *before*
        // this entry goes live. Non-zero means an earlier incarnation was
        // evicted — its hotness must not count towards promoting this one.
        let baseline_hits = if self.tiered {
            self.profile.as_ref().map_or(0, |t| t.hits(fingerprint))
        } else {
            0
        };
        {
            // Record the miss before verification can bail: the optimiser
            // *did* run, and an invalid program re-fed forever should show
            // up as misses on a dashboard, not as a free 100% hit rate.
            // `verifications` counts alongside — verification runs exactly
            // once per tier compile and never on a hit, which is what the
            // checked-once claim means operationally.
            let mut stats = self.stats.lock();
            stats.cache_misses += 1;
            stats.verifications += 1;
            stats.rules_fired += report.total_applications() as u64;
            stats.opt_iterations += report.iterations as u64;
            if self.tiered {
                stats.tiers.tier0_builds += 1;
                if baseline_hits > 0 {
                    stats.tiers.rebaselines += 1;
                }
            }
        }
        let census = opcode_census(&optimised);
        self.trace(TracePhase::Begin, "verify", fingerprint);
        let verify_begun = Instant::now();
        let verified = bh_ir::verify_owned(optimised).map_err(|(_, e)| VmError::Invalid(e))?;
        let verify_elapsed = verify_begun.elapsed();
        self.trace(TracePhase::End, "verify", fingerprint);
        if let Some(table) = &self.profile {
            table.record_plan_build(fingerprint, opt_elapsed, verify_elapsed, &census);
        }
        let plan = Arc::new(EvalPlan {
            program: verified,
            report,
            source_fingerprint: fingerprint,
            opcode_census: census,
            tier,
            source: Arc::new(program.clone()),
        });
        let plan = {
            let mut cache = self.cache.lock();
            let plan = cache.insert(key, plan, baseline_hits);
            // The live-tier gauge is written under the cache lock, with
            // the *surviving* plan's tier: a build that lost the insert
            // race (or raced a completed promotion) reports the winner's
            // tier, never its own stale one. Lock order is always
            // cache → profile stripe; no path nests them the other way.
            if let Some(table) = &self.profile {
                table.set_tier(fingerprint, plan.tier);
            }
            plan
        };
        Ok((plan, false))
    }

    /// The promotion policy, consulted on every cache hit of a tier-0
    /// plan. Reads the digest's ProfileTable hotness and, when the entry
    /// has earned [`Runtime::promote_after`] hits since its own insertion,
    /// claims the (exactly-once) promotion and runs it — inline by
    /// default, or on a detached thread when
    /// [`RuntimeBuilder::background_promotion`] is on. Returns the
    /// promoted plan when it went live synchronously.
    fn maybe_promote(&self, key: &CacheKey, program: &Program) -> Option<Arc<EvalPlan>> {
        let profile = self.profile.as_ref()?;
        let hits = profile.hits(key.digest.fingerprint());
        if !self
            .cache
            .lock()
            .try_claim_promotion(key, hits, self.promote_after)
        {
            return None;
        }
        let options = tier2_options(&key.options);
        let job = PromotionJob {
            cache: Arc::clone(&self.cache),
            stats: Arc::clone(&self.stats),
            profile: Some(Arc::clone(profile)),
            tracer: self.tracer.clone(),
            key: key.clone(),
            program: program.clone(),
            audit: self.audit.then(|| options.equiv_options()),
            options,
        };
        if self.background_promotion {
            let pending = Arc::clone(&self.pending_promotions);
            pending.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || {
                job.run();
                pending.fetch_sub(1, Ordering::SeqCst);
            });
            None
        } else {
            job.run()
        }
    }

    /// Optimise (or fetch) and execute `program`, binding `bindings`
    /// (register → input tensor) first, and read back `result`.
    ///
    /// # Errors
    ///
    /// Validation failures of the optimised program, binding mismatches,
    /// or execution failures.
    pub fn eval(
        &self,
        program: &Program,
        bindings: &[(bh_ir::Reg, Tensor)],
        result: bh_ir::Reg,
    ) -> Result<(Tensor, EvalOutcome), VmError> {
        self.eval_with(program, bindings, result, &self.options)
    }

    /// [`Runtime::eval`] under explicit options.
    ///
    /// # Errors
    ///
    /// As [`Runtime::eval`].
    pub fn eval_with(
        &self,
        program: &Program,
        bindings: &[(bh_ir::Reg, Tensor)],
        result: bh_ir::Reg,
        options: &OptOptions,
    ) -> Result<(Tensor, EvalOutcome), VmError> {
        let (outcome, value) = self.run_plan(program, bindings, Some(result), options)?;
        Ok((value.expect("result register requested"), outcome))
    }

    /// Optimise (or fetch) and execute `program` without reading a result
    /// — the old `Context::flush` shape.
    ///
    /// # Errors
    ///
    /// As [`Runtime::eval`].
    pub fn execute(
        &self,
        program: &Program,
        bindings: &[(bh_ir::Reg, Tensor)],
    ) -> Result<EvalOutcome, VmError> {
        let (outcome, _) = self.run_plan(program, bindings, None, &self.options)?;
        Ok(outcome)
    }

    fn run_plan(
        &self,
        program: &Program,
        bindings: &[(bh_ir::Reg, Tensor)],
        result: Option<bh_ir::Reg>,
        options: &OptOptions,
    ) -> Result<(EvalOutcome, Option<Tensor>), VmError> {
        let (plan, cache_hit) = self.prepare_with(program, options)?;
        let mut vm = self.lease_vm();
        let (value, outcome) = self.eval_prepared(&plan, &mut vm, bindings, result, cache_hit)?;
        Ok((outcome, value))
    }

    /// Check a clean, correctly configured VM out of the runtime's pool.
    /// Dropping the guard recycles it back in. A serving layer pins one
    /// lease per micro-batch so the VM's base-slot table — and, across
    /// same-plan runs, its base buffers — amortise over the batch.
    pub fn lease_vm(&self) -> PooledVm<'_> {
        self.vm_pool.checkout()
    }

    /// Execute an already-prepared plan on a caller-held VM: the
    /// batched-serving hot path. Skips the digest computation, the cache
    /// lookup *and* the per-eval VM checkout that [`Runtime::eval`] pays;
    /// the plan carries the [`bh_ir::Verified`] witness minted when it
    /// was built, so execution takes [`bh_vm::Vm::run_verified`]'s
    /// trusted path.
    ///
    /// The VM is **not** recycled, so back-to-back calls with the *same*
    /// plan reuse its base buffers. That reuse is only observation-free
    /// when `bh_ir::analysis::rerun_safe(&plan.program)` holds **and**
    /// every base declared `input` appears in `bindings` (rebinding
    /// replaces the buffer wholesale); otherwise — and always when
    /// switching plans — call [`Vm::recycle`] between runs. The serve
    /// batcher checks exactly these two conditions per request (see
    /// DESIGN.md §7).
    ///
    /// `cache_hit` is recorded on the returned [`EvalOutcome`] (pass the
    /// flag [`Runtime::prepare`] returned, or `true` when re-running a
    /// held plan).
    ///
    /// # Errors
    ///
    /// Binding mismatches or execution failures. On error the VM may hold
    /// partial state; recycle it before reuse.
    pub fn eval_prepared(
        &self,
        plan: &Arc<EvalPlan>,
        vm: &mut Vm,
        bindings: &[(bh_ir::Reg, Tensor)],
        result: Option<bh_ir::Reg>,
        cache_hit: bool,
    ) -> Result<(Option<Tensor>, EvalOutcome), VmError> {
        let fingerprint = plan.source_fingerprint;
        // Stage splits cost two extra clock reads per eval and only when
        // profiling is on; the disabled path is the seed's, unchanged.
        let profiling = self.profile.is_some();
        let before = *vm.stats();
        self.trace(TracePhase::Begin, "bind", fingerprint);
        let begun = Instant::now();
        for (reg, tensor) in bindings {
            vm.bind(&plan.program, *reg, tensor)?;
        }
        let bound_at = if profiling {
            Some(Instant::now())
        } else {
            None
        };
        self.trace(TracePhase::End, "bind", fingerprint);
        self.trace(TracePhase::Begin, "execute", fingerprint);
        // The plan carries its verification witness from build time, so
        // this is the trusted path: zero verify/validate calls per eval.
        vm.run_verified(plan.program.as_verified())?;
        let ran_at = if profiling {
            Some(Instant::now())
        } else {
            None
        };
        self.trace(TracePhase::End, "execute", fingerprint);
        self.trace(TracePhase::Begin, "read_back", fingerprint);
        let value = match result {
            Some(reg) => Some(vm.read(&plan.program, reg)?),
            None => None,
        };
        let elapsed = begun.elapsed();
        self.trace(TracePhase::End, "read_back", fingerprint);
        let exec = vm.stats().since(&before);
        {
            let mut stats = self.stats.lock();
            stats.evals += 1;
            stats.exec += exec;
            stats.eval_nanos += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        }
        if let Some(table) = &self.profile {
            let total = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            let bind = bound_at
                .map(|t| t.duration_since(begun))
                .unwrap_or_default();
            let execute = match (bound_at, ran_at) {
                (Some(b), Some(r)) => r.duration_since(b),
                _ => Duration::ZERO,
            };
            let bind_nanos = u64::try_from(bind.as_nanos()).unwrap_or(u64::MAX);
            let execute_nanos = u64::try_from(execute.as_nanos()).unwrap_or(u64::MAX);
            table.record_eval(
                fingerprint,
                &EvalSample {
                    bind_nanos,
                    execute_nanos,
                    read_back_nanos: total.saturating_sub(bind_nanos.saturating_add(execute_nanos)),
                    exec,
                },
                &plan.opcode_census,
            );
        }
        let outcome = EvalOutcome {
            plan: Arc::clone(plan),
            exec,
            cache_hit,
            elapsed,
        };
        if let Some(sink) = &self.sink {
            sink(&outcome);
        }
        Ok((value, outcome))
    }
}

impl Drop for Runtime {
    /// Snapshot-on-drain: an orderly shutdown writes the hot plans to
    /// the configured [`RuntimeBuilder::persist_path`] so the next
    /// process warm-starts instead of re-optimising the morning rush.
    /// Best-effort — a failing disk must not turn shutdown into a panic.
    fn drop(&mut self) {
        if self.persist_path.is_some() {
            let _ = self.persist();
        }
    }
}

/// The cheap first-compile pipeline of a tiered runtime: optimisation
/// level [`OptLevel::O0`] (empty rule schedule) and a single fixpoint
/// sweep — the time between a cache miss and the first execution is
/// essentially parse + verify.
fn tier0_options(base: &OptOptions) -> OptOptions {
    let mut options = base.clone();
    options.level = OptLevel::O0;
    options.max_iterations = 1;
    options
}

/// Full-strength promotion options: the *requested* level and rewrite
/// knobs (promotion must never change the semantics the caller chose,
/// e.g. strict-math), with the fixpoint budget raised so the hot digest
/// gets every rewrite the schedule can reach.
fn tier2_options(base: &OptOptions) -> OptOptions {
    let mut options = base.clone();
    options.max_iterations = options
        .max_iterations
        .max(2 * OptOptions::default().max_iterations);
    options
}

/// Emit a span event when tracing is configured (free-function twin of
/// [`Runtime::trace`] for code that runs detached from `&Runtime`).
#[inline]
fn trace_to(
    tracer: &Option<Arc<dyn TraceSink>>,
    phase: TracePhase,
    stage: &'static str,
    fingerprint: u64,
) {
    if let Some(t) = tracer {
        t.record(phase, stage, fingerprint, None);
    }
}

/// One claimed promotion: re-optimise the source program at full
/// strength, re-verify, and swap the result into the cache. Owns `Arc`
/// handles to everything it touches so it can run inline *or* on a
/// detached thread — even one that outlives the `Runtime` handle.
struct PromotionJob {
    cache: Arc<Mutex<TransformCache>>,
    stats: Arc<Mutex<RuntimeStats>>,
    profile: Option<Arc<ProfileTable>>,
    tracer: Option<Arc<dyn TraceSink>>,
    key: CacheKey,
    program: Program,
    /// Audit the re-optimised plan before the swap (`Some` mirrors the
    /// runtime's [`RuntimeBuilder::audit`] knob).
    audit: Option<bh_ir::EquivOptions>,
    /// Tier-2 build options (see [`tier2_options`]).
    options: OptOptions,
}

impl PromotionJob {
    /// Run the promotion to completion. Returns the promoted plan when it
    /// was swapped live; `None` when re-verification failed (the tier-0
    /// plan stays live and stays claimed — re-verifying the same
    /// deterministic optimiser output would fail again, so the digest is
    /// never retried) or when the entry was evicted before the swap
    /// landed (the stale result is dropped; a re-inserted entry starts a
    /// fresh lifecycle).
    fn run(self) -> Option<Arc<EvalPlan>> {
        let fingerprint = self.key.digest.fingerprint();
        trace_to(&self.tracer, TracePhase::Begin, "promote", fingerprint);
        // Kept whole so the promoted plan stays self-contained: the audit
        // (when on) and the plan's persistable `source` both need it.
        let source = Arc::new(self.program);
        let rollback_options = self.audit.map(|_| tier0_options(&self.options));
        let mut optimised = (*source).clone();
        trace_to(&self.tracer, TracePhase::Begin, "optimise", fingerprint);
        let opt_begun = Instant::now();
        let mut report = Optimizer::new(self.options).run(&mut optimised);
        let opt_elapsed = opt_begun.elapsed();
        trace_to(&self.tracer, TracePhase::End, "optimise", fingerprint);
        // Same whole-plan audit as the miss path: the promoted plan gets
        // exactly one audit per tier compile. An unproven tier-2 plan is
        // rolled back to the source program — equivalent in content to
        // the tier-0 plan it replaces, and the digest is never retried
        // (the deterministic optimiser would produce the same plan).
        if let Some(equiv) = &self.audit {
            trace_to(&self.tracer, TracePhase::Begin, "audit", fingerprint);
            let proved = bh_ir::check_equiv(&source, &optimised, equiv).is_ok();
            trace_to(&self.tracer, TracePhase::End, "audit", fingerprint);
            {
                let mut stats = self.stats.lock();
                if proved {
                    stats.audits.passed += 1;
                } else {
                    stats.audits.failed += 1;
                    stats.audits.rolled_back += 1;
                }
            }
            if !proved {
                optimised = (*source).clone();
                report = Optimizer::new(rollback_options.expect("set alongside audit"))
                    .run(&mut optimised);
            }
        }
        {
            let mut stats = self.stats.lock();
            stats.verifications += 1;
            stats.rules_fired += report.total_applications() as u64;
            stats.opt_iterations += report.iterations as u64;
        }
        let census = opcode_census(&optimised);
        trace_to(&self.tracer, TracePhase::Begin, "verify", fingerprint);
        let verify_begun = Instant::now();
        let verified = match bh_ir::verify_owned(optimised) {
            Ok(v) => v,
            Err(_) => {
                // Soundness gate: a plan that fails re-verification never
                // reaches the unchecked hot path. Keep serving tier-0.
                trace_to(&self.tracer, TracePhase::End, "verify", fingerprint);
                trace_to(&self.tracer, TracePhase::End, "promote", fingerprint);
                self.stats.lock().tiers.failed_promotions += 1;
                return None;
            }
        };
        let verify_elapsed = verify_begun.elapsed();
        trace_to(&self.tracer, TracePhase::End, "verify", fingerprint);
        if let Some(table) = &self.profile {
            table.record_plan_build(fingerprint, opt_elapsed, verify_elapsed, &census);
        }
        let plan = Arc::new(EvalPlan {
            program: verified,
            report,
            source_fingerprint: fingerprint,
            opcode_census: census,
            tier: Tier::Tier2,
            source,
        });
        let installed = {
            let mut cache = self.cache.lock();
            let installed = cache.install_promoted(&self.key, Arc::clone(&plan));
            // Report tier-2 live only if the swap actually landed, and
            // under the cache lock so the gauge stays ordered with the
            // transition (a dropped stale swap must not claim tier-2).
            if installed {
                if let Some(table) = &self.profile {
                    table.set_tier(fingerprint, Tier::Tier2);
                }
            }
            installed
        };
        {
            let mut stats = self.stats.lock();
            if installed {
                stats.tiers.promotions += 1;
            } else {
                stats.tiers.failed_promotions += 1;
            }
        }
        trace_to(&self.tracer, TracePhase::End, "promote", fingerprint);
        installed.then_some(plan)
    }
}

/// Configures and builds a [`Runtime`].
///
/// # Examples
///
/// ```
/// use bh_opt::OptLevel;
/// use bh_runtime::Runtime;
/// use bh_vm::Engine;
///
/// let rt = Runtime::builder()
///     .opt_level(OptLevel::O2)
///     .engine(Engine::Fusing { block: 4096 })
///     .threads(4)
///     .cache_capacity(512)
///     .build_shared();
/// assert_eq!(rt.threads(), 4);
/// ```
pub struct RuntimeBuilder {
    options: OptOptions,
    engine: Engine,
    threads: usize,
    cache_capacity: usize,
    sink: Option<StatsSink>,
    profiling: bool,
    profile_capacity: usize,
    tracer: Option<Arc<dyn TraceSink>>,
    tiered: bool,
    promote_after: u64,
    background_promotion: bool,
    audit: bool,
    persist_path: Option<std::path::PathBuf>,
}

impl Default for RuntimeBuilder {
    fn default() -> RuntimeBuilder {
        RuntimeBuilder {
            options: OptOptions::default(),
            engine: Engine::Naive,
            threads: default_threads(),
            cache_capacity: 256,
            sink: None,
            profiling: true,
            profile_capacity: 1024,
            tracer: None,
            tiered: false,
            promote_after: DEFAULT_PROMOTE_AFTER,
            background_promotion: false,
            audit: false,
            persist_path: None,
        }
    }
}

/// Default promotion threshold: fresh per-entry hits before a tier-0
/// plan is re-optimised at full strength. 32 keeps one-shot and churn
/// digests on the cheap pipeline while a digest served every few seconds
/// still promotes within its first minutes of life.
pub const DEFAULT_PROMOTE_AFTER: u64 = 32;

/// Default VM worker-thread count: every core the host grants us
/// (`std::thread::available_parallelism`), so large element-wise
/// operations and fused groups stream on all cores out of the box.
/// Falls back to 1 when the parallelism query fails.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

impl fmt::Debug for RuntimeBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeBuilder")
            .field("options", &self.options)
            .field("engine", &self.engine)
            .field("threads", &self.threads)
            .field("cache_capacity", &self.cache_capacity)
            .field("has_sink", &self.sink.is_some())
            .field("profiling", &self.profiling)
            .field("profile_capacity", &self.profile_capacity)
            .field("has_tracer", &self.tracer.is_some())
            .field("tiered", &self.tiered)
            .field("promote_after", &self.promote_after)
            .field("background_promotion", &self.background_promotion)
            .field("audit", &self.audit)
            .field("persist_path", &self.persist_path)
            .finish()
    }
}

impl RuntimeBuilder {
    /// Replace the full optimisation options.
    pub fn options(mut self, options: OptOptions) -> RuntimeBuilder {
        self.options = options;
        self
    }

    /// Set just the optimisation level.
    pub fn opt_level(mut self, level: OptLevel) -> RuntimeBuilder {
        self.options.level = level;
        self
    }

    /// Replace the rewrite-context knobs (fast-math policy, expansion
    /// budget, observability).
    pub fn rewrite_ctx(mut self, ctx: RewriteCtx) -> RuntimeBuilder {
        self.options.ctx = ctx;
        self
    }

    /// Strict IEEE float semantics (no re-associating rewrites on floats).
    pub fn strict_math(mut self) -> RuntimeBuilder {
        self.options.ctx.fast_math = false;
        self
    }

    /// Select the execution engine for every evaluation.
    pub fn engine(mut self, engine: Engine) -> RuntimeBuilder {
        self.engine = engine;
        self
    }

    /// Worker threads per VM for large element-wise operations and fused
    /// groups. Defaults to [`std::thread::available_parallelism`]; the
    /// runtime owns **one** persistent worker pool shared by every pooled
    /// VM, so concurrent evaluations never over-subscribe the host.
    /// Values are clamped to at least 1; `1` disables parallelism.
    pub fn threads(mut self, threads: usize) -> RuntimeBuilder {
        self.threads = threads.max(1);
        self
    }

    /// Plans kept in the transformation cache (0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> RuntimeBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// Observer called after every evaluation with its [`EvalOutcome`]
    /// (metrics export, logging).
    pub fn stats_sink(
        mut self,
        sink: impl Fn(&EvalOutcome) + Send + Sync + 'static,
    ) -> RuntimeBuilder {
        self.sink = Some(Arc::new(sink));
        self
    }

    /// Install an already-shared observer (e.g. one taken from another
    /// runtime via [`Runtime::stats_sink`]).
    pub fn stats_sink_shared(mut self, sink: StatsSink) -> RuntimeBuilder {
        self.sink = Some(sink);
        self
    }

    /// Enable or disable the per-digest profile table (enabled by
    /// default). Disabling removes even the profiler's two extra clock
    /// reads from the eval path.
    pub fn profiling(mut self, enabled: bool) -> RuntimeBuilder {
        self.profiling = enabled;
        self
    }

    /// Digests the profile table retains before evicting the coldest
    /// (default 1024; clamped to at least one per lock stripe).
    pub fn profile_capacity(mut self, capacity: usize) -> RuntimeBuilder {
        self.profile_capacity = capacity;
        self
    }

    /// Install a request-lifecycle trace sink (e.g.
    /// [`bh_observe::RingTraceSink::shared`]). Tracing is off by default
    /// and costs one branch per span point when disabled.
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> RuntimeBuilder {
        self.tracer = Some(sink);
        self
    }

    /// Enable tiered, profile-guided optimisation (off by default).
    ///
    /// When on, cache misses compile through the cheap tier-0 pipeline
    /// (`O0`, one sweep) for low first-eval latency; digests that earn
    /// [`RuntimeBuilder::promote_after`] hits are re-optimised at full
    /// strength, re-verified, and atomically swapped into the cache
    /// (DESIGN.md §14). Implies profiling: the ProfileTable is the
    /// hotness signal, so `tiered(true)` overrides `profiling(false)`.
    pub fn tiered(mut self, enabled: bool) -> RuntimeBuilder {
        self.tiered = enabled;
        self
    }

    /// Fresh per-entry hits after which a tier-0 plan is promoted
    /// (default [`DEFAULT_PROMOTE_AFTER`]; clamped to at least 1 — a
    /// plan must prove *some* reuse before the fixpoint is worth paying).
    /// Hits recorded before the entry was inserted — e.g. by an earlier
    /// incarnation that the LRU evicted — never count.
    pub fn promote_after(mut self, hits: u64) -> RuntimeBuilder {
        self.promote_after = hits.max(1);
        self
    }

    /// Run promotions on a detached background thread instead of inline
    /// on the triggering `prepare` call (off by default). Inline
    /// promotion hands the promoted plan straight to the caller that
    /// crossed the threshold; background promotion keeps that caller on
    /// the tier-0 plan and swaps the stronger plan in for *later* evals —
    /// trading one eval of freshness for zero added latency on the
    /// serving path. [`Runtime::pending_promotions`] exposes in-flight
    /// jobs for quiescing.
    pub fn background_promotion(mut self, enabled: bool) -> RuntimeBuilder {
        self.background_promotion = enabled;
        self
    }

    /// Audit every plan compile with the translation validator
    /// ([`bh_ir::check_equiv`]) before the plan can enter the cache (off
    /// by default).
    ///
    /// The audit proves the optimised plan observationally equivalent to
    /// the recorded source under the configured rewrite policy (strict
    /// math audits strictly; see DESIGN.md §15). It runs exactly once
    /// per tier compile — once per cache miss, plus once more when a
    /// tiered runtime promotes a hot digest — and **never** on the eval
    /// path, so with auditing on the invariant
    /// `stats.audits.total() == cache_misses + tiers.promotions` holds.
    ///
    /// The check is one-sided: it may fail to prove a sound rewrite, but
    /// never blesses an unsound one. An unproven plan is not served —
    /// the runtime rolls back to the unoptimised source program
    /// ([`crate::AuditCounters::rolled_back`]) and the request succeeds
    /// at reduced optimisation strength.
    pub fn audit(mut self, enabled: bool) -> RuntimeBuilder {
        self.audit = enabled;
        self
    }

    /// Persist the transformation cache across process lifetimes: load a
    /// snapshot from `path` at build time (warm start) and write one
    /// back on drop and on explicit [`Runtime::persist`] calls.
    ///
    /// A missing or unreadable snapshot is a silent cold start. Every
    /// loaded plan is re-verified and re-proven equivalent to its source
    /// before it can serve ([`RuntimeStats::warm_loads`] /
    /// [`RuntimeStats::warm_rejects`] count the outcomes) — the file is
    /// a cache, never a trust anchor.
    pub fn persist_path(mut self, path: impl Into<std::path::PathBuf>) -> RuntimeBuilder {
        self.persist_path = Some(path.into());
        self
    }

    /// Build the runtime.
    pub fn build(self) -> Runtime {
        // Tiering consumes the ProfileTable's hotness signal, so a tiered
        // runtime always profiles regardless of the `profiling` knob.
        let profiling = self.profiling || self.tiered;
        let runtime = Runtime {
            options: self.options,
            audit: self.audit,
            cache_capacity: self.cache_capacity,
            cache: Arc::new(Mutex::new(TransformCache::new(self.cache_capacity))),
            stats: Arc::new(Mutex::new(RuntimeStats::new())),
            vm_pool: VmPool::new(self.engine, self.threads, VM_POOL_LIMIT),
            sink: self.sink,
            profile: profiling.then(|| Arc::new(ProfileTable::new(self.profile_capacity))),
            tracer: self.tracer,
            tiered: self.tiered,
            promote_after: self.promote_after,
            background_promotion: self.background_promotion,
            pending_promotions: Arc::new(AtomicU64::new(0)),
            persist_path: self.persist_path,
        };
        runtime.load_persisted();
        runtime
    }

    /// Build the runtime already wrapped for sharing across contexts and
    /// threads.
    pub fn build_shared(self) -> Arc<Runtime> {
        Arc::new(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;
    use bh_tensor::{DType, Shape, Tensor};

    fn listing2() -> Program {
        parse_program(
            "BH_IDENTITY a0 [0:10:1] 0\n\
             BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
             BH_SYNC a0\n",
        )
        .unwrap()
    }

    #[test]
    fn second_eval_hits_the_cache_and_matches() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let (v1, o1) = rt.eval(&p, &[], reg).unwrap();
        let (v2, o2) = rt.eval(&p, &[], reg).unwrap();
        assert_eq!(v1, v2);
        assert!(!o1.cache_hit);
        assert!(o2.cache_hit);
        assert!(Arc::ptr_eq(&o1.plan, &o2.plan));
        let stats = rt.stats();
        assert_eq!(stats.evals, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        // The fixpoint ran exactly once.
        assert_eq!(stats.rules_fired, o1.report().total_applications() as u64);
    }

    #[test]
    fn renamed_registers_share_a_plan() {
        let rt = Runtime::new();
        let p = listing2();
        let q = parse_program(
            "BH_IDENTITY z [0:10:1] 0\n\
             BH_ADD z z 1\nBH_ADD z z 1\nBH_ADD z z 1\n\
             BH_SYNC z\n",
        )
        .unwrap();
        rt.eval(&p, &[], p.reg_by_name("a0").unwrap()).unwrap();
        let (v, o) = rt.eval(&q, &[], q.reg_by_name("z").unwrap()).unwrap();
        assert!(o.cache_hit);
        assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
    }

    #[test]
    fn options_fingerprints_partition_the_cache() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let (_, o2) = rt.eval(&p, &[], reg).unwrap();
        let (_, o0) = rt
            .eval_with(&p, &[], reg, &OptOptions::level(OptLevel::O0))
            .unwrap();
        assert!(!o2.cache_hit);
        assert!(!o0.cache_hit);
        assert_eq!(rt.cached_plans(), 2);
        // O0 kept all three adds; O2 merged them.
        assert!(o0.plan.program.instrs().len() > o2.plan.program.instrs().len());
    }

    #[test]
    fn bindings_feed_input_registers() {
        let rt = Runtime::new();
        let p = parse_program(".base x f64[4] input\n.base y f64[4]\nBH_ADD y x 1\nBH_SYNC y\n")
            .unwrap();
        let x = p.reg_by_name("x").unwrap();
        let y = p.reg_by_name("y").unwrap();
        let input = Tensor::from_vec(vec![1.0f64, 2.0, 3.0, 4.0]);
        let (v, _) = rt.eval(&p, &[(x, input)], y).unwrap();
        assert_eq!(v.to_f64_vec(), vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn outcomes_carry_service_time() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let (_, o1) = rt.eval(&p, &[], reg).unwrap();
        let (_, o2) = rt.eval(&p, &[], reg).unwrap();
        assert!(o1.elapsed > Duration::ZERO);
        let stats = rt.stats();
        assert_eq!(
            stats.eval_nanos,
            (o1.elapsed.as_nanos() + o2.elapsed.as_nanos()) as u64
        );
        assert!(stats.mean_eval_time() > Duration::ZERO);
        assert!(stats.eval_time() >= stats.mean_eval_time());
    }

    #[test]
    fn execute_runs_without_reading() {
        let rt = Runtime::new();
        let outcome = rt.execute(&listing2(), &[]).unwrap();
        assert!(!outcome.cache_hit);
        assert!(outcome.exec.kernels > 0);
        assert_eq!(rt.stats().evals, 1);
    }

    #[test]
    fn invalid_program_is_rejected_at_prepare() {
        let rt = Runtime::new();
        // Reads a never-written register; at O0 nothing rewrites the read
        // away, so plan validation must reject it (at O2 dead-code
        // elimination would legitimately leave an empty, valid plan).
        let p = parse_program("BH_ADD a0 [0:4:1] a0 [0:4:1] 1\n").unwrap();
        let o0 = OptOptions::level(OptLevel::O0);
        assert!(matches!(rt.prepare_with(&p, &o0), Err(VmError::Invalid(_))));
        assert_eq!(rt.cached_plans(), 0);
        // The optimiser ran even though verification failed: that's a miss.
        assert_eq!(rt.stats().cache_misses, 1);
        assert_eq!(rt.stats().verifications, 1);
    }

    #[test]
    fn verification_runs_once_then_never_on_the_eval_path() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        // Cold prepare: exactly one verification.
        let (plan, hit) = rt.prepare(&p).unwrap();
        assert!(!hit);
        assert_eq!(rt.stats().verifications, 1);
        // Cache-hit prepares and full evals: the counter must not move —
        // the eval path performs zero verify/validate calls after a hit.
        for _ in 0..5 {
            let (_, hit) = rt.prepare(&p).unwrap();
            assert!(hit);
            rt.eval(&p, &[], reg).unwrap();
        }
        // The pinned-VM hot path trusts the witness too.
        let mut vm = rt.lease_vm();
        for _ in 0..5 {
            rt.eval_prepared(&plan, &mut vm, &[], Some(reg), true)
                .unwrap();
        }
        let stats = rt.stats();
        assert_eq!(stats.verifications, 1);
        assert_eq!(stats.evals, 10);
    }

    #[test]
    fn tiered_verification_is_once_per_tier_compile_never_per_eval() {
        // The tiered world's version of the checked-once property:
        // `verifications` moves exactly once per tier compile — the
        // tier-0 build and the promotion — so ≤ 2 per digest, and never
        // on the eval path however many evals run.
        let rt = Runtime::builder().tiered(true).promote_after(2).build();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let mut tiers = Vec::new();
        for _ in 0..8 {
            let (_, o) = rt.eval(&p, &[], reg).unwrap();
            tiers.push(o.plan.tier);
        }
        let stats = rt.stats();
        assert_eq!(
            stats.verifications, 2,
            "tier-0 build + promotion, nothing else: {stats}"
        );
        assert_eq!(stats.tiers.tier0_builds, 1);
        assert_eq!(stats.tiers.promotions, 1);
        assert_eq!(stats.tiers.failed_promotions, 0);
        assert_eq!(stats.evals, 8);
        // The lifecycle is monotone: tier0 evals, then tier2 forever.
        assert_eq!(tiers[0], Tier::Tier0);
        assert_eq!(*tiers.last().unwrap(), Tier::Tier2);
        let flip = tiers.iter().position(|&t| t == Tier::Tier2).unwrap();
        assert!(tiers[flip..].iter().all(|&t| t == Tier::Tier2));
        // Hits 1 and 2 are recorded by evals 1–2; eval 3's prepare sees
        // hits == promote_after and promotes synchronously.
        assert_eq!(flip, 2);
    }

    #[test]
    fn promoted_plan_computes_the_same_value_with_fewer_instructions() {
        let rt = Runtime::builder().tiered(true).promote_after(1).build();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let (v0, o0) = rt.eval(&p, &[], reg).unwrap();
        assert_eq!(o0.plan.tier, Tier::Tier0);
        let (v2, o2) = rt.eval(&p, &[], reg).unwrap();
        assert_eq!(o2.plan.tier, Tier::Tier2);
        assert_eq!(v0, v2);
        // O2 merges the three adds that O0 left untouched.
        assert!(o2.plan.program.instrs().len() < o0.plan.program.instrs().len());
        // The swap is visible to plain cache hits too.
        let (plan, hit) = rt.prepare(&p).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&plan, &o2.plan));
    }

    #[test]
    fn tiered_runtime_forces_profiling_on() {
        let rt = Runtime::builder().tiered(true).profiling(false).build();
        assert!(
            rt.profile_table().is_some(),
            "tiering needs the hotness signal"
        );
        assert!(rt.tiered());
        assert_eq!(
            Runtime::builder().build().promote_after(),
            DEFAULT_PROMOTE_AFTER
        );
    }

    #[test]
    fn untiered_runtime_never_tiers() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        for _ in 0..100 {
            let (_, o) = rt.eval(&p, &[], reg).unwrap();
            assert_eq!(o.plan.tier, Tier::Tier2);
        }
        let stats = rt.stats();
        assert_eq!(stats.tiers, crate::TierDecisions::default());
        assert_eq!(stats.verifications, 1);
    }

    #[test]
    fn background_promotion_lands_between_evals() {
        let rt = Runtime::builder()
            .tiered(true)
            .promote_after(1)
            .background_promotion(true)
            .build();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let (v0, o0) = rt.eval(&p, &[], reg).unwrap();
        assert_eq!(o0.plan.tier, Tier::Tier0);
        // The second eval triggers the claim but must not block on the
        // promotion; it may still run tier-0.
        rt.eval(&p, &[], reg).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.pending_promotions() > 0 {
            assert!(Instant::now() < deadline, "promotion never quiesced");
            std::thread::yield_now();
        }
        let (v, o) = rt.eval(&p, &[], reg).unwrap();
        assert_eq!(o.plan.tier, Tier::Tier2);
        assert_eq!(v, v0);
        assert_eq!(rt.stats().tiers.promotions, 1);
    }

    #[test]
    fn stats_sink_sees_every_outcome() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let rt = Runtime::builder()
            .stats_sink(move |_| {
                seen2.fetch_add(1, Ordering::SeqCst);
            })
            .build();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        rt.eval(&p, &[], reg).unwrap();
        rt.eval(&p, &[], reg).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn fusing_engine_runtime_fuses() {
        let rt = Runtime::builder()
            .engine(Engine::Fusing { block: 128 })
            .build();
        let p = parse_program(
            "BH_IDENTITY a0 [0:1000:1] 1\nBH_ADD a0 a0 2\nBH_MULTIPLY a0 a0 a0\nBH_SYNC a0\n",
        )
        .unwrap();
        let (v, o) = rt.eval(&p, &[], p.reg_by_name("a0").unwrap()).unwrap();
        assert_eq!(v.to_f64_vec()[0], 9.0);
        assert!(o.exec.fused_groups >= 1);
    }

    #[test]
    fn vm_pool_recycles_without_leaking_state() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        for _ in 0..(VM_POOL_LIMIT + 3) {
            let (v, _) = rt.eval(&p, &[], reg).unwrap();
            assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
        }
        assert!(rt.vm_pool.idle() <= VM_POOL_LIMIT);
        // A different program through the same pooled VMs still computes
        // correctly (no stale bindings).
        let q = parse_program("BH_IDENTITY b [0:4:1] 7\nBH_SYNC b\n").unwrap();
        let (v, _) = rt.eval(&q, &[], q.reg_by_name("b").unwrap()).unwrap();
        assert_eq!(v.to_f64_vec(), vec![7.0; 4]);
    }

    #[test]
    fn shared_runtime_is_thread_safe() {
        let rt = Runtime::builder().build_shared();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let rt = Arc::clone(&rt);
                let p = p.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let (v, _) = rt.eval(&p, &[], reg).unwrap();
                        assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = rt.stats();
        assert_eq!(stats.evals, 80);
        // At most a couple of racing misses; everything else hit.
        assert!(stats.cache_hits >= 78 - stats.cache_misses, "{stats}");
        assert_eq!(rt.cached_plans(), 1);
    }

    #[test]
    fn builder_knobs_are_applied() {
        let rt = Runtime::builder()
            .opt_level(OptLevel::O1)
            .strict_math()
            .threads(3)
            .cache_capacity(7)
            .build();
        assert_eq!(rt.options().level, OptLevel::O1);
        assert!(!rt.options().ctx.fast_math);
        assert_eq!(rt.threads(), 3);
        let _ = Shape::vector(1);
        let _ = DType::Float64;
    }

    #[test]
    fn eval_prepared_on_a_pinned_vm_matches_eval() {
        let rt = Runtime::new();
        let p = parse_program(".base x f64[4] input\n.base y f64[4]\nBH_ADD y x 1\nBH_SYNC y\n")
            .unwrap();
        let x = p.reg_by_name("x").unwrap();
        let y = p.reg_by_name("y").unwrap();
        let (plan, hit) = rt.prepare(&p).unwrap();
        assert!(!hit);
        let mut vm = rt.lease_vm();
        // A whole batch back-to-back on one pinned VM, rebinding inputs.
        for i in 0..5 {
            let input = Tensor::from_vec(vec![i as f64; 4]);
            let (v, o) = rt
                .eval_prepared(&plan, &mut vm, &[(x, input)], Some(y), true)
                .unwrap();
            assert_eq!(v.unwrap().to_f64_vec(), vec![i as f64 + 1.0; 4]);
            assert!(o.cache_hit);
            // Per-run deltas, not accumulated totals.
            assert_eq!(o.exec.syncs, 1);
        }
        assert_eq!(rt.stats().evals, 5);
        // The prepared path never re-ran the optimiser.
        assert_eq!(rt.stats().cache_misses, 1);
    }

    #[test]
    fn eval_prepared_binds_cow_inputs_without_copying() {
        let rt = Runtime::new();
        let p = parse_program(".base x f64[8] input\nBH_SYNC x\n").unwrap();
        let x = p.reg_by_name("x").unwrap();
        let (plan, _) = rt.prepare(&p).unwrap();
        let input = Tensor::from_vec(vec![2.5f64; 8]);
        let mut vm = rt.lease_vm();
        let (v, _) = rt
            .eval_prepared(&plan, &mut vm, &[(x, input.clone())], Some(x), true)
            .unwrap();
        // Bind and read-back are O(1) Arc bumps: the result still shares
        // the caller's allocation.
        assert!(v.unwrap().shares_storage_with(&input));
    }

    #[test]
    fn profiling_records_stage_latencies_and_opcode_totals() {
        use bh_observe::Stage;
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        for _ in 0..4 {
            rt.eval(&p, &[], reg).unwrap();
        }
        let top = rt.profile(8);
        assert_eq!(top.len(), 1);
        let prof = &top[0];
        assert_eq!(prof.hits, 4);
        assert_eq!(prof.plan_builds, 1);
        // Optimise/verify sampled once (the miss); eval stages 4 times.
        assert_eq!(prof.stages.get(Stage::Optimise).count(), 1);
        assert_eq!(prof.stages.get(Stage::Verify).count(), 1);
        assert_eq!(prof.stages.get(Stage::Execute).count(), 4);
        assert_eq!(prof.stages.get(Stage::ReadBack).count(), 4);
        // Queue wait is the serving layer's to record, not the runtime's.
        assert_eq!(prof.stages.get(Stage::QueueWait).count(), 0);
        // The census matches the optimised plan, and totals scale by hits.
        let per_eval: u64 = prof.opcodes_per_eval.iter().map(|&(_, n)| n).sum();
        let (plan, _) = rt.prepare(&p).unwrap();
        assert_eq!(per_eval as usize, plan.program.instrs().len());
        assert_eq!(
            prof.opcode_totals().iter().map(|&(_, n)| n).sum::<u64>(),
            per_eval * 4
        );
        // Analytic exec counters aggregate exactly: 4 identical evals.
        assert_eq!(prof.exec.instructions % 4, 0);
    }

    #[test]
    fn disabling_profiling_empties_the_signal() {
        let rt = Runtime::builder().profiling(false).build();
        let p = listing2();
        rt.eval(&p, &[], p.reg_by_name("a0").unwrap()).unwrap();
        assert!(rt.profile_table().is_none());
        assert!(rt.profile(8).is_empty());
    }

    #[test]
    fn trace_sink_sees_span_pairs_for_every_stage() {
        use bh_observe::{RingTraceSink, TracePhase};
        let sink = RingTraceSink::shared(64);
        let rt = Runtime::builder()
            .trace_sink(sink.clone() as Arc<dyn bh_observe::TraceSink>)
            .build();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        rt.eval(&p, &[], reg).unwrap(); // miss: optimise + verify + eval
        rt.eval(&p, &[], reg).unwrap(); // hit: eval stages only
        let events = sink.events();
        let count = |stage: &str, phase: TracePhase| {
            events
                .iter()
                .filter(|e| e.stage == stage && e.phase == phase)
                .count()
        };
        for stage in ["optimise", "verify"] {
            assert_eq!(count(stage, TracePhase::Begin), 1, "{stage}");
            assert_eq!(count(stage, TracePhase::End), 1, "{stage}");
        }
        for stage in ["bind", "execute", "read_back"] {
            assert_eq!(count(stage, TracePhase::Begin), 2, "{stage}");
            assert_eq!(count(stage, TracePhase::End), 2, "{stage}");
        }
        // Every event carries the plan's fingerprint.
        let (plan, _) = rt.prepare(&p).unwrap();
        assert!(events
            .iter()
            .all(|e| e.fingerprint == plan.source_fingerprint));
        assert!(!sink.dump().is_empty());
    }

    #[test]
    fn audit_runs_once_per_compile_never_per_eval() {
        let rt = Runtime::builder().audit(true).build();
        assert!(rt.audit());
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        for _ in 0..6 {
            let (v, _) = rt.eval(&p, &[], reg).unwrap();
            assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
        }
        let stats = rt.stats();
        assert_eq!(stats.cache_misses, 1);
        // The invariant: one audit per plan compile, zero per eval.
        assert_eq!(
            stats.audits.total(),
            stats.cache_misses + stats.tiers.promotions
        );
        assert_eq!(stats.audits.passed, 1);
        assert_eq!(stats.audits.failed, 0);
        assert_eq!(stats.audits.rolled_back, 0);
    }

    #[test]
    fn tiered_audit_covers_the_promotion_too() {
        let rt = Runtime::builder()
            .audit(true)
            .tiered(true)
            .promote_after(2)
            .build();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        for _ in 0..8 {
            let (v, _) = rt.eval(&p, &[], reg).unwrap();
            assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
        }
        let stats = rt.stats();
        assert_eq!(stats.tiers.promotions, 1);
        // Tier-0 build + promotion: exactly two audits, like verifications.
        assert_eq!(
            stats.audits.total(),
            stats.cache_misses + stats.tiers.promotions
        );
        assert_eq!(stats.audits.total(), 2);
        assert_eq!(stats.audits.failed, 0);
    }

    #[test]
    fn audit_traces_a_span_per_compile() {
        use bh_observe::{RingTraceSink, TracePhase};
        let sink = RingTraceSink::shared(64);
        let rt = Runtime::builder()
            .audit(true)
            .trace_sink(sink.clone() as Arc<dyn bh_observe::TraceSink>)
            .build();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        rt.eval(&p, &[], reg).unwrap(); // miss: audited
        rt.eval(&p, &[], reg).unwrap(); // hit: no audit span
        let events = sink.events();
        let audits = |phase| {
            events
                .iter()
                .filter(|e| e.stage == "audit" && e.phase == phase)
                .count()
        };
        assert_eq!(audits(TracePhase::Begin), 1);
        assert_eq!(audits(TracePhase::End), 1);
    }

    #[test]
    fn disabled_audit_never_counts() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        rt.eval(&p, &[], reg).unwrap();
        assert!(!rt.audit());
        assert_eq!(rt.stats().audits, crate::AuditCounters::default());
    }

    #[test]
    fn clear_cache_forces_reoptimisation() {
        let rt = Runtime::new();
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        rt.eval(&p, &[], reg).unwrap();
        assert_eq!(rt.cached_plans(), 1);
        rt.clear_cache();
        assert_eq!(rt.cached_plans(), 0);
        let (_, o) = rt.eval(&p, &[], reg).unwrap();
        assert!(!o.cache_hit);
        assert_eq!(rt.stats().cache_misses, 2);
    }

    fn snapshot_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicUsize;
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("bh_runtime_{tag}_{}_{n}.bhss", std::process::id()))
    }

    #[test]
    fn warm_start_serves_persisted_plans_with_zero_reoptimisation() {
        let path = snapshot_path("warm");
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        let cold_value = {
            let rt = Runtime::builder().persist_path(&path).build();
            assert_eq!(rt.stats().warm_loads, 0); // nothing to load yet
            let (v, _) = rt.eval(&p, &[], reg).unwrap();
            assert!(rt.stats().rules_fired > 0);
            v
            // Drop writes the snapshot.
        };
        let rt = Runtime::builder().persist_path(&path).build();
        let stats = rt.stats();
        assert_eq!(stats.warm_loads, 1, "{stats}");
        assert_eq!(stats.warm_rejects, 0);
        assert_eq!(rt.cached_plans(), 1);
        let (v, o) = rt.eval(&p, &[], reg).unwrap();
        assert!(o.cache_hit, "warm-started digest must hit immediately");
        assert_eq!(v, cold_value);
        // Zero re-optimisation: no miss, no rule fired, no compile-side
        // verification (the load-time re-verify is bh-ir's, not a plan
        // compile). The loaded plan's report says the same.
        let stats = rt.stats();
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.rules_fired, 0);
        assert_eq!(stats.verifications, 0);
        assert_eq!(o.plan.report.iterations, 0);
        assert_eq!(o.plan.report.audits, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn explicit_persist_checkpoints_without_dropping() {
        let path = snapshot_path("checkpoint");
        let rt = Runtime::builder().persist_path(&path).build();
        assert_eq!(rt.persist_path(), Some(path.as_path()));
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        rt.eval(&p, &[], reg).unwrap();
        assert_eq!(rt.persist().unwrap(), 1);
        // Plans built under ad-hoc options are not snapshotted: a loader
        // keyed on the runtime's own options could never accept them.
        rt.eval_with(&p, &[], reg, &OptOptions::level(OptLevel::O0))
            .unwrap();
        assert_eq!(rt.cached_plans(), 2);
        assert_eq!(rt.persist().unwrap(), 1);
        let warm = Runtime::builder().persist_path(&path).build();
        assert_eq!(warm.stats().warm_loads, 1);
        assert_eq!(warm.stats().warm_rejects, 0);
        let _ = std::fs::remove_file(&path);
        // No configured path: a silent no-op, not an error.
        assert_eq!(Runtime::new().persist().unwrap(), 0);
    }

    #[test]
    fn warm_start_under_different_options_rejects_instead_of_serving() {
        let path = snapshot_path("optskew");
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        {
            let rt = Runtime::builder().persist_path(&path).build();
            rt.eval(&p, &[], reg).unwrap();
        }
        // Strict-math runtime: the fast-math plan must not be served.
        let rt = Runtime::builder().strict_math().persist_path(&path).build();
        let stats = rt.stats();
        assert_eq!(stats.warm_loads, 0);
        assert_eq!(stats.warm_rejects, 1);
        assert_eq!(rt.cached_plans(), 0);
        // And the runtime still serves correctly, cold.
        let (v, o) = rt.eval(&p, &[], reg).unwrap();
        assert!(!o.cache_hit);
        assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_snapshot_is_a_cold_start_never_a_panic() {
        let path = snapshot_path("corrupt");
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        {
            let rt = Runtime::builder().persist_path(&path).build();
            rt.eval(&p, &[], reg).unwrap();
        }
        // Flip every byte of the snapshot in turn; each mutant either
        // cold-starts or counts a reject — and always still serves.
        let pristine = std::fs::read(&path).unwrap();
        for idx in [4, 14, 22, pristine.len() / 2, pristine.len() - 1] {
            let mut bytes = pristine.clone();
            bytes[idx] ^= 0xff;
            std::fs::write(&path, &bytes).unwrap();
            let rt = Runtime::builder()
                .persist_path(&path)
                .cache_capacity(8)
                .build();
            let stats = rt.stats();
            assert!(stats.warm_loads + stats.warm_rejects <= 1, "{stats}");
            let (v, _) = rt.eval(&p, &[], reg).unwrap();
            assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
            // Never persist the mutant back over itself mid-loop.
            std::fs::write(&path, &pristine).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warm_loads_leave_the_audit_invariant_intact() {
        let path = snapshot_path("auditinv");
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        {
            let rt = Runtime::builder().audit(true).persist_path(&path).build();
            rt.eval(&p, &[], reg).unwrap();
        }
        let rt = Runtime::builder().audit(true).persist_path(&path).build();
        rt.eval(&p, &[], reg).unwrap();
        let stats = rt.stats();
        assert_eq!(stats.warm_loads, 1);
        // Warm loads are neither misses nor promotions, and they touch
        // no audit counters — the compile-side invariant still holds.
        assert_eq!(
            stats.audits.total(),
            stats.cache_misses + stats.tiers.promotions
        );
        assert_eq!(stats.audits.total(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tiered_warm_start_keeps_the_promotion_path() {
        let path = snapshot_path("tiered");
        let p = listing2();
        let reg = p.reg_by_name("a0").unwrap();
        {
            // High threshold: the plan stays tier-0 for the snapshot.
            let rt = Runtime::builder()
                .tiered(true)
                .promote_after(1000)
                .persist_path(&path)
                .build();
            let (_, o) = rt.eval(&p, &[], reg).unwrap();
            assert_eq!(o.plan.tier, Tier::Tier0);
        }
        // A non-tiered runtime rejects the tier-0 plan (it could never
        // promote it) and compiles at full strength instead.
        {
            let rt = Runtime::builder().persist_path(&path).build();
            assert_eq!(rt.stats().warm_rejects, 1);
            let (_, o) = rt.eval(&p, &[], reg).unwrap();
            assert_eq!(o.plan.tier, Tier::Tier2);
            let _ = std::fs::remove_file(&path);
            rt.persist().unwrap();
        }
        // A tiered runtime accepts the loaded tier-2 plan as-is.
        let rt = Runtime::builder()
            .tiered(true)
            .promote_after(1)
            .persist_path(&path)
            .build();
        assert_eq!(rt.stats().warm_loads, 1);
        let (v, o) = rt.eval(&p, &[], reg).unwrap();
        assert!(o.cache_hit);
        assert_eq!(o.plan.tier, Tier::Tier2);
        assert_eq!(v.to_f64_vec(), vec![3.0; 10]);
        assert_eq!(rt.stats().tiers.tier0_builds, 0);
        let _ = std::fs::remove_file(&path);
    }
}
