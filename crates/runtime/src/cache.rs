//! The transformation cache: structural digest → optimised plan.
//!
//! The paper's rewrite fixpoint runs in time proportional to program
//! length × rule count × sweeps; under repeated traffic the same traced
//! byte-code sequences arrive over and over, so the runtime memoises the
//! *result* of transformation the way a JVM verifies byte-code once at
//! load time rather than per execution. Keys are
//! [`bh_ir::ProgramDigest`]s (canonical structure, register names
//! ignored) paired with the full optimisation options, so the same
//! sequence optimised under different levels/knobs occupies distinct
//! entries. Eviction is least-recently-used.

use bh_ir::{Opcode, Program, ProgramDigest, Verified};
use bh_observe::Tier;
use bh_opt::{OptOptions, OptReport};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// An optimised, verified, ready-to-execute program plus the report of
/// how it got that way. Immutable once built; shared via `Arc` between
/// the cache and every [`crate::EvalOutcome`] that used it. A tiered
/// runtime may *replace* a cache entry's plan with a stronger one
/// (promotion), but each `EvalPlan` value itself never changes — readers
/// holding an `Arc` clone keep a coherent plan through any swap.
#[derive(Debug)]
pub struct EvalPlan {
    /// The transformed program wrapped in its [`bh_ir::Verified`]
    /// witness: verification ran exactly once, at plan-build time, and
    /// the witness lets every later execution take
    /// [`bh_vm::Vm::run_verified`]'s trusted path with zero re-checks.
    /// (`Verified` derefs to [`bh_ir::Program`], so read-only callers
    /// are unaffected.)
    pub program: Verified,
    /// What the optimiser did to produce it.
    pub report: OptReport,
    /// Fingerprint of the source program's structural digest, for logs.
    pub source_fingerprint: u64,
    /// Instructions the optimised plan executes per evaluation, counted
    /// by op-code (sorted, `BH_NONE` excluded). Captured once at plan
    /// build so per-digest opcode accounting costs the profiler nothing
    /// on the eval path: totals are `census × hits`.
    pub opcode_census: Vec<(Opcode, u64)>,
    /// Which optimisation tier built this plan. Non-tiered runtimes
    /// build [`Tier::Tier2`] plans directly; a tiered runtime builds
    /// [`Tier::Tier0`] plans on misses and promotes hot digests.
    pub tier: Tier,
    /// The source program the plan was transformed from, exactly as it
    /// entered the optimiser. Kept so the plan can be persisted as a
    /// self-contained container (source + plan) and re-audited with
    /// `bh_ir::check_equiv` on load — a plan without its source could
    /// never be re-proven against anything.
    pub source: Arc<Program>,
}

/// Count a program's instructions by op-code (sorted by op-code,
/// `BH_NONE` excluded — matching what [`bh_vm::ExecStats`] calls an
/// instruction).
pub(crate) fn opcode_census(program: &Program) -> Vec<(Opcode, u64)> {
    let mut counts: BTreeMap<Opcode, u64> = BTreeMap::new();
    for instr in program.instrs() {
        if instr.op != Opcode::NoOp {
            *counts.entry(instr.op).or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub digest: ProgramDigest,
    // The full options value, not a hand-rolled fingerprint: a field
    // added to `OptOptions` participates in the key automatically.
    pub options: OptOptions,
}

struct Entry {
    plan: Arc<EvalPlan>,
    last_used: u64,
    /// ProfileTable hit count for this digest at the moment the entry's
    /// plan was inserted. The promotion policy compares *current* hits
    /// against this baseline, so hotness accumulated by an earlier
    /// incarnation of the digest (before an LRU eviction) can never
    /// instantly re-promote a freshly re-inserted cold entry — the
    /// stale-hotness fix pinned by the tiering regression suite.
    baseline_hits: u64,
    /// True once a promotion has been claimed for this entry. Set
    /// check-and-set under the cache lock, which makes promotion
    /// exactly-once per entry incarnation; a fresh insert (including
    /// re-insertion after eviction) starts unclaimed.
    promoting: bool,
}

/// LRU map from `(structural digest, options)` to optimised plans.
pub(crate) struct TransformCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
}

impl TransformCache {
    pub fn new(capacity: usize) -> TransformCache {
        TransformCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }

    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<EvalPlan>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.plan)
        })
    }

    /// Insert `plan` under `key`, evicting the least-recently-used entry
    /// when full. If a racing thread inserted the same key first, its plan
    /// wins (and is returned) so all callers share one allocation.
    ///
    /// `baseline_hits` is the digest's ProfileTable hit count at insert
    /// time (0 for non-tiered runtimes) — the hotness baseline promotion
    /// decisions are measured against.
    pub fn insert(
        &mut self,
        key: CacheKey,
        plan: Arc<EvalPlan>,
        baseline_hits: u64,
    ) -> Arc<EvalPlan> {
        if self.capacity == 0 {
            return plan;
        }
        self.tick += 1;
        if let Some(existing) = self.map.get_mut(&key) {
            existing.last_used = self.tick;
            return Arc::clone(&existing.plan);
        }
        if self.map.len() >= self.capacity {
            // O(n) victim scan; capacities are modest (default 256) and
            // the scan only happens once the cache is full.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key,
            Entry {
                plan: Arc::clone(&plan),
                last_used: self.tick,
                baseline_hits,
                promoting: false,
            },
        );
        plan
    }

    /// Claim the exactly-once right to promote `key`'s tier-0 plan.
    /// Succeeds only when the entry exists, still holds a tier-0 plan,
    /// is not already claimed, and has earned `promote_after` hits *since
    /// its own insertion* (`hits_now − baseline ≥ promote_after`). The
    /// baseline comparison is what keeps hotness accumulated before an
    /// LRU eviction from re-promoting a freshly re-inserted entry.
    pub fn try_claim_promotion(
        &mut self,
        key: &CacheKey,
        hits_now: u64,
        promote_after: u64,
    ) -> bool {
        let Some(entry) = self.map.get_mut(key) else {
            return false;
        };
        if entry.plan.tier != Tier::Tier0 || entry.promoting {
            return false;
        }
        if hits_now.saturating_sub(entry.baseline_hits) < promote_after {
            return false;
        }
        entry.promoting = true;
        true
    }

    /// Every live entry, for persistence snapshots. Order is
    /// unspecified; callers re-key on load anyway (the digest is
    /// recomputed from the decoded source, never trusted from disk).
    pub fn entries(&self) -> Vec<(CacheKey, Arc<EvalPlan>)> {
        self.map
            .iter()
            .map(|(k, e)| (k.clone(), Arc::clone(&e.plan)))
            .collect()
    }

    /// Atomically swap a promoted plan into `key`'s entry. Only lands on
    /// the same entry incarnation whose promotion was claimed
    /// (`promoting == true`); if the entry was evicted — or evicted and
    /// re-inserted, which resets the flag — the stale promotion result is
    /// dropped and `false` is returned. Readers are unaffected either
    /// way: they hold their own `Arc` to whichever plan they fetched.
    pub fn install_promoted(&mut self, key: &CacheKey, plan: Arc<EvalPlan>) -> bool {
        match self.map.get_mut(key) {
            Some(entry) if entry.promoting => {
                self.tick += 1;
                entry.plan = plan;
                entry.last_used = self.tick;
                entry.promoting = false;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;
    use bh_opt::Optimizer;

    fn plan_for(text: &str) -> (CacheKey, Arc<EvalPlan>) {
        let source = parse_program(text).unwrap();
        let digest = source.structural_digest();
        let mut program = source.clone();
        let report = Optimizer::default().run(&mut program);
        let fp = digest.fingerprint();
        (
            CacheKey {
                digest,
                options: OptOptions::default(),
            },
            Arc::new(EvalPlan {
                program: bh_ir::verify_owned(program.clone()).expect("test program verifies"),
                report,
                source_fingerprint: fp,
                opcode_census: opcode_census(&program),
                tier: Tier::Tier0,
                source: Arc::new(source),
            }),
        )
    }

    fn retiered(plan: &Arc<EvalPlan>, tier: Tier) -> Arc<EvalPlan> {
        Arc::new(EvalPlan {
            program: plan.program.clone(),
            report: plan.report.clone(),
            source_fingerprint: plan.source_fingerprint,
            opcode_census: plan.opcode_census.clone(),
            tier,
            source: Arc::clone(&plan.source),
        })
    }

    #[test]
    fn get_after_insert_returns_same_plan() {
        let mut cache = TransformCache::new(4);
        let (key, plan) = plan_for("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n");
        assert!(cache.get(&key).is_none());
        cache.insert(
            CacheKey {
                digest: key.digest.clone(),
                options: OptOptions::default(),
            },
            Arc::clone(&plan),
            0,
        );
        let got = cache.get(&key).unwrap();
        assert!(Arc::ptr_eq(&got, &plan));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let mut cache = TransformCache::new(2);
        let (k1, p1) = plan_for("BH_IDENTITY a [0:1:1] 1\nBH_SYNC a\n");
        let (k2, p2) = plan_for("BH_IDENTITY a [0:2:1] 1\nBH_SYNC a\n");
        let (k3, p3) = plan_for("BH_IDENTITY a [0:3:1] 1\nBH_SYNC a\n");
        cache.insert(
            CacheKey {
                digest: k1.digest.clone(),
                options: OptOptions::default(),
            },
            p1,
            0,
        );
        cache.insert(
            CacheKey {
                digest: k2.digest.clone(),
                options: OptOptions::default(),
            },
            p2,
            0,
        );
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.get(&k1).is_some());
        cache.insert(
            CacheKey {
                digest: k3.digest.clone(),
                options: OptOptions::default(),
            },
            p3,
            0,
        );
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k2).is_none());
        assert!(cache.get(&k3).is_some());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = TransformCache::new(0);
        let (key, plan) = plan_for("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n");
        cache.insert(
            CacheKey {
                digest: key.digest.clone(),
                options: OptOptions::default(),
            },
            plan,
            0,
        );
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn racing_insert_keeps_first_plan() {
        let mut cache = TransformCache::new(4);
        let (key, plan_a) = plan_for("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n");
        let (_, plan_b) = plan_for("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n");
        cache.insert(
            CacheKey {
                digest: key.digest.clone(),
                options: OptOptions::default(),
            },
            Arc::clone(&plan_a),
            0,
        );
        let winner = cache.insert(
            CacheKey {
                digest: key.digest.clone(),
                options: OptOptions::default(),
            },
            plan_b,
            0,
        );
        assert!(Arc::ptr_eq(&winner, &plan_a));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn promotion_claim_is_exactly_once_and_gated_on_fresh_hits() {
        let mut cache = TransformCache::new(4);
        let (key, plan) = plan_for("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n");
        // Baseline 10: the digest was hot before this entry existed.
        cache.insert(key.clone(), Arc::clone(&plan), 10);
        // Stale hotness alone (10 recorded hits, 0 fresh) must not claim.
        assert!(!cache.try_claim_promotion(&key, 10, 3));
        // 12 − 10 = 2 fresh hits: still under the threshold.
        assert!(!cache.try_claim_promotion(&key, 12, 3));
        // 13 − 10 = 3: claimed — and only once.
        assert!(cache.try_claim_promotion(&key, 13, 3));
        assert!(!cache.try_claim_promotion(&key, 100, 3));
        // Install lands, flips the tier, and further claims fail (tier-2).
        let promoted = retiered(&plan, Tier::Tier2);
        assert!(cache.install_promoted(&key, Arc::clone(&promoted)));
        assert!(Arc::ptr_eq(&cache.get(&key).unwrap(), &promoted));
        assert!(!cache.try_claim_promotion(&key, 1000, 3));
    }

    #[test]
    fn stale_promotion_is_dropped_after_eviction_or_reinsert() {
        let mut cache = TransformCache::new(4);
        let (key, plan) = plan_for("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n");
        cache.insert(key.clone(), Arc::clone(&plan), 0);
        assert!(cache.try_claim_promotion(&key, 5, 3));
        // The entry is evicted mid-promotion…
        cache.clear();
        let promoted = retiered(&plan, Tier::Tier2);
        assert!(!cache.install_promoted(&key, Arc::clone(&promoted)));
        // …and re-inserted cold: the old claim must not leak onto the
        // fresh incarnation either.
        cache.insert(key.clone(), Arc::clone(&plan), 5);
        assert!(!cache.install_promoted(&key, promoted));
        assert_eq!(cache.get(&key).unwrap().tier, Tier::Tier0);
    }

    #[test]
    fn claims_on_missing_entries_fail() {
        let mut cache = TransformCache::new(4);
        let (key, plan) = plan_for("BH_IDENTITY a [0:4:1] 1\nBH_SYNC a\n");
        assert!(!cache.try_claim_promotion(&key, 100, 1));
        assert!(!cache.install_promoted(&key, plan));
    }
}
