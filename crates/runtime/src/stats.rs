//! Aggregated runtime statistics.
//!
//! One `Runtime` serves many evaluations from many contexts/threads; the
//! counters here aggregate across all of them so a serving process can
//! export one snapshot (evals, cache effectiveness, rewrite activity and
//! the VM's execution counters) instead of the per-flush `last_*` state
//! the old three-object API kept on each context.

use bh_vm::ExecStats;
use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::Duration;

/// What the tiering policy decided, counted. All zeros on a non-tiered
/// runtime — enabling [`crate::RuntimeBuilder::tiered`] is what makes
/// these move (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierDecisions {
    /// Cheap tier-0 plans built on cache misses (tiered runtimes only).
    pub tier0_builds: u64,
    /// Hot digests re-optimised at full strength, re-verified and
    /// swapped live into the cache.
    pub promotions: u64,
    /// Promotions that did *not* go live: the re-optimised plan failed
    /// re-verification (the tier-0 plan is kept, permanently), or the
    /// entry was evicted before the swap landed.
    pub failed_promotions: u64,
    /// Tier-0 builds for digests that already had ProfileTable hotness —
    /// i.e. a re-insert after LRU eviction reset the promotion baseline
    /// (the stale-hotness guard firing, observable).
    pub rebaselines: u64,
}

impl Add for TierDecisions {
    type Output = TierDecisions;

    fn add(self, rhs: TierDecisions) -> TierDecisions {
        TierDecisions {
            tier0_builds: self.tier0_builds.saturating_add(rhs.tier0_builds),
            promotions: self.promotions.saturating_add(rhs.promotions),
            failed_promotions: self.failed_promotions.saturating_add(rhs.failed_promotions),
            rebaselines: self.rebaselines.saturating_add(rhs.rebaselines),
        }
    }
}

impl AddAssign for TierDecisions {
    fn add_assign(&mut self, rhs: TierDecisions) {
        *self = *self + rhs;
    }
}

/// Whole-plan translation-validation audits, counted. All zeros unless
/// [`crate::RuntimeBuilder::audit`] is on; with auditing enabled the
/// invariant `audits.total() == cache_misses + tiers.promotions` holds —
/// exactly one audit per plan *compile*, never one per eval (DESIGN.md
/// §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditCounters {
    /// Plans proved observationally equivalent to their source by
    /// [`bh_ir::check_equiv`] before entering the cache.
    pub passed: u64,
    /// Plans the auditor could not prove equivalent (one-sided: a
    /// failure means "unproven", not necessarily "wrong").
    pub failed: u64,
    /// Failed audits that were served anyway — by rolling the plan back
    /// to the unoptimised source program. Always equal to `failed` in
    /// the current runtime: every unproven plan is discarded.
    pub rolled_back: u64,
}

impl AuditCounters {
    /// Audits run, passed or failed.
    pub fn total(&self) -> u64 {
        self.passed.saturating_add(self.failed)
    }
}

impl Add for AuditCounters {
    type Output = AuditCounters;

    fn add(self, rhs: AuditCounters) -> AuditCounters {
        AuditCounters {
            passed: self.passed.saturating_add(rhs.passed),
            failed: self.failed.saturating_add(rhs.failed),
            rolled_back: self.rolled_back.saturating_add(rhs.rolled_back),
        }
    }
}

impl AddAssign for AuditCounters {
    fn add_assign(&mut self, rhs: AuditCounters) {
        *self = *self + rhs;
    }
}

/// Snapshot of everything a [`crate::Runtime`] has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RuntimeStats {
    /// Evaluations served (`eval` + `execute` calls).
    pub evals: u64,
    /// Evaluations whose optimised plan came from the transformation
    /// cache (the rewrite fixpoint was skipped entirely).
    pub cache_hits: u64,
    /// Plan lookups that had to run the optimiser.
    pub cache_misses: u64,
    /// Byte-code verification passes run (`bh_ir::verify_owned` at plan
    /// build). Verification happens exactly once per *tier compile* —
    /// once per cache miss, plus once more when a tiered runtime promotes
    /// a hot digest (≤ 2 per digest) — and never on the eval path, so
    /// under steady-state traffic this counter stays flat while
    /// [`RuntimeStats::evals`] climbs — the "checked once, trusted
    /// forever" property, observable.
    pub verifications: u64,
    /// Total rewrite-rule applications across all cache misses.
    pub rules_fired: u64,
    /// Fixpoint sweeps performed across all cache misses.
    pub opt_iterations: u64,
    /// Total wall-clock nanoseconds spent inside evaluations (bind →
    /// execute → read-back; optimisation and queueing excluded). Divided
    /// by [`RuntimeStats::evals`] this is the mean service time — the
    /// signal a latency-SLO feedback loop (e.g. `bh-serve`'s adaptive
    /// batcher, or a [`crate::StatsSink`] exporter) consumes.
    pub eval_nanos: u64,
    /// Aggregated VM execution counters (kernels launched, fused groups,
    /// memory traffic, flops, syncs) across all evaluations.
    pub exec: ExecStats,
    /// Tiering-policy decision counters (all zero unless
    /// [`crate::RuntimeBuilder::tiered`] is on).
    pub tiers: TierDecisions,
    /// Whole-plan audit counters (all zero unless
    /// [`crate::RuntimeBuilder::audit`] is on).
    pub audits: AuditCounters,
    /// Plans restored from a persisted snapshot at build time
    /// ([`crate::RuntimeBuilder::persist_path`]). Each one was decoded,
    /// re-verified and re-audited before insertion — a warm-started
    /// runtime serves these digests with zero re-optimisation, which is
    /// exactly what this counter proves on a dashboard.
    pub warm_loads: u64,
    /// Snapshot entries that failed re-validation on load (bad container,
    /// digest mismatch, failed verification or equivalence audit, or a
    /// tier the runtime won't serve) and were discarded. Non-zero after a
    /// restart means the snapshot was stale or tampered with — never that
    /// anything unsound was served.
    pub warm_rejects: u64,
}

impl RuntimeStats {
    /// Fresh zeroed counters.
    pub fn new() -> RuntimeStats {
        RuntimeStats::default()
    }

    /// Fraction of plan lookups served from the cache (0.0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Total wall-clock time spent inside evaluations.
    pub fn eval_time(&self) -> Duration {
        Duration::from_nanos(self.eval_nanos)
    }

    /// Mean service time per evaluation, rounded to the nearest
    /// nanosecond (zero when none yet). Truncating here used to bias a
    /// latency-SLO control loop low by up to 1 ns per read — harmless at
    /// millisecond scale but wrong for the sub-microsecond cached path.
    pub fn mean_eval_time(&self) -> Duration {
        if self.evals == 0 {
            return Duration::ZERO;
        }
        let half = self.evals / 2;
        Duration::from_nanos(
            self.eval_nanos
                .saturating_add(half)
                .checked_div(self.evals)
                .unwrap_or(0),
        )
    }
}

impl Add for RuntimeStats {
    type Output = RuntimeStats;

    // Saturating: merging snapshots from a long-running server must
    // never overflow-panic in debug builds.
    fn add(self, rhs: RuntimeStats) -> RuntimeStats {
        RuntimeStats {
            evals: self.evals.saturating_add(rhs.evals),
            cache_hits: self.cache_hits.saturating_add(rhs.cache_hits),
            cache_misses: self.cache_misses.saturating_add(rhs.cache_misses),
            verifications: self.verifications.saturating_add(rhs.verifications),
            rules_fired: self.rules_fired.saturating_add(rhs.rules_fired),
            opt_iterations: self.opt_iterations.saturating_add(rhs.opt_iterations),
            eval_nanos: self.eval_nanos.saturating_add(rhs.eval_nanos),
            exec: self.exec + rhs.exec,
            tiers: self.tiers + rhs.tiers,
            audits: self.audits + rhs.audits,
            warm_loads: self.warm_loads.saturating_add(rhs.warm_loads),
            warm_rejects: self.warm_rejects.saturating_add(rhs.warm_rejects),
        }
    }
}

impl AddAssign for RuntimeStats {
    fn add_assign(&mut self, rhs: RuntimeStats) {
        *self = *self + rhs;
    }
}

impl bh_observe::Collect for RuntimeStats {
    /// Exports the runtime counter families (`bh_runtime_*`) and the
    /// aggregated VM counters (`bh_vm_*`, via [`ExecStats`]'s own
    /// `Collect`). Metric names are part of the golden-tested exporter
    /// contract.
    fn collect_into(&self, set: &mut bh_observe::MetricSet) {
        set.counter("bh_runtime_evals_total", "Evaluations served.")
            .value(self.evals);
        set.counter(
            "bh_runtime_cache_hits_total",
            "Evaluations whose plan came from the transformation cache.",
        )
        .value(self.cache_hits);
        set.counter(
            "bh_runtime_cache_misses_total",
            "Plan lookups that had to run the optimiser.",
        )
        .value(self.cache_misses);
        set.gauge(
            "bh_runtime_cache_hit_rate",
            "Fraction of plan lookups served from the cache.",
        )
        .value(self.hit_rate());
        set.counter(
            "bh_runtime_verifications_total",
            "Byte-code verification passes (once per tier compile, never per eval).",
        )
        .value(self.verifications);
        set.counter(
            "bh_runtime_tier0_builds_total",
            "Cheap tier-0 plans built on cache misses (tiered runtimes only).",
        )
        .value(self.tiers.tier0_builds);
        set.counter(
            "bh_runtime_promotions_total",
            "Hot digests re-optimised at full strength and swapped live.",
        )
        .value(self.tiers.promotions);
        set.counter(
            "bh_runtime_failed_promotions_total",
            "Promotions that did not go live (re-verification failed or entry evicted).",
        )
        .value(self.tiers.failed_promotions);
        set.counter(
            "bh_runtime_rebaselines_total",
            "Tier-0 rebuilds of digests whose prior hotness was reset after LRU eviction.",
        )
        .value(self.tiers.rebaselines);
        set.counter(
            "bh_runtime_audit_passed_total",
            "Optimised plans proved equivalent to their source before caching.",
        )
        .value(self.audits.passed);
        set.counter(
            "bh_runtime_audit_failed_total",
            "Optimised plans the translation validator could not prove equivalent.",
        )
        .value(self.audits.failed);
        set.counter(
            "bh_runtime_audit_rolled_back_total",
            "Unproven plans replaced by their unoptimised source program.",
        )
        .value(self.audits.rolled_back);
        set.counter(
            "bh_runtime_warm_loads_total",
            "Plans restored (re-verified and re-audited) from a persisted snapshot.",
        )
        .value(self.warm_loads);
        set.counter(
            "bh_runtime_warm_rejects_total",
            "Snapshot entries discarded on load after failing re-validation.",
        )
        .value(self.warm_rejects);
        set.counter(
            "bh_runtime_rules_fired_total",
            "Rewrite-rule applications across all cache misses.",
        )
        .value(self.rules_fired);
        set.counter(
            "bh_runtime_opt_iterations_total",
            "Fixpoint sweeps across all cache misses.",
        )
        .value(self.opt_iterations);
        set.counter(
            "bh_runtime_eval_nanos_total",
            "Wall-clock nanoseconds inside evaluations (bind to read-back).",
        )
        .value(self.eval_nanos);
        set.gauge(
            "bh_runtime_mean_eval_nanos",
            "Mean service time per evaluation in nanoseconds.",
        )
        .value(u64::try_from(self.mean_eval_time().as_nanos()).unwrap_or(u64::MAX));
        self.exec.collect_into(set);
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "evals={} hits={} misses={} hit-rate={:.0}% verifies={} audits={} rules={} t0={} promoted={} warm={}/{} mean-eval={:?} [{}]",
            self.evals,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate() * 100.0,
            self.verifications,
            self.audits.total(),
            self.rules_fired,
            self.tiers.tier0_builds,
            self.tiers.promotions,
            self.warm_loads,
            self.warm_rejects,
            self.mean_eval_time(),
            self.exec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(RuntimeStats::new().hit_rate(), 0.0);
        let s = RuntimeStats {
            cache_hits: 3,
            cache_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn add_combines_fieldwise() {
        let a = RuntimeStats {
            evals: 1,
            cache_hits: 1,
            ..Default::default()
        };
        let b = RuntimeStats {
            evals: 2,
            rules_fired: 5,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.evals, 3);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.rules_fired, 5);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn eval_time_divides_by_evals() {
        assert_eq!(RuntimeStats::new().mean_eval_time(), Duration::ZERO);
        let s = RuntimeStats {
            evals: 4,
            eval_nanos: 4_000,
            ..Default::default()
        };
        assert_eq!(s.eval_time(), Duration::from_nanos(4_000));
        assert_eq!(s.mean_eval_time(), Duration::from_nanos(1_000));
        let doubled = s + s;
        assert_eq!(doubled.eval_nanos, 8_000);
        assert_eq!(doubled.mean_eval_time(), Duration::from_nanos(1_000));
    }

    #[test]
    fn tier_decisions_add_fieldwise_and_saturate() {
        let a = RuntimeStats {
            tiers: TierDecisions {
                tier0_builds: 2,
                promotions: 1,
                failed_promotions: 0,
                rebaselines: 1,
            },
            ..Default::default()
        };
        let b = RuntimeStats {
            tiers: TierDecisions {
                tier0_builds: u64::MAX,
                promotions: 3,
                failed_promotions: 2,
                rebaselines: 0,
            },
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.tiers.tier0_builds, u64::MAX);
        assert_eq!(c.tiers.promotions, 4);
        assert_eq!(c.tiers.failed_promotions, 2);
        assert_eq!(c.tiers.rebaselines, 1);
    }

    #[test]
    fn audit_counters_add_fieldwise_and_saturate() {
        let a = AuditCounters {
            passed: 3,
            failed: 1,
            rolled_back: 1,
        };
        let b = AuditCounters {
            passed: u64::MAX,
            failed: 2,
            rolled_back: 2,
        };
        let c = a + b;
        assert_eq!(c.passed, u64::MAX);
        assert_eq!(c.failed, 3);
        assert_eq!(c.rolled_back, 3);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn display_mentions_hit_rate() {
        let s = RuntimeStats {
            cache_hits: 1,
            cache_misses: 1,
            ..Default::default()
        };
        assert!(s.to_string().contains("hit-rate=50%"), "{s}");
    }
}
