//! Aggregated runtime statistics.
//!
//! One `Runtime` serves many evaluations from many contexts/threads; the
//! counters here aggregate across all of them so a serving process can
//! export one snapshot (evals, cache effectiveness, rewrite activity and
//! the VM's execution counters) instead of the per-flush `last_*` state
//! the old three-object API kept on each context.

use bh_vm::ExecStats;
use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::Duration;

/// Snapshot of everything a [`crate::Runtime`] has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RuntimeStats {
    /// Evaluations served (`eval` + `execute` calls).
    pub evals: u64,
    /// Evaluations whose optimised plan came from the transformation
    /// cache (the rewrite fixpoint was skipped entirely).
    pub cache_hits: u64,
    /// Plan lookups that had to run the optimiser.
    pub cache_misses: u64,
    /// Byte-code verification passes run (`bh_ir::verify_owned` at plan
    /// build). Verification happens exactly once per cache miss and never
    /// on the eval path, so under steady-state traffic this counter stays
    /// flat while [`RuntimeStats::evals`] climbs — the "checked once,
    /// trusted forever" property, observable.
    pub verifications: u64,
    /// Total rewrite-rule applications across all cache misses.
    pub rules_fired: u64,
    /// Fixpoint sweeps performed across all cache misses.
    pub opt_iterations: u64,
    /// Total wall-clock nanoseconds spent inside evaluations (bind →
    /// execute → read-back; optimisation and queueing excluded). Divided
    /// by [`RuntimeStats::evals`] this is the mean service time — the
    /// signal a latency-SLO feedback loop (e.g. `bh-serve`'s adaptive
    /// batcher, or a [`crate::StatsSink`] exporter) consumes.
    pub eval_nanos: u64,
    /// Aggregated VM execution counters (kernels launched, fused groups,
    /// memory traffic, flops, syncs) across all evaluations.
    pub exec: ExecStats,
}

impl RuntimeStats {
    /// Fresh zeroed counters.
    pub fn new() -> RuntimeStats {
        RuntimeStats::default()
    }

    /// Fraction of plan lookups served from the cache (0.0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Total wall-clock time spent inside evaluations.
    pub fn eval_time(&self) -> Duration {
        Duration::from_nanos(self.eval_nanos)
    }

    /// Mean service time per evaluation (zero when none yet).
    pub fn mean_eval_time(&self) -> Duration {
        if self.evals == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.eval_nanos / self.evals)
    }
}

impl Add for RuntimeStats {
    type Output = RuntimeStats;

    fn add(self, rhs: RuntimeStats) -> RuntimeStats {
        RuntimeStats {
            evals: self.evals + rhs.evals,
            cache_hits: self.cache_hits + rhs.cache_hits,
            cache_misses: self.cache_misses + rhs.cache_misses,
            verifications: self.verifications + rhs.verifications,
            rules_fired: self.rules_fired + rhs.rules_fired,
            opt_iterations: self.opt_iterations + rhs.opt_iterations,
            eval_nanos: self.eval_nanos + rhs.eval_nanos,
            exec: self.exec + rhs.exec,
        }
    }
}

impl AddAssign for RuntimeStats {
    fn add_assign(&mut self, rhs: RuntimeStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "evals={} hits={} misses={} hit-rate={:.0}% verifies={} rules={} mean-eval={:?} [{}]",
            self.evals,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate() * 100.0,
            self.verifications,
            self.rules_fired,
            self.mean_eval_time(),
            self.exec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(RuntimeStats::new().hit_rate(), 0.0);
        let s = RuntimeStats {
            cache_hits: 3,
            cache_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn add_combines_fieldwise() {
        let a = RuntimeStats {
            evals: 1,
            cache_hits: 1,
            ..Default::default()
        };
        let b = RuntimeStats {
            evals: 2,
            rules_fired: 5,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.evals, 3);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.rules_fired, 5);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn eval_time_divides_by_evals() {
        assert_eq!(RuntimeStats::new().mean_eval_time(), Duration::ZERO);
        let s = RuntimeStats {
            evals: 4,
            eval_nanos: 4_000,
            ..Default::default()
        };
        assert_eq!(s.eval_time(), Duration::from_nanos(4_000));
        assert_eq!(s.mean_eval_time(), Duration::from_nanos(1_000));
        let doubled = s + s;
        assert_eq!(doubled.eval_nanos, 8_000);
        assert_eq!(doubled.mean_eval_time(), Duration::from_nanos(1_000));
    }

    #[test]
    fn display_mentions_hit_rate() {
        let s = RuntimeStats {
            cache_hits: 1,
            cache_misses: 1,
            ..Default::default()
        };
        assert!(s.to_string().contains("hit-rate=50%"), "{s}");
    }
}
