//! # bh-runtime — the unified optimise → plan → execute runtime
//!
//! The paper's promise is that unchanged high-productivity code gets
//! algebraically transformed byte-code "for free". This crate is the
//! load-bearing abstraction that makes the promise cheap under repeated
//! traffic: a single [`Runtime`] owning
//!
//! * the **optimiser** (`bh-opt`) and its options,
//! * the **execution engine** configuration (`bh-vm`) with a pool of
//!   recycled VMs,
//! * a **transformation cache** — an LRU keyed by the structural digest
//!   of a recorded program ([`bh_ir::ProgramDigest`]: canonicalised
//!   register identities + instruction stream) mapping to the optimised
//!   [`EvalPlan`], so re-evaluating a sequence the runtime has already
//!   seen skips the rewrite fixpoint *and* re-validation entirely
//!   (byte-code verification runs at load time, not per execution), and
//! * aggregated [`RuntimeStats`] across every evaluation from every
//!   context and thread sharing the runtime, and
//! * optional **tiered, profile-guided optimisation**
//!   ([`RuntimeBuilder::tiered`]): misses compile through a cheap tier-0
//!   pipeline for low first-eval latency, and digests that prove hot in
//!   the ProfileTable are re-optimised at full strength, re-verified and
//!   atomically swapped into the cache (DESIGN.md §14).
//!
//! Front-ends hold an `Arc<Runtime>` and call [`Runtime::eval`]; each
//! call returns the tensor alongside an [`EvalOutcome`] (plan, per-run
//! counters, service time, cache-hit flag), replacing the old
//! per-context `set_engine` / `last_report` / `last_stats` trio.
//! Serving layers drive the prepared-plan hot path
//! ([`Runtime::prepare`] / [`Runtime::eval_prepared`]) instead; the VM
//! reuse rules it must respect are specified in DESIGN.md §7, and the
//! per-eval timing it feeds latency-SLO control loops (DESIGN.md §9) is
//! aggregated in [`RuntimeStats::eval_nanos`].
//!
//! # Example
//!
//! ```
//! use bh_ir::parse_program;
//! use bh_runtime::Runtime;
//! use bh_vm::Engine;
//!
//! let rt = Runtime::builder()
//!     .engine(Engine::Fusing { block: 4096 })
//!     .threads(2)
//!     .build_shared();
//!
//! let program = parse_program(
//!     "BH_IDENTITY a0 [0:100:1] 0\n\
//!      BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
//!      BH_SYNC a0\n")?;
//! let reg = program.reg_by_name("a0").unwrap();
//!
//! let (value, first) = rt.eval(&program, &[], reg)?;
//! let (_, second) = rt.eval(&program, &[], reg)?;
//! assert_eq!(value.to_f64_vec(), vec![3.0; 100]);
//! assert!(!first.cache_hit && second.cache_hit);
//! assert_eq!(rt.stats().hit_rate(), 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod persist;
mod runtime;
mod stats;

pub use bh_observe::Tier;
pub use cache::EvalPlan;
pub use runtime::{EvalOutcome, Runtime, RuntimeBuilder, StatsSink, DEFAULT_PROMOTE_AFTER};
pub use stats::{AuditCounters, RuntimeStats, TierDecisions};
