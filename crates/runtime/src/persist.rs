//! Plan-cache persistence: snapshot the transformation cache to disk as
//! a stream of `bh-container` plan containers, and warm-start a fresh
//! runtime from yesterday's snapshot.
//!
//! The snapshot is an optimisation artefact, never a trust anchor: every
//! entry read back is decoded fail-closed, its source program
//! re-verified, its digest recomputed and compared, its plan re-verified
//! *and* re-proven equivalent to the source with `bh_ir::check_equiv`
//! before it may enter the cache. An entry failing any step is counted
//! in [`crate::RuntimeStats::warm_rejects`] and dropped — a stale or
//! tampered snapshot degrades to a cold start, it never serves an
//! unchecked plan.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────┐
//! │ magic  "BHSS"            4 bytes                       │
//! │ snapshot version         u16 LE   (currently 1)        │
//! │ entry count              u64 LE                        │
//! │ entries                  count × { len: u64 LE, bytes }│
//! └────────────────────────────────────────────────────────┘
//! ```
//!
//! Each entry's bytes are one [`bh_container::Container`] carrying the
//! plan's source program plus the optimised plan section (tier, options
//! fingerprint, source digest).

use crate::cache::{opcode_census, CacheKey, EvalPlan};
use bh_container::{stable_fingerprint, Container, PlanSection};
use bh_observe::Tier;
use bh_opt::{OptOptions, OptReport};
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// The four magic bytes every snapshot starts with ("BHSS": Bohrium
/// snapshot stream).
const SNAPSHOT_MAGIC: [u8; 4] = *b"BHSS";

/// Snapshot framing version (independent of the container format
/// version inside each entry).
const SNAPSHOT_VERSION: u16 = 1;

/// Serialise `entries` into snapshot bytes. Entries whose options differ
/// from `options` are the caller's responsibility to filter out first —
/// this function writes exactly what it is given.
pub(crate) fn snapshot_bytes(entries: &[(CacheKey, Arc<EvalPlan>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (key, plan) in entries {
        let container = Container::with_plan(
            (*plan.source).clone(),
            PlanSection {
                program: bh_ir::Program::clone(&plan.program),
                tier: plan.tier,
                options_fingerprint: stable_fingerprint(&key.options),
                source_digest: key.digest.as_bytes().to_vec(),
            },
        );
        let bytes = container.encode();
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

/// Write `entries` to `path` atomically: the bytes land in a sibling
/// temporary file which is then renamed over the target, so a crash
/// mid-write leaves the previous snapshot (or no snapshot) intact —
/// never a torn one.
pub(crate) fn write_snapshot(
    path: &Path,
    entries: &[(CacheKey, Arc<EvalPlan>)],
) -> io::Result<usize> {
    let bytes = snapshot_bytes(entries);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    {
        let mut f = fs::File::create(tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(tmp, path)?;
    Ok(entries.len())
}

/// Read the container blobs out of the snapshot at `path`. Lenient by
/// design: a missing file, unreadable file, or malformed framing yields
/// the entries recovered so far (possibly none) — a broken snapshot is a
/// cold start, not an error. Per-entry *content* validation happens
/// later, in [`revalidate`].
pub(crate) fn read_containers(path: &Path) -> Vec<Vec<u8>> {
    let mut bytes = Vec::new();
    let Ok(mut f) = fs::File::open(path) else {
        return Vec::new();
    };
    if f.read_to_end(&mut bytes).is_err() {
        return Vec::new();
    }
    parse_snapshot(&bytes)
}

fn parse_snapshot(bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    if bytes.len() < 14 || bytes[..4] != SNAPSHOT_MAGIC {
        return out;
    }
    if u16::from_le_bytes([bytes[4], bytes[5]]) != SNAPSHOT_VERSION {
        return out;
    }
    let count = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
    let mut rest = &bytes[14..];
    for _ in 0..count {
        let Some(len_bytes) = rest.get(..8) else {
            break;
        };
        let len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes"));
        // A hostile length must not drive allocation past the file size
        // (and must not overflow the range arithmetic either).
        let Some(end) = usize::try_from(len).ok().and_then(|l| l.checked_add(8)) else {
            break;
        };
        let Some(blob) = rest.get(8..end) else { break };
        out.push(blob.to_vec());
        rest = &rest[end..];
    }
    out
}

/// Re-establish everything a snapshot entry *claims*, from scratch, and
/// build the cache entry — or reject. The chain is ordered so nothing
/// derived from untrusted bytes is consumed before its prerequisite
/// holds:
///
/// 1. decode fail-closed (syntax only — [`Container::decode`]),
/// 2. the plan's options fingerprint must match this runtime's live
///    options (a plan built under different rewrite semantics — e.g.
///    fast-math vs strict — must never be served),
/// 3. a tier-0 plan is only admissible on a tiered runtime (a non-tiered
///    runtime would pin the weak plan forever, with no promotion path),
/// 4. the *source* program must verify (also makes its digest total),
/// 5. the recomputed source digest must match the stored one,
/// 6. the *plan* program must verify (this mints the only
///    [`bh_ir::Verified`] witness — never the decoder),
/// 7. the plan must re-prove observationally equivalent to the source
///    under the live options' audit policy — unconditionally, even on
///    runtimes built without [`crate::RuntimeBuilder::audit`]: disk
///    bytes do not get the benefit of the doubt that a plan the process
///    just optimised itself gets.
///
/// The returned plan carries a synthetic [`OptReport`] (zero rewrite
/// iterations — the fixpoint genuinely did not run, which is the whole
/// point of warm-starting) whose before/after costs are re-estimated
/// from the decoded programs and whose `audits: 1` records step 7.
pub(crate) fn revalidate(
    bytes: &[u8],
    options: &OptOptions,
    tiered: bool,
) -> Option<(CacheKey, Arc<EvalPlan>)> {
    let container = Container::decode(bytes).ok()?;
    let plan = container.plan?;
    if plan.options_fingerprint != stable_fingerprint(options) {
        return None;
    }
    if plan.tier == Tier::Tier0 && !tiered {
        return None;
    }
    let source = container.program;
    bh_ir::verify(&source).ok()?;
    let digest = source.structural_digest();
    if !plan.digest_matches(&digest) {
        return None;
    }
    let verified = bh_ir::verify_owned(plan.program).ok()?;
    bh_ir::check_equiv(&source, &verified, &options.equiv_options()).ok()?;
    let census = opcode_census(&verified);
    let report = OptReport {
        iterations: 0,
        by_rule: Vec::new(),
        before: bh_opt::estimate(&source, &options.cost_params),
        after: bh_opt::estimate(&verified, &options.cost_params),
        audits: 1,
        audit_rollbacks: 0,
    };
    let fingerprint = digest.fingerprint();
    let eval_plan = Arc::new(EvalPlan {
        program: verified,
        report,
        source_fingerprint: fingerprint,
        opcode_census: census,
        tier: plan.tier,
        source: Arc::new(source),
    });
    Some((
        CacheKey {
            digest,
            options: options.clone(),
        },
        eval_plan,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_ir::parse_program;
    use bh_opt::Optimizer;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn entry_for(text: &str, options: &OptOptions, tier: Tier) -> (CacheKey, Arc<EvalPlan>) {
        let source = parse_program(text).unwrap();
        let digest = source.structural_digest();
        let mut program = source.clone();
        let report = Optimizer::new(options.clone()).run(&mut program);
        let fingerprint = digest.fingerprint();
        (
            CacheKey {
                digest,
                options: options.clone(),
            },
            Arc::new(EvalPlan {
                program: bh_ir::verify_owned(program.clone()).expect("verifies"),
                report,
                source_fingerprint: fingerprint,
                opcode_census: opcode_census(&program),
                tier,
                source: Arc::new(source),
            }),
        )
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("bh_persist_{tag}_{}_{n}.bhss", std::process::id()))
    }

    #[test]
    fn snapshot_round_trips_through_revalidation() {
        let options = OptOptions::default();
        let entry = entry_for(
            "BH_IDENTITY a0 [0:8:1] 0\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_SYNC a0\n",
            &options,
            Tier::Tier2,
        );
        let path = temp_path("roundtrip");
        write_snapshot(&path, std::slice::from_ref(&entry)).unwrap();
        let blobs = read_containers(&path);
        assert_eq!(blobs.len(), 1);
        let (key, plan) = revalidate(&blobs[0], &options, false).expect("valid entry");
        assert_eq!(key, entry.0);
        assert_eq!(plan.tier, Tier::Tier2);
        assert_eq!(plan.source_fingerprint, entry.1.source_fingerprint);
        assert_eq!(*plan.program, *entry.1.program);
        // The fixpoint did not run on load; the audit did.
        assert_eq!(plan.report.iterations, 0);
        assert_eq!(plan.report.audits, 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn options_mismatch_is_rejected() {
        let options = OptOptions::default();
        let entry = entry_for(
            "BH_IDENTITY a0 [0:4:1] 0\nBH_ADD a0 a0 1\nBH_SYNC a0\n",
            &options,
            Tier::Tier2,
        );
        let bytes = snapshot_bytes(std::slice::from_ref(&entry));
        let blobs = parse_snapshot(&bytes);
        let mut strict = options.clone();
        strict.ctx.fast_math = false;
        assert!(revalidate(&blobs[0], &strict, false).is_none());
        assert!(revalidate(&blobs[0], &options, false).is_some());
    }

    #[test]
    fn tier0_plans_need_a_tiered_runtime() {
        let options = OptOptions::default();
        let entry = entry_for(
            "BH_IDENTITY a0 [0:4:1] 0\nBH_ADD a0 a0 1\nBH_SYNC a0\n",
            &options,
            Tier::Tier0,
        );
        let bytes = snapshot_bytes(std::slice::from_ref(&entry));
        let blobs = parse_snapshot(&bytes);
        assert!(revalidate(&blobs[0], &options, false).is_none());
        let (_, plan) = revalidate(&blobs[0], &options, true).expect("tiered accepts");
        assert_eq!(plan.tier, Tier::Tier0);
    }

    #[test]
    fn inequivalent_plan_is_rejected() {
        // A container whose plan computes something other than its
        // source must fail the load-time audit even though both programs
        // verify and the digest matches.
        let options = OptOptions::default();
        let source =
            parse_program("BH_IDENTITY a0 [0:4:1] 0\nBH_ADD a0 a0 1\nBH_SYNC a0\n").unwrap();
        let lying_plan = parse_program("BH_ADD a0 [0:4:1] a0 [0:4:1] 2\nBH_SYNC a0\n").unwrap();
        let digest = source.structural_digest();
        let container = Container::with_plan(
            source,
            PlanSection {
                program: lying_plan,
                tier: Tier::Tier2,
                options_fingerprint: stable_fingerprint(&options),
                source_digest: digest.as_bytes().to_vec(),
            },
        );
        assert!(revalidate(&container.encode(), &options, false).is_none());
    }

    #[test]
    fn digest_mismatch_is_rejected() {
        let options = OptOptions::default();
        let source =
            parse_program("BH_IDENTITY a0 [0:4:1] 0\nBH_ADD a0 a0 1\nBH_SYNC a0\n").unwrap();
        let container = Container::with_plan(
            source.clone(),
            PlanSection {
                program: source,
                tier: Tier::Tier2,
                options_fingerprint: stable_fingerprint(&options),
                source_digest: vec![0xde, 0xad],
            },
        );
        assert!(revalidate(&container.encode(), &options, false).is_none());
    }

    #[test]
    fn broken_framing_degrades_to_fewer_entries_never_a_panic() {
        let options = OptOptions::default();
        let entry = entry_for(
            "BH_IDENTITY a0 [0:4:1] 0\nBH_ADD a0 a0 1\nBH_SYNC a0\n",
            &options,
            Tier::Tier2,
        );
        let bytes = snapshot_bytes(&[entry.clone(), entry]);
        // Every truncation parses to a (possibly empty) prefix.
        for cut in 0..bytes.len() {
            let blobs = parse_snapshot(&bytes[..cut]);
            assert!(blobs.len() <= 2);
        }
        // Bad magic / version / hostile entry length: all cold starts.
        assert!(parse_snapshot(b"NOPE").is_empty());
        let mut skewed = bytes.clone();
        skewed[4] = 0xff;
        assert!(parse_snapshot(&skewed).is_empty());
        let mut hostile = bytes;
        hostile[14..22].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(parse_snapshot(&hostile).is_empty());
    }

    #[test]
    fn missing_file_reads_empty() {
        assert!(read_containers(Path::new("/nonexistent/bh.bhss")).is_empty());
    }
}
