//! Promotion-race stress tests (DESIGN.md §14).
//!
//! Many threads hammer the *same* digest through a tiered runtime while
//! the promotion swap lands. The properties under stress:
//!
//! * the promotion is claimed and installed **exactly once** — however
//!   many threads cross the threshold simultaneously;
//! * no eval ever observes a half-swapped plan — every result is either
//!   the tier-0 or the tier-2 output, and they are equal by
//!   construction, so every value checks out;
//! * no stats are lost: evals, cache hits/misses and per-digest profile
//!   hits all add up after the dust settles.

use bh_ir::{parse_program, Program};
use bh_observe::Tier;
use bh_runtime::Runtime;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const THREADS: usize = 8;
const EVALS_PER_THREAD: usize = 50;

/// A 24-add chain: long enough that the tier-0 (O0) and tier-2 (O2)
/// plans differ materially, with a trivially checkable result.
fn workload() -> Program {
    let mut text = String::from("BH_IDENTITY a0 [0:64:1] 0\n");
    for _ in 0..24 {
        text.push_str("BH_ADD a0 a0 1\n");
    }
    text.push_str("BH_SYNC a0\n");
    parse_program(&text).unwrap()
}

/// Spin until every background promotion has retired (no-op in
/// synchronous mode).
fn quiesce(rt: &Runtime) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while rt.pending_promotions() > 0 {
        assert!(Instant::now() < deadline, "promotion never quiesced");
        std::thread::yield_now();
    }
}

fn stress(rt: Arc<Runtime>) {
    let program = workload();
    let reg = program.reg_by_name("a0").unwrap();
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let rt = Arc::clone(&rt);
            let program = program.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..EVALS_PER_THREAD {
                    let (v, o) = rt.eval(&program, &[], reg).unwrap();
                    // Whatever side of the swap this eval landed on, the
                    // plan is whole: tier is a real tier and the value is
                    // the chain's.
                    assert!(matches!(o.plan.tier, Tier::Tier0 | Tier::Tier2));
                    assert!(v.to_f64_vec().iter().all(|&x| x == 24.0));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    quiesce(&rt);

    let total = (THREADS * EVALS_PER_THREAD) as u64;
    let stats = rt.stats();
    // Exactly once, no losses.
    assert_eq!(stats.tiers.promotions, 1, "{stats}");
    assert_eq!(stats.tiers.failed_promotions, 0, "{stats}");
    assert_eq!(stats.evals, total, "{stats}");
    assert_eq!(stats.cache_hits + stats.cache_misses, total, "{stats}");
    // Racing first misses may duplicate the tier-0 build (each counts a
    // miss and a verification); verification otherwise runs only for the
    // single promotion — never on the eval path.
    assert_eq!(stats.tiers.tier0_builds, stats.cache_misses);
    assert_eq!(stats.verifications, stats.cache_misses + 1, "{stats}");
    // The profile lost no hits either.
    let profile = &rt.profile(1)[0];
    assert_eq!(profile.hits, total);
    assert_eq!(profile.tier, Tier::Tier2);
    // And the surviving cached plan is the promoted one.
    let (plan, hit) = rt.prepare(&workload()).unwrap();
    assert!(hit);
    assert_eq!(plan.tier, Tier::Tier2);
}

#[test]
fn concurrent_evals_promote_exactly_once_in_background_mode() {
    stress(
        Runtime::builder()
            .tiered(true)
            .promote_after(8)
            .background_promotion(true)
            .threads(1)
            .build_shared(),
    );
}

#[test]
fn concurrent_evals_promote_exactly_once_in_synchronous_mode() {
    stress(
        Runtime::builder()
            .tiered(true)
            .promote_after(8)
            .threads(1)
            .build_shared(),
    );
}

/// Race the *claim* itself: park every thread right at the threshold,
/// then release them into `prepare` simultaneously. Exactly one may win
/// the claim and run the promotion; the rest must sail through on a
/// whole plan (tier-0 until the swap, tier-2 after).
#[test]
fn simultaneous_prepares_claim_the_promotion_exactly_once() {
    let rt = Runtime::builder()
        .tiered(true)
        .promote_after(1)
        .threads(1)
        .build_shared();
    let program = workload();
    let reg = program.reg_by_name("a0").unwrap();
    // One eval earns the threshold hit while the plan is still tier-0.
    let (_, o) = rt.eval(&program, &[], reg).unwrap();
    assert_eq!(o.plan.tier, Tier::Tier0);

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let rt = Arc::clone(&rt);
            let program = program.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let (plan, hit) = rt.prepare(&program).unwrap();
                assert!(hit);
                assert!(matches!(plan.tier, Tier::Tier0 | Tier::Tier2));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    quiesce(&rt);
    let stats = rt.stats();
    assert_eq!(stats.tiers.promotions, 1, "{stats}");
    assert_eq!(stats.tiers.failed_promotions, 0, "{stats}");
    assert_eq!(stats.verifications, stats.cache_misses + 1, "{stats}");
}
