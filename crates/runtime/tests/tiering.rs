//! Tiering policy integration tests (DESIGN.md §14).
//!
//! The headline regression here is the **eviction / profile interplay**:
//! the ProfileTable outlives cache entries, so a digest whose promoted
//! plan the LRU evicted still looks white-hot by raw hit count. A naive
//! policy would promote the re-inserted tier-0 entry on its very first
//! hit — paying the full fixpoint on what is, from the cache's point of
//! view, a cold entry that has proven nothing yet. The fix baselines
//! each entry's hotness at insert time; these tests pin that behaviour
//! end-to-end through the public `Runtime` API.

use bh_ir::{parse_program, Program};
use bh_observe::Tier;
use bh_runtime::{Runtime, DEFAULT_PROMOTE_AFTER};

/// Distinct structural digests: an add-chain over a length-`len` vector.
fn chain(len: usize) -> Program {
    parse_program(&format!(
        "BH_IDENTITY a0 [0:{len}:1] 0\n\
         BH_ADD a0 a0 1\nBH_ADD a0 a0 1\nBH_ADD a0 a0 1\n\
         BH_SYNC a0\n"
    ))
    .unwrap()
}

fn eval(rt: &Runtime, p: &Program) -> Tier {
    let reg = p.reg_by_name("a0").unwrap();
    let (v, o) = rt.eval(p, &[], reg).unwrap();
    assert!(v.to_f64_vec().iter().all(|&x| x == 3.0));
    o.plan.tier
}

/// The regression pin: after an eviction, stale ProfileTable hotness
/// must not immediately re-promote the re-inserted cold entry — it has
/// to earn `promote_after` *fresh* hits first.
#[test]
fn eviction_resets_the_promotion_baseline() {
    let rt = Runtime::builder()
        .tiered(true)
        .promote_after(3)
        .cache_capacity(1)
        .build();
    let hot = chain(8);
    let churn = chain(9);

    // Earn the first promotion honestly: evals 1–3 run tier-0 and record
    // hits 1–3; eval 4's prepare sees 3 fresh hits and promotes inline.
    for _ in 0..3 {
        assert_eq!(eval(&rt, &hot), Tier::Tier0);
    }
    assert_eq!(eval(&rt, &hot), Tier::Tier2);
    assert_eq!(rt.stats().tiers.promotions, 1);

    // Capacity 1: one eval of a different digest evicts the promoted plan.
    assert_eq!(eval(&rt, &churn), Tier::Tier0);
    assert_eq!(rt.cached_plans(), 1);

    // The hot digest misses and rebuilds at tier-0. Its profile now shows
    // 4 stale hits (≥ promote_after), but the fresh entry must NOT be
    // promoted off that history — not on the rebuild, not on the next hit.
    assert_eq!(eval(&rt, &hot), Tier::Tier0);
    assert_eq!(eval(&rt, &hot), Tier::Tier0);
    let stats = rt.stats();
    assert_eq!(
        stats.tiers.promotions, 1,
        "stale hotness re-promoted a cold entry: {stats}"
    );
    assert!(
        stats.tiers.rebaselines >= 1,
        "the rebuild should be visible as a rebaseline: {stats}"
    );
    assert_eq!(stats.tiers.tier0_builds, 3, "hot, churn, hot again");

    // Fresh hits still count: the rebuilt entry carries hits 5–7 (one from
    // the rebuild eval, two from the loop below), and the next prepare
    // crosses the threshold again.
    assert_eq!(eval(&rt, &hot), Tier::Tier0);
    assert_eq!(eval(&rt, &hot), Tier::Tier2);
    let stats = rt.stats();
    assert_eq!(stats.tiers.promotions, 2, "{stats}");
    assert_eq!(stats.tiers.failed_promotions, 0);
    // Two tier compiles per promotion lifecycle, nothing per eval.
    assert_eq!(
        stats.verifications,
        stats.cache_misses + stats.tiers.promotions
    );
}

/// Digests that never reach the threshold stay on the cheap pipeline
/// forever: churn traffic never pays the full fixpoint.
#[test]
fn churn_digests_stay_tier0() {
    let rt = Runtime::builder().tiered(true).promote_after(5).build();
    let programs: Vec<Program> = (0..4).map(|i| chain(16 + i)).collect();
    for _ in 0..3 {
        for p in &programs {
            assert_eq!(eval(&rt, p), Tier::Tier0);
        }
    }
    let stats = rt.stats();
    assert_eq!(stats.tiers.tier0_builds, 4);
    assert_eq!(stats.tiers.promotions, 0);
    assert_eq!(stats.verifications, 4, "one tier-0 compile each, no more");
}

/// The profile table reports the digest's current tier — the signal the
/// exporter's `bh_profile_digest_tier` gauge renders.
#[test]
fn profile_reports_the_promoted_tier() {
    let rt = Runtime::builder().tiered(true).promote_after(1).build();
    let p = chain(32);
    assert_eq!(eval(&rt, &p), Tier::Tier0);
    let before = &rt.profile(1)[0];
    assert_eq!(before.tier, Tier::Tier0);
    assert_eq!(before.plan_builds, 1);
    assert_eq!(eval(&rt, &p), Tier::Tier2);
    let after = &rt.profile(1)[0];
    assert_eq!(after.tier, Tier::Tier2);
    assert_eq!(after.plan_builds, 2, "tier-0 build + promotion rebuild");
}

/// Builder-knob contract: `promote_after` clamps to ≥ 1 and defaults to
/// [`DEFAULT_PROMOTE_AFTER`]; tiering is off by default.
#[test]
fn promotion_knobs_clamp_and_default() {
    assert_eq!(
        Runtime::builder()
            .tiered(true)
            .promote_after(0)
            .build()
            .promote_after(),
        1
    );
    let default = Runtime::builder().build();
    assert!(!default.tiered());
    assert_eq!(default.promote_after(), DEFAULT_PROMOTE_AFTER);
    assert_eq!(default.pending_promotions(), 0);
}

/// Per-options cache partitions keep independent tier lifecycles: the
/// same digest prepared under two options values promotes twice.
#[test]
fn options_partitions_promote_independently() {
    use bh_opt::{OptLevel, OptOptions};
    let rt = Runtime::builder().tiered(true).promote_after(1).build();
    let p = chain(64);
    let reg = p.reg_by_name("a0").unwrap();
    let o1 = OptOptions::level(OptLevel::O1);
    for _ in 0..2 {
        rt.eval(&p, &[], reg).unwrap();
        rt.eval_with(&p, &[], reg, &o1).unwrap();
    }
    let stats = rt.stats();
    assert_eq!(stats.tiers.tier0_builds, 2);
    assert_eq!(stats.tiers.promotions, 2);
    assert_eq!(rt.cached_plans(), 2);
}
