//! Integration tests for the TCP front door: the happy path, the
//! hostile-input trust boundary, and the ≥8-connection abuse run that
//! drives backpressure and deadline expiry end to end.

use bh_ir::{parse_program, Instruction, Opcode, Operand, Program, Reg};
use bh_net::{codes, Frame, NetClient, NetEvent, NetServer};
use bh_runtime::Runtime;
use bh_serve::Server;
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn sample_program() -> Program {
    parse_program("BH_IDENTITY a [0:8:1] 0\nBH_ADD a a 5\nBH_SYNC a\n").unwrap()
}

fn front_door(server: Server) -> (NetServer, Arc<Server>) {
    let server = Arc::new(server);
    let door = NetServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind loopback");
    (door, server)
}

#[test]
fn round_trips_a_result_over_tcp() {
    let (door, server) = front_door(
        Server::builder(Runtime::builder().build_shared())
            .workers(1)
            .build(),
    );
    let program = sample_program();
    let reg = program.reg_by_name("a").unwrap();

    let mut client = NetClient::connect(door.local_addr(), "acme").expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match client.call(&program, Some(reg), None).expect("call") {
        NetEvent::Result(r) => {
            assert_eq!(r.request_id, 1);
            assert_eq!(r.value.as_deref(), Some(&[5.0f64; 8][..]));
            assert!(r.batch_size >= 1);
        }
        NetEvent::Rejected(r) => panic!("rejected: {} ({})", r.code, r.detail),
    }
    // A second call on the same connection reuses the handshake.
    let event = client.call(&program, Some(reg), None).expect("second call");
    assert_eq!(event.request_id(), 2);
    assert!(matches!(event, NetEvent::Result(_)));

    door.close();
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.completed, 2);
    let net = door.stats();
    assert_eq!(net.connections, 1);
    assert_eq!(net.results_sent, 2);
    assert_eq!(net.errors_sent, 0);
}

#[test]
fn connections_bind_their_tenant_for_scheduling() {
    let (door, server) = front_door(
        Server::builder(Runtime::builder().build_shared())
            .workers(1)
            .build(),
    );
    let program = sample_program();
    for tenant in ["alpha", "beta"] {
        let mut client = NetClient::connect(door.local_addr(), tenant).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for _ in 0..3 {
            assert!(matches!(
                client.call(&program, None, None).expect("call"),
                NetEvent::Result(_)
            ));
        }
    }
    door.close();
    server.shutdown();
    let quotas = server.stats().tenants;
    assert_eq!(quotas.served("alpha"), 3);
    assert_eq!(quotas.served("beta"), 3);
}

#[test]
fn hostile_submissions_become_typed_error_frames() {
    let (door, server) = front_door(
        Server::builder(Runtime::builder().build_shared())
            .workers(1)
            .build(),
    );
    let mut client = NetClient::connect(door.local_addr(), "mallory").expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Garbage container bytes: fail-closed decode, typed frame, and the
    // connection survives for the next submission.
    let id = client
        .submit_container(b"not a container".to_vec(), None, None)
        .unwrap();
    let NetEvent::Rejected(r) = client.read_event().unwrap() else {
        panic!("garbage container must be rejected");
    };
    assert_eq!((r.request_id, r.code.as_str()), (id, codes::BAD_CONTAINER));
    assert!(
        r.detail.starts_with('C'),
        "carries the container code: {}",
        r.detail
    );

    // A syntactically valid container whose program fails byte-code
    // verification (dangling register): rejected before anything —
    // digesting included — derives from it.
    let mut dangling = Program::default();
    dangling.push(Instruction::new(
        Opcode::Add,
        vec![
            Operand::full(Reg(7)),
            Operand::full(Reg(7)),
            Operand::full(Reg(7)),
        ],
    ));
    let bytes = bh_container::Container::program(dangling).encode();
    let id = client.submit_container(bytes, None, None).unwrap();
    let NetEvent::Rejected(r) = client.read_event().unwrap() else {
        panic!("unverifiable program must be rejected");
    };
    assert_eq!((r.request_id, r.code.as_str()), (id, codes::MALFORMED));

    // A valid program with an out-of-range read-back register.
    let id = client
        .submit(&sample_program(), Some(Reg(99)), None)
        .unwrap();
    let NetEvent::Rejected(r) = client.read_event().unwrap() else {
        panic!("out-of-range read must be rejected");
    };
    assert_eq!((r.request_id, r.code.as_str()), (id, codes::BAD_REGISTER));

    // The connection is still healthy after three rejections.
    let reg = sample_program().reg_by_name("a").unwrap();
    assert!(matches!(
        client.call(&sample_program(), Some(reg), None).unwrap(),
        NetEvent::Result(_)
    ));

    door.close();
    server.shutdown();
}

#[test]
fn handshake_violations_are_refused_with_codes() {
    let (door, server) = front_door(
        Server::builder(Runtime::builder().build_shared())
            .workers(0)
            .build(),
    );

    // Version skew.
    let stream = TcpStream::connect(door.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    Frame::Hello {
        version: 99,
        tenant: "t".into(),
    }
    .write_to(&mut (&stream))
    .unwrap();
    let Frame::Error { code, .. } = Frame::read_from(&mut (&stream)).unwrap() else {
        panic!("version skew must be refused");
    };
    assert_eq!(code, codes::UNSUPPORTED_VERSION);

    // First frame is not HELLO.
    let stream = TcpStream::connect(door.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    Frame::Submit {
        request_id: 1,
        read: None,
        deadline_ms: None,
        container: Vec::new(),
    }
    .write_to(&mut (&stream))
    .unwrap();
    let Frame::Error { code, .. } = Frame::read_from(&mut (&stream)).unwrap() else {
        panic!("submit before hello must be refused");
    };
    assert_eq!(code, codes::EXPECTED_HELLO);

    // The client-side constructor surfaces the refusal as a handshake
    // error rather than a success.
    let err = NetClient::connect(door.local_addr(), "t")
        .map(|_| ())
        .map_err(|e| e.code());
    assert_eq!(err, Ok(())); // sanity: a well-formed handshake still works

    door.close();
    server.shutdown();
}

/// The acceptance-criteria abuse run: ≥8 concurrent connections driven
/// through deterministic backpressure and deadline expiry, every
/// rejection a typed frame, exactly-once delivery asserted end to end.
#[test]
fn eight_connections_survive_backpressure_and_deadline_expiry_exactly_once() {
    const CONNS: usize = 8;
    const PHASE1_PER_CONN: usize = 4; // 32 submissions into a queue of 8
    const CAPACITY: usize = 8;
    const PHASE2_PER_CONN: usize = 2;

    // workers(0): nothing drains until the test says so, making the
    // backpressure split exact — of the 32 phase-1 submissions exactly
    // `CAPACITY` enqueue and the rest bounce with `queue_full`.
    let (door, server) = front_door(
        Server::builder(Runtime::builder().build_shared())
            .workers(0)
            .queue_capacity(CAPACITY)
            .build(),
    );
    let program = sample_program();
    let reg = program.reg_by_name("a").unwrap();

    // Barrier A: all phase-1 submissions are on the wire and answered
    // or queued. Barrier B: the drain driver is running, phase 2 may
    // start closed-loop traffic.
    let barrier_a = Arc::new(Barrier::new(CONNS + 1));
    let barrier_b = Arc::new(Barrier::new(CONNS + 1));

    let clients: Vec<_> = (0..CONNS)
        .map(|c| {
            let addr = door.local_addr();
            let program = program.clone();
            let barrier_a = Arc::clone(&barrier_a);
            let barrier_b = Arc::clone(&barrier_b);
            std::thread::spawn(move || {
                let mut client =
                    NetClient::connect(addr, format!("tenant-{c}").as_str()).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                // Phase 1: pipeline a burst with a deadline far shorter
                // than the drain delay.
                let ids: Vec<u64> = (0..PHASE1_PER_CONN)
                    .map(|_| {
                        client
                            .submit(&program, Some(reg), Some(Duration::from_millis(50)))
                            .expect("submit")
                    })
                    .collect();
                // Read the burst's events *before* barrier A: every
                // submission is answered (queue_full immediately, or
                // deadline_exceeded once the main thread drains) —
                // waiting here also proves no response goes missing.
                barrier_a.wait();
                let mut codes_seen: HashMap<u64, String> = HashMap::new();
                for _ in 0..PHASE1_PER_CONN {
                    match client.read_event().expect("phase-1 event") {
                        NetEvent::Rejected(r) => {
                            let dup = codes_seen.insert(r.request_id, r.code);
                            assert!(dup.is_none(), "duplicate event for {}", r.request_id);
                        }
                        NetEvent::Result(r) => {
                            panic!("phase-1 request {} must expire or bounce", r.request_id)
                        }
                    }
                }
                for id in &ids {
                    let code = codes_seen.get(id).expect("every id answered");
                    assert!(
                        code == "queue_full" || code == "deadline_exceeded",
                        "unexpected code {code}"
                    );
                }
                let queue_full = codes_seen.values().filter(|c| *c == "queue_full").count();

                // Phase 2: closed-loop traffic against the live drain
                // driver completes normally on the same connections.
                barrier_b.wait();
                for _ in 0..PHASE2_PER_CONN {
                    match client
                        .call(&program, Some(reg), None)
                        .expect("phase-2 call")
                    {
                        NetEvent::Result(r) => {
                            assert_eq!(r.value.as_deref(), Some(&[5.0f64; 8][..]));
                        }
                        NetEvent::Rejected(r) => panic!("phase-2 rejected: {}", r.code),
                    }
                }
                queue_full
            })
        })
        .collect();

    barrier_a.wait();
    // The clients' frames are on the wire but the reader threads race
    // us: wait until every phase-1 submission has been admitted or
    // bounced, at which point the queue holds exactly CAPACITY requests
    // whose 50ms deadlines then expire.
    let poll_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = server.stats();
        if s.submitted + s.rejected == (CONNS * PHASE1_PER_CONN) as u64 {
            break;
        }
        assert!(
            Instant::now() < poll_deadline,
            "submissions never processed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.queue_depth(), CAPACITY);
    std::thread::sleep(Duration::from_millis(80));
    while server.service_once() {}

    // Phase 2 drain driver.
    let stop = Arc::new(AtomicBool::new(false));
    let driver = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                if !server.service_once() {
                    std::thread::yield_now();
                }
            }
        })
    };
    barrier_b.wait();

    let queue_full_total: usize = clients.into_iter().map(|c| c.join().expect("client")).sum();
    stop.store(true, Ordering::Release);
    driver.join().expect("driver");
    door.close();
    server.shutdown();

    // The deterministic split: everything over capacity bounced.
    assert_eq!(queue_full_total, CONNS * PHASE1_PER_CONN - CAPACITY);
    let stats = server.stats();
    assert_eq!(stats.rejected, queue_full_total as u64);
    assert_eq!(stats.expired, CAPACITY as u64);
    assert_eq!(stats.completed, (CONNS * PHASE2_PER_CONN) as u64);
    // Exactly-once on the wire: one frame per submission, no extras.
    let net = door.stats();
    assert_eq!(net.connections, CONNS as u64);
    assert_eq!(net.results_sent, (CONNS * PHASE2_PER_CONN) as u64);
    assert_eq!(
        net.errors_sent,
        (CONNS * PHASE1_PER_CONN) as u64 // queue_full + deadline_exceeded
    );
}
