//! A blocking protocol client: the counterpart `bh-netload` and the
//! integration tests drive the front door with.

use crate::error::NetError;
use crate::frame::{Frame, PROTOCOL_VERSION};
use bh_container::Container;
use bh_ir::{Program, Reg};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A completed remote evaluation (one `RESULT` frame).
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteResponse {
    /// The id of the submission this resolves.
    pub request_id: u64,
    /// How many requests shared the server-side micro-batch.
    pub batch_size: u32,
    /// Time the request spent queued on the server.
    pub queue_wait: Duration,
    /// Server-side submission-to-completion time.
    pub turnaround: Duration,
    /// The read-back value, when the submission asked for one.
    pub value: Option<Vec<f64>>,
}

/// A rejected or failed remote evaluation (one `ERROR` frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteReject {
    /// The id of the submission this resolves (0 for connection-level
    /// errors not tied to one submission).
    pub request_id: u64,
    /// The stable machine code (see [`crate::codes`] and
    /// [`bh_serve::ServeError::code`]).
    pub code: String,
    /// Human-readable context from the server.
    pub detail: String,
}

/// One server frame answering a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum NetEvent {
    /// The submission completed.
    Result(RemoteResponse),
    /// The submission was rejected or failed.
    Rejected(RemoteReject),
}

impl NetEvent {
    /// The request id this event resolves.
    pub fn request_id(&self) -> u64 {
        match self {
            NetEvent::Result(r) => r.request_id,
            NetEvent::Rejected(r) => r.request_id,
        }
    }
}

/// A blocking client over one connection: submissions are pipelined
/// (submit as many as you like, then read the events back); each
/// submission is answered by exactly one event.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl NetClient {
    /// Connect to `addr`, bind this connection to `tenant` and complete
    /// the handshake.
    ///
    /// # Errors
    ///
    /// [`NetError::Handshake`] when the server refuses the handshake
    /// (e.g. version skew), or a transport-level [`NetError`].
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<NetClient, NetError> {
        let writer = TcpStream::connect(addr)?;
        let _ = writer.set_nodelay(true);
        let mut reader = BufReader::new(writer.try_clone()?);
        Frame::Hello {
            version: PROTOCOL_VERSION,
            tenant: tenant.to_owned(),
        }
        .write_to(&mut (&writer))?;
        match Frame::read_from(&mut reader)? {
            Frame::HelloAck { .. } => Ok(NetClient {
                reader,
                writer,
                next_id: 1,
            }),
            Frame::Error { code, detail, .. } => Err(NetError::Handshake { code, detail }),
            other => Err(NetError::BadFrame {
                detail: format!("expected HELLO_ACK, got {other:?}"),
            }),
        }
    }

    /// Bound how long [`NetClient::read_event`] may block (`None` waits
    /// indefinitely).
    ///
    /// # Errors
    ///
    /// The socket's failure, if the option cannot be set.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Submit a program, returning the request id to match its event
    /// by. The program is shipped as a [`Container`]; `read` asks for a
    /// register's value back; `deadline` fails the request fast if it
    /// has not started executing in time.
    ///
    /// # Errors
    ///
    /// Transport failures only — rejections arrive as
    /// [`NetEvent::Rejected`].
    pub fn submit(
        &mut self,
        program: &Program,
        read: Option<Reg>,
        deadline: Option<Duration>,
    ) -> Result<u64, NetError> {
        let container = Container::program(program.clone()).encode();
        self.submit_container(container, read.map(|r| r.0), deadline)
    }

    /// Submit pre-encoded container bytes (the escape hatch abuse tests
    /// use to send hostile payloads).
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn submit_container(
        &mut self,
        container: Vec<u8>,
        read: Option<u32>,
        deadline: Option<Duration>,
    ) -> Result<u64, NetError> {
        let request_id = self.next_id;
        self.next_id += 1;
        Frame::Submit {
            request_id,
            read,
            deadline_ms: deadline.map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
            container,
        }
        .write_to(&mut (&self.writer))?;
        Ok(request_id)
    }

    /// Block for the next event from the server.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the server closes the
    /// connection, or a transport/framing failure.
    pub fn read_event(&mut self) -> Result<NetEvent, NetError> {
        match Frame::read_from(&mut self.reader)? {
            Frame::Result {
                request_id,
                batch_size,
                queue_wait_nanos,
                turnaround_nanos,
                value,
            } => Ok(NetEvent::Result(RemoteResponse {
                request_id,
                batch_size,
                queue_wait: Duration::from_nanos(queue_wait_nanos),
                turnaround: Duration::from_nanos(turnaround_nanos),
                value,
            })),
            Frame::Error {
                request_id,
                code,
                detail,
            } => Ok(NetEvent::Rejected(RemoteReject {
                request_id,
                code,
                detail,
            })),
            other => Err(NetError::BadFrame {
                detail: format!("unexpected frame from server: {other:?}"),
            }),
        }
    }

    /// Closed-loop convenience: submit and block until *this*
    /// submission's event arrives (events for earlier pipelined
    /// submissions are read and dropped — use [`NetClient::submit`] +
    /// [`NetClient::read_event`] to multiplex).
    ///
    /// # Errors
    ///
    /// Transport failures; rejections are an `Ok(NetEvent::Rejected)`.
    pub fn call(
        &mut self,
        program: &Program,
        read: Option<Reg>,
        deadline: Option<Duration>,
    ) -> Result<NetEvent, NetError> {
        let id = self.submit(program, read, deadline)?;
        loop {
            let event = self.read_event()?;
            if event.request_id() == id {
                return Ok(event);
            }
        }
    }
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("peer", &self.writer.peer_addr().ok())
            .field("next_id", &self.next_id)
            .finish()
    }
}
