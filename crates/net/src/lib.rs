//! # bh-net — the TCP front door over the batching scheduler
//!
//! `bh-serve` turns a shared runtime into an in-process traffic-serving
//! system; this crate puts it on the wire. A [`NetServer`] listens on a
//! TCP socket and speaks a small length-prefixed frame protocol
//! (DESIGN.md §16): clients `HELLO` once to bind the connection to a
//! tenant, then pipeline `SUBMIT` frames whose payload is an encoded
//! [`bh_container::Container`]; every submission is answered by exactly
//! one `RESULT` or `ERROR` frame, correlated by a client-chosen request
//! id.
//!
//! The design carries the stack's two core disciplines across the
//! socket:
//!
//! * **The trust boundary holds.** Wire bytes are untrusted: containers
//!   decode fail-closed, decoded programs pass `bh_ir::verify` before
//!   anything derives from them (digesting included), and any plan
//!   section a client ships is ignored — the server compiles and proves
//!   its own plans. Hostile input becomes a typed error frame, never a
//!   panic.
//! * **Backpressure and deadlines stay typed.** Scheduler outcomes map
//!   to stable machine codes ([`bh_serve::ServeError::code`] passes
//!   through verbatim; the front door's own codes live in [`codes`]),
//!   so clients dispatch on codes, never on message text.
//!
//! No thread blocks per in-flight request: the server resolves
//! submissions through [`bh_serve::Ticket::on_done`], writing response
//! frames from whichever thread completes the batch.
//!
//! # Example
//!
//! ```
//! use bh_net::{NetClient, NetEvent, NetServer};
//! use bh_runtime::Runtime;
//! use bh_serve::Server;
//! use std::sync::Arc;
//!
//! let server = Arc::new(Server::builder(Runtime::builder().build_shared()).build());
//! let door = NetServer::bind("127.0.0.1:0", Arc::clone(&server))?;
//!
//! let program = bh_ir::parse_program("BH_IDENTITY a [0:8:1] 0\nBH_ADD a a 3\nBH_SYNC a\n")?;
//! let reg = program.reg_by_name("a").unwrap();
//!
//! let mut client = NetClient::connect(door.local_addr(), "tenant-a")?;
//! match client.call(&program, Some(reg), None)? {
//!     NetEvent::Result(r) => assert_eq!(r.value.unwrap(), vec![3.0; 8]),
//!     NetEvent::Rejected(r) => panic!("rejected: {}", r.code),
//! }
//!
//! door.close();
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod error;
mod frame;
mod server;

pub use client::{NetClient, NetEvent, RemoteReject, RemoteResponse};
pub use error::{codes, NetError};
pub use frame::{Frame, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use server::{NetServer, NetStats};
