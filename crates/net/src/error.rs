//! Client/transport-side errors and the stable protocol error codes.

use std::fmt;

/// Stable machine codes carried in protocol error frames
/// ([`crate::Frame::Error`]).
///
/// Scheduler outcomes pass through [`bh_serve::ServeError::code`]
/// unchanged (`"queue_full"`, `"malformed"`, `"deadline_exceeded"`,
/// `"shutdown"`, `"eval_failed"`); the constants here are the codes the
/// front door itself originates. All of them are wire surface and never
/// change once shipped.
pub mod codes {
    /// The first frame on a connection was not `HELLO` (fatal: the
    /// connection is closed after the error frame).
    pub const EXPECTED_HELLO: &str = "expected_hello";
    /// The client's `HELLO` carried a protocol version this server does
    /// not speak (fatal).
    pub const UNSUPPORTED_VERSION: &str = "unsupported_version";
    /// A frame was structurally invalid or of an unexpected type
    /// (fatal — framing is unrecoverable once desynchronised).
    pub const BAD_FRAME: &str = "bad_frame";
    /// A submission's container failed to decode (per-request: the
    /// connection stays up; the detail carries the
    /// [`bh_container::ContainerError::code`]).
    pub const BAD_CONTAINER: &str = "bad_container";
    /// A submission's read-back register does not exist in the decoded
    /// program (per-request).
    pub const BAD_REGISTER: &str = "bad_register";
    /// The decoded program failed byte-code verification — the same
    /// code [`bh_serve::ServeError::Malformed`] maps to, so clients see
    /// one code for "your program is invalid" wherever it is caught.
    pub const MALFORMED: &str = "malformed";
}

/// Transport and framing failures on a connection.
///
/// Rejections the *server* sends (backpressure, deadlines, malformed
/// programs) are not errors at this layer — they arrive as
/// [`crate::NetEvent::Rejected`] events carrying their stable code.
/// `#[non_exhaustive]`: transports grow failure modes; keep a wildcard
/// arm and dispatch on [`NetError::code`].
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer closed the connection at a frame boundary.
    Disconnected,
    /// A length prefix exceeded [`crate::MAX_FRAME_LEN`] (reading) or a
    /// frame body would (writing).
    FrameTooLarge {
        /// The offending length.
        len: u64,
    },
    /// A frame body was structurally invalid.
    BadFrame {
        /// What was wrong with it.
        detail: String,
    },
    /// The handshake failed: the peer answered `HELLO` with an error
    /// frame (or something other than `HELLO_ACK`).
    Handshake {
        /// The stable code from the peer's error frame.
        code: String,
        /// Human-readable context from the peer.
        detail: String,
    },
}

impl NetError {
    /// The stable machine code for this failure class: `"io"`,
    /// `"disconnected"`, `"frame_too_large"`, `"bad_frame"` or
    /// `"handshake_refused"`.
    pub fn code(&self) -> &'static str {
        match self {
            NetError::Io(_) => "io",
            NetError::Disconnected => "disconnected",
            NetError::FrameTooLarge { .. } => "frame_too_large",
            NetError::BadFrame { .. } => "bad_frame",
            NetError::Handshake { .. } => "handshake_refused",
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {} cap",
                    crate::MAX_FRAME_LEN
                )
            }
            NetError::BadFrame { detail } => write!(f, "invalid frame: {detail}"),
            NetError::Handshake { code, detail } => {
                write!(f, "handshake refused ({code}): {detail}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let samples = [
            NetError::Io(std::io::Error::other("boom")),
            NetError::Disconnected,
            NetError::FrameTooLarge { len: 1 << 40 },
            NetError::BadFrame { detail: "x".into() },
            NetError::Handshake {
                code: "unsupported_version".into(),
                detail: "v9".into(),
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in &samples {
            assert!(seen.insert(e.code()), "duplicate {}", e.code());
            assert!(!e.to_string().is_empty());
        }
        use std::error::Error;
        assert!(samples[0].source().is_some());
        assert!(samples[1].source().is_none());
    }
}
