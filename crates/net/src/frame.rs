//! The wire frame codec.
//!
//! Every message on a connection is one frame:
//!
//! ```text
//! ┌────────────────────────────────────────────────┐
//! │ body length   u32 LE   (≤ MAX_FRAME_LEN)       │
//! │ frame type    u8                               │
//! │ body          length − 1 bytes, per-type layout│
//! └────────────────────────────────────────────────┘
//! ```
//!
//! Like the container format, the codec is explicit little-endian with
//! no reflection; decoding is fail-closed (structured [`NetError`],
//! never a panic) and never allocates more than the declared — and
//! capped — frame length.

use crate::error::NetError;
use std::io::{Read, Write};

/// The protocol version spoken by this crate; carried in
/// [`Frame::Hello`] / [`Frame::HelloAck`] and checked at handshake.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on one frame's body, bounding what a hostile length
/// prefix can make the reader allocate. Large enough for any realistic
/// container (the biggest payload a frame carries).
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

const TYPE_HELLO: u8 = 0x01;
const TYPE_HELLO_ACK: u8 = 0x02;
const TYPE_SUBMIT: u8 = 0x03;
const TYPE_RESULT: u8 = 0x04;
const TYPE_ERROR: u8 = 0x05;

/// Submit-flags bit: a read-back register follows.
const FLAG_READ: u8 = 0b0000_0001;
/// Submit-flags bit: a deadline follows.
const FLAG_DEADLINE: u8 = 0b0000_0010;
/// Result-flags bit: a value vector follows.
const FLAG_VALUE: u8 = 0b0000_0001;

/// One decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server, first frame on a connection: binds every
    /// subsequent submission on this connection to `tenant`.
    Hello {
        /// The protocol version the client speaks.
        version: u16,
        /// The tenant all of this connection's requests run under.
        tenant: String,
    },
    /// Server → client: the handshake succeeded.
    HelloAck {
        /// The protocol version the server speaks.
        version: u16,
    },
    /// Client → server: run the program in `container`.
    Submit {
        /// Client-chosen correlation id; echoed on the response frame.
        /// Exactly one [`Frame::Result`] or [`Frame::Error`] answers it.
        request_id: u64,
        /// Register to read back after execution, if any.
        read: Option<u32>,
        /// Deadline in milliseconds from submission, if any.
        deadline_ms: Option<u64>,
        /// An encoded [`bh_container::Container`] carrying the program.
        container: Vec<u8>,
    },
    /// Server → client: the submission completed.
    Result {
        /// The id from the [`Frame::Submit`] this resolves.
        request_id: u64,
        /// How many requests shared the micro-batch.
        batch_size: u32,
        /// Time the request spent queued, in nanoseconds.
        queue_wait_nanos: u64,
        /// Submission-to-completion time, in nanoseconds.
        turnaround_nanos: u64,
        /// The read-back value as f64s, when a read was requested.
        value: Option<Vec<f64>>,
    },
    /// Server → client: the submission (or the connection) failed.
    Error {
        /// The id from the [`Frame::Submit`] this resolves, or 0 for
        /// connection-level errors not tied to a submission.
        request_id: u64,
        /// A stable machine code (see [`crate::codes`]).
        code: String,
        /// Human-readable context; never required for dispatch.
        detail: String,
    },
}

/// Byte-slice cursor mirroring the container crate's decoder style.
struct Rd<'a> {
    rest: &'a [u8],
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], NetError> {
        if self.rest.len() < n {
            return Err(NetError::BadFrame {
                detail: format!("truncated {what}"),
            });
        }
        let (head, rest) = self.rest.split_at(n);
        self.rest = rest;
        Ok(head)
    }

    fn u8_(&mut self, what: &str) -> Result<u8, NetError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16_(&mut self, what: &str) -> Result<u16, NetError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32_(&mut self, what: &str) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64_(&mut self, what: &str) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn str_(&mut self, what: &str) -> Result<String, NetError> {
        let len = self.u16_(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| NetError::BadFrame {
            detail: format!("{what} is not UTF-8"),
        })
    }

    fn drained(&self, what: &str) -> Result<(), NetError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(NetError::BadFrame {
                detail: format!("{what} has {} trailing bytes", self.rest.len()),
            })
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    // Strings are advisory (tenant names, error details); truncate on a
    // char boundary rather than fail when one exceeds the u16 length.
    let mut bytes = s.as_bytes();
    if bytes.len() > u16::MAX as usize {
        let mut end = u16::MAX as usize;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        bytes = &bytes[..end];
    }
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

impl Frame {
    /// Encode the frame body (type byte + payload, no length prefix).
    fn body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { version, tenant } => {
                out.push(TYPE_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
                put_str(&mut out, tenant);
            }
            Frame::HelloAck { version } => {
                out.push(TYPE_HELLO_ACK);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Frame::Submit {
                request_id,
                read,
                deadline_ms,
                container,
            } => {
                out.push(TYPE_SUBMIT);
                out.extend_from_slice(&request_id.to_le_bytes());
                let mut flags = 0u8;
                if read.is_some() {
                    flags |= FLAG_READ;
                }
                if deadline_ms.is_some() {
                    flags |= FLAG_DEADLINE;
                }
                out.push(flags);
                if let Some(reg) = read {
                    out.extend_from_slice(&reg.to_le_bytes());
                }
                if let Some(ms) = deadline_ms {
                    out.extend_from_slice(&ms.to_le_bytes());
                }
                out.extend_from_slice(container);
            }
            Frame::Result {
                request_id,
                batch_size,
                queue_wait_nanos,
                turnaround_nanos,
                value,
            } => {
                out.push(TYPE_RESULT);
                out.extend_from_slice(&request_id.to_le_bytes());
                out.extend_from_slice(&batch_size.to_le_bytes());
                out.extend_from_slice(&queue_wait_nanos.to_le_bytes());
                out.extend_from_slice(&turnaround_nanos.to_le_bytes());
                match value {
                    None => out.push(0),
                    Some(v) => {
                        out.push(FLAG_VALUE);
                        out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                        for x in v {
                            out.extend_from_slice(&x.to_le_bytes());
                        }
                    }
                }
            }
            Frame::Error {
                request_id,
                code,
                detail,
            } => {
                out.push(TYPE_ERROR);
                out.extend_from_slice(&request_id.to_le_bytes());
                put_str(&mut out, code);
                put_str(&mut out, detail);
            }
        }
        out
    }

    /// Write the frame (length prefix + body) to `w` and flush.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on write failure; [`NetError::FrameTooLarge`] if
    /// the body exceeds [`MAX_FRAME_LEN`] (e.g. an oversized container).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), NetError> {
        let body = self.body();
        let len = u32::try_from(body.len())
            .ok()
            .filter(|&l| l <= MAX_FRAME_LEN)
            .ok_or(NetError::FrameTooLarge {
                len: body.len() as u64,
            })?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&body)?;
        w.flush()?;
        Ok(())
    }

    /// Read one frame from `r`, fail-closed.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] on clean EOF at a frame boundary,
    /// [`NetError::Io`] on transport failure, [`NetError::FrameTooLarge`]
    /// for a hostile length prefix, [`NetError::BadFrame`] for anything
    /// structurally wrong with the body.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, NetError> {
        let mut len4 = [0u8; 4];
        if let Err(e) = r.read_exact(&mut len4) {
            return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
                NetError::Disconnected
            } else {
                NetError::Io(e)
            });
        }
        let len = u32::from_le_bytes(len4);
        if len > MAX_FRAME_LEN {
            return Err(NetError::FrameTooLarge { len: len as u64 });
        }
        if len == 0 {
            return Err(NetError::BadFrame {
                detail: "empty frame".into(),
            });
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        Frame::decode_body(&body)
    }

    fn decode_body(body: &[u8]) -> Result<Frame, NetError> {
        let mut rd = Rd { rest: body };
        let ty = rd.u8_("frame type")?;
        let frame = match ty {
            TYPE_HELLO => Frame::Hello {
                version: rd.u16_("hello version")?,
                tenant: rd.str_("hello tenant")?,
            },
            TYPE_HELLO_ACK => Frame::HelloAck {
                version: rd.u16_("ack version")?,
            },
            TYPE_SUBMIT => {
                let request_id = rd.u64_("submit request id")?;
                let flags = rd.u8_("submit flags")?;
                if flags & !(FLAG_READ | FLAG_DEADLINE) != 0 {
                    return Err(NetError::BadFrame {
                        detail: format!("unknown submit flags {flags:#04x}"),
                    });
                }
                let read = (flags & FLAG_READ != 0)
                    .then(|| rd.u32_("submit read register"))
                    .transpose()?;
                let deadline_ms = (flags & FLAG_DEADLINE != 0)
                    .then(|| rd.u64_("submit deadline"))
                    .transpose()?;
                let container = rd.rest.to_vec();
                rd.rest = &[];
                Frame::Submit {
                    request_id,
                    read,
                    deadline_ms,
                    container,
                }
            }
            TYPE_RESULT => {
                let request_id = rd.u64_("result request id")?;
                let batch_size = rd.u32_("result batch size")?;
                let queue_wait_nanos = rd.u64_("result queue wait")?;
                let turnaround_nanos = rd.u64_("result turnaround")?;
                let flags = rd.u8_("result flags")?;
                let value = match flags {
                    0 => None,
                    FLAG_VALUE => {
                        let n = rd.u64_("value length")?;
                        // The remaining bytes bound the claimed length, so a
                        // hostile count cannot drive allocation.
                        let n = usize::try_from(n)
                            .ok()
                            .filter(|&n| n.checked_mul(8) == Some(rd.rest.len()))
                            .ok_or_else(|| NetError::BadFrame {
                                detail: "value length disagrees with frame length".into(),
                            })?;
                        let mut v = Vec::with_capacity(n);
                        for _ in 0..n {
                            v.push(f64::from_le_bytes(
                                rd.take(8, "value element")?.try_into().expect("8 bytes"),
                            ));
                        }
                        Some(v)
                    }
                    other => {
                        return Err(NetError::BadFrame {
                            detail: format!("unknown result flags {other:#04x}"),
                        })
                    }
                };
                Frame::Result {
                    request_id,
                    batch_size,
                    queue_wait_nanos,
                    turnaround_nanos,
                    value,
                }
            }
            TYPE_ERROR => Frame::Error {
                request_id: rd.u64_("error request id")?,
                code: rd.str_("error code")?,
                detail: rd.str_("error detail")?,
            },
            other => {
                return Err(NetError::BadFrame {
                    detail: format!("unknown frame type {other:#04x}"),
                })
            }
        };
        rd.drained("frame body")?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut buf = Vec::new();
        frame.write_to(&mut buf).unwrap();
        let back = Frame::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn every_frame_type_round_trips() {
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
            tenant: "tenant-α".into(),
        });
        round_trip(Frame::HelloAck {
            version: PROTOCOL_VERSION,
        });
        round_trip(Frame::Submit {
            request_id: 7,
            read: Some(3),
            deadline_ms: Some(250),
            container: vec![1, 2, 3, 4],
        });
        round_trip(Frame::Submit {
            request_id: u64::MAX,
            read: None,
            deadline_ms: None,
            container: Vec::new(),
        });
        round_trip(Frame::Result {
            request_id: 7,
            batch_size: 4,
            queue_wait_nanos: 123,
            turnaround_nanos: 456,
            value: Some(vec![1.5, -0.0, f64::INFINITY]),
        });
        round_trip(Frame::Result {
            request_id: 8,
            batch_size: 1,
            queue_wait_nanos: 0,
            turnaround_nanos: 1,
            value: None,
        });
        round_trip(Frame::Error {
            request_id: 9,
            code: "queue_full".into(),
            detail: "submission queue full (capacity 8)".into(),
        });
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.push(TYPE_HELLO);
        assert!(matches!(
            Frame::read_from(&mut bytes.as_slice()),
            Err(NetError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_and_malformed_bodies_fail_closed() {
        // Clean EOF at a frame boundary is a disconnect, not an error.
        assert!(matches!(
            Frame::read_from(&mut [].as_slice()),
            Err(NetError::Disconnected)
        ));
        // EOF mid-frame is a transport error.
        let mut buf = Vec::new();
        Frame::HelloAck {
            version: PROTOCOL_VERSION,
        }
        .write_to(&mut buf)
        .unwrap();
        assert!(matches!(
            Frame::read_from(&mut buf[..buf.len() - 1].as_ref()),
            Err(NetError::Io(_))
        ));
        // Unknown type byte.
        let msg = [1u8, 0, 0, 0, 0x7f];
        assert!(matches!(
            Frame::read_from(&mut msg.as_slice()),
            Err(NetError::BadFrame { .. })
        ));
        // Result value length disagreeing with the frame length.
        let mut body = vec![TYPE_RESULT];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        body.push(FLAG_VALUE);
        body.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut msg = (body.len() as u32).to_le_bytes().to_vec();
        msg.extend_from_slice(&body);
        assert!(matches!(
            Frame::read_from(&mut msg.as_slice()),
            Err(NetError::BadFrame { .. })
        ));
        // Trailing garbage after a well-formed body.
        let mut body = vec![TYPE_HELLO_ACK];
        body.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        body.push(0xee);
        let mut msg = (body.len() as u32).to_le_bytes().to_vec();
        msg.extend_from_slice(&body);
        assert!(matches!(
            Frame::read_from(&mut msg.as_slice()),
            Err(NetError::BadFrame { .. })
        ));
        // Non-UTF-8 tenant.
        let mut body = vec![TYPE_HELLO];
        body.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        body.extend_from_slice(&2u16.to_le_bytes());
        body.extend_from_slice(&[0xff, 0xfe]);
        let mut msg = (body.len() as u32).to_le_bytes().to_vec();
        msg.extend_from_slice(&body);
        assert!(matches!(
            Frame::read_from(&mut msg.as_slice()),
            Err(NetError::BadFrame { .. })
        ));
    }

    #[test]
    fn oversized_strings_truncate_on_a_char_boundary() {
        let long = "é".repeat(40_000); // 80k bytes > u16::MAX
        let mut buf = Vec::new();
        Frame::Error {
            request_id: 1,
            code: "x".into(),
            detail: long,
        }
        .write_to(&mut buf)
        .unwrap();
        let Frame::Error { detail, .. } = Frame::read_from(&mut buf.as_slice()).unwrap() else {
            panic!("error frame expected");
        };
        assert!(detail.len() <= u16::MAX as usize);
        assert!(detail.chars().all(|c| c == 'é'));
    }
}
