//! The TCP front door: accepts connections, decodes container frames,
//! and drives the [`bh_serve::Server`] through its non-blocking ticket
//! surface.

use crate::error::{codes, NetError};
use crate::frame::{Frame, PROTOCOL_VERSION};
use bh_container::Container;
use bh_ir::Reg;
use bh_serve::{Request, Server};
use parking_lot::Mutex;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Counters the front door keeps about itself (the scheduler's own
/// numbers live in [`bh_serve::ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted since bind.
    pub connections: u64,
    /// Frames read from clients (handshakes and submissions).
    pub frames_received: u64,
    /// `RESULT` frames sent.
    pub results_sent: u64,
    /// `ERROR` frames sent (protocol errors and scheduler rejections).
    pub errors_sent: u64,
}

struct Shared {
    serve: Arc<Server>,
    addr: SocketAddr,
    closing: AtomicBool,
    /// Stream clones of live connections, shut down to unblock their
    /// reader threads when the front door closes.
    conns: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    connections: AtomicU64,
    frames_received: AtomicU64,
    results_sent: AtomicU64,
    errors_sent: AtomicU64,
}

/// A connection's serialised write half. Completion callbacks run on
/// scheduler worker threads while the reader thread sends its own error
/// frames, so every frame goes out under this one lock — frames are
/// never interleaved mid-write.
struct ConnWriter {
    shared: Arc<Shared>,
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Best-effort send: a client that hung up stops caring about its
    /// responses, so write failures are swallowed (the reader thread
    /// notices the closed socket and winds the connection down).
    fn send(&self, frame: &Frame) {
        let mut stream = self.stream.lock();
        if frame.write_to(&mut *stream).is_ok() {
            match frame {
                Frame::Error { .. } => {
                    self.shared.errors_sent.fetch_add(1, Ordering::Relaxed);
                }
                Frame::Result { .. } => {
                    self.shared.results_sent.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
    }

    fn send_error(&self, request_id: u64, code: &str, detail: String) {
        self.send(&Frame::Error {
            request_id,
            code: code.to_owned(),
            detail,
        });
    }
}

/// A TCP listener serving the wire protocol over a [`bh_serve::Server`].
///
/// One reader thread per connection decodes frames; submissions are
/// verified, enqueued, and resolved through [`bh_serve::Ticket::on_done`]
/// — no thread blocks per in-flight request, and each `SUBMIT` is
/// answered by exactly one `RESULT` or `ERROR` frame (the scheduler's
/// exactly-once slot semantics carry through to the wire).
///
/// The front door owns only the transport: dropping (or
/// [`NetServer::close`]-ing) it stops accepting and tears down
/// connections, but the [`bh_serve::Server`] and its queued work belong
/// to the caller.
pub struct NetServer {
    shared: Arc<Shared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections for `serve`.
    ///
    /// # Errors
    ///
    /// The bind failure, if the address is unavailable.
    pub fn bind(addr: impl ToSocketAddrs, serve: Arc<Server>) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            serve,
            addr,
            closing: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
            connections: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            results_sent: AtomicU64::new(0),
            errors_sent: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("bh-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            shared,
            accept_thread: Mutex::new(Some(accept)),
        })
    }

    /// The address the front door is listening on (with the ephemeral
    /// port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The scheduler this front door feeds.
    pub fn serve(&self) -> &Arc<Server> {
        &self.shared.serve
    }

    /// Transport counters (see [`NetStats`]).
    pub fn stats(&self) -> NetStats {
        NetStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            frames_received: self.shared.frames_received.load(Ordering::Relaxed),
            results_sent: self.shared.results_sent.load(Ordering::Relaxed),
            errors_sent: self.shared.errors_sent.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, tear down every connection and join the
    /// transport threads. Idempotent; also runs on drop. The underlying
    /// [`bh_serve::Server`] is left running — shut it down separately
    /// once its queued work should drain.
    pub fn close(&self) {
        if self.shared.closing.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection; the loop
        // re-checks the flag per iteration.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self.shared.conn_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.shared.addr)
            .field("closing", &self.shared.closing.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.closing.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.closing.load(Ordering::Acquire) {
            return;
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().push(clone);
        }
        let conn_shared = Arc::clone(shared);
        // A spawn failure drops the stream: the client sees EOF.
        if let Ok(handle) = std::thread::Builder::new()
            .name("bh-net-conn".into())
            .spawn(move || connection(&conn_shared, stream))
        {
            shared.conn_threads.lock().push(handle);
        }
    }
}

/// One connection's lifecycle: handshake, then submissions until the
/// client disconnects or a framing error makes the byte stream
/// unrecoverable.
fn connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let writer = Arc::new(ConnWriter {
        shared: Arc::clone(shared),
        stream: Mutex::new(stream),
    });

    // Handshake: the first frame must be HELLO at our protocol version.
    // Refusals are answered with a connection-level error frame (id 0)
    // so the client learns *why* before the close.
    let tenant = match Frame::read_from(&mut reader) {
        Ok(Frame::Hello { version, tenant }) if version == PROTOCOL_VERSION => {
            shared.frames_received.fetch_add(1, Ordering::Relaxed);
            tenant
        }
        Ok(Frame::Hello { version, .. }) => {
            writer.send_error(
                0,
                codes::UNSUPPORTED_VERSION,
                format!("server speaks version {PROTOCOL_VERSION}, client sent {version}"),
            );
            return;
        }
        Ok(_) => {
            writer.send_error(
                0,
                codes::EXPECTED_HELLO,
                "first frame on a connection must be HELLO".into(),
            );
            return;
        }
        Err(e) => {
            if let NetError::BadFrame { detail } = &e {
                writer.send_error(0, codes::BAD_FRAME, detail.clone());
            }
            return;
        }
    };
    writer.send(&Frame::HelloAck {
        version: PROTOCOL_VERSION,
    });

    loop {
        match Frame::read_from(&mut reader) {
            Ok(Frame::Submit {
                request_id,
                read,
                deadline_ms,
                container,
            }) => {
                shared.frames_received.fetch_add(1, Ordering::Relaxed);
                submit(
                    shared,
                    &writer,
                    &tenant,
                    request_id,
                    read,
                    deadline_ms,
                    &container,
                );
            }
            Ok(_) => {
                shared.frames_received.fetch_add(1, Ordering::Relaxed);
                writer.send_error(
                    0,
                    codes::BAD_FRAME,
                    "only SUBMIT frames are valid after the handshake".into(),
                );
                return;
            }
            Err(NetError::BadFrame { detail }) => {
                writer.send_error(0, codes::BAD_FRAME, detail);
                return;
            }
            Err(NetError::FrameTooLarge { len }) => {
                writer.send_error(
                    0,
                    codes::BAD_FRAME,
                    format!("frame of {len} bytes over cap"),
                );
                return;
            }
            Err(_) => return, // disconnect or transport failure
        }
    }
}

/// Decode, verify, enqueue one submission; arrange for exactly one
/// response frame.
fn submit(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    tenant: &str,
    request_id: u64,
    read: Option<u32>,
    deadline_ms: Option<u64>,
    container: &[u8],
) {
    // Syntactic trust boundary: hostile bytes become a structured error
    // frame, never a panic (the container decoder is fail-closed).
    let decoded = match Container::decode(container) {
        Ok(c) => c,
        Err(e) => {
            writer.send_error(request_id, codes::BAD_CONTAINER, e.to_string());
            return;
        }
    };
    // Semantic trust boundary: the program must pass byte-code
    // verification *before* anything derives from it — digesting (inside
    // `Request::new`) is only total on verified programs. Any plan
    // section riding in the container is deliberately ignored: the
    // scheduler compiles (and proves) its own plans.
    let program = decoded.program;
    if let Err(errors) = bh_ir::verify(&program) {
        let detail = errors
            .first()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "verification failed".into());
        writer.send_error(request_id, codes::MALFORMED, detail);
        return;
    }
    if let Some(reg) = read {
        if reg as usize >= program.bases().len() {
            writer.send_error(
                request_id,
                codes::BAD_REGISTER,
                format!(
                    "read register {reg} out of range ({} bases)",
                    program.bases().len()
                ),
            );
            return;
        }
    }
    let mut request = Request::new(tenant, program);
    if let Some(reg) = read {
        request = request.read(Reg(reg));
    }
    if let Some(ms) = deadline_ms {
        request = request.deadline(Duration::from_millis(ms));
    }
    match shared.serve.submit(request) {
        Err(rejected) => {
            writer.send_error(
                request_id,
                rejected.reason.code(),
                rejected.reason.to_string(),
            );
        }
        Ok(ticket) => {
            // The slot resolves exactly once, so exactly one frame
            // answers this request id; the callback runs on whichever
            // thread resolves the request and holds no locks but the
            // writer's.
            let writer = Arc::clone(writer);
            ticket.on_done(move |result| match result {
                Ok(response) => {
                    let as_nanos = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
                    writer.send(&Frame::Result {
                        request_id,
                        batch_size: response.batch_size as u32,
                        queue_wait_nanos: as_nanos(response.queue_wait),
                        turnaround_nanos: as_nanos(response.turnaround),
                        value: response.value.map(|t| t.to_f64_vec()),
                    });
                }
                Err(e) => {
                    writer.send_error(request_id, e.code(), e.to_string());
                }
            });
        }
    }
}
