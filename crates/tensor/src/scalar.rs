//! Runtime-typed scalar values.
//!
//! Byte-code constants (the `1` in `BH_ADD a0 a0 1`) are scalars whose dtype
//! is resolved against the instruction's operand types. [`Scalar`] is the
//! dynamically typed value used by the IR, the optimizer's constant folder
//! and the VM.

use crate::dtype::{DType, Element};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// A single dynamically typed element value.
///
/// # Examples
///
/// ```
/// use bh_tensor::{DType, Scalar};
/// let a = Scalar::from(2.5f64);
/// assert_eq!(a.dtype(), DType::Float64);
/// let b = a.cast(DType::Int32);
/// assert_eq!(b, Scalar::I32(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// Boolean value.
    Bool(bool),
    /// 8-bit unsigned.
    U8(u8),
    /// 16-bit unsigned.
    U16(u16),
    /// 32-bit unsigned.
    U32(u32),
    /// 64-bit unsigned.
    U64(u64),
    /// 8-bit signed.
    I8(i8),
    /// 16-bit signed.
    I16(i16),
    /// 32-bit signed.
    I32(i32),
    /// 64-bit signed.
    I64(i64),
    /// Single precision float.
    F32(f32),
    /// Double precision float.
    F64(f64),
}

impl Scalar {
    /// The dtype tag of this value.
    pub fn dtype(self) -> DType {
        match self {
            Scalar::Bool(_) => DType::Bool,
            Scalar::U8(_) => DType::UInt8,
            Scalar::U16(_) => DType::UInt16,
            Scalar::U32(_) => DType::UInt32,
            Scalar::U64(_) => DType::UInt64,
            Scalar::I8(_) => DType::Int8,
            Scalar::I16(_) => DType::Int16,
            Scalar::I32(_) => DType::Int32,
            Scalar::I64(_) => DType::Int64,
            Scalar::F32(_) => DType::Float32,
            Scalar::F64(_) => DType::Float64,
        }
    }

    /// The additive identity of `dtype`.
    pub fn zero(dtype: DType) -> Scalar {
        Scalar::from_f64(0.0, dtype)
    }

    /// The multiplicative identity of `dtype`.
    pub fn one(dtype: DType) -> Scalar {
        Scalar::from_f64(1.0, dtype)
    }

    /// Build a scalar of `dtype` from an `f64`, with C-style truncation for
    /// integer targets (saturating at the type bounds like `as` casts).
    pub fn from_f64(v: f64, dtype: DType) -> Scalar {
        match dtype {
            DType::Bool => Scalar::Bool(v != 0.0),
            DType::UInt8 => Scalar::U8(v as u8),
            DType::UInt16 => Scalar::U16(v as u16),
            DType::UInt32 => Scalar::U32(v as u32),
            DType::UInt64 => Scalar::U64(v as u64),
            DType::Int8 => Scalar::I8(v as i8),
            DType::Int16 => Scalar::I16(v as i16),
            DType::Int32 => Scalar::I32(v as i32),
            DType::Int64 => Scalar::I64(v as i64),
            DType::Float32 => Scalar::F32(v as f32),
            DType::Float64 => Scalar::F64(v),
        }
    }

    /// Build a scalar of `dtype` from an `i64` without an f64 round-trip,
    /// so 64-bit integer constants keep full precision.
    pub fn from_i64(v: i64, dtype: DType) -> Scalar {
        match dtype {
            DType::Bool => Scalar::Bool(v != 0),
            DType::UInt8 => Scalar::U8(v as u8),
            DType::UInt16 => Scalar::U16(v as u16),
            DType::UInt32 => Scalar::U32(v as u32),
            DType::UInt64 => Scalar::U64(v as u64),
            DType::Int8 => Scalar::I8(v as i8),
            DType::Int16 => Scalar::I16(v as i16),
            DType::Int32 => Scalar::I32(v as i32),
            DType::Int64 => Scalar::I64(v),
            DType::Float32 => Scalar::F32(v as f32),
            DType::Float64 => Scalar::F64(v as f64),
        }
    }

    /// Value as f64 (lossy for u64/i64 beyond 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::Bool(v) => v.to_f64(),
            Scalar::U8(v) => v as f64,
            Scalar::U16(v) => v as f64,
            Scalar::U32(v) => v as f64,
            Scalar::U64(v) => v as f64,
            Scalar::I8(v) => v as f64,
            Scalar::I16(v) => v as f64,
            Scalar::I32(v) => v as f64,
            Scalar::I64(v) => v as f64,
            Scalar::F32(v) => v as f64,
            Scalar::F64(v) => v,
        }
    }

    /// Value as i64 if it is integral and fits, else `None`.
    ///
    /// Used by the power-expansion rule to detect integral exponents
    /// (`x^10`), including float constants that hold integral values.
    pub fn as_integral(self) -> Option<i64> {
        match self {
            Scalar::Bool(v) => Some(v as i64),
            Scalar::U8(v) => Some(v as i64),
            Scalar::U16(v) => Some(v as i64),
            Scalar::U32(v) => Some(v as i64),
            Scalar::U64(v) => i64::try_from(v).ok(),
            Scalar::I8(v) => Some(v as i64),
            Scalar::I16(v) => Some(v as i64),
            Scalar::I32(v) => Some(v as i64),
            Scalar::I64(v) => Some(v),
            Scalar::F32(v) => {
                let f = v as f64;
                (f.fract() == 0.0 && f.abs() < 2f64.powi(53)).then_some(f as i64)
            }
            Scalar::F64(f) => (f.fract() == 0.0 && f.abs() < 2f64.powi(53)).then_some(f as i64),
        }
    }

    /// Cast to another dtype with `as`-cast semantics.
    pub fn cast(self, dtype: DType) -> Scalar {
        if self.dtype() == dtype {
            return self;
        }
        // Integers cast through i64 to preserve 64-bit precision where
        // possible; floats through f64.
        match self {
            Scalar::U64(v) if !dtype.is_float() && dtype != DType::Bool => {
                // u64 -> integer target: wrap like `as`.
                match dtype {
                    DType::UInt8 => Scalar::U8(v as u8),
                    DType::UInt16 => Scalar::U16(v as u16),
                    DType::UInt32 => Scalar::U32(v as u32),
                    DType::UInt64 => Scalar::U64(v),
                    DType::Int8 => Scalar::I8(v as i8),
                    DType::Int16 => Scalar::I16(v as i16),
                    DType::Int32 => Scalar::I32(v as i32),
                    DType::Int64 => Scalar::I64(v as i64),
                    _ => unreachable!(),
                }
            }
            s => {
                if let Some(i) = s.as_integral() {
                    Scalar::from_i64(i, dtype)
                } else {
                    Scalar::from_f64(s.as_f64(), dtype)
                }
            }
        }
    }

    /// True if this is exactly the additive identity of its dtype.
    pub fn is_zero(self) -> bool {
        match self {
            Scalar::F32(v) => v == 0.0,
            Scalar::F64(v) => v == 0.0,
            s => s.as_integral() == Some(0),
        }
    }

    /// True if this is exactly the multiplicative identity of its dtype.
    pub fn is_one(self) -> bool {
        match self {
            Scalar::F32(v) => v == 1.0,
            Scalar::F64(v) => v == 1.0,
            s => s.as_integral() == Some(1),
        }
    }

    /// Extract as typed element (panics on dtype mismatch; internal use via
    /// [`Scalar::get`]).
    pub fn get<T: Element>(self) -> T {
        assert_eq!(self.dtype(), T::DTYPE, "scalar dtype mismatch");
        // The dtype check guarantees the variant's payload type *is* `T`,
        // so extract it directly — an f64 round-trip would corrupt
        // u64/i64 values beyond 2^53 (e.g. `u64::MAX - 128` became
        // `u64::MAX`, diverging from the exact constant folder).
        fn exact<S: Copy + 'static, T: Copy + 'static>(v: S) -> T {
            *(&v as &dyn std::any::Any)
                .downcast_ref::<T>()
                .expect("dtype checked above")
        }
        match self {
            Scalar::Bool(v) => exact(v),
            Scalar::U8(v) => exact(v),
            Scalar::U16(v) => exact(v),
            Scalar::U32(v) => exact(v),
            Scalar::U64(v) => exact(v),
            Scalar::I8(v) => exact(v),
            Scalar::I16(v) => exact(v),
            Scalar::I32(v) => exact(v),
            Scalar::I64(v) => exact(v),
            Scalar::F32(v) => exact(v),
            Scalar::F64(v) => exact(v),
        }
    }

    /// Compare numerically (bools as 0/1). `None` for NaN comparisons.
    pub fn partial_cmp_value(self, other: Scalar) -> Option<Ordering> {
        self.as_f64().partial_cmp(&other.as_f64())
    }
}

macro_rules! impl_from {
    ($($t:ty => $v:ident,)*) => {$(
        impl From<$t> for Scalar {
            fn from(v: $t) -> Scalar { Scalar::$v(v) }
        }
    )*};
}

impl_from! {
    bool => Bool,
    u8 => U8,
    u16 => U16,
    u32 => U32,
    u64 => U64,
    i8 => I8,
    i16 => I16,
    i32 => I32,
    i64 => I64,
    f32 => F32,
    f64 => F64,
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Scalar::Bool(v) => write!(f, "{v}"),
            Scalar::U8(v) => write!(f, "{v}"),
            Scalar::U16(v) => write!(f, "{v}"),
            Scalar::U32(v) => write!(f, "{v}"),
            Scalar::U64(v) => write!(f, "{v}"),
            Scalar::I8(v) => write!(f, "{v}"),
            Scalar::I16(v) => write!(f, "{v}"),
            Scalar::I32(v) => write!(f, "{v}"),
            Scalar::I64(v) => write!(f, "{v}"),
            Scalar::F32(v) => fmt_float(f, v as f64),
            Scalar::F64(v) => fmt_float(f, v),
        }
    }
}

fn fmt_float(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
        write!(f, "{v:.1}") // "3.0" so the printer round-trips dtype intent
    } else {
        write!(f, "{v}")
    }
}

/// Error returned when parsing a [`Scalar`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScalarError {
    text: String,
}

impl fmt::Display for ParseScalarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scalar literal `{}`", self.text)
    }
}

impl std::error::Error for ParseScalarError {}

impl FromStr for Scalar {
    type Err = ParseScalarError;

    /// Parses untyped literals: `true`/`false` → Bool, integers → I64,
    /// anything with `.`/`e`/`inf`/`nan` → F64. Typed suffix forms like
    /// `3i32` or `1.5f32` are also accepted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        let err = || ParseScalarError { text: t.to_owned() };
        if t.is_empty() {
            return Err(err());
        }
        match t {
            "true" => return Ok(Scalar::Bool(true)),
            "false" => return Ok(Scalar::Bool(false)),
            _ => {}
        }
        // Typed suffix? Find a suffix among known dtype short names.
        for d in [
            "bool", "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64", "f32", "f64",
        ] {
            if let Some(body) = t.strip_suffix(d) {
                if !body.is_empty()
                    && body
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+')
                {
                    let dtype: DType = d.parse().map_err(|_| err())?;
                    if let Ok(i) = body.parse::<i64>() {
                        return Ok(Scalar::from_i64(i, dtype));
                    }
                    let f: f64 = body.parse().map_err(|_| err())?;
                    return Ok(Scalar::from_f64(f, dtype));
                }
            }
        }
        if let Ok(i) = t.parse::<i64>() {
            return Ok(Scalar::I64(i));
        }
        if let Ok(u) = t.parse::<u64>() {
            return Ok(Scalar::U64(u));
        }
        if let Ok(f) = t.parse::<f64>() {
            return Ok(Scalar::F64(f));
        }
        Err(err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::ALL_DTYPES;

    #[test]
    fn dtype_tags() {
        assert_eq!(Scalar::from(1u8).dtype(), DType::UInt8);
        assert_eq!(Scalar::from(-1i64).dtype(), DType::Int64);
        assert_eq!(Scalar::from(0.5f32).dtype(), DType::Float32);
        assert_eq!(Scalar::from(true).dtype(), DType::Bool);
    }

    #[test]
    fn zero_one_identities() {
        for &d in &ALL_DTYPES {
            assert!(Scalar::zero(d).is_zero(), "{d}");
            assert!(Scalar::one(d).is_one(), "{d}");
            assert_eq!(Scalar::zero(d).dtype(), d);
            assert_eq!(Scalar::one(d).dtype(), d);
        }
    }

    #[test]
    fn integral_detection() {
        assert_eq!(Scalar::F64(10.0).as_integral(), Some(10));
        assert_eq!(Scalar::F64(10.5).as_integral(), None);
        assert_eq!(Scalar::F32(-3.0).as_integral(), Some(-3));
        assert_eq!(Scalar::U64(u64::MAX).as_integral(), None);
        assert_eq!(Scalar::I64(i64::MIN).as_integral(), Some(i64::MIN));
        assert_eq!(Scalar::Bool(true).as_integral(), Some(1));
    }

    #[test]
    fn casts_preserve_integers() {
        let s = Scalar::I64(1_000_000_007);
        assert_eq!(s.cast(DType::Int32), Scalar::I32(1_000_000_007));
        assert_eq!(s.cast(DType::Float64), Scalar::F64(1_000_000_007.0));
        assert_eq!(Scalar::F64(2.9).cast(DType::Int32), Scalar::I32(2));
        assert_eq!(Scalar::Bool(true).cast(DType::Float32), Scalar::F32(1.0));
    }

    #[test]
    fn cast_u64_saturation_free_wrap() {
        let big = Scalar::U64(u64::MAX);
        assert_eq!(big.cast(DType::Int64), Scalar::I64(-1));
        assert_eq!(big.cast(DType::UInt8), Scalar::U8(255));
    }

    #[test]
    fn cast_is_identity_on_same_dtype() {
        let s = Scalar::F32(3.25);
        assert_eq!(s.cast(DType::Float32), s);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Scalar::I64(3).to_string(), "3");
        assert_eq!(Scalar::F64(3.0).to_string(), "3.0");
        assert_eq!(Scalar::F64(3.5).to_string(), "3.5");
        assert_eq!(Scalar::Bool(false).to_string(), "false");
        assert_eq!(Scalar::U8(255).to_string(), "255");
    }

    #[test]
    fn parse_untyped() {
        assert_eq!("3".parse::<Scalar>().unwrap(), Scalar::I64(3));
        assert_eq!("-7".parse::<Scalar>().unwrap(), Scalar::I64(-7));
        assert_eq!("3.5".parse::<Scalar>().unwrap(), Scalar::F64(3.5));
        assert_eq!("3.0".parse::<Scalar>().unwrap(), Scalar::F64(3.0));
        assert_eq!("true".parse::<Scalar>().unwrap(), Scalar::Bool(true));
        assert_eq!(
            "18446744073709551615".parse::<Scalar>().unwrap(),
            Scalar::U64(u64::MAX)
        );
    }

    #[test]
    fn parse_typed_suffix() {
        assert_eq!("3i32".parse::<Scalar>().unwrap(), Scalar::I32(3));
        assert_eq!("1.5f32".parse::<Scalar>().unwrap(), Scalar::F32(1.5));
        assert_eq!("255u8".parse::<Scalar>().unwrap(), Scalar::U8(255));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Scalar>().is_err());
        assert!("abc".parse::<Scalar>().is_err());
        assert!("1.2.3".parse::<Scalar>().is_err());
    }

    #[test]
    fn parse_display_round_trip() {
        for s in [
            Scalar::I64(42),
            Scalar::F64(-1.25),
            Scalar::Bool(true),
            Scalar::F64(3.0),
        ] {
            let text = s.to_string();
            let back: Scalar = text.parse().unwrap();
            assert_eq!(back.as_f64(), s.as_f64(), "{text}");
        }
    }

    #[test]
    fn get_typed() {
        assert_eq!(Scalar::F64(2.5).get::<f64>(), 2.5);
        assert_eq!(Scalar::I32(-9).get::<i32>(), -9);
        assert!(Scalar::Bool(true).get::<bool>());
    }

    #[test]
    #[should_panic(expected = "scalar dtype mismatch")]
    fn get_wrong_type_panics() {
        let _ = Scalar::F64(2.5).get::<i32>();
    }

    #[test]
    fn ordering() {
        use std::cmp::Ordering::*;
        assert_eq!(
            Scalar::I64(1).partial_cmp_value(Scalar::F64(2.0)),
            Some(Less)
        );
        assert_eq!(
            Scalar::F64(f64::NAN).partial_cmp_value(Scalar::F64(1.0)),
            None
        );
    }
}
