//! Strided views over base buffers.
//!
//! A Bohrium operand like `a0 [0:10:1]` names a *view* of the base array
//! `a0`: per-axis `start:stop:step` slices. [`Slice`] implements the
//! Python/NumPy slicing semantics used by the listings, and [`ViewGeom`] is
//! the resolved offset/stride geometry the kernels iterate over.

use crate::error::TensorError;
use crate::shape::Shape;
use std::fmt;

/// A `start:stop:step` slice with Python semantics.
///
/// `start`/`stop` may be negative (counted from the end) or omitted
/// (`None`), `step` may be negative but not zero.
///
/// # Examples
///
/// ```
/// use bh_tensor::Slice;
/// let s = Slice::new(Some(0), Some(10), 1);
/// assert_eq!(s.resolve(10).unwrap(), (0, 10, 1));
/// // Reversal:
/// let r = Slice::new(None, None, -1);
/// assert_eq!(r.resolve(4).unwrap(), (3, 4, -1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slice {
    /// Start index; `None` means "from the beginning" (or end for step < 0).
    pub start: Option<i64>,
    /// Stop index (exclusive); `None` means "to the end" (or beginning).
    pub stop: Option<i64>,
    /// Step; must be non-zero.
    pub step: i64,
}

impl Slice {
    /// Create a slice. `step` must be non-zero (checked at [`resolve`] time
    /// so literals can be built in `const` contexts).
    ///
    /// [`resolve`]: Slice::resolve
    pub const fn new(start: Option<i64>, stop: Option<i64>, step: i64) -> Slice {
        Slice { start, stop, step }
    }

    /// The full slice `::1`.
    pub const fn full() -> Slice {
        Slice {
            start: None,
            stop: None,
            step: 1,
        }
    }

    /// `start:stop` with step 1.
    pub const fn range(start: i64, stop: i64) -> Slice {
        Slice {
            start: Some(start),
            stop: Some(stop),
            step: 1,
        }
    }

    /// A single index `i` as a length-1 slice (the axis is kept).
    pub const fn index(i: i64) -> Slice {
        Slice {
            start: Some(i),
            stop: Some(i + 1),
            step: 1,
        }
    }

    /// Resolve against an axis of length `len`, yielding
    /// `(first_index, out_len, step)` exactly as CPython's
    /// `slice.indices()` does.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSlice`] when `step == 0`.
    pub fn resolve(self, len: usize) -> Result<(usize, usize, i64), TensorError> {
        if self.step == 0 {
            return Err(TensorError::InvalidSlice {
                reason: "slice step cannot be zero".into(),
            });
        }
        let n = len as i64;
        let step = self.step;
        // CPython slice.indices(): lower/upper bounds depend on direction.
        let (lower, upper) = if step > 0 { (0, n) } else { (-1, n - 1) };
        let resolve_bound = |v: Option<i64>, default: i64| match v {
            None => default,
            Some(s) if s < 0 => (s + n).max(lower),
            Some(s) => s.min(upper),
        };
        let (def_start, def_stop) = if step > 0 { (0, n) } else { (n - 1, -1) };
        let start = resolve_bound(self.start, def_start).max(lower);
        let stop = resolve_bound(self.stop, def_stop).max(lower);
        let out_len = if step > 0 {
            if stop > start {
                ((stop - start - 1) / step + 1) as usize
            } else {
                0
            }
        } else if start > stop {
            ((start - stop - 1) / (-step) + 1) as usize
        } else {
            0
        };
        let first = if out_len == 0 { 0 } else { start as usize };
        Ok((first, out_len, step))
    }
}

impl Default for Slice {
    fn default() -> Slice {
        Slice::full()
    }
}

impl fmt::Display for Slice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(s) = self.start {
            write!(f, "{s}")?;
        }
        write!(f, ":")?;
        if let Some(s) = self.stop {
            write!(f, "{s}")?;
        }
        write!(f, ":{}", self.step)
    }
}

/// One axis of a resolved view: logical length and base stride in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewDim {
    /// Number of elements along this axis.
    pub len: usize,
    /// Distance in base elements between consecutive logical indices
    /// (zero for broadcast axes, negative for reversed slices).
    pub stride: isize,
}

/// Resolved offset/stride geometry of a view into a 1-D base buffer.
///
/// # Examples
///
/// ```
/// use bh_tensor::{Shape, ViewGeom, Slice};
/// let base = Shape::from([4, 6]);
/// let v = ViewGeom::contiguous(&base);
/// assert_eq!(v.nelem(), 24);
/// let sub = ViewGeom::from_slices(&base, &[Slice::range(1, 3), Slice::new(Some(0), None, 2)]).unwrap();
/// assert_eq!(sub.shape(), Shape::from([2, 3]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewGeom {
    offset: usize,
    dims: Vec<ViewDim>,
}

impl ViewGeom {
    /// The full contiguous row-major view of a base of shape `shape`.
    pub fn contiguous(shape: &Shape) -> ViewGeom {
        let strides = shape.row_major_strides();
        ViewGeom {
            offset: 0,
            dims: shape
                .dims()
                .iter()
                .zip(strides)
                .map(|(&len, s)| ViewDim {
                    len,
                    stride: s as isize,
                })
                .collect(),
        }
    }

    /// A rank-0 (scalar) view at base element `offset`.
    pub fn scalar_at(offset: usize) -> ViewGeom {
        ViewGeom {
            offset,
            dims: Vec::new(),
        }
    }

    /// Build from raw parts. `dims` lengths/strides are trusted; prefer
    /// [`ViewGeom::from_slices`] for checked construction.
    pub fn from_parts(offset: usize, dims: Vec<ViewDim>) -> ViewGeom {
        ViewGeom { offset, dims }
    }

    /// Apply per-axis slices to the contiguous view of `base_shape`.
    ///
    /// Fewer slices than axes means trailing axes are taken in full.
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidSlice`] if `slices.len() > rank` or a step is 0.
    pub fn from_slices(base_shape: &Shape, slices: &[Slice]) -> Result<ViewGeom, TensorError> {
        if slices.len() > base_shape.rank() {
            return Err(TensorError::InvalidSlice {
                reason: format!(
                    "{} slices applied to rank-{} base",
                    slices.len(),
                    base_shape.rank()
                ),
            });
        }
        let base_strides = base_shape.row_major_strides();
        let mut offset = 0usize;
        let mut dims = Vec::with_capacity(base_shape.rank());
        for (axis, &base_stride) in base_strides.iter().enumerate() {
            let base_len = base_shape.dim(axis);
            let base_stride = base_stride as isize;
            let slice = slices.get(axis).copied().unwrap_or_else(Slice::full);
            let (first, len, step) = slice.resolve(base_len)?;
            if len > 0 {
                offset += first * base_stride as usize;
            }
            dims.push(ViewDim {
                len,
                stride: base_stride * step as isize,
            });
        }
        Ok(ViewGeom { offset, dims })
    }

    /// Element offset of the first element.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Per-axis geometry.
    pub fn dims(&self) -> &[ViewDim] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Logical shape of the view.
    pub fn shape(&self) -> Shape {
        Shape::from(self.dims.iter().map(|d| d.len).collect::<Vec<_>>())
    }

    /// Total logical elements.
    pub fn nelem(&self) -> usize {
        self.dims.iter().map(|d| d.len).product()
    }

    /// True if iterating the view in logical order touches base elements
    /// `offset, offset+1, …, offset+nelem-1` (dense row-major).
    pub fn is_contiguous(&self) -> bool {
        let mut expect = 1isize;
        for d in self.dims.iter().rev() {
            if d.len == 0 {
                return true; // empty views are trivially contiguous
            }
            if d.len != 1 && d.stride != expect {
                return false;
            }
            expect *= d.len as isize;
        }
        true
    }

    /// Broadcast this view to `target`, inserting stride-0 axes; the view's
    /// shape must be broadcast-compatible with `target`.
    ///
    /// # Errors
    ///
    /// [`TensorError::BroadcastMismatch`] on incompatible extents.
    pub fn broadcast_to(&self, target: &Shape) -> Result<ViewGeom, TensorError> {
        let my_shape = self.shape();
        let rank = target.rank();
        if my_shape.rank() > rank {
            return Err(TensorError::BroadcastMismatch {
                left: my_shape,
                right: target.clone(),
            });
        }
        let pad = rank - my_shape.rank();
        let mut dims = Vec::with_capacity(rank);
        for i in 0..rank {
            let t = target.dim(i);
            if i < pad {
                dims.push(ViewDim { len: t, stride: 0 });
            } else {
                let d = self.dims[i - pad];
                if d.len == t {
                    dims.push(d);
                } else if d.len == 1 {
                    dims.push(ViewDim { len: t, stride: 0 });
                } else {
                    return Err(TensorError::BroadcastMismatch {
                        left: my_shape,
                        right: target.clone(),
                    });
                }
            }
        }
        Ok(ViewGeom {
            offset: self.offset,
            dims,
        })
    }

    /// Inclusive range of base element offsets this view can touch, or
    /// `None` for an empty view.
    pub fn address_range(&self) -> Option<(usize, usize)> {
        if self.nelem() == 0 {
            return None;
        }
        let mut lo = self.offset as isize;
        let mut hi = self.offset as isize;
        for d in &self.dims {
            let span = (d.len as isize - 1) * d.stride;
            if span >= 0 {
                hi += span;
            } else {
                lo += span;
            }
        }
        debug_assert!(lo >= 0, "view addresses must stay in the base");
        Some((lo as usize, hi as usize))
    }

    /// Conservative aliasing check: do the address ranges of the two views
    /// (into the *same* base) intersect?
    pub fn may_overlap(&self, other: &ViewGeom) -> bool {
        match (self.address_range(), other.address_range()) {
            (Some((a0, a1)), Some((b0, b1))) => a0 <= b1 && b0 <= a1,
            _ => false,
        }
    }

    /// True when both views address exactly the same elements in the same
    /// order (element-wise in-place updates are then safe).
    pub fn same_layout(&self, other: &ViewGeom) -> bool {
        self == other
    }

    /// Iterator over base element offsets in logical row-major order.
    pub fn offsets(&self) -> Offsets<'_> {
        Offsets::new(self)
    }

    /// Splits the view along axis 0 into `[0, mid)` and `[mid, len)` parts.
    /// Used by the parallel engine to partition work.
    ///
    /// # Panics
    ///
    /// Panics if the view is rank-0 or `mid > dims[0].len`.
    pub fn split_axis0(&self, mid: usize) -> (ViewGeom, ViewGeom) {
        assert!(self.rank() > 0, "cannot split a scalar view");
        assert!(mid <= self.dims[0].len, "split point out of range");
        let mut left = self.clone();
        let mut right = self.clone();
        left.dims[0].len = mid;
        right.dims[0].len = self.dims[0].len - mid;
        let delta = mid as isize * self.dims[0].stride;
        right.offset = (right.offset as isize + delta) as usize;
        (left, right)
    }
}

impl fmt::Display for ViewGeom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<off={} dims=[", self.offset)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}s{}", d.len, d.stride)?;
        }
        write!(f, "]>")
    }
}

/// Iterator over the base offsets of a [`ViewGeom`] in logical order.
#[derive(Debug, Clone)]
pub struct Offsets<'a> {
    view: &'a ViewGeom,
    index: Vec<usize>,
    current: isize,
    remaining: usize,
}

impl<'a> Offsets<'a> {
    fn new(view: &'a ViewGeom) -> Offsets<'a> {
        Offsets {
            view,
            index: vec![0; view.rank()],
            current: view.offset as isize,
            remaining: view.nelem(),
        }
    }
}

impl Iterator for Offsets<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.current as usize;
        self.remaining -= 1;
        // Odometer increment from the innermost axis.
        for axis in (0..self.view.rank()).rev() {
            let d = self.view.dims[axis];
            self.index[axis] += 1;
            self.current += d.stride;
            if self.index[axis] < d.len {
                break;
            }
            self.index[axis] = 0;
            self.current -= d.len as isize * d.stride;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Offsets<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_resolve_matches_python() {
        // list(range(10))[0:10:1]
        assert_eq!(
            Slice::new(Some(0), Some(10), 1).resolve(10).unwrap(),
            (0, 10, 1)
        );
        // [2:8:3] -> 2,5 -> len 2
        assert_eq!(
            Slice::new(Some(2), Some(8), 3).resolve(10).unwrap(),
            (2, 2, 3)
        );
        // [::-1] on len 4 -> 3,2,1,0
        assert_eq!(Slice::new(None, None, -1).resolve(4).unwrap(), (3, 4, -1));
        // [-3:] on len 10 -> 7,8,9
        assert_eq!(
            Slice::new(Some(-3), None, 1).resolve(10).unwrap(),
            (7, 3, 1)
        );
        // [5:2] empty
        assert_eq!(Slice::new(Some(5), Some(2), 1).resolve(10).unwrap().1, 0);
        // [8:1:-2] -> 8,6,4,2 -> len 4
        assert_eq!(
            Slice::new(Some(8), Some(1), -2).resolve(10).unwrap(),
            (8, 4, -2)
        );
        // Out-of-range clamping: [0:100] on len 3
        assert_eq!(
            Slice::new(Some(0), Some(100), 1).resolve(3).unwrap(),
            (0, 3, 1)
        );
        // Negative beyond start clamps to 0.
        assert_eq!(
            Slice::new(Some(-100), None, 1).resolve(3).unwrap(),
            (0, 3, 1)
        );
    }

    #[test]
    fn slice_zero_step_errors() {
        assert!(Slice::new(None, None, 0).resolve(5).is_err());
    }

    #[test]
    fn slice_display() {
        assert_eq!(Slice::range(0, 10).to_string(), "0:10:1");
        assert_eq!(Slice::full().to_string(), "::1");
        assert_eq!(Slice::new(None, Some(3), -1).to_string(), ":3:-1");
    }

    #[test]
    fn contiguous_geometry() {
        let v = ViewGeom::contiguous(&Shape::from([2, 3]));
        assert_eq!(v.offset(), 0);
        assert_eq!(v.nelem(), 6);
        assert!(v.is_contiguous());
        assert_eq!(v.offsets().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn sliced_geometry() {
        let base = Shape::from([4, 4]);
        // rows 1..3, cols 0..4:2 -> offsets rows {4..8,8..12} cols {0,2}
        let v =
            ViewGeom::from_slices(&base, &[Slice::range(1, 3), Slice::new(None, None, 2)]).unwrap();
        assert_eq!(v.shape(), Shape::from([2, 2]));
        assert!(!v.is_contiguous());
        assert_eq!(v.offsets().collect::<Vec<_>>(), vec![4, 6, 8, 10]);
    }

    #[test]
    fn reversed_geometry() {
        let base = Shape::vector(5);
        let v = ViewGeom::from_slices(&base, &[Slice::new(None, None, -1)]).unwrap();
        assert_eq!(v.offsets().collect::<Vec<_>>(), vec![4, 3, 2, 1, 0]);
        assert_eq!(v.address_range(), Some((0, 4)));
    }

    #[test]
    fn scalar_view() {
        let v = ViewGeom::scalar_at(7);
        assert_eq!(v.nelem(), 1);
        assert_eq!(v.offsets().collect::<Vec<_>>(), vec![7]);
        assert!(v.is_contiguous());
    }

    #[test]
    fn broadcast_inserts_zero_strides() {
        let base = Shape::vector(3);
        let v = ViewGeom::contiguous(&base);
        let b = v.broadcast_to(&Shape::from([2, 3])).unwrap();
        assert_eq!(b.shape(), Shape::from([2, 3]));
        assert_eq!(b.offsets().collect::<Vec<_>>(), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn broadcast_incompatible_errors() {
        let v = ViewGeom::contiguous(&Shape::vector(3));
        assert!(v.broadcast_to(&Shape::vector(4)).is_err());
    }

    #[test]
    fn overlap_detection() {
        let base = Shape::vector(10);
        let a = ViewGeom::from_slices(&base, &[Slice::range(0, 5)]).unwrap();
        let b = ViewGeom::from_slices(&base, &[Slice::range(5, 10)]).unwrap();
        let c = ViewGeom::from_slices(&base, &[Slice::range(4, 6)]).unwrap();
        assert!(!a.may_overlap(&b));
        assert!(a.may_overlap(&c));
        assert!(b.may_overlap(&c));
        assert!(a.may_overlap(&a));
    }

    #[test]
    fn empty_views_never_overlap() {
        let base = Shape::vector(10);
        let e = ViewGeom::from_slices(&base, &[Slice::range(3, 3)]).unwrap();
        let a = ViewGeom::contiguous(&base);
        assert_eq!(e.nelem(), 0);
        assert!(!e.may_overlap(&a));
    }

    #[test]
    fn split_axis0_partitions() {
        let v = ViewGeom::contiguous(&Shape::from([4, 3]));
        let (l, r) = v.split_axis0(1);
        assert_eq!(l.shape(), Shape::from([1, 3]));
        assert_eq!(r.shape(), Shape::from([3, 3]));
        let mut all: Vec<_> = l.offsets().collect();
        all.extend(r.offsets());
        assert_eq!(all, v.offsets().collect::<Vec<_>>());
    }

    #[test]
    fn too_many_slices_errors() {
        let base = Shape::vector(4);
        let r = ViewGeom::from_slices(&base, &[Slice::full(), Slice::full()]);
        assert!(r.is_err());
    }

    #[test]
    fn offsets_len_matches_nelem() {
        let base = Shape::from([3, 5]);
        let v =
            ViewGeom::from_slices(&base, &[Slice::new(None, None, 2), Slice::range(1, 4)]).unwrap();
        assert_eq!(v.offsets().len(), v.nelem());
    }
}
