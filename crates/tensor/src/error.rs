//! Error type shared by the tensor substrate.

use crate::dtype::DType;
use crate::shape::Shape;
use std::fmt;

/// Errors produced by shape, view and buffer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two shapes could not be broadcast together.
    BroadcastMismatch {
        /// Left-hand shape.
        left: Shape,
        /// Right-hand shape.
        right: Shape,
    },
    /// A slice or view construction was malformed.
    InvalidSlice {
        /// Human-readable reason.
        reason: String,
    },
    /// An operation received a buffer or scalar of the wrong dtype.
    DTypeMismatch {
        /// The dtype the operation required.
        expected: DType,
        /// The dtype it received.
        found: DType,
    },
    /// An operation received a tensor of the wrong shape.
    ShapeMismatch {
        /// The shape the operation required.
        expected: Shape,
        /// The shape it received.
        found: Shape,
    },
    /// An index or view escapes the underlying buffer.
    OutOfBounds {
        /// Offending element offset.
        offset: usize,
        /// Buffer length in elements.
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::BroadcastMismatch { left, right } => {
                write!(f, "cannot broadcast shapes {left} and {right}")
            }
            TensorError::InvalidSlice { reason } => write!(f, "invalid slice: {reason}"),
            TensorError::DTypeMismatch { expected, found } => {
                write!(f, "dtype mismatch: expected {expected}, found {found}")
            }
            TensorError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            TensorError::OutOfBounds { offset, len } => {
                write!(
                    f,
                    "element offset {offset} out of bounds for buffer of length {len}"
                )
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = TensorError::DTypeMismatch {
            expected: DType::Float64,
            found: DType::Int32,
        };
        assert_eq!(e.to_string(), "dtype mismatch: expected f64, found i32");
        let e = TensorError::OutOfBounds {
            offset: 12,
            len: 10,
        };
        assert!(e.to_string().contains("12"));
    }
}
