//! Strided element-wise and reduction kernels.
//!
//! These are the loops a Bohrium backend would JIT-compile: every byte-code
//! executed by the VM bottoms out in one of these functions. They operate on
//! typed slices plus [`ViewGeom`] geometry so the same code path serves
//! contiguous arrays, strided slices, reversed views and broadcast (stride-0)
//! operands.
//!
//! # Aliasing
//!
//! The `*_inplace` variants operate on a single buffer that is both read and
//! written (`a0 = a0 + 1` in the listings). They are correct when, for every
//! input view `v` that overlaps the output view, iterating logically never
//! reads an element after the iteration wrote it. The VM guarantees this by
//! only using the in-place path when each overlapping input view
//! [`ViewGeom::same_layout`]s the output (or provably writes behind all
//! reads); otherwise it materialises inputs into temporaries first.

use crate::dtype::Element;
use crate::view::ViewGeom;

/// A data-parallel range executor: the substrate the parallel kernel
/// variants (`par_map1`, `par_map2`, …) shard their element ranges over.
///
/// `bh-vm`'s persistent worker pool implements this trait; [`InlineExec`]
/// is the trivial serial implementation. Keeping the trait here (below the
/// VM in the crate stack) lets the kernels stay executor-agnostic.
pub trait RangeExecutor: Sync {
    /// Number of workers that can run shards concurrently (including the
    /// calling thread). `1` means every shard runs inline on the caller.
    fn threads(&self) -> usize;

    /// Partition `[0, n)` into contiguous shards whose boundaries are
    /// multiples of `grain` (so a grain-sized block is never split across
    /// shards) and run `task(lo, hi)` once per shard, possibly
    /// concurrently. Blocks until every shard has completed. Returns the
    /// number of shards executed.
    ///
    /// # Safety contract for callers
    ///
    /// `task` may be invoked from multiple threads at once, but always
    /// with pairwise-disjoint `[lo, hi)` ranges covering `[0, n)` exactly.
    fn run_ranges(&self, n: usize, grain: usize, task: &(dyn Fn(usize, usize) + Sync)) -> usize;
}

/// The serial [`RangeExecutor`]: one shard, run inline on the caller.
#[derive(Debug, Clone, Copy, Default)]
pub struct InlineExec;

impl RangeExecutor for InlineExec {
    fn threads(&self) -> usize {
        1
    }

    fn run_ranges(&self, n: usize, _grain: usize, task: &(dyn Fn(usize, usize) + Sync)) -> usize {
        if n == 0 {
            return 0;
        }
        task(0, n);
        1
    }
}

/// Split `[0, n)` into at most `shards` contiguous ranges whose interior
/// boundaries are multiples of `grain` (the fused engine's cache-block
/// size), balanced to within one grain of each other. The last range
/// absorbs the tail. Returns an empty vector when `n == 0`.
pub fn shard_ranges(n: usize, shards: usize, grain: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let grain = grain.max(1);
    let blocks = n.div_ceil(grain);
    let shards = shards.clamp(1, blocks);
    let per = blocks / shards;
    let extra = blocks % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo_block = 0usize;
    for s in 0..shards {
        let take = per + usize::from(s < extra);
        let hi_block = lo_block + take;
        out.push(((lo_block * grain).min(n), (hi_block * grain).min(n)));
        lo_block = hi_block;
    }
    out
}

/// Raw pointer that may cross threads. Safety rests on the caller handing
/// each thread a disjoint element range (the [`RangeExecutor`] contract).
struct SyncPtr<T>(*mut T);
// SAFETY: every user hands each thread a disjoint element range (the
// [`RangeExecutor`] contract documented above), so moving the pointer to
// another thread cannot create an aliased write.
unsafe impl<T> Send for SyncPtr<T> {}
// SAFETY: as above — concurrent shards never touch the same element.
unsafe impl<T> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare `*mut T`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// True when the aliased-input pair `(iv, ov)` over one buffer can be
/// sharded: either both views address identical elements (reads and
/// writes of a shard coincide) or their address ranges are disjoint (no
/// shard ever reads what another writes).
fn alias_shardable(iv: &ViewGeom, ov: &ViewGeom) -> bool {
    iv.same_layout(ov) || !iv.may_overlap(ov)
}

/// Shardable out-of-place pair: both views dense row-major (any offsets).
fn distinct_shardable(ov: &ViewGeom, iv: &ViewGeom) -> bool {
    ov.is_contiguous() && iv.is_contiguous()
}

/// Parallel [`fill`]: shards a contiguous output view over `exec`.
///
/// All `par_*` variants return `Some(shards)` when they handled the
/// operation (sharding it `shards` ways) and `None` when the geometry is
/// ineligible — the caller must then fall back to the serial kernel.
pub fn par_fill<T: Element>(
    exec: &dyn RangeExecutor,
    out: &mut [T],
    ov: &ViewGeom,
    value: T,
) -> Option<usize> {
    if !ov.is_contiguous() {
        return None;
    }
    let (start, n) = (ov.offset(), ov.nelem());
    assert!(start + n <= out.len(), "view escapes buffer");
    let ptr = SyncPtr(out.as_mut_ptr());
    let shards = exec.run_ranges(n, 1, &|lo, hi| {
        // SAFETY: bounds asserted; shards are disjoint subranges.
        let shard = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(start + lo), hi - lo) };
        shard.fill(value);
    });
    Some(shards)
}

/// Parallel [`map1`]: shards two contiguous views (distinct buffers) over
/// `exec`. Returns `false` when either view is not contiguous.
pub fn par_map1<I: Element, O: Element>(
    exec: &dyn RangeExecutor,
    out: &mut [O],
    ov: &ViewGeom,
    input: &[I],
    iv: &ViewGeom,
    f: impl Fn(I) -> O + Sync,
) -> Option<usize> {
    if !distinct_shardable(ov, iv) {
        return None;
    }
    debug_assert_eq!(ov.nelem(), iv.nelem(), "par_map1 requires equal extents");
    let n = ov.nelem();
    let (ob, ib) = (ov.offset(), iv.offset());
    assert!(
        ob + n <= out.len() && ib + n <= input.len(),
        "view escapes buffer"
    );
    let optr = SyncPtr(out.as_mut_ptr());
    let shards = exec.run_ranges(n, 1, &|lo, hi| {
        for k in lo..hi {
            // SAFETY: bounds asserted; `out` and `input` are distinct
            // slices; shards write disjoint output ranges.
            unsafe { *optr.get().add(ob + k) = f(*input.get_unchecked(ib + k)) };
        }
    });
    Some(shards)
}

/// Parallel [`map1_inplace`]: shards a single-buffer map over `exec`.
/// Returns `false` unless both views are contiguous and the input either
/// shares the output's exact layout or cannot overlap it.
pub fn par_map1_inplace<T: Element>(
    exec: &dyn RangeExecutor,
    buf: &mut [T],
    ov: &ViewGeom,
    iv: &ViewGeom,
    f: impl Fn(T) -> T + Sync,
) -> Option<usize> {
    if !distinct_shardable(ov, iv) || !alias_shardable(iv, ov) {
        return None;
    }
    let n = ov.nelem();
    let (ob, ib) = (ov.offset(), iv.offset());
    assert!(
        ob + n <= buf.len() && ib + n <= buf.len(),
        "view escapes buffer"
    );
    let ptr = SyncPtr(buf.as_mut_ptr());
    let shards = exec.run_ranges(n, 1, &|lo, hi| {
        for k in lo..hi {
            // SAFETY: bounds asserted; per-element read precedes the
            // write; `alias_shardable` rules out cross-shard hazards.
            unsafe {
                let v = *ptr.get().add(ib + k);
                *ptr.get().add(ob + k) = f(v);
            }
        }
    });
    Some(shards)
}

/// Parallel [`map2`]: shards three contiguous views (distinct buffers)
/// over `exec`. Returns `false` when any view is not contiguous.
#[allow(clippy::too_many_arguments)]
pub fn par_map2<I: Element, O: Element>(
    exec: &dyn RangeExecutor,
    out: &mut [O],
    ov: &ViewGeom,
    a: &[I],
    av: &ViewGeom,
    b: &[I],
    bv: &ViewGeom,
    f: impl Fn(I, I) -> O + Sync,
) -> Option<usize> {
    if !(ov.is_contiguous() && av.is_contiguous() && bv.is_contiguous()) {
        return None;
    }
    let n = ov.nelem();
    let (ob, ab, bb) = (ov.offset(), av.offset(), bv.offset());
    assert!(
        ob + n <= out.len() && ab + n <= a.len() && bb + n <= b.len(),
        "view escapes buffer"
    );
    let optr = SyncPtr(out.as_mut_ptr());
    let shards = exec.run_ranges(n, 1, &|lo, hi| {
        for k in lo..hi {
            // SAFETY: bounds asserted; buffers are distinct slices.
            unsafe {
                *optr.get().add(ob + k) = f(*a.get_unchecked(ab + k), *b.get_unchecked(bb + k));
            }
        }
    });
    Some(shards)
}

/// Parallel [`map2_inplace`]: shards a single-buffer binary map over
/// `exec`. Returns `false` unless every view is contiguous and each input
/// either shares the output's layout or cannot overlap it.
pub fn par_map2_inplace<T: Element>(
    exec: &dyn RangeExecutor,
    buf: &mut [T],
    ov: &ViewGeom,
    av: &ViewGeom,
    bv: &ViewGeom,
    f: impl Fn(T, T) -> T + Sync,
) -> Option<usize> {
    let shardable = ov.is_contiguous()
        && av.is_contiguous()
        && bv.is_contiguous()
        && alias_shardable(av, ov)
        && alias_shardable(bv, ov);
    if !shardable {
        return None;
    }
    let n = ov.nelem();
    let (ob, ab, bb) = (ov.offset(), av.offset(), bv.offset());
    assert!(
        ob + n <= buf.len() && ab + n <= buf.len() && bb + n <= buf.len(),
        "view escapes buffer"
    );
    let ptr = SyncPtr(buf.as_mut_ptr());
    let shards = exec.run_ranges(n, 1, &|lo, hi| {
        for k in lo..hi {
            // SAFETY: bounds asserted; both reads precede the write;
            // `alias_shardable` rules out cross-shard hazards.
            unsafe {
                let va = *ptr.get().add(ab + k);
                let vb = *ptr.get().add(bb + k);
                *ptr.get().add(ob + k) = f(va, vb);
            }
        }
    });
    Some(shards)
}

/// Parallel [`map2_left_inplace`]: output aliases the first input's
/// buffer, second input lives elsewhere. Returns `false` unless every
/// view is contiguous and the aliased input shares the output's layout or
/// cannot overlap it.
#[allow(clippy::too_many_arguments)]
pub fn par_map2_left_inplace<T: Element>(
    exec: &dyn RangeExecutor,
    buf: &mut [T],
    ov: &ViewGeom,
    av: &ViewGeom,
    other: &[T],
    bv: &ViewGeom,
    f: impl Fn(T, T) -> T + Sync,
) -> Option<usize> {
    let shardable =
        ov.is_contiguous() && av.is_contiguous() && bv.is_contiguous() && alias_shardable(av, ov);
    if !shardable {
        return None;
    }
    let n = ov.nelem();
    let (ob, ab, bb) = (ov.offset(), av.offset(), bv.offset());
    assert!(
        ob + n <= buf.len() && ab + n <= buf.len() && bb + n <= other.len(),
        "view escapes buffer"
    );
    let ptr = SyncPtr(buf.as_mut_ptr());
    let shards = exec.run_ranges(n, 1, &|lo, hi| {
        for k in lo..hi {
            // SAFETY: bounds asserted; reads precede the write; `other`
            // is a distinct slice.
            unsafe {
                let va = *ptr.get().add(ab + k);
                let vb = *other.get_unchecked(bb + k);
                *ptr.get().add(ob + k) = f(va, vb);
            }
        }
    });
    Some(shards)
}

/// Iterate `N` same-shaped views in lock-step, invoking `f` with the base
/// element offsets of each view.
///
/// # Panics
///
/// Panics (debug builds) if the views disagree on shape.
pub fn zip_offsets<const N: usize>(views: [&ViewGeom; N], mut f: impl FnMut([usize; N])) {
    let shape = views[0].shape();
    debug_assert!(
        views.iter().all(|v| v.shape() == shape),
        "zip_offsets requires identical logical shapes"
    );
    let nelem = shape.nelem();
    if nelem == 0 {
        return;
    }
    let rank = shape.rank();
    let mut offs = [0isize; N];
    for (k, v) in views.iter().enumerate() {
        offs[k] = v.offset() as isize;
    }
    if rank == 0 {
        let mut out = [0usize; N];
        for k in 0..N {
            out[k] = offs[k] as usize;
        }
        f(out);
        return;
    }
    let inner_len = shape.dim(rank - 1);
    let mut inner_strides = [0isize; N];
    for (k, v) in views.iter().enumerate() {
        inner_strides[k] = v.dims()[rank - 1].stride;
    }
    let outer_count = nelem.checked_div(inner_len).unwrap_or(0);
    let mut idx = vec![0usize; rank.saturating_sub(1)];
    for _ in 0..outer_count {
        let mut cur = offs;
        for _ in 0..inner_len {
            let mut out = [0usize; N];
            for k in 0..N {
                out[k] = cur[k] as usize;
            }
            f(out);
            for k in 0..N {
                cur[k] += inner_strides[k];
            }
        }
        // Odometer over the outer axes.
        for ax in (0..rank - 1).rev() {
            idx[ax] += 1;
            for (k, v) in views.iter().enumerate() {
                offs[k] += v.dims()[ax].stride;
            }
            if idx[ax] < shape.dim(ax) {
                break;
            }
            idx[ax] = 0;
            for (k, v) in views.iter().enumerate() {
                offs[k] -= shape.dim(ax) as isize * v.dims()[ax].stride;
            }
        }
    }
}

/// Set every element of `out`'s view to `value`.
pub fn fill<T: Element>(out: &mut [T], ov: &ViewGeom, value: T) {
    if ov.is_contiguous() {
        let start = ov.offset();
        let end = start + ov.nelem();
        assert!(end <= out.len(), "view escapes buffer");
        out[start..end].fill(value);
        return;
    }
    let ptr = out.as_mut_ptr();
    let len = out.len();
    zip_offsets([ov], |[o]| {
        assert!(o < len, "view escapes buffer");
        // SAFETY: bounds asserted above; offsets are distinct per logical
        // element or harmlessly rewritten with the same value.
        unsafe { *ptr.add(o) = value };
    });
}

/// `out[i] = f(input[i])` with distinct buffers.
pub fn map1<I: Element, O: Element>(
    out: &mut [O],
    ov: &ViewGeom,
    input: &[I],
    iv: &ViewGeom,
    f: impl Fn(I) -> O,
) {
    let optr = out.as_mut_ptr();
    let (olen, ilen) = (out.len(), input.len());
    zip_offsets([ov, iv], |[o, i]| {
        assert!(o < olen && i < ilen, "view escapes buffer");
        // SAFETY: bounds asserted; `out` and `input` are distinct slices.
        unsafe { *optr.add(o) = f(*input.get_unchecked(i)) };
    });
}

/// `buf[o] = f(buf[i])` within a single buffer.
///
/// See the module-level aliasing contract.
pub fn map1_inplace<T: Element>(buf: &mut [T], ov: &ViewGeom, iv: &ViewGeom, f: impl Fn(T) -> T) {
    let ptr = buf.as_mut_ptr();
    let len = buf.len();
    zip_offsets([ov, iv], |[o, i]| {
        assert!(o < len && i < len, "view escapes buffer");
        // SAFETY: bounds asserted; per-element read happens before the write.
        unsafe {
            let v = *ptr.add(i);
            *ptr.add(o) = f(v);
        }
    });
}

/// `out[i] = f(a[i], b[i])` with three distinct buffers.
pub fn map2<I: Element, O: Element>(
    out: &mut [O],
    ov: &ViewGeom,
    a: &[I],
    av: &ViewGeom,
    b: &[I],
    bv: &ViewGeom,
    f: impl Fn(I, I) -> O,
) {
    let optr = out.as_mut_ptr();
    let (olen, alen, blen) = (out.len(), a.len(), b.len());
    zip_offsets([ov, av, bv], |[o, i, j]| {
        assert!(o < olen && i < alen && j < blen, "view escapes buffer");
        // SAFETY: bounds asserted; buffers are distinct slices.
        unsafe { *optr.add(o) = f(*a.get_unchecked(i), *b.get_unchecked(j)) };
    });
}

/// `buf[o] = f(buf[a], buf[b])` within a single buffer.
///
/// See the module-level aliasing contract.
pub fn map2_inplace<T: Element>(
    buf: &mut [T],
    ov: &ViewGeom,
    av: &ViewGeom,
    bv: &ViewGeom,
    f: impl Fn(T, T) -> T,
) {
    let ptr = buf.as_mut_ptr();
    let len = buf.len();
    zip_offsets([ov, av, bv], |[o, i, j]| {
        assert!(o < len && i < len && j < len, "view escapes buffer");
        // SAFETY: bounds asserted; both reads happen before the write.
        unsafe {
            let va = *ptr.add(i);
            let vb = *ptr.add(j);
            *ptr.add(o) = f(va, vb);
        }
    });
}

/// `buf[o] = f(buf[a], other[b])`: output aliases the first input's buffer,
/// second input lives elsewhere.
pub fn map2_left_inplace<T: Element>(
    buf: &mut [T],
    ov: &ViewGeom,
    av: &ViewGeom,
    other: &[T],
    bv: &ViewGeom,
    f: impl Fn(T, T) -> T,
) {
    let ptr = buf.as_mut_ptr();
    let (len, olen) = (buf.len(), other.len());
    zip_offsets([ov, av, bv], |[o, i, j]| {
        assert!(o < len && i < len && j < olen, "view escapes buffer");
        // SAFETY: bounds asserted; reads precede the write; `other` is a
        // distinct slice.
        unsafe {
            let va = *ptr.add(i);
            let vb = *other.get_unchecked(j);
            *ptr.add(o) = f(va, vb);
        }
    });
}

/// Fold every element of the view with `f`, starting from `init`.
pub fn reduce_full<T: Element, A: Copy>(
    input: &[T],
    iv: &ViewGeom,
    init: A,
    f: impl Fn(A, T) -> A,
) -> A {
    let mut acc = init;
    let len = input.len();
    zip_offsets([iv], |[i]| {
        assert!(i < len, "view escapes buffer");
        acc = f(acc, input[i]);
    });
    acc
}

/// Reduce `input` along `axis` into `out`.
///
/// `out`'s view must have the input's shape with `axis` removed.
///
/// # Panics
///
/// Panics if `axis >= rank` or the output shape does not match.
pub fn reduce_axis<T: Element>(
    out: &mut [T],
    ov: &ViewGeom,
    input: &[T],
    iv: &ViewGeom,
    axis: usize,
    init: T,
    f: impl Fn(T, T) -> T,
) {
    assert!(axis < iv.rank(), "reduction axis out of range");
    let axis_len = iv.dims()[axis].len;
    let axis_stride = iv.dims()[axis].stride;
    let reduced = remove_axis(iv, axis);
    assert_eq!(
        ov.shape(),
        reduced.shape(),
        "output shape must drop the reduced axis"
    );
    let optr = out.as_mut_ptr();
    let (olen, ilen) = (out.len(), input.len());
    zip_offsets([ov, &reduced], |[o, base]| {
        let mut acc = init;
        let mut off = base as isize;
        for _ in 0..axis_len {
            let i = off as usize;
            assert!(i < ilen, "view escapes buffer");
            acc = f(acc, input[i]);
            off += axis_stride;
        }
        assert!(o < olen, "view escapes buffer");
        // SAFETY: bounds asserted; out is a distinct slice from input.
        unsafe { *optr.add(o) = acc };
    });
}

/// Prefix-scan `input` along `axis` into `out` (same shape).
///
/// `out[.., k, ..] = f(input[.., 0, ..], …, input[.., k, ..])`, matching
/// `BH_ADD_ACCUMULATE` / NumPy `cumsum` semantics.
///
/// # Panics
///
/// Panics if shapes disagree or `axis` is out of range.
pub fn accumulate_axis<T: Element>(
    out: &mut [T],
    ov: &ViewGeom,
    input: &[T],
    iv: &ViewGeom,
    axis: usize,
    f: impl Fn(T, T) -> T,
) {
    assert!(axis < iv.rank(), "accumulate axis out of range");
    assert_eq!(ov.shape(), iv.shape(), "accumulate preserves shape");
    let axis_len = iv.dims()[axis].len;
    let in_stride = iv.dims()[axis].stride;
    let out_stride = ov.dims()[axis].stride;
    let in_lanes = remove_axis(iv, axis);
    let out_lanes = remove_axis(ov, axis);
    let optr = out.as_mut_ptr();
    let (olen, ilen) = (out.len(), input.len());
    zip_offsets([&out_lanes, &in_lanes], |[obase, ibase]| {
        let mut acc: Option<T> = None;
        let mut ioff = ibase as isize;
        let mut ooff = obase as isize;
        for _ in 0..axis_len {
            let i = ioff as usize;
            let o = ooff as usize;
            assert!(i < ilen && o < olen, "view escapes buffer");
            let v = input[i];
            let next = match acc {
                None => v,
                Some(a) => f(a, v),
            };
            // SAFETY: bounds asserted; lanes write disjoint elements.
            unsafe { *optr.add(o) = next };
            acc = Some(next);
            ioff += in_stride;
            ooff += out_stride;
        }
    });
}

/// Canonical partial-block length (elements) for parallel reductions and
/// scans.
///
/// Lanes longer than one block are folded as a sequence of independent
/// block partials — each block left-folded from the identity in index
/// order — combined **left-to-right in block order**. The block length is
/// a fixed constant (never derived from thread count, executor or engine
/// configuration), so the combine tree is identical for every thread
/// count: results are bit-for-bit reproducible from 1 to N workers.
/// Lanes of at most one block degenerate to the plain serial left fold,
/// so short reductions keep their historical bit patterns.
pub const REDUCE_BLOCK: usize = 4096;

/// Deterministic blocked fold of one lane: the `len` elements at
/// `base + k * stride` for `k ∈ [0, len)`.
///
/// Splits the lane into [`REDUCE_BLOCK`]-sized blocks, left-folds each
/// block from `init`, and combines the block partials left-to-right in
/// block order starting from `init` — see [`REDUCE_BLOCK`] for why this
/// makes the result executor-independent. Block partials may be computed
/// concurrently on `exec`. Returns `(value, shards)` where `shards` is
/// the number of ranges dispatched (1 when the lane ran inline).
///
/// # Panics
///
/// Panics when any addressed element escapes `input`.
pub fn par_reduce_lane<T: Element>(
    exec: &dyn RangeExecutor,
    input: &[T],
    base: usize,
    len: usize,
    stride: isize,
    init: T,
    f: impl Fn(T, T) -> T + Sync,
) -> (T, usize) {
    if len == 0 {
        return (init, 0);
    }
    let nblocks = len.div_ceil(REDUCE_BLOCK);
    let mut partials = vec![init; nblocks];
    let pptr = SyncPtr(partials.as_mut_ptr());
    let ilen = input.len();
    let shards = exec.run_ranges(len, REDUCE_BLOCK, &|lo, hi| {
        // `lo` is a multiple of REDUCE_BLOCK (grain contract), so the
        // blocks inside [lo, hi) are exactly the canonical blocks
        // lo/REDUCE_BLOCK .. — independent of how ranges were sharded.
        let mut blo = lo;
        while blo < hi {
            let bhi = (blo + REDUCE_BLOCK).min(hi);
            let mut acc = init;
            let mut off = base as isize + blo as isize * stride;
            for _ in blo..bhi {
                let i = off as usize;
                assert!(i < ilen, "view escapes buffer");
                acc = f(acc, input[i]);
                off += stride;
            }
            // SAFETY: block indices are unique across disjoint ranges.
            unsafe { *pptr.get().add(blo / REDUCE_BLOCK) = acc };
            blo = bhi;
        }
    });
    let mut acc = init;
    for p in partials {
        acc = f(acc, p);
    }
    (acc, shards)
}

/// Deterministic blocked prefix scan of one lane.
///
/// Canonical semantics, identical on every executor: split the lane into
/// [`REDUCE_BLOCK`]-sized blocks; within block `b` compute the running
/// left fold `w_k` of the block's elements; block totals (the last `w` of
/// each block) are folded left-to-right in block order into an exclusive
/// block prefix `p_b`; the output is `w_k` for block 0 and `f(p_b, w_k)`
/// after. A single-block lane is the plain serial running fold. Returns
/// the number of ranges dispatched.
///
/// # Panics
///
/// Panics when any addressed element escapes its buffer.
#[allow(clippy::too_many_arguments)]
pub fn par_scan_lane<T: Element>(
    exec: &dyn RangeExecutor,
    out: &mut [T],
    obase: usize,
    ostride: isize,
    input: &[T],
    ibase: usize,
    istride: isize,
    len: usize,
    f: impl Fn(T, T) -> T + Sync,
) -> usize {
    if len == 0 {
        return 0;
    }
    let nblocks = len.div_ceil(REDUCE_BLOCK);
    let (olen, ilen) = (out.len(), input.len());
    if nblocks == 1 || exec.threads() <= 1 {
        // Serial single pass produces the canonical result directly: the
        // in-block running fold restarts at each block boundary and is
        // combined with the running block prefix.
        let mut prefix: Option<T> = None;
        let mut ioff = ibase as isize;
        let mut ooff = obase as isize;
        let mut k = 0usize;
        while k < len {
            let bhi = (k + REDUCE_BLOCK).min(len);
            let mut w: Option<T> = None;
            for _ in k..bhi {
                let i = ioff as usize;
                let o = ooff as usize;
                assert!(i < ilen && o < olen, "view escapes buffer");
                let v = input[i];
                let next = match w {
                    None => v,
                    Some(a) => f(a, v),
                };
                out[o] = match prefix {
                    None => next,
                    Some(p) => f(p, next),
                };
                w = Some(next);
                ioff += istride;
                ooff += ostride;
            }
            let total = w.expect("non-empty block");
            prefix = Some(match prefix {
                None => total,
                Some(p) => f(p, total),
            });
            k = bhi;
        }
        return 1;
    }
    // Phase A: per-block totals, in parallel.
    let mut totals = vec![None::<T>; nblocks];
    let tptr = SyncPtr(totals.as_mut_ptr());
    let a_shards = exec.run_ranges(len, REDUCE_BLOCK, &|lo, hi| {
        let mut blo = lo;
        while blo < hi {
            let bhi = (blo + REDUCE_BLOCK).min(hi);
            let mut w: Option<T> = None;
            let mut off = ibase as isize + blo as isize * istride;
            for _ in blo..bhi {
                let i = off as usize;
                assert!(i < ilen, "view escapes buffer");
                let v = input[i];
                w = Some(match w {
                    None => v,
                    Some(a) => f(a, v),
                });
                off += istride;
            }
            // SAFETY: block indices are unique across disjoint ranges.
            unsafe { *tptr.get().add(blo / REDUCE_BLOCK) = w };
            blo = bhi;
        }
    });
    // Phase B: exclusive block prefixes, serial and in block order — the
    // fixed combine tree that makes the scan executor-independent.
    let mut prefixes = vec![None::<T>; nblocks];
    let mut acc: Option<T> = None;
    for b in 0..nblocks {
        prefixes[b] = acc;
        let t = totals[b].expect("non-empty block");
        acc = Some(match acc {
            None => t,
            Some(p) => f(p, t),
        });
    }
    // Phase C: re-fold each block and write `f(prefix, w_k)`.
    let optr = SyncPtr(out.as_mut_ptr());
    let c_shards = exec.run_ranges(len, REDUCE_BLOCK, &|lo, hi| {
        let mut blo = lo;
        while blo < hi {
            let bhi = (blo + REDUCE_BLOCK).min(hi);
            let prefix = prefixes[blo / REDUCE_BLOCK];
            let mut w: Option<T> = None;
            let mut ioff = ibase as isize + blo as isize * istride;
            let mut ooff = obase as isize + blo as isize * ostride;
            for _ in blo..bhi {
                let i = ioff as usize;
                let o = ooff as usize;
                assert!(i < ilen && o < olen, "view escapes buffer");
                let v = input[i];
                let next = match w {
                    None => v,
                    Some(a) => f(a, v),
                };
                let val = match prefix {
                    None => next,
                    Some(p) => f(p, next),
                };
                // SAFETY: lanes/blocks write pairwise-disjoint offsets.
                unsafe { *optr.get().add(o) = val };
                w = Some(next);
                ioff += istride;
                ooff += ostride;
            }
            blo = bhi;
        }
    });
    a_shards + c_shards
}

/// Parallel [`reduce_axis`]: reduce `input` along `axis` into `out`,
/// sharded over `exec`, with executor-independent results.
///
/// Multi-lane reductions (output has ≥ 2 elements) shard whole lanes —
/// each lane is the plain serial left fold, so results match the serial
/// kernel exactly. A single-lane reduction (e.g. a full 1-D sum) shards
/// *within* the lane via [`par_reduce_lane`]'s canonical blocked combine.
/// Returns the number of ranges dispatched.
///
/// # Panics
///
/// Panics if `axis >= rank`, the output shape does not match, or a view
/// escapes its buffer.
#[allow(clippy::too_many_arguments)]
pub fn par_reduce_axis<T: Element>(
    exec: &dyn RangeExecutor,
    out: &mut [T],
    ov: &ViewGeom,
    input: &[T],
    iv: &ViewGeom,
    axis: usize,
    init: T,
    f: impl Fn(T, T) -> T + Sync,
) -> usize {
    assert!(axis < iv.rank(), "reduction axis out of range");
    let axis_len = iv.dims()[axis].len;
    let axis_stride = iv.dims()[axis].stride;
    let reduced = remove_axis(iv, axis);
    assert_eq!(
        ov.shape(),
        reduced.shape(),
        "output shape must drop the reduced axis"
    );
    let mut lanes: Vec<(usize, usize)> = Vec::with_capacity(reduced.nelem());
    zip_offsets([ov, &reduced], |[o, base]| lanes.push((o, base)));
    let (olen, ilen) = (out.len(), input.len());
    if let [(o, base)] = lanes[..] {
        let (value, shards) = par_reduce_lane(exec, input, base, axis_len, axis_stride, init, f);
        assert!(o < olen, "view escapes buffer");
        out[o] = value;
        return shards;
    }
    let optr = SyncPtr(out.as_mut_ptr());
    exec.run_ranges(lanes.len(), 1, &|lo, hi| {
        for &(o, base) in &lanes[lo..hi] {
            let mut acc = init;
            let mut off = base as isize;
            for _ in 0..axis_len {
                let i = off as usize;
                assert!(i < ilen, "view escapes buffer");
                acc = f(acc, input[i]);
                off += axis_stride;
            }
            assert!(o < olen, "view escapes buffer");
            // SAFETY: output offsets are unique per lane; lanes are
            // partitioned disjointly across ranges.
            unsafe { *optr.get().add(o) = acc };
        }
    })
}

/// Parallel [`accumulate_axis`]: prefix-scan `input` along `axis` into
/// `out`, sharded over `exec`, with executor-independent results.
///
/// Multi-lane scans shard whole lanes (each lane the plain serial running
/// fold, matching the serial kernel exactly); a single-lane scan uses
/// [`par_scan_lane`]'s canonical blocked order. Returns the number of
/// ranges dispatched.
///
/// # Panics
///
/// Panics if shapes disagree, `axis` is out of range, or a view escapes
/// its buffer.
pub fn par_scan_axis<T: Element>(
    exec: &dyn RangeExecutor,
    out: &mut [T],
    ov: &ViewGeom,
    input: &[T],
    iv: &ViewGeom,
    axis: usize,
    f: impl Fn(T, T) -> T + Sync,
) -> usize {
    assert!(axis < iv.rank(), "accumulate axis out of range");
    assert_eq!(ov.shape(), iv.shape(), "accumulate preserves shape");
    let axis_len = iv.dims()[axis].len;
    let in_stride = iv.dims()[axis].stride;
    let out_stride = ov.dims()[axis].stride;
    let in_lanes = remove_axis(iv, axis);
    let out_lanes = remove_axis(ov, axis);
    let mut lanes: Vec<(usize, usize)> = Vec::with_capacity(in_lanes.nelem());
    zip_offsets([&out_lanes, &in_lanes], |[o, i]| lanes.push((o, i)));
    if let [(obase, ibase)] = lanes[..] {
        return par_scan_lane(
            exec, out, obase, out_stride, input, ibase, in_stride, axis_len, f,
        );
    }
    let (olen, ilen) = (out.len(), input.len());
    let optr = SyncPtr(out.as_mut_ptr());
    exec.run_ranges(lanes.len(), 1, &|lo, hi| {
        for &(obase, ibase) in &lanes[lo..hi] {
            let mut acc: Option<T> = None;
            let mut ioff = ibase as isize;
            let mut ooff = obase as isize;
            for _ in 0..axis_len {
                let i = ioff as usize;
                let o = ooff as usize;
                assert!(i < ilen && o < olen, "view escapes buffer");
                let v = input[i];
                let next = match acc {
                    None => v,
                    Some(a) => f(a, v),
                };
                // SAFETY: lanes write pairwise-disjoint elements and are
                // partitioned disjointly across ranges.
                unsafe { *optr.get().add(o) = next };
                acc = Some(next);
                ioff += in_stride;
                ooff += out_stride;
            }
        }
    })
}

/// Gather all view elements into a fresh contiguous vector (logical order).
pub fn materialize<T: Element>(input: &[T], iv: &ViewGeom) -> Vec<T> {
    let mut out = Vec::with_capacity(iv.nelem());
    let len = input.len();
    zip_offsets([iv], |[i]| {
        assert!(i < len, "view escapes buffer");
        out.push(input[i]);
    });
    out
}

/// View with `axis` deleted, keeping offset and the other strides: the
/// geometry of the "lanes" perpendicular to `axis`.
fn remove_axis(v: &ViewGeom, axis: usize) -> ViewGeom {
    let mut dims = v.dims().to_vec();
    dims.remove(axis);
    ViewGeom::from_parts(v.offset(), dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use crate::view::Slice;

    fn vg(shape: &[usize]) -> ViewGeom {
        ViewGeom::contiguous(&Shape::from(shape))
    }

    #[test]
    fn fill_contiguous_and_strided() {
        let mut buf = vec![0.0f64; 10];
        fill(&mut buf, &vg(&[10]), 1.0);
        assert!(buf.iter().all(|&x| x == 1.0));
        let stride2 =
            ViewGeom::from_slices(&Shape::vector(10), &[Slice::new(None, None, 2)]).unwrap();
        fill(&mut buf, &stride2, 5.0);
        assert_eq!(buf, vec![5.0, 1.0, 5.0, 1.0, 5.0, 1.0, 5.0, 1.0, 5.0, 1.0]);
    }

    #[test]
    fn map1_cast_like() {
        let input = vec![1.9f64, -0.5, 3.0];
        let mut out = vec![0i32; 3];
        map1(&mut out, &vg(&[3]), &input, &vg(&[3]), |x| x as i32);
        assert_eq!(out, vec![1, 0, 3]);
    }

    #[test]
    fn map1_inplace_same_view() {
        let mut buf = vec![1.0f64, 2.0, 3.0];
        let v = vg(&[3]);
        map1_inplace(&mut buf, &v, &v, |x| x * 2.0);
        assert_eq!(buf, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn map2_adds_broadcast_scalar_via_zero_stride() {
        let a = vec![1.0f64, 2.0, 3.0];
        let b = vec![10.0f64];
        let bview = ViewGeom::contiguous(&Shape::vector(1))
            .broadcast_to(&Shape::vector(3))
            .unwrap();
        let mut out = vec![0.0f64; 3];
        map2(&mut out, &vg(&[3]), &a, &vg(&[3]), &b, &bview, |x, y| x + y);
        assert_eq!(out, vec![11.0, 12.0, 13.0]);
    }

    #[test]
    fn map2_inplace_listing2_semantics() {
        // BH_ADD a0 a0 1 three times == +3 (constants handled as broadcast
        // views in this test).
        let mut buf = vec![0.0f64; 10];
        let v = vg(&[10]);
        for _ in 0..3 {
            map2_inplace(&mut buf, &v, &v, &v, |x, _| x + 1.0);
        }
        assert!(buf.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn map2_left_inplace_power_chain_step() {
        // a1 = a1 * a0 with a1 aliased output.
        let mut a1 = vec![4.0f64, 9.0];
        let a0 = vec![2.0f64, 3.0];
        let v = vg(&[2]);
        map2_left_inplace(&mut a1, &v, &v, &a0, &v, |x, y| x * y);
        assert_eq!(a1, vec![8.0, 27.0]);
    }

    #[test]
    fn reduce_full_sum() {
        let input = vec![1.0f64, 2.0, 3.0, 4.0];
        let s = reduce_full(&input, &vg(&[4]), 0.0, |a, x| a + x);
        assert_eq!(s, 10.0);
        // Strided: every other element.
        let v = ViewGeom::from_slices(&Shape::vector(4), &[Slice::new(None, None, 2)]).unwrap();
        assert_eq!(reduce_full(&input, &v, 0.0, |a, x| a + x), 4.0);
    }

    #[test]
    fn reduce_axis_rows_and_cols() {
        // 2x3 matrix [[1,2,3],[4,5,6]]
        let input = vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0];
        let iv = vg(&[2, 3]);
        // axis 0 -> [5,7,9]
        let mut out = vec![0.0f64; 3];
        reduce_axis(&mut out, &vg(&[3]), &input, &iv, 0, 0.0, |a, x| a + x);
        assert_eq!(out, vec![5.0, 7.0, 9.0]);
        // axis 1 -> [6,15]
        let mut out = vec![0.0f64; 2];
        reduce_axis(&mut out, &vg(&[2]), &input, &iv, 1, 0.0, |a, x| a + x);
        assert_eq!(out, vec![6.0, 15.0]);
    }

    #[test]
    fn reduce_axis_max() {
        let input = vec![3i64, 1, 4, 1, 5, 9];
        let iv = vg(&[2, 3]);
        let mut out = vec![i64::MIN; 2];
        reduce_axis(&mut out, &vg(&[2]), &input, &iv, 1, i64::MIN, |a, x| {
            a.max(x)
        });
        assert_eq!(out, vec![4, 9]);
    }

    #[test]
    fn accumulate_cumsum() {
        let input = vec![1.0f64, 2.0, 3.0, 4.0];
        let mut out = vec![0.0f64; 4];
        accumulate_axis(&mut out, &vg(&[4]), &input, &vg(&[4]), 0, |a, x| a + x);
        assert_eq!(out, vec![1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn accumulate_axis1_of_matrix() {
        let input = vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = vec![0.0f64; 6];
        accumulate_axis(&mut out, &vg(&[2, 3]), &input, &vg(&[2, 3]), 1, |a, x| {
            a * x
        });
        assert_eq!(out, vec![1.0, 2.0, 6.0, 4.0, 20.0, 120.0]);
    }

    #[test]
    fn materialize_reversed() {
        let input = vec![1i32, 2, 3, 4];
        let v = ViewGeom::from_slices(&Shape::vector(4), &[Slice::new(None, None, -1)]).unwrap();
        assert_eq!(materialize(&input, &v), vec![4, 3, 2, 1]);
    }

    #[test]
    fn zip_offsets_rank0() {
        let v = ViewGeom::scalar_at(3);
        let mut seen = Vec::new();
        zip_offsets([&v], |[o]| seen.push(o));
        assert_eq!(seen, vec![3]);
    }

    #[test]
    fn zip_offsets_matches_offsets_iter() {
        let base = Shape::from([3, 4]);
        let v =
            ViewGeom::from_slices(&base, &[Slice::new(None, None, 2), Slice::range(1, 4)]).unwrap();
        let mut a = Vec::new();
        zip_offsets([&v], |[o]| a.push(o));
        let b: Vec<_> = v.offsets().collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "view escapes buffer")]
    fn oob_view_panics() {
        let mut buf = vec![0.0f64; 3];
        fill(&mut buf, &vg(&[5]), 1.0); // view larger than buffer
    }

    /// Test executor: one OS thread per shard, scoped. Exercises the
    /// actually-concurrent contract of the par kernels without depending
    /// on bh-vm's pool (which lives above this crate).
    struct ScopedExec(usize);

    impl RangeExecutor for ScopedExec {
        fn threads(&self) -> usize {
            self.0
        }

        fn run_ranges(
            &self,
            n: usize,
            grain: usize,
            task: &(dyn Fn(usize, usize) + Sync),
        ) -> usize {
            let ranges = shard_ranges(n, self.0, grain);
            std::thread::scope(|scope| {
                for &(lo, hi) in &ranges {
                    scope.spawn(move || task(lo, hi));
                }
            });
            ranges.len()
        }
    }

    #[test]
    fn shard_ranges_cover_and_align() {
        // 100 elements, 4 shards, grain 7: boundaries are multiples of 7.
        let r = shard_ranges(100, 4, 7);
        assert_eq!(r.first().unwrap().0, 0);
        assert_eq!(r.last().unwrap().1, 100);
        for w in r.windows(2) {
            assert_eq!(w[0].1, w[1].0, "ranges must be adjacent");
            assert_eq!(w[0].1 % 7, 0, "interior boundary must not split a block");
        }
        // Never more shards than blocks.
        assert_eq!(shard_ranges(10, 8, 4).len(), 3);
        assert!(shard_ranges(0, 4, 4).is_empty());
        // Degenerate grain is clamped.
        assert_eq!(shard_ranges(5, 2, 0), vec![(0, 3), (3, 5)]);
    }

    #[test]
    fn par_kernels_match_serial() {
        let exec = ScopedExec(3);
        let n = 1000;
        let v = vg(&[n]);

        let mut buf = vec![0.0f64; n];
        assert!(par_fill(&exec, &mut buf, &v, 2.5).is_some());
        assert!(buf.iter().all(|&x| x == 2.5));

        let input: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut out = vec![0.0f64; n];
        assert!(par_map1(&exec, &mut out, &v, &input, &v, |x| x * 2.0).is_some());
        let mut want = vec![0.0f64; n];
        map1(&mut want, &v, &input, &v, |x| x * 2.0);
        assert_eq!(out, want);

        let mut a = input.clone();
        assert!(par_map1_inplace(&exec, &mut a, &v, &v, |x| x + 1.0).is_some());
        assert_eq!(a[17], 18.0);

        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let mut out2 = vec![0.0f64; n];
        assert!(par_map2(&exec, &mut out2, &v, &input, &v, &b, &v, |x, y| x - y).is_some());
        let mut want2 = vec![0.0f64; n];
        map2(&mut want2, &v, &input, &v, &b, &v, |x, y| x - y);
        assert_eq!(out2, want2);

        let mut c = input.clone();
        assert!(par_map2_inplace(&exec, &mut c, &v, &v, &v, |x, y| x + y).is_some());
        assert_eq!(c[9], 18.0);

        let mut d = input.clone();
        assert!(
            par_map2_left_inplace(&exec, &mut d, &v, &v, &b, &v, |x, y| x * (y + 1.0)).is_some()
        );
        assert_eq!(d[8], 8.0 * 2.0);
    }

    #[test]
    fn par_kernels_refuse_unsafe_shapes() {
        let exec = ScopedExec(2);
        let strided =
            ViewGeom::from_slices(&Shape::vector(10), &[Slice::new(None, None, 2)]).unwrap();
        let mut buf = vec![0.0f64; 10];
        assert!(par_fill(&exec, &mut buf, &strided, 1.0).is_none());
        let full = vg(&[5]);
        let input = vec![1.0f64; 5];
        let mut out = vec![0.0f64; 5];
        assert!(par_map1(&exec, &mut out, &full, &input, &strided, |x| x).is_none());
        // Shifted self-overlap: out = buf[1..4], in = buf[0..3] — the
        // hazardous case must be refused, not sharded.
        let base = Shape::vector(4);
        let ov = ViewGeom::from_slices(&base, &[Slice::range(1, 4)]).unwrap();
        let iv = ViewGeom::from_slices(&base, &[Slice::range(0, 3)]).unwrap();
        let mut hazard = vec![1.0f64, 2.0, 3.0, 4.0];
        assert!(par_map1_inplace(&exec, &mut hazard, &ov, &iv, |x| x).is_none());
        // Disjoint in-buffer ranges are fine.
        let lo = ViewGeom::from_slices(&base, &[Slice::range(0, 2)]).unwrap();
        let hi = ViewGeom::from_slices(&base, &[Slice::range(2, 4)]).unwrap();
        assert!(par_map1_inplace(&exec, &mut hazard, &lo, &hi, |x| x + 10.0).is_some());
        assert_eq!(hazard, vec![13.0, 14.0, 3.0, 4.0]);
    }

    /// Canonical reference for the blocked lane fold, written naively.
    fn blocked_fold_ref(vals: &[f64]) -> f64 {
        let mut acc = 0.0;
        for block in vals.chunks(REDUCE_BLOCK) {
            let mut p = 0.0;
            for &v in block {
                p += v;
            }
            acc += p;
        }
        acc
    }

    #[test]
    fn par_reduce_lane_is_executor_independent() {
        // Lengths straddling block boundaries, incl. non-powers-of-two.
        for n in [1usize, 7, 4095, 4096, 4097, 10_000, 13_001] {
            let vals: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let (serial, s1) = par_reduce_lane(&InlineExec, &vals, 0, n, 1, 0.0, |a, b| a + b);
            assert_eq!(s1, 1);
            for threads in [2usize, 3, 4] {
                let (par, _) =
                    par_reduce_lane(&ScopedExec(threads), &vals, 0, n, 1, 0.0, |a, b| a + b);
                assert_eq!(
                    par.to_bits(),
                    serial.to_bits(),
                    "n={n} threads={threads}: combine order must be fixed"
                );
            }
            assert_eq!(serial.to_bits(), blocked_fold_ref(&vals).to_bits());
        }
    }

    #[test]
    fn par_reduce_lane_strided_and_offset() {
        let vals: Vec<i64> = (0..100).collect();
        // Every other element starting at 1: 1 + 3 + ... + 99.
        let (sum, _) = par_reduce_lane(&ScopedExec(3), &vals, 1, 50, 2, 0i64, |a, b| a + b);
        assert_eq!(sum, 2500);
        // Reversed lane: same sum.
        let (rev, _) = par_reduce_lane(&ScopedExec(3), &vals, 99, 100, -1, 0i64, |a, b| a + b);
        assert_eq!(rev, 4950);
    }

    #[test]
    fn par_reduce_axis_matches_serial_kernel() {
        // Multi-lane: identical to `reduce_axis` (plain per-lane fold).
        let input: Vec<f64> = (0..60).map(|i| i as f64 * 0.25).collect();
        let iv = vg(&[6, 10]);
        for axis in [0usize, 1] {
            let out_n = if axis == 0 { 10 } else { 6 };
            let mut want = vec![0.0f64; out_n];
            reduce_axis(&mut want, &vg(&[out_n]), &input, &iv, axis, 0.0, |a, b| {
                a + b
            });
            for threads in [1usize, 2, 4] {
                let mut got = vec![0.0f64; out_n];
                let shards = par_reduce_axis(
                    &ScopedExec(threads),
                    &mut got,
                    &vg(&[out_n]),
                    &input,
                    &iv,
                    axis,
                    0.0,
                    |a, b| a + b,
                );
                assert!(shards >= 1);
                assert_eq!(got, want, "axis={axis} threads={threads}");
            }
        }
    }

    #[test]
    fn par_scan_lane_is_executor_independent() {
        for n in [1usize, 4095, 4096, 4097, 9999, 12_288] {
            let vals: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            let mut serial = vec![0.0f64; n];
            assert_eq!(
                par_scan_lane(&InlineExec, &mut serial, 0, 1, &vals, 0, 1, n, |a, b| a + b),
                1
            );
            for threads in [2usize, 4] {
                let mut par = vec![0.0f64; n];
                par_scan_lane(
                    &ScopedExec(threads),
                    &mut par,
                    0,
                    1,
                    &vals,
                    0,
                    1,
                    n,
                    |a, b| a + b,
                );
                let same = serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "n={n} threads={threads}: scan must be canonical");
            }
            // Short lanes degrade to the plain running fold.
            if n <= REDUCE_BLOCK {
                let mut want = vec![0.0f64; n];
                accumulate_axis(&mut want, &vg(&[n]), &vals, &vg(&[n]), 0, |a, b| a + b);
                assert_eq!(serial, want);
            }
        }
    }

    #[test]
    fn par_scan_axis_matches_serial_kernel_on_lanes() {
        let input: Vec<i64> = (0..24).collect();
        let iv = vg(&[4, 6]);
        for axis in [0usize, 1] {
            let mut want = vec![0i64; 24];
            accumulate_axis(&mut want, &iv, &input, &iv, axis, |a, b| a + b);
            for threads in [1usize, 3] {
                let mut got = vec![0i64; 24];
                par_scan_axis(
                    &ScopedExec(threads),
                    &mut got,
                    &iv,
                    &input,
                    &iv,
                    axis,
                    |a, b| a + b,
                );
                assert_eq!(got, want, "axis={axis} threads={threads}");
            }
        }
    }

    #[test]
    fn par_reduce_axis_single_lane_writes_through_view() {
        // Scalar (rank-0) output at a non-zero offset.
        let input: Vec<i64> = (1..=5000).collect();
        let mut out = vec![0i64; 3];
        let ov = ViewGeom::scalar_at(2);
        let iv = vg(&[5000]);
        let shards = par_reduce_axis(&ScopedExec(4), &mut out, &ov, &input, &iv, 0, 0, |a, b| {
            a + b
        });
        assert!(shards >= 1);
        assert_eq!(out, vec![0, 0, 5000 * 5001 / 2]);
    }

    #[test]
    fn inline_exec_runs_one_shard() {
        let mut seen = Vec::new();
        let seen_cell = std::sync::Mutex::new(&mut seen);
        assert_eq!(
            InlineExec.run_ranges(9, 4, &|lo, hi| seen_cell.lock().unwrap().push((lo, hi))),
            1
        );
        assert_eq!(seen, vec![(0, 9)]);
        assert_eq!(InlineExec.run_ranges(0, 4, &|_, _| {}), 0);
    }
}
