//! Strided element-wise and reduction kernels.
//!
//! These are the loops a Bohrium backend would JIT-compile: every byte-code
//! executed by the VM bottoms out in one of these functions. They operate on
//! typed slices plus [`ViewGeom`] geometry so the same code path serves
//! contiguous arrays, strided slices, reversed views and broadcast (stride-0)
//! operands.
//!
//! # Aliasing
//!
//! The `*_inplace` variants operate on a single buffer that is both read and
//! written (`a0 = a0 + 1` in the listings). They are correct when, for every
//! input view `v` that overlaps the output view, iterating logically never
//! reads an element after the iteration wrote it. The VM guarantees this by
//! only using the in-place path when each overlapping input view
//! [`ViewGeom::same_layout`]s the output (or provably writes behind all
//! reads); otherwise it materialises inputs into temporaries first.

use crate::dtype::Element;
use crate::view::ViewGeom;

/// Iterate `N` same-shaped views in lock-step, invoking `f` with the base
/// element offsets of each view.
///
/// # Panics
///
/// Panics (debug builds) if the views disagree on shape.
pub fn zip_offsets<const N: usize>(views: [&ViewGeom; N], mut f: impl FnMut([usize; N])) {
    let shape = views[0].shape();
    debug_assert!(
        views.iter().all(|v| v.shape() == shape),
        "zip_offsets requires identical logical shapes"
    );
    let nelem = shape.nelem();
    if nelem == 0 {
        return;
    }
    let rank = shape.rank();
    let mut offs = [0isize; N];
    for (k, v) in views.iter().enumerate() {
        offs[k] = v.offset() as isize;
    }
    if rank == 0 {
        let mut out = [0usize; N];
        for k in 0..N {
            out[k] = offs[k] as usize;
        }
        f(out);
        return;
    }
    let inner_len = shape.dim(rank - 1);
    let mut inner_strides = [0isize; N];
    for (k, v) in views.iter().enumerate() {
        inner_strides[k] = v.dims()[rank - 1].stride;
    }
    let outer_count = nelem.checked_div(inner_len).unwrap_or(0);
    let mut idx = vec![0usize; rank.saturating_sub(1)];
    for _ in 0..outer_count {
        let mut cur = offs;
        for _ in 0..inner_len {
            let mut out = [0usize; N];
            for k in 0..N {
                out[k] = cur[k] as usize;
            }
            f(out);
            for k in 0..N {
                cur[k] += inner_strides[k];
            }
        }
        // Odometer over the outer axes.
        for ax in (0..rank - 1).rev() {
            idx[ax] += 1;
            for (k, v) in views.iter().enumerate() {
                offs[k] += v.dims()[ax].stride;
            }
            if idx[ax] < shape.dim(ax) {
                break;
            }
            idx[ax] = 0;
            for (k, v) in views.iter().enumerate() {
                offs[k] -= shape.dim(ax) as isize * v.dims()[ax].stride;
            }
        }
    }
}

/// Set every element of `out`'s view to `value`.
pub fn fill<T: Element>(out: &mut [T], ov: &ViewGeom, value: T) {
    if ov.is_contiguous() {
        let start = ov.offset();
        let end = start + ov.nelem();
        assert!(end <= out.len(), "view escapes buffer");
        out[start..end].fill(value);
        return;
    }
    let ptr = out.as_mut_ptr();
    let len = out.len();
    zip_offsets([ov], |[o]| {
        assert!(o < len, "view escapes buffer");
        // SAFETY: bounds asserted above; offsets are distinct per logical
        // element or harmlessly rewritten with the same value.
        unsafe { *ptr.add(o) = value };
    });
}

/// `out[i] = f(input[i])` with distinct buffers.
pub fn map1<I: Element, O: Element>(
    out: &mut [O],
    ov: &ViewGeom,
    input: &[I],
    iv: &ViewGeom,
    f: impl Fn(I) -> O,
) {
    let optr = out.as_mut_ptr();
    let (olen, ilen) = (out.len(), input.len());
    zip_offsets([ov, iv], |[o, i]| {
        assert!(o < olen && i < ilen, "view escapes buffer");
        // SAFETY: bounds asserted; `out` and `input` are distinct slices.
        unsafe { *optr.add(o) = f(*input.get_unchecked(i)) };
    });
}

/// `buf[o] = f(buf[i])` within a single buffer.
///
/// See the module-level aliasing contract.
pub fn map1_inplace<T: Element>(buf: &mut [T], ov: &ViewGeom, iv: &ViewGeom, f: impl Fn(T) -> T) {
    let ptr = buf.as_mut_ptr();
    let len = buf.len();
    zip_offsets([ov, iv], |[o, i]| {
        assert!(o < len && i < len, "view escapes buffer");
        // SAFETY: bounds asserted; per-element read happens before the write.
        unsafe {
            let v = *ptr.add(i);
            *ptr.add(o) = f(v);
        }
    });
}

/// `out[i] = f(a[i], b[i])` with three distinct buffers.
pub fn map2<I: Element, O: Element>(
    out: &mut [O],
    ov: &ViewGeom,
    a: &[I],
    av: &ViewGeom,
    b: &[I],
    bv: &ViewGeom,
    f: impl Fn(I, I) -> O,
) {
    let optr = out.as_mut_ptr();
    let (olen, alen, blen) = (out.len(), a.len(), b.len());
    zip_offsets([ov, av, bv], |[o, i, j]| {
        assert!(o < olen && i < alen && j < blen, "view escapes buffer");
        // SAFETY: bounds asserted; buffers are distinct slices.
        unsafe { *optr.add(o) = f(*a.get_unchecked(i), *b.get_unchecked(j)) };
    });
}

/// `buf[o] = f(buf[a], buf[b])` within a single buffer.
///
/// See the module-level aliasing contract.
pub fn map2_inplace<T: Element>(
    buf: &mut [T],
    ov: &ViewGeom,
    av: &ViewGeom,
    bv: &ViewGeom,
    f: impl Fn(T, T) -> T,
) {
    let ptr = buf.as_mut_ptr();
    let len = buf.len();
    zip_offsets([ov, av, bv], |[o, i, j]| {
        assert!(o < len && i < len && j < len, "view escapes buffer");
        // SAFETY: bounds asserted; both reads happen before the write.
        unsafe {
            let va = *ptr.add(i);
            let vb = *ptr.add(j);
            *ptr.add(o) = f(va, vb);
        }
    });
}

/// `buf[o] = f(buf[a], other[b])`: output aliases the first input's buffer,
/// second input lives elsewhere.
pub fn map2_left_inplace<T: Element>(
    buf: &mut [T],
    ov: &ViewGeom,
    av: &ViewGeom,
    other: &[T],
    bv: &ViewGeom,
    f: impl Fn(T, T) -> T,
) {
    let ptr = buf.as_mut_ptr();
    let (len, olen) = (buf.len(), other.len());
    zip_offsets([ov, av, bv], |[o, i, j]| {
        assert!(o < len && i < len && j < olen, "view escapes buffer");
        // SAFETY: bounds asserted; reads precede the write; `other` is a
        // distinct slice.
        unsafe {
            let va = *ptr.add(i);
            let vb = *other.get_unchecked(j);
            *ptr.add(o) = f(va, vb);
        }
    });
}

/// Fold every element of the view with `f`, starting from `init`.
pub fn reduce_full<T: Element, A: Copy>(
    input: &[T],
    iv: &ViewGeom,
    init: A,
    f: impl Fn(A, T) -> A,
) -> A {
    let mut acc = init;
    let len = input.len();
    zip_offsets([iv], |[i]| {
        assert!(i < len, "view escapes buffer");
        acc = f(acc, input[i]);
    });
    acc
}

/// Reduce `input` along `axis` into `out`.
///
/// `out`'s view must have the input's shape with `axis` removed.
///
/// # Panics
///
/// Panics if `axis >= rank` or the output shape does not match.
pub fn reduce_axis<T: Element>(
    out: &mut [T],
    ov: &ViewGeom,
    input: &[T],
    iv: &ViewGeom,
    axis: usize,
    init: T,
    f: impl Fn(T, T) -> T,
) {
    assert!(axis < iv.rank(), "reduction axis out of range");
    let axis_len = iv.dims()[axis].len;
    let axis_stride = iv.dims()[axis].stride;
    let reduced = remove_axis(iv, axis);
    assert_eq!(
        ov.shape(),
        reduced.shape(),
        "output shape must drop the reduced axis"
    );
    let optr = out.as_mut_ptr();
    let (olen, ilen) = (out.len(), input.len());
    zip_offsets([ov, &reduced], |[o, base]| {
        let mut acc = init;
        let mut off = base as isize;
        for _ in 0..axis_len {
            let i = off as usize;
            assert!(i < ilen, "view escapes buffer");
            acc = f(acc, input[i]);
            off += axis_stride;
        }
        assert!(o < olen, "view escapes buffer");
        // SAFETY: bounds asserted; out is a distinct slice from input.
        unsafe { *optr.add(o) = acc };
    });
}

/// Prefix-scan `input` along `axis` into `out` (same shape).
///
/// `out[.., k, ..] = f(input[.., 0, ..], …, input[.., k, ..])`, matching
/// `BH_ADD_ACCUMULATE` / NumPy `cumsum` semantics.
///
/// # Panics
///
/// Panics if shapes disagree or `axis` is out of range.
pub fn accumulate_axis<T: Element>(
    out: &mut [T],
    ov: &ViewGeom,
    input: &[T],
    iv: &ViewGeom,
    axis: usize,
    f: impl Fn(T, T) -> T,
) {
    assert!(axis < iv.rank(), "accumulate axis out of range");
    assert_eq!(ov.shape(), iv.shape(), "accumulate preserves shape");
    let axis_len = iv.dims()[axis].len;
    let in_stride = iv.dims()[axis].stride;
    let out_stride = ov.dims()[axis].stride;
    let in_lanes = remove_axis(iv, axis);
    let out_lanes = remove_axis(ov, axis);
    let optr = out.as_mut_ptr();
    let (olen, ilen) = (out.len(), input.len());
    zip_offsets([&out_lanes, &in_lanes], |[obase, ibase]| {
        let mut acc: Option<T> = None;
        let mut ioff = ibase as isize;
        let mut ooff = obase as isize;
        for _ in 0..axis_len {
            let i = ioff as usize;
            let o = ooff as usize;
            assert!(i < ilen && o < olen, "view escapes buffer");
            let v = input[i];
            let next = match acc {
                None => v,
                Some(a) => f(a, v),
            };
            // SAFETY: bounds asserted; lanes write disjoint elements.
            unsafe { *optr.add(o) = next };
            acc = Some(next);
            ioff += in_stride;
            ooff += out_stride;
        }
    });
}

/// Gather all view elements into a fresh contiguous vector (logical order).
pub fn materialize<T: Element>(input: &[T], iv: &ViewGeom) -> Vec<T> {
    let mut out = Vec::with_capacity(iv.nelem());
    let len = input.len();
    zip_offsets([iv], |[i]| {
        assert!(i < len, "view escapes buffer");
        out.push(input[i]);
    });
    out
}

/// View with `axis` deleted, keeping offset and the other strides: the
/// geometry of the "lanes" perpendicular to `axis`.
fn remove_axis(v: &ViewGeom, axis: usize) -> ViewGeom {
    let mut dims = v.dims().to_vec();
    dims.remove(axis);
    ViewGeom::from_parts(v.offset(), dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use crate::view::Slice;

    fn vg(shape: &[usize]) -> ViewGeom {
        ViewGeom::contiguous(&Shape::from(shape))
    }

    #[test]
    fn fill_contiguous_and_strided() {
        let mut buf = vec![0.0f64; 10];
        fill(&mut buf, &vg(&[10]), 1.0);
        assert!(buf.iter().all(|&x| x == 1.0));
        let stride2 =
            ViewGeom::from_slices(&Shape::vector(10), &[Slice::new(None, None, 2)]).unwrap();
        fill(&mut buf, &stride2, 5.0);
        assert_eq!(buf, vec![5.0, 1.0, 5.0, 1.0, 5.0, 1.0, 5.0, 1.0, 5.0, 1.0]);
    }

    #[test]
    fn map1_cast_like() {
        let input = vec![1.9f64, -0.5, 3.0];
        let mut out = vec![0i32; 3];
        map1(&mut out, &vg(&[3]), &input, &vg(&[3]), |x| x as i32);
        assert_eq!(out, vec![1, 0, 3]);
    }

    #[test]
    fn map1_inplace_same_view() {
        let mut buf = vec![1.0f64, 2.0, 3.0];
        let v = vg(&[3]);
        map1_inplace(&mut buf, &v, &v, |x| x * 2.0);
        assert_eq!(buf, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn map2_adds_broadcast_scalar_via_zero_stride() {
        let a = vec![1.0f64, 2.0, 3.0];
        let b = vec![10.0f64];
        let bview = ViewGeom::contiguous(&Shape::vector(1))
            .broadcast_to(&Shape::vector(3))
            .unwrap();
        let mut out = vec![0.0f64; 3];
        map2(&mut out, &vg(&[3]), &a, &vg(&[3]), &b, &bview, |x, y| x + y);
        assert_eq!(out, vec![11.0, 12.0, 13.0]);
    }

    #[test]
    fn map2_inplace_listing2_semantics() {
        // BH_ADD a0 a0 1 three times == +3 (constants handled as broadcast
        // views in this test).
        let mut buf = vec![0.0f64; 10];
        let v = vg(&[10]);
        for _ in 0..3 {
            map2_inplace(&mut buf, &v, &v, &v, |x, _| x + 1.0);
        }
        assert!(buf.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn map2_left_inplace_power_chain_step() {
        // a1 = a1 * a0 with a1 aliased output.
        let mut a1 = vec![4.0f64, 9.0];
        let a0 = vec![2.0f64, 3.0];
        let v = vg(&[2]);
        map2_left_inplace(&mut a1, &v, &v, &a0, &v, |x, y| x * y);
        assert_eq!(a1, vec![8.0, 27.0]);
    }

    #[test]
    fn reduce_full_sum() {
        let input = vec![1.0f64, 2.0, 3.0, 4.0];
        let s = reduce_full(&input, &vg(&[4]), 0.0, |a, x| a + x);
        assert_eq!(s, 10.0);
        // Strided: every other element.
        let v = ViewGeom::from_slices(&Shape::vector(4), &[Slice::new(None, None, 2)]).unwrap();
        assert_eq!(reduce_full(&input, &v, 0.0, |a, x| a + x), 4.0);
    }

    #[test]
    fn reduce_axis_rows_and_cols() {
        // 2x3 matrix [[1,2,3],[4,5,6]]
        let input = vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0];
        let iv = vg(&[2, 3]);
        // axis 0 -> [5,7,9]
        let mut out = vec![0.0f64; 3];
        reduce_axis(&mut out, &vg(&[3]), &input, &iv, 0, 0.0, |a, x| a + x);
        assert_eq!(out, vec![5.0, 7.0, 9.0]);
        // axis 1 -> [6,15]
        let mut out = vec![0.0f64; 2];
        reduce_axis(&mut out, &vg(&[2]), &input, &iv, 1, 0.0, |a, x| a + x);
        assert_eq!(out, vec![6.0, 15.0]);
    }

    #[test]
    fn reduce_axis_max() {
        let input = vec![3i64, 1, 4, 1, 5, 9];
        let iv = vg(&[2, 3]);
        let mut out = vec![i64::MIN; 2];
        reduce_axis(&mut out, &vg(&[2]), &input, &iv, 1, i64::MIN, |a, x| {
            a.max(x)
        });
        assert_eq!(out, vec![4, 9]);
    }

    #[test]
    fn accumulate_cumsum() {
        let input = vec![1.0f64, 2.0, 3.0, 4.0];
        let mut out = vec![0.0f64; 4];
        accumulate_axis(&mut out, &vg(&[4]), &input, &vg(&[4]), 0, |a, x| a + x);
        assert_eq!(out, vec![1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn accumulate_axis1_of_matrix() {
        let input = vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = vec![0.0f64; 6];
        accumulate_axis(&mut out, &vg(&[2, 3]), &input, &vg(&[2, 3]), 1, |a, x| {
            a * x
        });
        assert_eq!(out, vec![1.0, 2.0, 6.0, 4.0, 20.0, 120.0]);
    }

    #[test]
    fn materialize_reversed() {
        let input = vec![1i32, 2, 3, 4];
        let v = ViewGeom::from_slices(&Shape::vector(4), &[Slice::new(None, None, -1)]).unwrap();
        assert_eq!(materialize(&input, &v), vec![4, 3, 2, 1]);
    }

    #[test]
    fn zip_offsets_rank0() {
        let v = ViewGeom::scalar_at(3);
        let mut seen = Vec::new();
        zip_offsets([&v], |[o]| seen.push(o));
        assert_eq!(seen, vec![3]);
    }

    #[test]
    fn zip_offsets_matches_offsets_iter() {
        let base = Shape::from([3, 4]);
        let v =
            ViewGeom::from_slices(&base, &[Slice::new(None, None, 2), Slice::range(1, 4)]).unwrap();
        let mut a = Vec::new();
        zip_offsets([&v], |[o]| a.push(o));
        let b: Vec<_> = v.offsets().collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "view escapes buffer")]
    fn oob_view_panics() {
        let mut buf = vec![0.0f64; 3];
        fill(&mut buf, &vg(&[5]), 1.0); // view larger than buffer
    }
}
