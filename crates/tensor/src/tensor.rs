//! Owned dense tensors.
//!
//! [`Tensor`] is the user-facing result type: a dtype-tagged buffer plus a
//! shape, always stored contiguous row-major. The VM produces these when a
//! program syncs a register back to the host, and `bh-linalg` computes
//! directly on them.

use crate::buffer::Buffer;
use crate::dtype::{DType, Element};
use crate::error::TensorError;
use crate::scalar::Scalar;
use crate::shape::Shape;
use crate::view::ViewGeom;
use std::fmt;

/// A dense, contiguous, row-major tensor.
///
/// # Examples
///
/// ```
/// use bh_tensor::{Tensor, DType, Shape};
/// let t = Tensor::zeros(DType::Float64, Shape::from([2, 3]));
/// assert_eq!(t.shape().nelem(), 6);
/// let u = Tensor::from_vec(vec![1.0f64, 2.0, 3.0]);
/// assert_eq!(u.get(&[1]).unwrap().as_f64(), 2.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    buffer: Buffer,
    shape: Shape,
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(dtype: DType, shape: Shape) -> Tensor {
        let n = shape.nelem();
        Tensor {
            buffer: Buffer::zeros(dtype, n),
            shape,
        }
    }

    /// All-ones tensor.
    pub fn ones(dtype: DType, shape: Shape) -> Tensor {
        Tensor::full(dtype, shape, Scalar::one(dtype))
    }

    /// Tensor filled with `value` (cast to `dtype`).
    pub fn full(dtype: DType, shape: Shape, value: Scalar) -> Tensor {
        let n = shape.nelem();
        Tensor {
            buffer: Buffer::full(dtype, n, value),
            shape,
        }
    }

    /// 1-D tensor from a typed vector.
    pub fn from_vec<T: Element>(v: Vec<T>) -> Tensor {
        let shape = Shape::vector(v.len());
        Tensor {
            buffer: Buffer::from_vec(v),
            shape,
        }
    }

    /// Tensor of `shape` from a typed vector in row-major order.
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeMismatch`] if `v.len() != shape.nelem()`.
    pub fn from_shape_vec<T: Element>(shape: Shape, v: Vec<T>) -> Result<Tensor, TensorError> {
        if v.len() != shape.nelem() {
            return Err(TensorError::ShapeMismatch {
                expected: shape,
                found: Shape::vector(v.len()),
            });
        }
        Ok(Tensor {
            buffer: Buffer::from_vec(v),
            shape,
        })
    }

    /// Tensor of `shape` computed element-wise from the multi-index.
    pub fn from_fn<T: Element>(shape: Shape, mut f: impl FnMut(&[usize]) -> T) -> Tensor {
        let n = shape.nelem();
        let mut data = Vec::with_capacity(n);
        for flat in 0..n {
            data.push(f(&shape.unravel(flat)));
        }
        Tensor {
            buffer: Buffer::from_vec(data),
            shape,
        }
    }

    /// `[0, 1, …, n-1]` as `dtype`.
    pub fn arange(dtype: DType, n: usize) -> Tensor {
        let mut buffer = Buffer::zeros(dtype, n);
        for i in 0..n {
            buffer
                .set_scalar(i, Scalar::from_i64(i as i64, dtype))
                .expect("index in range");
        }
        Tensor {
            buffer,
            shape: Shape::vector(n),
        }
    }

    /// `n` evenly spaced f64 samples over `[start, stop]` inclusive.
    pub fn linspace(start: f64, stop: f64, n: usize) -> Tensor {
        let data: Vec<f64> = if n <= 1 {
            vec![start; n]
        } else {
            (0..n)
                .map(|i| start + (stop - start) * i as f64 / (n - 1) as f64)
                .collect()
        };
        Tensor::from_vec(data)
    }

    /// The `n × n` identity matrix of `dtype`.
    pub fn eye(dtype: DType, n: usize) -> Tensor {
        let mut t = Tensor::zeros(dtype, Shape::matrix(n, n));
        for i in 0..n {
            t.set(&[i, i], Scalar::one(dtype)).expect("index in range");
        }
        t
    }

    /// The element dtype.
    pub fn dtype(&self) -> DType {
        self.buffer.dtype()
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn nelem(&self) -> usize {
        self.shape.nelem()
    }

    /// Underlying flat buffer.
    pub fn buffer(&self) -> &Buffer {
        &self.buffer
    }

    /// True when both tensors are copy-on-write views of one allocation
    /// (see [`Buffer::shares_storage_with`]).
    pub fn shares_storage_with(&self, other: &Tensor) -> bool {
        self.buffer.shares_storage_with(other.buffer())
    }

    /// Mutable access to the flat buffer.
    pub fn buffer_mut(&mut self) -> &mut Buffer {
        &mut self.buffer
    }

    /// Consume into the flat buffer and shape.
    pub fn into_parts(self) -> (Buffer, Shape) {
        (self.buffer, self.shape)
    }

    /// Reassemble from parts.
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeMismatch`] if the buffer length disagrees with
    /// the shape.
    pub fn from_parts(buffer: Buffer, shape: Shape) -> Result<Tensor, TensorError> {
        if buffer.len() != shape.nelem() {
            return Err(TensorError::ShapeMismatch {
                expected: shape,
                found: Shape::vector(buffer.len()),
            });
        }
        Ok(Tensor { buffer, shape })
    }

    /// The full contiguous view of this tensor.
    pub fn view(&self) -> ViewGeom {
        ViewGeom::contiguous(&self.shape)
    }

    /// Typed read access to the flat data.
    pub fn as_slice<T: Element>(&self) -> Option<&[T]> {
        self.buffer.as_slice::<T>()
    }

    /// Typed write access to the flat data.
    pub fn as_mut_slice<T: Element>(&mut self) -> Option<&mut [T]> {
        self.buffer.as_mut_slice::<T>()
    }

    /// Read the element at a multi-index.
    ///
    /// # Errors
    ///
    /// [`TensorError::OutOfBounds`] / [`TensorError::ShapeMismatch`] for bad
    /// indices.
    pub fn get(&self, idx: &[usize]) -> Result<Scalar, TensorError> {
        self.check_index(idx)?;
        self.buffer.get_scalar(self.shape.ravel(idx))
    }

    /// Write the element at a multi-index (value cast to the tensor dtype).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::get`].
    pub fn set(&mut self, idx: &[usize], value: Scalar) -> Result<(), TensorError> {
        self.check_index(idx)?;
        let flat = self.shape.ravel(idx);
        self.buffer.set_scalar(flat, value)
    }

    fn check_index(&self, idx: &[usize]) -> Result<(), TensorError> {
        if idx.len() != self.shape.rank() {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                found: Shape::vector(idx.len()),
            });
        }
        for (axis, (&i, &d)) in idx.iter().zip(self.shape.dims()).enumerate() {
            if i >= d {
                let _ = axis;
                return Err(TensorError::OutOfBounds { offset: i, len: d });
            }
        }
        Ok(())
    }

    /// Reinterpret with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeMismatch`] if the counts differ.
    pub fn reshape(self, shape: Shape) -> Result<Tensor, TensorError> {
        if shape.nelem() != self.nelem() {
            return Err(TensorError::ShapeMismatch {
                expected: shape,
                found: self.shape,
            });
        }
        Ok(Tensor {
            buffer: self.buffer,
            shape,
        })
    }

    /// Copy cast to another dtype.
    pub fn cast(&self, dtype: DType) -> Tensor {
        Tensor {
            buffer: self.buffer.cast(dtype),
            shape: self.shape.clone(),
        }
    }

    /// New tensor with `f` applied to every element (dtype preserved).
    pub fn map<T: Element>(&self, f: impl Fn(T) -> T) -> Option<Tensor> {
        let data = self.as_slice::<T>()?;
        let mapped: Vec<T> = data.iter().map(|&x| f(x)).collect();
        Some(Tensor {
            buffer: Buffer::from_vec(mapped),
            shape: self.shape.clone(),
        })
    }

    /// New tensor combining two same-shape, same-dtype tensors element-wise.
    ///
    /// # Errors
    ///
    /// Shape or dtype mismatch.
    pub fn zip<T: Element>(
        &self,
        other: &Tensor,
        f: impl Fn(T, T) -> T,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                found: other.shape.clone(),
            });
        }
        let a = self.as_slice::<T>().ok_or(TensorError::DTypeMismatch {
            expected: T::DTYPE,
            found: self.dtype(),
        })?;
        let b = other.as_slice::<T>().ok_or(TensorError::DTypeMismatch {
            expected: T::DTYPE,
            found: other.dtype(),
        })?;
        let data: Vec<T> = a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect();
        Ok(Tensor {
            buffer: Buffer::from_vec(data),
            shape: self.shape.clone(),
        })
    }

    /// All elements as f64 in row-major order.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.buffer.to_f64_vec()
    }

    /// Maximum absolute element-wise difference to `other` (∞ on shape
    /// mismatch). Testing helper.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        if self.shape != other.shape {
            return f64::INFINITY;
        }
        self.to_f64_vec()
            .iter()
            .zip(other.to_f64_vec())
            .map(|(a, b)| {
                if a.is_nan() && b.is_nan() {
                    0.0
                } else {
                    (a - b).abs()
                }
            })
            .fold(0.0, f64::max)
    }

    /// True when every element differs from `other` by at most `tol`
    /// (NaNs compare equal to NaNs).
    pub fn allclose(&self, other: &Tensor, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor<{} {}> {:?}",
            self.dtype(),
            self.shape,
            self.buffer
        )
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX: usize = 16;
        match self.shape.rank() {
            0 => write!(
                f,
                "{}",
                self.buffer.get_scalar(0).expect("scalar has one element")
            ),
            1 => {
                write!(f, "[")?;
                let n = self.nelem();
                for i in 0..n.min(MAX) {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{}", self.buffer.get_scalar(i).expect("index in range"))?;
                }
                if n > MAX {
                    write!(f, " …")?;
                }
                write!(f, "]")
            }
            2 => {
                let (r, c) = (self.shape.dim(0), self.shape.dim(1));
                writeln!(f, "[")?;
                for i in 0..r.min(MAX) {
                    write!(f, " [")?;
                    for j in 0..c.min(MAX) {
                        if j > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", self.get(&[i, j]).expect("index in range"))?;
                    }
                    if c > MAX {
                        write!(f, " …")?;
                    }
                    writeln!(f, "]")?;
                }
                if r > MAX {
                    writeln!(f, " …")?;
                }
                write!(f, "]")
            }
            _ => write!(f, "Tensor<{} {}>", self.dtype(), self.shape),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(DType::Float64, Shape::from([2, 2]));
        assert_eq!(z.to_f64_vec(), vec![0.0; 4]);
        let o = Tensor::ones(DType::Int32, Shape::vector(3));
        assert_eq!(o.to_f64_vec(), vec![1.0; 3]);
        let f = Tensor::full(DType::Float32, Shape::vector(2), Scalar::F64(2.5));
        assert_eq!(f.to_f64_vec(), vec![2.5; 2]);
    }

    #[test]
    fn arange_and_linspace() {
        let a = Tensor::arange(DType::Int64, 5);
        assert_eq!(a.to_f64_vec(), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let l = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(l.to_f64_vec(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(Tensor::linspace(3.0, 9.0, 1).to_f64_vec(), vec![3.0]);
    }

    #[test]
    fn eye_matrix() {
        let i = Tensor::eye(DType::Float64, 3);
        assert_eq!(i.get(&[0, 0]).unwrap().as_f64(), 1.0);
        assert_eq!(i.get(&[0, 1]).unwrap().as_f64(), 0.0);
        assert_eq!(i.get(&[2, 2]).unwrap().as_f64(), 1.0);
    }

    #[test]
    fn from_fn_builds_index_pattern() {
        let t = Tensor::from_fn(Shape::from([2, 3]), |idx| (idx[0] * 10 + idx[1]) as i64);
        assert_eq!(t.to_f64_vec(), vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(DType::Float64, Shape::from([2, 2]));
        t.set(&[1, 0], Scalar::F64(5.0)).unwrap();
        assert_eq!(t.get(&[1, 0]).unwrap().as_f64(), 5.0);
        assert!(t.get(&[2, 0]).is_err());
        assert!(t.get(&[0]).is_err());
    }

    #[test]
    fn reshape_checks_count() {
        let t = Tensor::arange(DType::Int32, 6);
        let m = t.clone().reshape(Shape::from([2, 3])).unwrap();
        assert_eq!(m.get(&[1, 2]).unwrap().as_f64(), 5.0);
        assert!(t.reshape(Shape::from([4, 2])).is_err());
    }

    #[test]
    fn from_shape_vec_validates() {
        assert!(Tensor::from_shape_vec(Shape::from([2, 2]), vec![1.0f64; 3]).is_err());
        let t = Tensor::from_shape_vec(Shape::from([2, 2]), vec![1.0f64; 4]).unwrap();
        assert_eq!(t.nelem(), 4);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0f64, 2.0]);
        let b = Tensor::from_vec(vec![10.0f64, 20.0]);
        let m = a.map::<f64>(|x| x * 3.0).unwrap();
        assert_eq!(m.to_f64_vec(), vec![3.0, 6.0]);
        let z = a.zip::<f64>(&b, |x, y| x + y).unwrap();
        assert_eq!(z.to_f64_vec(), vec![11.0, 22.0]);
        // dtype mismatch surfaces as error
        let c = Tensor::from_vec(vec![1i32, 2]);
        assert!(a.zip::<f64>(&c, |x, y| x + y).is_err());
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::from_vec(vec![1.0f64, 2.0]);
        let b = Tensor::from_vec(vec![1.0f64, 2.0 + 1e-12]);
        assert!(a.allclose(&b, 1e-9));
        assert!(!a.allclose(&b, 1e-15));
        let c = Tensor::from_vec(vec![1.0f64]);
        assert_eq!(a.max_abs_diff(&c), f64::INFINITY);
    }

    #[test]
    fn nan_aware_comparison() {
        let a = Tensor::from_vec(vec![f64::NAN, 1.0]);
        let b = Tensor::from_vec(vec![f64::NAN, 1.0]);
        assert!(a.allclose(&b, 0.0));
    }

    #[test]
    fn display_small() {
        let t = Tensor::from_vec(vec![1.0f64, 2.5]);
        assert_eq!(t.to_string(), "[1.0 2.5]");
        let m = Tensor::eye(DType::Int32, 2);
        assert!(m.to_string().contains("[1 0]"));
    }

    #[test]
    fn cast_preserves_shape() {
        let t = Tensor::arange(DType::Int32, 4)
            .reshape(Shape::from([2, 2]))
            .unwrap();
        let c = t.cast(DType::Float64);
        assert_eq!(c.shape(), &Shape::from([2, 2]));
        assert_eq!(c.dtype(), DType::Float64);
    }

    #[test]
    fn parts_round_trip() {
        let t = Tensor::arange(DType::Int64, 4);
        let (b, s) = t.clone().into_parts();
        let t2 = Tensor::from_parts(b, s).unwrap();
        assert_eq!(t, t2);
        let bad = Tensor::from_parts(Buffer::zeros(DType::Int64, 3), Shape::from([2, 2]));
        assert!(bad.is_err());
    }
}
