//! Dynamically typed flat element storage.
//!
//! A [`Buffer`] is the backing store of one byte-code *base array*: a flat,
//! dtype-tagged vector of elements. Views ([`crate::ViewGeom`]) interpret a
//! buffer as an n-dimensional strided tensor.
//!
//! Storage is `Arc`-backed **copy-on-write**: cloning a buffer (and
//! therefore cloning a [`crate::Tensor`], or binding one as a VM input) is
//! an O(1) reference-count bump, no matter how many elements it holds. The
//! first mutation through a shared handle pays a single deep copy
//! ([`std::sync::Arc::make_mut`]); exclusively owned buffers mutate in
//! place with no overhead.

use crate::dtype::{DType, Element};
use crate::error::TensorError;
use crate::scalar::Scalar;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Flat typed storage for one base array.
///
/// # Examples
///
/// ```
/// use bh_tensor::{Buffer, DType, Scalar};
/// let mut b = Buffer::zeros(DType::Float64, 4);
/// b.set_scalar(2, Scalar::F64(7.5)).unwrap();
/// assert_eq!(b.get_scalar(2).unwrap(), Scalar::F64(7.5));
/// assert_eq!(b.len(), 4);
///
/// // Clones share storage until one side writes.
/// let c = b.clone();
/// assert!(c.shares_storage_with(&b));
/// let mut d = c.clone();
/// d.set_scalar(0, Scalar::F64(1.0)).unwrap();
/// assert!(!d.shares_storage_with(&b));
/// assert_eq!(b.get_scalar(0).unwrap(), Scalar::F64(0.0));
/// ```
#[derive(Clone, PartialEq)]
pub enum Buffer {
    /// Boolean storage.
    Bool(Arc<Vec<bool>>),
    /// `u8` storage.
    U8(Arc<Vec<u8>>),
    /// `u16` storage.
    U16(Arc<Vec<u16>>),
    /// `u32` storage.
    U32(Arc<Vec<u32>>),
    /// `u64` storage.
    U64(Arc<Vec<u64>>),
    /// `i8` storage.
    I8(Arc<Vec<i8>>),
    /// `i16` storage.
    I16(Arc<Vec<i16>>),
    /// `i32` storage.
    I32(Arc<Vec<i32>>),
    /// `i64` storage.
    I64(Arc<Vec<i64>>),
    /// `f32` storage.
    F32(Arc<Vec<f32>>),
    /// `f64` storage.
    F64(Arc<Vec<f64>>),
}

/// Dispatch a generic expression over every supported element type.
///
/// Binds the type parameter `$T` to the Rust element type matching the
/// runtime [`DType`] `$dtype`, then evaluates `$body`.
///
/// ```
/// use bh_tensor::{with_dtype, DType};
/// let size = with_dtype!(DType::Int32, T, std::mem::size_of::<T>());
/// assert_eq!(size, 4);
/// ```
#[macro_export]
macro_rules! with_dtype {
    ($dtype:expr, $T:ident, $body:expr) => {
        match $dtype {
            $crate::DType::Bool => {
                type $T = bool;
                $body
            }
            $crate::DType::UInt8 => {
                type $T = u8;
                $body
            }
            $crate::DType::UInt16 => {
                type $T = u16;
                $body
            }
            $crate::DType::UInt32 => {
                type $T = u32;
                $body
            }
            $crate::DType::UInt64 => {
                type $T = u64;
                $body
            }
            $crate::DType::Int8 => {
                type $T = i8;
                $body
            }
            $crate::DType::Int16 => {
                type $T = i16;
                $body
            }
            $crate::DType::Int32 => {
                type $T = i32;
                $body
            }
            $crate::DType::Int64 => {
                type $T = i64;
                $body
            }
            $crate::DType::Float32 => {
                type $T = f32;
                $body
            }
            $crate::DType::Float64 => {
                type $T = f64;
                $body
            }
        }
    };
}

macro_rules! for_each_variant {
    ($self:expr, $v:ident, $body:expr) => {
        match $self {
            Buffer::Bool($v) => $body,
            Buffer::U8($v) => $body,
            Buffer::U16($v) => $body,
            Buffer::U32($v) => $body,
            Buffer::U64($v) => $body,
            Buffer::I8($v) => $body,
            Buffer::I16($v) => $body,
            Buffer::I32($v) => $body,
            Buffer::I64($v) => $body,
            Buffer::F32($v) => $body,
            Buffer::F64($v) => $body,
        }
    };
}

impl Buffer {
    /// Allocate `n` zero-initialised elements of `dtype`.
    pub fn zeros(dtype: DType, n: usize) -> Buffer {
        with_dtype!(dtype, T, Buffer::from_vec(vec![<T as Element>::zero(); n]))
    }

    /// Allocate `n` elements of `dtype` all equal to `value` (cast to
    /// `dtype`).
    pub fn full(dtype: DType, n: usize, value: Scalar) -> Buffer {
        let v = value.cast(dtype);
        with_dtype!(dtype, T, Buffer::from_vec(vec![v.get::<T>(); n]))
    }

    /// Wrap a typed vector.
    pub fn from_vec<T: Element>(v: Vec<T>) -> Buffer {
        let any: Box<dyn Any> = Box::new(v);
        macro_rules! wrap {
            ($variant:ident) => {
                Buffer::$variant(Arc::new(*any.downcast().expect("dtype tag matches type")))
            };
        }
        match T::DTYPE {
            DType::Bool => wrap!(Bool),
            DType::UInt8 => wrap!(U8),
            DType::UInt16 => wrap!(U16),
            DType::UInt32 => wrap!(U32),
            DType::UInt64 => wrap!(U64),
            DType::Int8 => wrap!(I8),
            DType::Int16 => wrap!(I16),
            DType::Int32 => wrap!(I32),
            DType::Int64 => wrap!(I64),
            DType::Float32 => wrap!(F32),
            DType::Float64 => wrap!(F64),
        }
    }

    /// True when `self` and `other` are views of the *same* allocation —
    /// i.e. a copy-on-write clone whose deep copy has not been triggered.
    pub fn shares_storage_with(&self, other: &Buffer) -> bool {
        match (self, other) {
            (Buffer::Bool(a), Buffer::Bool(b)) => Arc::ptr_eq(a, b),
            (Buffer::U8(a), Buffer::U8(b)) => Arc::ptr_eq(a, b),
            (Buffer::U16(a), Buffer::U16(b)) => Arc::ptr_eq(a, b),
            (Buffer::U32(a), Buffer::U32(b)) => Arc::ptr_eq(a, b),
            (Buffer::U64(a), Buffer::U64(b)) => Arc::ptr_eq(a, b),
            (Buffer::I8(a), Buffer::I8(b)) => Arc::ptr_eq(a, b),
            (Buffer::I16(a), Buffer::I16(b)) => Arc::ptr_eq(a, b),
            (Buffer::I32(a), Buffer::I32(b)) => Arc::ptr_eq(a, b),
            (Buffer::I64(a), Buffer::I64(b)) => Arc::ptr_eq(a, b),
            (Buffer::F32(a), Buffer::F32(b)) => Arc::ptr_eq(a, b),
            (Buffer::F64(a), Buffer::F64(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// The dtype of the stored elements.
    pub fn dtype(&self) -> DType {
        match self {
            Buffer::Bool(_) => DType::Bool,
            Buffer::U8(_) => DType::UInt8,
            Buffer::U16(_) => DType::UInt16,
            Buffer::U32(_) => DType::UInt32,
            Buffer::U64(_) => DType::UInt64,
            Buffer::I8(_) => DType::Int8,
            Buffer::I16(_) => DType::Int16,
            Buffer::I32(_) => DType::Int32,
            Buffer::I64(_) => DType::Int64,
            Buffer::F32(_) => DType::Float32,
            Buffer::F64(_) => DType::Float64,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        for_each_variant!(self, v, v.len())
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes of the stored elements.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.dtype().size_of()
    }

    /// Typed read access; `None` when `T` does not match the dtype.
    pub fn as_slice<T: Element>(&self) -> Option<&[T]> {
        for_each_variant!(
            self,
            v,
            (v.as_ref() as &dyn Any)
                .downcast_ref::<Vec<T>>()
                .map(|v| v.as_slice())
        )
    }

    /// Typed write access; `None` when `T` does not match the dtype.
    ///
    /// If the storage is shared with other clones this triggers the
    /// copy-on-write deep copy first (the dtype is checked *before* that,
    /// so a mismatched call never copies).
    pub fn as_mut_slice<T: Element>(&mut self) -> Option<&mut [T]> {
        if T::DTYPE != self.dtype() {
            return None;
        }
        for_each_variant!(
            self,
            v,
            (Arc::make_mut(v) as &mut dyn Any)
                .downcast_mut::<Vec<T>>()
                .map(|v| v.as_mut_slice())
        )
    }

    /// Read one element as a [`Scalar`].
    ///
    /// # Errors
    ///
    /// [`TensorError::OutOfBounds`] if `idx >= len`.
    pub fn get_scalar(&self, idx: usize) -> Result<Scalar, TensorError> {
        if idx >= self.len() {
            return Err(TensorError::OutOfBounds {
                offset: idx,
                len: self.len(),
            });
        }
        Ok(match self {
            Buffer::Bool(v) => Scalar::Bool(v[idx]),
            Buffer::U8(v) => Scalar::U8(v[idx]),
            Buffer::U16(v) => Scalar::U16(v[idx]),
            Buffer::U32(v) => Scalar::U32(v[idx]),
            Buffer::U64(v) => Scalar::U64(v[idx]),
            Buffer::I8(v) => Scalar::I8(v[idx]),
            Buffer::I16(v) => Scalar::I16(v[idx]),
            Buffer::I32(v) => Scalar::I32(v[idx]),
            Buffer::I64(v) => Scalar::I64(v[idx]),
            Buffer::F32(v) => Scalar::F32(v[idx]),
            Buffer::F64(v) => Scalar::F64(v[idx]),
        })
    }

    /// Write one element from a [`Scalar`] (cast to the buffer dtype).
    ///
    /// # Errors
    ///
    /// [`TensorError::OutOfBounds`] if `idx >= len`.
    pub fn set_scalar(&mut self, idx: usize, value: Scalar) -> Result<(), TensorError> {
        if idx >= self.len() {
            return Err(TensorError::OutOfBounds {
                offset: idx,
                len: self.len(),
            });
        }
        let v = value.cast(self.dtype());
        match self {
            Buffer::Bool(b) => Arc::make_mut(b)[idx] = v.get::<bool>(),
            Buffer::U8(b) => Arc::make_mut(b)[idx] = v.get::<u8>(),
            Buffer::U16(b) => Arc::make_mut(b)[idx] = v.get::<u16>(),
            Buffer::U32(b) => Arc::make_mut(b)[idx] = v.get::<u32>(),
            Buffer::U64(b) => Arc::make_mut(b)[idx] = v.get::<u64>(),
            Buffer::I8(b) => Arc::make_mut(b)[idx] = v.get::<i8>(),
            Buffer::I16(b) => Arc::make_mut(b)[idx] = v.get::<i16>(),
            Buffer::I32(b) => Arc::make_mut(b)[idx] = v.get::<i32>(),
            Buffer::I64(b) => Arc::make_mut(b)[idx] = v.get::<i64>(),
            Buffer::F32(b) => Arc::make_mut(b)[idx] = v.get::<f32>(),
            Buffer::F64(b) => Arc::make_mut(b)[idx] = v.get::<f64>(),
        }
        Ok(())
    }

    /// Copy into a new buffer of another dtype, element-wise `as`-cast.
    pub fn cast(&self, dtype: DType) -> Buffer {
        if dtype == self.dtype() {
            return self.clone();
        }
        let mut out = Buffer::zeros(dtype, self.len());
        for i in 0..self.len() {
            let s = self.get_scalar(i).expect("index in range");
            out.set_scalar(i, s).expect("index in range");
        }
        out
    }

    /// All elements converted to `f64` (testing / display convenience).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.get_scalar(i).expect("index in range").as_f64())
            .collect()
    }
}

impl fmt::Debug for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Buffer<{}>[len={}; ", self.dtype(), self.len())?;
        for i in 0..self.len().min(PREVIEW) {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.get_scalar(i).expect("index in range"))?;
        }
        if self.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::ALL_DTYPES;

    #[test]
    fn zeros_all_dtypes() {
        for &d in &ALL_DTYPES {
            let b = Buffer::zeros(d, 5);
            assert_eq!(b.dtype(), d);
            assert_eq!(b.len(), 5);
            for i in 0..5 {
                assert!(b.get_scalar(i).unwrap().is_zero(), "{d}");
            }
        }
    }

    #[test]
    fn full_casts_value() {
        let b = Buffer::full(DType::Int32, 3, Scalar::F64(2.9));
        assert_eq!(b.get_scalar(0).unwrap(), Scalar::I32(2));
    }

    #[test]
    fn from_vec_round_trip() {
        let b = Buffer::from_vec(vec![1.5f64, -2.0, 0.25]);
        assert_eq!(b.dtype(), DType::Float64);
        assert_eq!(b.as_slice::<f64>().unwrap(), &[1.5, -2.0, 0.25]);
        let b = Buffer::from_vec(vec![true, false]);
        assert_eq!(b.as_slice::<bool>().unwrap(), &[true, false]);
        let b = Buffer::from_vec(vec![7u16, 9]);
        assert_eq!(b.as_slice::<u16>().unwrap(), &[7, 9]);
    }

    #[test]
    fn as_slice_rejects_wrong_type() {
        let b = Buffer::zeros(DType::Float32, 2);
        assert!(b.as_slice::<f64>().is_none());
        assert!(b.as_slice::<f32>().is_some());
    }

    #[test]
    fn mutate_via_typed_slice() {
        let mut b = Buffer::zeros(DType::Int64, 4);
        b.as_mut_slice::<i64>().unwrap()[3] = -9;
        assert_eq!(b.get_scalar(3).unwrap(), Scalar::I64(-9));
    }

    #[test]
    fn get_set_bounds() {
        let mut b = Buffer::zeros(DType::Float64, 2);
        assert!(b.get_scalar(2).is_err());
        assert!(b.set_scalar(2, Scalar::F64(1.0)).is_err());
    }

    #[test]
    fn cast_buffer() {
        let b = Buffer::from_vec(vec![1.9f64, -0.5, 3.0]);
        let c = b.cast(DType::Int32);
        assert_eq!(c.as_slice::<i32>().unwrap(), &[1, 0, 3]);
        // cast to same dtype is a clone
        let d = b.cast(DType::Float64);
        assert_eq!(d, b);
    }

    #[test]
    fn size_bytes() {
        assert_eq!(Buffer::zeros(DType::Float64, 10).size_bytes(), 80);
        assert_eq!(Buffer::zeros(DType::UInt8, 10).size_bytes(), 10);
    }

    #[test]
    fn debug_preview_truncates() {
        let b = Buffer::zeros(DType::Int32, 100);
        let s = format!("{b:?}");
        assert!(s.contains("len=100"));
        assert!(s.contains('…'));
    }

    #[test]
    fn with_dtype_macro_dispatches() {
        for &d in &ALL_DTYPES {
            let size = with_dtype!(d, T, std::mem::size_of::<T>());
            assert_eq!(size, d.size_of().max(1));
        }
    }

    #[test]
    fn to_f64_vec() {
        let b = Buffer::from_vec(vec![1i32, 2, 3]);
        assert_eq!(b.to_f64_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn clone_shares_until_written() {
        let a = Buffer::from_vec(vec![1.0f64, 2.0, 3.0]);
        let mut b = a.clone();
        assert!(a.shares_storage_with(&b));
        // Reads keep the sharing intact.
        assert_eq!(b.get_scalar(1).unwrap(), Scalar::F64(2.0));
        assert!(a.shares_storage_with(&b));
        // First write through either handle splits them.
        b.as_mut_slice::<f64>().unwrap()[0] = 9.0;
        assert!(!a.shares_storage_with(&b));
        assert_eq!(a.get_scalar(0).unwrap(), Scalar::F64(1.0));
        assert_eq!(b.get_scalar(0).unwrap(), Scalar::F64(9.0));
    }

    #[test]
    fn set_scalar_copies_on_write() {
        let a = Buffer::from_vec(vec![7i64; 4]);
        let mut b = a.clone();
        b.set_scalar(2, Scalar::I64(-1)).unwrap();
        assert_eq!(a.get_scalar(2).unwrap(), Scalar::I64(7));
        assert_eq!(b.get_scalar(2).unwrap(), Scalar::I64(-1));
    }

    #[test]
    fn mismatched_mut_access_never_copies() {
        let a = Buffer::from_vec(vec![1.0f32; 8]);
        let mut b = a.clone();
        assert!(b.as_mut_slice::<f64>().is_none());
        // The failed typed access must not have broken the sharing.
        assert!(a.shares_storage_with(&b));
    }

    #[test]
    fn exclusive_owner_mutates_in_place() {
        let mut a = Buffer::from_vec(vec![0u32; 4]);
        let before = a.as_slice::<u32>().unwrap().as_ptr();
        a.as_mut_slice::<u32>().unwrap()[0] = 5;
        assert_eq!(a.as_slice::<u32>().unwrap().as_ptr(), before);
    }

    #[test]
    fn shares_storage_is_per_allocation() {
        let a = Buffer::from_vec(vec![1.0f64]);
        let b = Buffer::from_vec(vec![1.0f64]);
        assert_eq!(a, b);
        assert!(!a.shares_storage_with(&b));
        assert!(!a.shares_storage_with(&Buffer::from_vec(vec![1i32])));
    }
}
