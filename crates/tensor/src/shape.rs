//! Shapes, row-major strides and broadcasting.

use crate::error::TensorError;
use std::fmt;

/// The extent of a tensor along each axis.
///
/// A rank-0 shape (`[]`) denotes a scalar tensor with one element.
///
/// # Examples
///
/// ```
/// use bh_tensor::Shape;
/// let s = Shape::from(vec![2, 3, 4]);
/// assert_eq!(s.nelem(), 24);
/// assert_eq!(s.row_major_strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// A scalar (rank-0) shape.
    pub fn scalar() -> Shape {
        Shape(Vec::new())
    }

    /// A 1-D shape of length `n`.
    pub fn vector(n: usize) -> Shape {
        Shape(vec![n])
    }

    /// A 2-D shape of `rows × cols`.
    pub fn matrix(rows: usize, cols: usize) -> Shape {
        Shape(vec![rows, cols])
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    pub fn nelem(&self) -> usize {
        self.0.iter().product()
    }

    /// Extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// The extent along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major (C-order) strides in **elements**.
    pub fn row_major_strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// NumPy-style broadcast of two shapes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BroadcastMismatch`] when a pair of extents is
    /// incompatible (neither equal nor 1).
    pub fn broadcast(&self, other: &Shape) -> Result<Shape, TensorError> {
        let rank = self.rank().max(other.rank());
        let mut out = vec![0usize; rank];
        for (i, slot) in out.iter_mut().enumerate() {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.0[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.0[i - (rank - other.rank())]
            };
            *slot = match (a, b) {
                (x, y) if x == y => x,
                (1, y) => y,
                (x, 1) => x,
                _ => {
                    return Err(TensorError::BroadcastMismatch {
                        left: self.clone(),
                        right: other.clone(),
                    })
                }
            };
        }
        Ok(Shape(out))
    }

    /// Shape after removing `axis` (used by reductions).
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn without_axis(&self, axis: usize) -> Shape {
        let mut v = self.0.clone();
        v.remove(axis);
        Shape(v)
    }

    /// Convert a flat row-major element index to a multi-index.
    pub fn unravel(&self, mut flat: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.rank()];
        for (i, &stride) in self.row_major_strides().iter().enumerate() {
            idx[i] = flat / stride;
            flat %= stride;
        }
        idx
    }

    /// Convert a multi-index to a flat row-major element index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != rank`.
    pub fn ravel(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        idx.iter()
            .zip(self.row_major_strides())
            .map(|(&i, s)| i * s)
            .sum()
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Shape {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Shape {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Shape {
        Shape(v.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelem_and_rank() {
        assert_eq!(Shape::scalar().nelem(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
        assert_eq!(Shape::vector(7).nelem(), 7);
        assert_eq!(Shape::matrix(3, 4).nelem(), 12);
        assert_eq!(Shape::from([2, 0, 4]).nelem(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).row_major_strides(), vec![12, 4, 1]);
        assert_eq!(Shape::vector(5).row_major_strides(), vec![1]);
        assert!(Shape::scalar().row_major_strides().is_empty());
    }

    #[test]
    fn broadcast_basic() {
        let a = Shape::from([3, 1]);
        let b = Shape::from([1, 4]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::from([3, 4]));
    }

    #[test]
    fn broadcast_rank_extension() {
        let a = Shape::from([5, 3]);
        let b = Shape::vector(3);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::from([5, 3]));
        let s = Shape::scalar();
        assert_eq!(a.broadcast(&s).unwrap(), a);
    }

    #[test]
    fn broadcast_mismatch_errors() {
        let a = Shape::from([3, 2]);
        let b = Shape::from([3, 4]);
        let err = a.broadcast(&b).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("broadcast"), "{msg}");
    }

    #[test]
    fn ravel_unravel_round_trip() {
        let s = Shape::from([2, 3, 4]);
        for flat in 0..s.nelem() {
            let idx = s.unravel(flat);
            assert_eq!(s.ravel(&idx), flat);
        }
    }

    #[test]
    fn without_axis() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.without_axis(1), Shape::from([2, 4]));
        assert_eq!(Shape::vector(9).without_axis(0), Shape::scalar());
    }

    #[test]
    fn display() {
        assert_eq!(Shape::from([2, 3]).to_string(), "(2,3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }
}
